//! Reproduction of *"Accelerating Dependent Cache Misses with an Enhanced
//! Memory Controller"* (Hashemi, Khubaib, Ebrahimi, Mutlu, Patt — ISCA
//! 2016).
//!
//! This meta-crate re-exports the workspace's public surface so examples
//! and downstream users need a single dependency:
//!
//! - [`emc_sim`] — the full-system cycle simulator ([`System`], [`run_mix`]).
//! - [`emc_core`] — the EMC mechanism (chain generation + remote execution).
//! - [`emc_workloads`] — synthetic SPEC CPU2006-like workloads.
//! - [`emc_types`] — configuration ([`SystemConfig`]) and statistics.
//! - [`emc_energy`] — the McPAT/CACTI-style energy model.
//! - [`emc_campaign`] — deterministic experiment orchestration with a
//!   content-addressed result cache and resumable manifests.
//!
//! # Quickstart
//!
//! ```
//! use emc_repro::{run_mix, Benchmark, SystemConfig};
//!
//! // The paper's H4 mix on the Table-1 quad-core, EMC enabled.
//! let mix = [Benchmark::Mcf, Benchmark::Sphinx3, Benchmark::Soplex, Benchmark::Libquantum];
//! let stats = run_mix(SystemConfig::quad_core(), &mix, 2_000).expect_completed();
//! assert_eq!(stats.cores.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use emc_campaign;
pub use emc_core;
pub use emc_cpu;
pub use emc_energy;
pub use emc_sim;
pub use emc_types;
pub use emc_workloads;

pub use emc_energy::{estimate_default, EnergyBreakdown, EnergyParams};
pub use emc_sim::{build_system, run_homogeneous, run_mix, BuildError, System, DEFAULT_BUDGET};
pub use emc_types::{
    FaultPlan, PrefetcherKind, RunOutcome, RunReport, Stats, SystemConfig, WedgeReport,
};
pub use emc_workloads::{build, mix_by_name, Benchmark, QUAD_MIXES};
