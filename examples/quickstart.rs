//! Quickstart: simulate the paper's H4 workload (mcf + sphinx3 + soplex +
//! libquantum) on the Table-1 quad-core, with and without the Enhanced
//! Memory Controller, and print the headline comparison.
//!
//! Run with: `cargo run --release --example quickstart`

use emc_repro::{mix_by_name, run_mix, SystemConfig};

fn main() {
    let budget = 30_000; // retired uops per core (scaled-down SimPoint)
    let mix = mix_by_name("H4").expect("H4 is a Table-3 mix");
    println!("workload H4: {:?}", mix.map(|b| b.name()));

    println!("running baseline (no EMC)...");
    let base = run_mix(SystemConfig::quad_core().without_emc(), &mix, budget).expect_completed();
    println!("running with the Enhanced Memory Controller...");
    let emc = run_mix(SystemConfig::quad_core(), &mix, budget).expect_completed();

    println!();
    println!("{:<12} {:>10} {:>10}", "core", "base IPC", "EMC IPC");
    for (bench, (b, e)) in mix.iter().zip(base.cores.iter().zip(&emc.cores)) {
        println!("{:<12} {:>10.3} {:>10.3}", bench.name(), b.ipc(), e.ipc());
    }
    let base_ipcs: Vec<f64> = base.cores.iter().map(|c| c.ipc()).collect();
    let ws = emc.weighted_speedup(&base_ipcs) / 4.0;
    println!();
    println!("weighted speedup with EMC: {ws:.3}");
    println!(
        "chains executed: {}   mean chain length: {:.1} uops",
        emc.emc.chains_executed,
        emc.mean_chain_uops()
    );
    println!(
        "LLC-miss latency: core-issued {:.0} cycles, EMC-issued {:.0} cycles ({:.0}% lower)",
        emc.mem.core_miss_latency.mean(),
        emc.mem.emc_miss_latency.mean(),
        100.0 * (1.0 - emc.mem.emc_miss_latency.mean() / emc.mem.core_miss_latency.mean())
    );
}
