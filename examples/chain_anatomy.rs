//! Anatomy of a dependence chain (paper Figures 5 and 9): build the
//! paper's mcf-style micro-op sequence, stall the core on the source
//! miss, run Algorithm 1's pseudo-wakeup walk, and print the renamed
//! chain exactly as Figure 9's RRT/live-in-vector walkthrough produces it.
//!
//! Run with: `cargo run --release --example chain_anatomy`

use emc_core::generate_chain;
use emc_cpu::{Core, CoreEvent};
use emc_types::program::{Program, StaticUop};
use emc_types::{Addr, CoreConfig, EmcConfig, MemoryImage, Reg, UopKind};
use std::sync::Arc;

fn main() {
    // Figure 5's dynamic sequence, adapted to this ISA:
    //   0: ld  r1 <- [r0]        (source miss, cache line A)
    //   1: mov r9 <- r1          (pointer copy)
    //   2: add r12 <- r9 + 0x18  (field offset)
    //   3: ld  r5 <- [r12]       (dependent miss, line B)
    //   4: xor r6 <- r5 ^ 1      (consume)
    //   5: ld  r7 <- [r6]        (second dependent miss, line C)
    let mut mem = MemoryImage::new();
    mem.write_u64(Addr(0x1000), 0x8000);
    mem.write_u64(Addr(0x8018), 0x20001);
    let mut uops = vec![
        StaticUop::mov_imm(Reg(0), 0x1000),
        StaticUop::load(Reg(1), Reg(0), 0),
        StaticUop::mov(Reg(9), Reg(1)),
        StaticUop::alu(UopKind::IntAdd, Reg(12), Reg(9), None, 0x18),
        StaticUop::load(Reg(5), Reg(12), 0),
        StaticUop::alu(UopKind::Xor, Reg(6), Reg(5), None, 1),
        StaticUop::load(Reg(7), Reg(6), 0),
    ];
    // Fill the window behind the miss so a full-window stall develops.
    for _ in 0..300 {
        uops.push(StaticUop::alu(UopKind::IntAdd, Reg(4), Reg(4), None, 1));
    }
    let program = Program::new(uops, 0x4000);
    let mut core = Core::new(&CoreConfig::default(), Arc::new(program), mem);

    // Run until the source miss stalls retirement (never answer it).
    let mut events = Vec::new();
    let mut source = None;
    for now in 0..400 {
        core.tick(now, &mut events);
        for ev in events.drain(..) {
            if let CoreEvent::LoadIssued { rob, .. } = ev {
                source.get_or_insert(rob);
                core.mark_llc_miss(rob);
            }
        }
    }
    let source = source.expect("source miss issued");
    println!(
        "full-window stall: {:?}, ROB occupancy {}\n",
        core.full_window_stall()
            .map(|id| format!("source rob {id}")),
        core.rob_len()
    );

    let g = generate_chain(&core, 0, source, &EmcConfig::default())
        .expect("the dependent chain exists");
    println!(
        "pseudo-wakeup walk took {} cycles (Figure 9)\n",
        g.gen_cycles
    );
    println!("{}", g.chain.render());
    println!(
        "The EMC receives this chain; when line A's data arrives from DRAM\n\
         it executes the MOV/ADD and issues the line-B load immediately at\n\
         the memory controller — then line C's load as soon as B returns —\n\
         never paying the on-chip fill path between the misses."
    );
}
