//! Multi-memory-controller scaling (paper §4.4, §6.2, Figure 11): an
//! eight-core system with one EMC versus two distributed EMCs. With two
//! controllers, cross-channel dependent misses are issued EMC→EMC
//! directly, cutting the home core out of the path.
//!
//! Run with: `cargo run --release --example eight_core_scaling`

use emc_repro::{build, mix_by_name, Benchmark, SystemConfig};
use emc_sim::{cycle_cap, System};
use emc_types::rng::substream;

fn run8(cfg: SystemConfig, benches: &[Benchmark], budget: u64) -> emc_repro::Stats {
    let workloads = benches
        .iter()
        .enumerate()
        .map(|(i, &b)| build(b, substream(cfg.seed, i as u64), 50_000_000))
        .collect();
    let mut sys = System::new(cfg, workloads).expect("build system");
    sys.run_with_warmup(budget / 2, budget, cycle_cap(budget))
        .expect_completed()
}

fn main() {
    let budget = 15_000;
    // Eight-core workloads are two copies of a quad mix (paper §5).
    let quad = mix_by_name("H9").expect("table 3 mix");
    let mut benches = quad.to_vec();
    benches.extend_from_slice(&quad);
    println!(
        "workload: 2 x H9 = {:?}\n",
        benches.iter().map(|b| b.name()).collect::<Vec<_>>()
    );

    for (label, cfg) in [
        ("8-core, 1 MC (Figure 11a)", SystemConfig::eight_core_1mc()),
        ("8-core, 2 MC (Figure 11b)", SystemConfig::eight_core_2mc()),
    ] {
        let base = run8(cfg.clone().without_emc(), &benches, budget);
        let emc = run8(cfg.clone(), &benches, budget);
        let base_ipcs: Vec<f64> = base.cores.iter().map(|c| c.ipc()).collect();
        let ws = emc.weighted_speedup(&base_ipcs) / 8.0;
        println!("{label}");
        println!(
            "  EMC contexts: {} per controller x {} controller(s)",
            cfg.emc.contexts, cfg.memory_controllers
        );
        println!("  weighted speedup with EMC: {ws:.3}");
        println!("  chains executed: {}", emc.emc.chains_executed);
        println!(
            "  miss latency: core {:.0} vs EMC {:.0} cycles\n",
            emc.mem.core_miss_latency.mean(),
            emc.mem.emc_miss_latency.mean()
        );
    }
}
