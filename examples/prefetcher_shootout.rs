//! Why prefetchers struggle with dependent cache misses (paper §1,
//! Figure 3): compare the GHB, stream, and Markov+stream prefetchers on
//! a streaming workload (libquantum-like) versus a pointer-chasing one
//! (mcf-like), and show coverage of dependent misses specifically.
//!
//! Run with: `cargo run --release --example prefetcher_shootout`

use emc_repro::{run_homogeneous, Benchmark, PrefetcherKind, SystemConfig};

fn main() {
    let budget = 30_000;
    for bench in [Benchmark::Libquantum, Benchmark::Mcf] {
        println!("=== {} x4 ===", bench.name());
        let base = run_homogeneous(SystemConfig::quad_core().without_emc(), bench, budget)
            .expect_completed();
        let base_ipc: f64 = base.cores.iter().map(|c| c.ipc()).sum();
        println!(
            "{:<16} {:>9} {:>10} {:>10} {:>10} {:>12}",
            "prefetcher", "speedup", "issued", "accuracy", "dep-cov", "DRAM traffic"
        );
        for pf in [
            PrefetcherKind::Ghb,
            PrefetcherKind::Stream,
            PrefetcherKind::MarkovStream,
        ] {
            let cfg = SystemConfig::quad_core().without_emc().with_prefetcher(pf);
            let s = run_homogeneous(cfg, bench, budget).expect_completed();
            let ipc: f64 = s.cores.iter().map(|c| c.ipc()).sum();
            let covered: u64 = s.cores.iter().map(|c| c.dependent_misses_prefetched).sum();
            let dep: u64 = s.cores.iter().map(|c| c.dependent_llc_misses).sum();
            let dep_cov = if covered + dep == 0 {
                0.0
            } else {
                100.0 * covered as f64 / (covered + dep) as f64
            };
            println!(
                "{:<16} {:>9.3} {:>10} {:>9.0}% {:>9.1}% {:>12}",
                pf.label(),
                ipc / base_ipc,
                s.prefetch.issued,
                100.0 * s.prefetch.accuracy(),
                dep_cov,
                s.mem.dram_traffic(),
            );
        }
        println!(
            "(baseline DRAM traffic: {}; dependent misses are data-dependent,\n so pattern prefetchers cover few of them — the gap the EMC targets)\n",
            base.mem.dram_traffic()
        );
    }
}
