//! The paper's motivating scenario (§1, Figures 2 and 5): a pointer-
//! chasing workload whose LLC misses are data-dependent on earlier LLC
//! misses. Runs four copies of the mcf-like kernel and shows what the
//! EMC does to the dependence chains: how many are generated, what they
//! look like statistically, and what happens to dependent-miss latency.
//!
//! Run with: `cargo run --release --example pointer_chase`

use emc_repro::{run_homogeneous, Benchmark, SystemConfig};

fn main() {
    let budget = 30_000;
    println!("four copies of the mcf-like pointer chaser, Table-1 quad-core\n");

    let base = run_homogeneous(
        SystemConfig::quad_core().without_emc(),
        Benchmark::Mcf,
        budget,
    )
    .expect_completed();
    let c0 = &base.cores[0];
    println!("baseline characterization (core 0):");
    println!("  IPC                      {:.3}", c0.ipc());
    println!("  LLC MPKI                 {:.1}", c0.mpki());
    println!(
        "  dependent LLC misses     {:.1}% of all misses (paper Fig. 2: mcf is highest)",
        100.0 * c0.dependent_miss_fraction()
    );
    println!(
        "  ops between source and dependent miss: {:.1} (paper Fig. 6: small)",
        c0.dep_chain_uop_sum as f64 / c0.dep_chain_pairs.max(1) as f64
    );
    println!(
        "  full-window stall cycles {:.0}% of run",
        100.0 * c0.full_window_stall_cycles as f64 / c0.cycles as f64
    );

    let emc = run_homogeneous(SystemConfig::quad_core(), Benchmark::Mcf, budget).expect_completed();
    println!("\nwith the Enhanced Memory Controller:");
    println!(
        "  chains generated         {}",
        emc.cores.iter().map(|c| c.chains_sent).sum::<u64>()
    );
    println!("  chains executed          {}", emc.emc.chains_executed);
    println!(
        "  mean chain length        {:.1} uops (16-uop buffer)",
        emc.mean_chain_uops()
    );
    println!(
        "  EMC-generated misses     {:.1}% of all LLC misses (paper Fig. 15)",
        100.0 * emc.emc_miss_fraction()
    );
    println!(
        "  loads sent direct to DRAM on predicted LLC miss: {}",
        emc.emc.direct_to_dram
    );
    println!(
        "  miss latency             core {:.0} vs EMC {:.0} cycles (paper Fig. 18: ~20% lower)",
        emc.mem.core_miss_latency.mean(),
        emc.mem.emc_miss_latency.mean()
    );
    let base_ipcs: Vec<f64> = base.cores.iter().map(|c| c.ipc()).collect();
    println!(
        "  weighted speedup         {:.3}",
        emc.weighted_speedup(&base_ipcs) / 4.0
    );
}
