//! Feedback-Directed Prefetching (Srinath et al., HPCA 2007; paper
//! Table 1: "All configurations use FDP: dynamic degree 1-32, prefetch
//! into LLC").
//!
//! FDP periodically measures prefetch accuracy (useful fills / issued
//! prefetches) and adjusts the prefetch degree: high accuracy ramps the
//! degree up, low accuracy throttles it down. This is the mechanism that
//! keeps the baseline prefetchers from flooding DRAM bandwidth — and the
//! paper notes they still add 18–52% traffic where the EMC adds 8%.

use emc_types::PrefetchConfig;

/// Dynamic-degree throttle for one prefetcher.
///
/// # Example
///
/// ```
/// use emc_prefetch::FdpThrottle;
/// use emc_types::PrefetchConfig;
///
/// let cfg = PrefetchConfig::default();
/// let mut fdp = FdpThrottle::new(&cfg);
/// assert_eq!(fdp.degree(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct FdpThrottle {
    degree: usize,
    min_degree: usize,
    max_degree: usize,
    high: f64,
    low: f64,
    interval: u64,
    /// Outcomes observed this window: lines consumed by demand (useful).
    useful_window: u64,
    /// Outcomes observed this window: lines evicted unused (useless).
    useless_window: u64,
    /// When very inaccurate at minimum degree, the prefetcher is turned
    /// off for this many training events (FDP's strongest response).
    off_trains_left: u64,
}

impl FdpThrottle {
    /// Create a throttle starting at degree 4 (mid-range).
    pub fn new(cfg: &PrefetchConfig) -> Self {
        FdpThrottle {
            degree: 4.clamp(cfg.fdp_min_degree, cfg.fdp_max_degree),
            min_degree: cfg.fdp_min_degree,
            max_degree: cfg.fdp_max_degree,
            high: cfg.fdp_high_accuracy,
            low: cfg.fdp_low_accuracy,
            interval: cfg.fdp_interval,
            useful_window: 0,
            useless_window: 0,
            off_trains_left: 0,
        }
    }

    /// Current dynamic degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Whether the prefetcher is currently switched off (lowest FDP
    /// throttle level).
    pub fn is_off(&self) -> bool {
        self.off_trains_left > 0
    }

    /// Notify a training event; counts down the off period.
    pub fn on_train(&mut self) {
        if self.off_trains_left > 0 {
            self.off_trains_left -= 1;
            if self.off_trains_left == 0 {
                self.degree = self.min_degree; // probe cautiously
            }
        }
    }

    /// Record a useful prefetch (a demand consumed a prefetched line —
    /// whether it arrived early or late).
    pub fn on_useful(&mut self) {
        self.useful_window += 1;
        self.maybe_adjust();
    }

    /// Record a useless prefetch (evicted without being demanded).
    pub fn on_useless(&mut self) {
        self.useless_window += 1;
        self.maybe_adjust();
    }

    /// Accuracy is measured over *outcomes* (consumed vs evicted-unused
    /// fills), which is robust to cold-start and in-flight populations.
    fn maybe_adjust(&mut self) {
        if self.useful_window + self.useless_window < self.interval {
            return;
        }
        let acc = self.useful_window as f64 / (self.useful_window + self.useless_window) as f64;
        if acc >= self.high {
            self.degree = (self.degree * 2).min(self.max_degree);
        } else if acc < self.low {
            if self.degree == self.min_degree && acc < self.low / 4.0 {
                // Persistently useless: switch off for a while.
                self.off_trains_left = 512;
            }
            self.degree = (self.degree / 2).max(self.min_degree);
        }
        self.useful_window = 0;
        self.useless_window = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PrefetchConfig {
        PrefetchConfig {
            fdp_interval: 10,
            ..PrefetchConfig::default()
        }
    }

    #[test]
    fn accurate_prefetching_ramps_up() {
        let mut f = FdpThrottle::new(&cfg());
        let d0 = f.degree();
        for _ in 0..10 {
            f.on_useful();
        }
        assert_eq!(f.degree(), d0 * 2);
    }

    #[test]
    fn inaccurate_prefetching_throttles_down_then_off() {
        let mut f = FdpThrottle::new(&cfg());
        for _ in 0..10 {
            f.on_useless();
        }
        assert_eq!(f.degree(), 2);
        for _ in 0..10 {
            f.on_useless();
        }
        assert_eq!(f.degree(), 1);
        assert!(!f.is_off());
        for _ in 0..10 {
            f.on_useless();
        }
        assert!(f.is_off(), "persistently useless prefetching switches off");
        // Training events eventually re-enable it.
        for _ in 0..512 {
            f.on_train();
        }
        assert!(!f.is_off());
    }

    #[test]
    fn mid_accuracy_holds_degree() {
        let mut f = FdpThrottle::new(&cfg());
        let d0 = f.degree();
        for _ in 0..5 {
            f.on_useful();
        }
        for _ in 0..5 {
            f.on_useless();
        }
        // 50% accuracy: between low (40%) and high (75%).
        assert_eq!(f.degree(), d0);
    }

    #[test]
    fn degree_capped_at_max() {
        let mut f = FdpThrottle::new(&cfg());
        for _ in 0..100 {
            f.on_useful();
        }
        assert_eq!(f.degree(), 32);
    }
}
