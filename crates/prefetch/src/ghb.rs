//! Global History Buffer prefetcher with global delta correlation
//! (GHB G/DC, Nesbit & Smith HPCA 2004; paper Table 1: "GHB G/DC:
//! 1k-entry buffer, 12KB total size").
//!
//! The GHB is a circular buffer of recent miss addresses whose entries are
//! chained by an index table. G/DC indexes on the last two *deltas* of the
//! global miss stream; on a hit, the prefetcher walks the history from the
//! matched position and replays the deltas that followed it.

use emc_types::LineAddr;
use std::collections::HashMap;

/// A per-core GHB G/DC prefetcher.
///
/// # Example
///
/// ```
/// use emc_prefetch::GhbPrefetcher;
/// use emc_types::LineAddr;
///
/// let mut pf = GhbPrefetcher::new(1024, 512);
/// // Train a repeating delta pattern: +1, +2, +1, +2 ...
/// for l in [10u64, 11, 13, 14, 16] {
///     pf.train(LineAddr(l));
///     pf.take_requests(64); // discard predictions for seen misses
/// }
/// pf.train(LineAddr(17));
/// let reqs = pf.take_requests(2);
/// assert_eq!(reqs, vec![LineAddr(19), LineAddr(20)]);
/// ```
#[derive(Debug, Clone)]
pub struct GhbPrefetcher {
    /// Circular buffer of miss line addresses.
    buffer: Vec<u64>,
    head: usize,
    filled: usize,
    /// Delta-pair -> most recent global position (monotonic sequence id).
    index: HashMap<(i64, i64), u64>,
    index_capacity: usize,
    /// Monotonic count of misses trained.
    seq: u64,
    pending: Vec<LineAddr>,
}

impl GhbPrefetcher {
    /// Create a GHB with `buffer_entries` history slots and an index table
    /// bounded at `index_entries`.
    pub fn new(buffer_entries: usize, index_entries: usize) -> Self {
        GhbPrefetcher {
            buffer: vec![0; buffer_entries.max(4)],
            head: 0,
            filled: 0,
            index: HashMap::new(),
            index_capacity: index_entries.max(16),
            seq: 0,
            pending: Vec::new(),
        }
    }

    /// The miss with 1-based sequence number `s`, if still in the buffer.
    fn at(&self, s: u64) -> Option<u64> {
        if s == 0 || s > self.seq {
            return None;
        }
        let age = (self.seq - s) as usize; // 0 = newest
        if age >= self.filled {
            return None;
        }
        let idx = (self.head + self.buffer.len() - 1 - age) % self.buffer.len();
        Some(self.buffer[idx])
    }

    /// Train on a demand miss and queue prefetch candidates if the current
    /// delta pair has been seen before.
    pub fn train(&mut self, line: LineAddr) {
        // Push into the circular buffer.
        self.buffer[self.head] = line.0;
        self.head = (self.head + 1) % self.buffer.len();
        self.filled = (self.filled + 1).min(self.buffer.len());
        self.seq += 1;

        // Need three misses for two deltas.
        let (Some(prev), Some(prev2)) = (self.at(self.seq - 1), self.at(self.seq.wrapping_sub(2)))
        else {
            return;
        };
        let d1 = prev as i64 - prev2 as i64;
        let d2 = line.0 as i64 - prev as i64;
        let key = (d1, d2);
        let hit = self.index.get(&key).copied();
        // Update the index to the newest occurrence of this delta pair.
        if self.index.len() >= self.index_capacity && !self.index.contains_key(&key) {
            // Cheap bounded-table policy: drop the whole table when full
            // (the real structure is a small set-associative SRAM; what
            // matters for the evaluation is bounded capacity).
            self.index.clear();
        }
        self.index.insert(key, self.seq);

        let Some(pos) = hit else { return };
        // Replay the deltas that followed the previous occurrence of this
        // pair, then extrapolate the pair cyclically (covers periodic
        // patterns whose last occurrence is too recent to walk far).
        let mut deltas = Vec::with_capacity(8);
        let mut walk = pos;
        while deltas.len() < 8 {
            let (Some(a), Some(b)) = (self.at(walk), self.at(walk + 1)) else {
                break;
            };
            deltas.push(b as i64 - a as i64);
            walk += 1;
        }
        let mut i = 0;
        while deltas.len() < 8 {
            deltas.push(if i % 2 == 0 { d1 } else { d2 });
            i += 1;
        }
        let mut addr = line.0 as i64;
        for delta in deltas {
            addr += delta;
            if addr < 0 {
                break;
            }
            self.pending.push(LineAddr(addr as u64));
        }
    }

    /// Drain up to `degree` queued prefetch candidates.
    pub fn take_requests(&mut self, degree: usize) -> Vec<LineAddr> {
        if self.pending.len() > degree {
            let rest = self.pending.split_off(degree);
            let out = std::mem::replace(&mut self.pending, rest);
            return out;
        }
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeating_delta_pattern_predicted() {
        let mut pf = GhbPrefetcher::new(64, 64);
        // Deltas: +3, +5 repeating.
        for l in [0u64, 3, 8, 11, 16] {
            pf.train(LineAddr(l));
            pf.take_requests(100); // drain predictions for already-seen misses
        }
        pf.train(LineAddr(19));
        let reqs = pf.take_requests(4);
        // After ...16,19 the (+5,+3) pair matched at position of 11: the
        // following deltas were +5,+3,... so predictions are 24, 27, ...
        assert!(!reqs.is_empty());
        assert_eq!(reqs[0], LineAddr(24));
    }

    #[test]
    fn unit_stride_predicted() {
        let mut pf = GhbPrefetcher::new(64, 64);
        for l in 100..105u64 {
            pf.train(LineAddr(l));
            pf.take_requests(100);
        }
        pf.train(LineAddr(105));
        let reqs = pf.take_requests(3);
        assert_eq!(reqs, vec![LineAddr(106), LineAddr(107), LineAddr(108)]);
    }

    #[test]
    fn random_stream_is_mostly_silent() {
        let mut pf = GhbPrefetcher::new(64, 64);
        for l in [7u64, 1000, 13, 90000, 42, 777777, 3] {
            pf.train(LineAddr(l));
        }
        assert!(pf.take_requests(16).len() <= 1);
    }

    #[test]
    fn degree_respected_and_queue_drains() {
        let mut pf = GhbPrefetcher::new(64, 64);
        for l in 0..10u64 {
            pf.train(LineAddr(l));
        }
        let first = pf.take_requests(2);
        assert_eq!(first.len(), 2);
        let rest = pf.take_requests(100);
        assert!(!rest.is_empty(), "remaining candidates preserved");
        assert!(pf.take_requests(100).is_empty());
    }

    #[test]
    fn history_wraps_without_panic() {
        let mut pf = GhbPrefetcher::new(8, 8);
        for l in 0..100u64 {
            pf.train(LineAddr(l * 2));
        }
        let _ = pf.take_requests(64);
    }

    #[test]
    fn negative_predictions_dropped() {
        let mut pf = GhbPrefetcher::new(64, 64);
        // Strongly descending pattern toward zero.
        for l in [20u64, 13, 6, 20, 13, 6] {
            pf.train(LineAddr(l));
        }
        for r in pf.take_requests(16) {
            assert!(r.0 < 1 << 40, "sane address {r:?}");
        }
    }
}
