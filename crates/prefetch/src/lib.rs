//! Hardware prefetchers evaluated in the paper: an IBM POWER4-style
//! stream prefetcher, a Global History Buffer G/DC prefetcher, and a
//! Markov correlation prefetcher, all throttled by Feedback-Directed
//! Prefetching (Table 1 of the paper).
//!
//! [`PrefetchEngine`] bundles the configured prefetcher(s) with an FDP
//! throttle per core: the simulator trains it on the core's LLC-miss
//! stream and drains degree-limited candidates each cycle. Per §5, the
//! Markov configuration always runs together with the stream prefetcher.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fdp;
pub mod ghb;
pub mod markov;
pub mod stream;
pub mod stride;

pub use fdp::FdpThrottle;
pub use ghb::GhbPrefetcher;
pub use markov::MarkovPrefetcher;
pub use stream::StreamPrefetcher;
pub use stride::StridePrefetcher;

use emc_types::{LineAddr, PrefetchConfig, PrefetcherKind};

/// One core's prefetching machinery: the configured prefetcher(s) plus an
/// FDP throttle.
///
/// # Example
///
/// ```
/// use emc_prefetch::PrefetchEngine;
/// use emc_types::{LineAddr, PrefetchConfig, PrefetcherKind};
///
/// let mut e = PrefetchEngine::new(PrefetcherKind::Stream, &PrefetchConfig::default());
/// e.train(LineAddr(5), 0x40);
/// e.train(LineAddr(6), 0x40);
/// assert!(!e.take_requests().is_empty());
/// ```
#[derive(Debug)]
pub struct PrefetchEngine {
    kind: PrefetcherKind,
    stream: Option<StreamPrefetcher>,
    ghb: Option<GhbPrefetcher>,
    markov: Option<MarkovPrefetcher>,
    stride: Option<StridePrefetcher>,
    fdp: FdpThrottle,
}

impl PrefetchEngine {
    /// Build the engine for a prefetcher configuration.
    pub fn new(kind: PrefetcherKind, cfg: &PrefetchConfig) -> Self {
        let stream = matches!(kind, PrefetcherKind::Stream | PrefetcherKind::MarkovStream)
            .then(|| StreamPrefetcher::new(cfg.stream_count, cfg.stream_distance));
        let ghb = matches!(kind, PrefetcherKind::Ghb)
            .then(|| GhbPrefetcher::new(cfg.ghb_entries, cfg.ghb_index_entries));
        let markov = matches!(kind, PrefetcherKind::MarkovStream)
            .then(|| MarkovPrefetcher::new(cfg.markov_entries, cfg.markov_fanout));
        let stride = matches!(kind, PrefetcherKind::Stride).then(|| StridePrefetcher::new(256));
        PrefetchEngine {
            kind,
            stream,
            ghb,
            markov,
            stride,
            fdp: FdpThrottle::new(cfg),
        }
    }

    /// Which configuration this engine implements.
    pub fn kind(&self) -> PrefetcherKind {
        self.kind
    }

    /// Train all active prefetchers on a demand LLC miss.
    pub fn train(&mut self, line: LineAddr, pc: u64) {
        self.fdp.on_train();
        if let Some(s) = &mut self.stream {
            s.train(line);
        }
        if let Some(g) = &mut self.ghb {
            g.train(line);
        }
        if let Some(m) = &mut self.markov {
            m.train(line);
        }
        if let Some(st) = &mut self.stride {
            st.train(pc, line);
        }
    }

    /// Drain prefetch candidates, limited by the current FDP degree, and
    /// account them in the throttle window.
    pub fn take_requests(&mut self) -> Vec<LineAddr> {
        let degree = self.fdp.degree();
        if self.fdp.is_off() {
            // Discard whatever the pattern tables produced this cycle.
            if let Some(s) = &mut self.stream {
                let _ = s.take_requests(usize::MAX >> 1);
            }
            if let Some(g) = &mut self.ghb {
                let _ = g.take_requests(usize::MAX >> 1);
            }
            if let Some(m) = &mut self.markov {
                let _ = m.take_requests(usize::MAX >> 1);
            }
            if let Some(st) = &mut self.stride {
                let _ = st.take_requests(usize::MAX >> 1);
            }
            return Vec::new();
        }
        let mut out = Vec::new();
        if let Some(s) = &mut self.stream {
            out.extend(s.take_requests(degree));
        }
        if let Some(g) = &mut self.ghb {
            out.extend(g.take_requests(degree.saturating_sub(out.len()).max(1)));
        }
        if let Some(m) = &mut self.markov {
            out.extend(m.take_requests(degree.saturating_sub(out.len()).max(1)));
        }
        if let Some(st) = &mut self.stride {
            out.extend(st.take_requests(degree.saturating_sub(out.len()).max(1)));
        }
        out.truncate(degree.max(1));
        out.dedup();
        out
    }

    /// Report a useful prefetch (demand hit consumed a prefetched line).
    pub fn on_useful(&mut self) {
        self.fdp.on_useful();
    }

    /// Report a useless prefetch (line evicted without being demanded).
    pub fn on_useless(&mut self) {
        self.fdp.on_useless();
    }

    /// Train the stream component on a demand hit to a prefetched line,
    /// so streams keep advancing once they successfully cover the demand
    /// stream (without this, coverage starves the miss-based training).
    pub fn train_on_prefetch_hit(&mut self, line: LineAddr) {
        if let Some(s) = &mut self.stream {
            s.train(line);
        }
        if let Some(g) = &mut self.ghb {
            g.train(line);
        }
    }

    /// Current FDP degree (for stats).
    pub fn degree(&self) -> usize {
        self.fdp.degree()
    }

    /// Whether FDP judges this prefetcher low-confidence right now
    /// (minimum degree or off) — the simulator inserts its fills at LRU
    /// so useless prefetches cannot pollute the LLC.
    pub fn low_confidence(&self) -> bool {
        self.fdp.is_off() || self.fdp.degree() <= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PrefetchConfig {
        PrefetchConfig::default()
    }

    #[test]
    fn none_kind_never_prefetches() {
        let mut e = PrefetchEngine::new(PrefetcherKind::None, &cfg());
        for l in 0..100u64 {
            e.train(LineAddr(l), 0);
        }
        assert!(e.take_requests().is_empty());
    }

    #[test]
    fn markov_stream_combines_both() {
        let mut e = PrefetchEngine::new(PrefetcherKind::MarkovStream, &cfg());
        // Stream pattern trains the stream side.
        e.train(LineAddr(10), 0);
        e.train(LineAddr(11), 0);
        let reqs = e.take_requests();
        assert!(reqs.contains(&LineAddr(12)), "stream active: {reqs:?}");
        // Correlated pair trains the Markov side.
        let mut e = PrefetchEngine::new(PrefetcherKind::MarkovStream, &cfg());
        for &l in &[500u64, 9000, 500] {
            e.train(LineAddr(l), 0);
        }
        let reqs = e.take_requests();
        assert!(reqs.contains(&LineAddr(9000)), "markov active: {reqs:?}");
    }

    #[test]
    fn degree_limits_total_candidates() {
        let mut e = PrefetchEngine::new(PrefetcherKind::Stream, &cfg());
        e.train(LineAddr(0), 0);
        e.train(LineAddr(1), 0);
        let reqs = e.take_requests();
        assert!(reqs.len() <= e.degree().max(1));
    }

    #[test]
    fn stride_engine_works_end_to_end() {
        let mut e = PrefetchEngine::new(PrefetcherKind::Stride, &cfg());
        for k in 0..4u64 {
            e.train(LineAddr(100 + 3 * k), 0x40);
        }
        let reqs = e.take_requests();
        assert!(
            reqs.contains(&LineAddr(112)),
            "stride 3 continues: {reqs:?}"
        );
    }

    #[test]
    fn ghb_engine_works_end_to_end() {
        let mut e = PrefetchEngine::new(PrefetcherKind::Ghb, &cfg());
        for l in 50..60u64 {
            e.train(LineAddr(l), 0);
        }
        assert!(!e.take_requests().is_empty());
    }

    #[test]
    fn useful_feedback_reaches_fdp() {
        let mut e = PrefetchEngine::new(PrefetcherKind::Stream, &cfg());
        let d0 = e.degree();
        // Make it issue a lot with zero usefulness: degree must not rise.
        for round in 0..200u64 {
            e.train(LineAddr(round * 1000), 0);
            e.train(LineAddr(round * 1000 + 1), 0);
            let _ = e.take_requests();
        }
        assert!(e.degree() <= d0, "useless prefetching must not ramp degree");
    }
}
