//! PC-indexed stride prefetcher (Baer & Chen, Supercomputing 1991 — the
//! classic reference-prediction-table design the paper cites among the
//! simple hardware prefetchers \[6, 20, 26\]).
//!
//! Each load PC gets a reference-prediction-table entry tracking its last
//! address, last stride, and a 2-bit confidence state. Two consecutive
//! equal strides make the entry steady; steady entries prefetch
//! `degree` strides ahead. Like the stream prefetcher it covers regular
//! (independent) misses only — dependent chases defeat it, which is the
//! gap the EMC fills.

use emc_types::LineAddr;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Initial,
    Transient,
    Steady,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u64,
    last_line: u64,
    stride: i64,
    state: State,
    lru: u64,
}

/// A PC-indexed stride prefetcher (reference prediction table).
///
/// # Example
///
/// ```
/// use emc_prefetch::StridePrefetcher;
/// use emc_types::LineAddr;
///
/// let mut pf = StridePrefetcher::new(64);
/// pf.train(0x40, LineAddr(10));
/// pf.train(0x40, LineAddr(14)); // stride 4 observed
/// pf.train(0x40, LineAddr(18)); // confirmed: steady
/// let reqs = pf.take_requests(2);
/// assert_eq!(reqs, vec![LineAddr(22), LineAddr(26)]);
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<Option<Entry>>,
    tick: u64,
    pending: Vec<LineAddr>,
}

impl StridePrefetcher {
    /// Create a table with `entries` slots (rounded up to a power of
    /// two), direct-mapped by PC with tag checks.
    pub fn new(entries: usize) -> Self {
        StridePrefetcher {
            table: vec![None; entries.next_power_of_two().max(16)],
            tick: 0,
            pending: Vec::new(),
        }
    }

    fn idx(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.table.len() - 1)
    }

    /// Train on a demand miss from the load at `pc`.
    pub fn train(&mut self, pc: u64, line: LineAddr) {
        self.tick += 1;
        let i = self.idx(pc);
        let l = line.0 as i64;
        match &mut self.table[i] {
            Some(e) if e.tag == pc => {
                let observed = l - e.last_line as i64;
                e.lru = self.tick;
                e.last_line = line.0;
                if observed == 0 {
                    return;
                }
                match e.state {
                    State::Initial => {
                        e.stride = observed;
                        e.state = State::Transient;
                    }
                    State::Transient | State::Steady => {
                        if observed == e.stride {
                            e.state = State::Steady;
                        } else {
                            e.stride = observed;
                            e.state = State::Transient;
                        }
                    }
                }
                if e.state == State::Steady {
                    // Queue up to 4 strides ahead; the engine's degree
                    // limit does the final throttling.
                    let mut addr = l;
                    for _ in 0..4 {
                        addr += e.stride;
                        if addr < 0 {
                            break;
                        }
                        self.pending.push(LineAddr(addr as u64));
                    }
                }
            }
            slot => {
                *slot = Some(Entry {
                    tag: pc,
                    last_line: line.0,
                    stride: 0,
                    state: State::Initial,
                    lru: self.tick,
                });
            }
        }
    }

    /// Drain up to `degree` queued prefetch candidates.
    pub fn take_requests(&mut self, degree: usize) -> Vec<LineAddr> {
        if self.pending.len() > degree {
            let rest = self.pending.split_off(degree);
            return std::mem::replace(&mut self.pending, rest);
        }
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_requires_two_confirmations() {
        let mut pf = StridePrefetcher::new(16);
        pf.train(0x100, LineAddr(10));
        assert!(pf.take_requests(8).is_empty(), "initial");
        pf.train(0x100, LineAddr(13));
        assert!(pf.take_requests(8).is_empty(), "transient");
        pf.train(0x100, LineAddr(16));
        let reqs = pf.take_requests(3);
        assert_eq!(reqs, vec![LineAddr(19), LineAddr(22), LineAddr(25)]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut pf = StridePrefetcher::new(16);
        for l in [10u64, 12, 14] {
            pf.train(0x40, LineAddr(l));
        }
        pf.take_requests(64);
        // New stride: must not prefetch until reconfirmed.
        pf.train(0x40, LineAddr(21));
        assert!(pf.take_requests(8).is_empty());
        pf.train(0x40, LineAddr(28));
        assert!(!pf.take_requests(8).is_empty());
    }

    #[test]
    fn pcs_are_tracked_independently() {
        let mut pf = StridePrefetcher::new(64);
        for k in 0..3 {
            pf.train(0x40, LineAddr(10 + 2 * k));
            pf.train(0x84, LineAddr(1000 + 7 * k));
        }
        let reqs = pf.take_requests(64);
        assert!(reqs.contains(&LineAddr(16)), "pc 0x40 stride 2: {reqs:?}");
        assert!(reqs.contains(&LineAddr(1021)), "pc 0x84 stride 7: {reqs:?}");
    }

    #[test]
    fn conflicting_pcs_evict_by_tag() {
        let mut pf = StridePrefetcher::new(16);
        // Same index (table is 16 entries; pc >> 2 & 15): 0x40 and 0x440.
        pf.train(0x40, LineAddr(10));
        pf.train(0x440, LineAddr(500));
        pf.train(0x40, LineAddr(12)); // restarts at Initial after eviction
        assert!(pf.take_requests(8).is_empty());
    }

    #[test]
    fn random_addresses_never_go_steady() {
        let mut pf = StridePrefetcher::new(16);
        for l in [5u64, 900, 13, 70000, 42] {
            pf.train(0x40, LineAddr(l));
        }
        assert!(pf.take_requests(16).is_empty());
    }

    #[test]
    fn zero_stride_ignored() {
        let mut pf = StridePrefetcher::new(16);
        for _ in 0..5 {
            pf.train(0x40, LineAddr(7));
        }
        assert!(pf.take_requests(8).is_empty());
    }
}
