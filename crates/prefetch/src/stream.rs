//! Stream prefetcher in the style of the IBM POWER4 (paper Table 1:
//! "Stream: 32 streams, distance 32", per \[57\]/\[61\]).
//!
//! Each stream tracker watches a region of the miss stream. Two misses to
//! adjacent lines establish a direction; once confirmed, the tracker runs
//! ahead of the demand stream, issuing prefetches up to `distance` lines
//! ahead, `degree` lines at a time (degree is controlled externally by
//! FDP).

use emc_types::LineAddr;

#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Last demand miss absorbed by this stream.
    last: u64,
    /// Learned stride in lines (signed) once confirmed.
    stride: i64,
    /// Lines prefetched up to (exclusive frontier), signed arithmetic.
    frontier: i64,
    confirmed: bool,
    lru: u64,
}

/// A per-core stream prefetcher.
///
/// # Example
///
/// ```
/// use emc_prefetch::StreamPrefetcher;
/// use emc_types::LineAddr;
///
/// let mut pf = StreamPrefetcher::new(32, 32);
/// pf.train(LineAddr(100));
/// pf.train(LineAddr(101)); // direction confirmed
/// let reqs = pf.take_requests(4);
/// assert_eq!(reqs[0], LineAddr(102));
/// ```
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    streams: Vec<Stream>,
    max_streams: usize,
    distance: u64,
    tick: u64,
    pending: Vec<LineAddr>,
}

impl StreamPrefetcher {
    /// Create a prefetcher tracking up to `max_streams` streams, running
    /// at most `distance` lines ahead of demand.
    pub fn new(max_streams: usize, distance: u64) -> Self {
        StreamPrefetcher {
            streams: Vec::new(),
            max_streams,
            distance,
            tick: 0,
            pending: Vec::new(),
        }
    }

    /// Train on a demand miss.
    pub fn train(&mut self, line: LineAddr) {
        self.tick += 1;
        let l = line.0 as i64;
        // Find a stream this miss belongs to: within 2 lines of `last` in
        // training, or within the run-ahead window once confirmed.
        let mut found = None;
        for (i, s) in self.streams.iter().enumerate() {
            let delta = l - s.last as i64;
            let matches = if s.confirmed {
                delta * s.stride > 0 && delta.abs() <= self.distance as i64
            } else {
                delta != 0 && delta.abs() <= 2
            };
            if matches {
                found = Some(i);
                break;
            }
        }
        match found {
            Some(i) => {
                let s = &mut self.streams[i];
                let delta = l - s.last as i64;
                s.lru = self.tick;
                if !s.confirmed {
                    s.stride = if delta > 0 { 1 } else { -1 };
                    s.confirmed = true;
                    s.frontier = l + s.stride;
                }
                s.last = line.0;
            }
            None => {
                let entry = Stream {
                    last: line.0,
                    stride: 0,
                    frontier: l,
                    confirmed: false,
                    lru: self.tick,
                };
                if self.streams.len() < self.max_streams {
                    self.streams.push(entry);
                } else if let Some(victim) = self.streams.iter_mut().min_by_key(|s| s.lru) {
                    *victim = entry;
                }
            }
        }
    }

    /// Drain up to `degree` prefetch candidates across confirmed streams,
    /// advancing each stream's frontier but never beyond `distance` lines
    /// past the last demand miss.
    pub fn take_requests(&mut self, degree: usize) -> Vec<LineAddr> {
        let mut out = std::mem::take(&mut self.pending);
        for s in &mut self.streams {
            if !s.confirmed {
                continue;
            }
            while out.len() < degree {
                let ahead = (s.frontier - s.last as i64) * s.stride;
                if ahead > self.distance as i64 || s.frontier < 0 {
                    break;
                }
                out.push(LineAddr(s.frontier as u64));
                s.frontier += s.stride;
            }
            if out.len() >= degree {
                break;
            }
        }
        out.truncate(degree);
        out
    }

    /// Number of currently tracked streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_stream_detected() {
        let mut pf = StreamPrefetcher::new(4, 32);
        pf.train(LineAddr(10));
        assert!(
            pf.take_requests(8).is_empty(),
            "unconfirmed stream is silent"
        );
        pf.train(LineAddr(11));
        let reqs = pf.take_requests(4);
        assert_eq!(
            reqs,
            vec![LineAddr(12), LineAddr(13), LineAddr(14), LineAddr(15)]
        );
    }

    #[test]
    fn descending_stream_detected() {
        let mut pf = StreamPrefetcher::new(4, 32);
        pf.train(LineAddr(100));
        pf.train(LineAddr(99));
        let reqs = pf.take_requests(3);
        assert_eq!(reqs, vec![LineAddr(98), LineAddr(97), LineAddr(96)]);
    }

    #[test]
    fn distance_caps_runahead() {
        let mut pf = StreamPrefetcher::new(4, 4);
        pf.train(LineAddr(10));
        pf.train(LineAddr(11));
        let reqs = pf.take_requests(100);
        // Frontier can run at most 4 lines past the last miss (line 11).
        assert_eq!(reqs.len(), 4);
        assert_eq!(*reqs.last().unwrap(), LineAddr(15));
        assert!(pf.take_requests(100).is_empty(), "window exhausted");
        // A new demand miss re-opens the window.
        pf.train(LineAddr(12));
        assert!(!pf.take_requests(100).is_empty());
    }

    #[test]
    fn random_misses_do_not_confirm() {
        let mut pf = StreamPrefetcher::new(8, 32);
        for l in [5u64, 1000, 77, 123456, 9999] {
            pf.train(LineAddr(l));
        }
        assert!(pf.take_requests(16).is_empty());
    }

    #[test]
    fn lru_replacement_bounds_streams() {
        let mut pf = StreamPrefetcher::new(2, 32);
        for l in [10u64, 1000, 2000, 3000] {
            pf.train(LineAddr(l));
        }
        assert_eq!(pf.stream_count(), 2);
    }

    #[test]
    fn degree_limits_batch() {
        let mut pf = StreamPrefetcher::new(4, 32);
        pf.train(LineAddr(0));
        pf.train(LineAddr(1));
        assert_eq!(pf.take_requests(2).len(), 2);
        assert_eq!(pf.take_requests(2).len(), 2, "continues from frontier");
    }
}
