//! Markov prefetcher (Joseph & Grunwald, ISCA 1997; paper Table 1:
//! "Markov: 1MB correlation table, 4 addresses per entry").
//!
//! The correlation table maps a miss address to the addresses that have
//! historically followed it in the miss stream. On a miss, the successors
//! of the current address are issued as prefetch candidates (most recent
//! first). This is the classic correlation prefetcher the paper shows to
//! be the most bandwidth-hungry of the three.

use emc_types::LineAddr;
use std::collections::HashMap;

#[derive(Debug, Clone, Default)]
struct EntrySucc {
    /// Successor lines, most recently observed first.
    succ: Vec<u64>,
}

/// A per-core Markov correlation prefetcher.
///
/// # Example
///
/// ```
/// use emc_prefetch::MarkovPrefetcher;
/// use emc_types::LineAddr;
///
/// let mut pf = MarkovPrefetcher::new(1024, 4);
/// pf.train(LineAddr(1));
/// pf.train(LineAddr(50)); // records 1 -> 50
/// pf.train(LineAddr(1));
/// let reqs = pf.take_requests(4);
/// assert_eq!(reqs, vec![LineAddr(50)]);
/// ```
#[derive(Debug, Clone)]
pub struct MarkovPrefetcher {
    table: HashMap<u64, EntrySucc>,
    capacity: usize,
    fanout: usize,
    last_miss: Option<u64>,
    pending: Vec<LineAddr>,
    /// Insertion order for crude FIFO eviction when the table fills.
    order: std::collections::VecDeque<u64>,
}

impl MarkovPrefetcher {
    /// Create a table with `capacity` entries of `fanout` successors each.
    pub fn new(capacity: usize, fanout: usize) -> Self {
        MarkovPrefetcher {
            table: HashMap::new(),
            capacity: capacity.max(4),
            fanout: fanout.max(1),
            last_miss: None,
            pending: Vec::new(),
            order: std::collections::VecDeque::new(),
        }
    }

    /// Train on a demand miss: record the transition from the previous
    /// miss and queue this miss's known successors as candidates.
    pub fn train(&mut self, line: LineAddr) {
        if let Some(prev) = self.last_miss {
            if !self.table.contains_key(&prev) {
                if self.table.len() >= self.capacity {
                    if let Some(victim) = self.order.pop_front() {
                        self.table.remove(&victim);
                    }
                }
                self.order.push_back(prev);
            }
            let e = self.table.entry(prev).or_default();
            // MRU insertion with dedup, truncated to fanout.
            e.succ.retain(|&s| s != line.0);
            e.succ.insert(0, line.0);
            e.succ.truncate(self.fanout);
        }
        self.last_miss = Some(line.0);
        if let Some(e) = self.table.get(&line.0) {
            for &s in &e.succ {
                self.pending.push(LineAddr(s));
            }
        }
    }

    /// Drain up to `degree` queued prefetch candidates.
    pub fn take_requests(&mut self, degree: usize) -> Vec<LineAddr> {
        if self.pending.len() > degree {
            let rest = self.pending.split_off(degree);
            return std::mem::replace(&mut self.pending, rest);
        }
        std::mem::take(&mut self.pending)
    }

    /// Number of correlation-table entries in use.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_chain_learned_after_one_pass() {
        let mut pf = MarkovPrefetcher::new(64, 4);
        let chain = [100u64, 250, 37, 900];
        for &l in &chain {
            pf.train(LineAddr(l));
        }
        pf.take_requests(64);
        // Second traversal: each miss predicts the next node.
        pf.train(LineAddr(100));
        assert_eq!(pf.take_requests(4), vec![LineAddr(250)]);
        pf.train(LineAddr(250));
        assert_eq!(pf.take_requests(4), vec![LineAddr(37)]);
    }

    #[test]
    fn mru_successor_first() {
        let mut pf = MarkovPrefetcher::new(64, 4);
        // 1 -> 10 then 1 -> 20: 20 is now MRU.
        for &l in &[1u64, 10, 1, 20] {
            pf.train(LineAddr(l));
        }
        pf.take_requests(100); // drain stale candidates
        pf.train(LineAddr(1));
        let reqs = pf.take_requests(4);
        assert_eq!(reqs[0], LineAddr(20));
        assert!(reqs.contains(&LineAddr(10)));
    }

    #[test]
    fn fanout_bounds_successors() {
        let mut pf = MarkovPrefetcher::new(64, 2);
        for succ in [10u64, 20, 30, 40] {
            pf.train(LineAddr(1));
            pf.train(LineAddr(succ));
        }
        pf.take_requests(100);
        pf.train(LineAddr(1));
        let reqs = pf.take_requests(100);
        assert_eq!(reqs.len(), 2, "fanout 2 caps candidates");
        assert_eq!(reqs[0], LineAddr(40), "most recent first");
    }

    #[test]
    fn capacity_evicts_fifo() {
        let mut pf = MarkovPrefetcher::new(4, 4);
        for l in 0..40u64 {
            pf.train(LineAddr(l * 100));
        }
        assert!(pf.table_len() <= 4);
    }

    #[test]
    fn cold_table_is_silent() {
        let mut pf = MarkovPrefetcher::new(16, 4);
        pf.train(LineAddr(5));
        assert!(pf.take_requests(8).is_empty());
    }
}
