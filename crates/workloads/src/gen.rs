//! Synthetic program generation from benchmark profiles.
//!
//! A generated workload is a real program over a real memory image: the
//! pointer-chase regions are initialized with Sattolo-cycle permutations,
//! so every "dependent cache miss" in the simulation is a genuine
//! data-dependent load whose address came out of a previous load — exactly
//! the structure the EMC accelerates. Streams read (and for lbm-like
//! profiles write) long sequential regions; random segments compute
//! xorshift addresses in registers, producing prefetch-hostile but
//! *independent* misses (the kind the EMC does **not** target).

use crate::profiles::{Benchmark, Profile};
use emc_types::program::{Program, StaticUop};
use emc_types::rng::substream;
use emc_types::{seeded_rng, Addr, BranchCond, MemoryImage, Reg, UopKind};
use rand::seq::SliceRandom;
use rand::Rng;

/// Base of the spill/fill scratch region (L1-resident).
pub const SPILL_BASE: u64 = 0x0010_0000;
/// Base of the pointer-chase node region.
pub const CHASE_BASE: u64 = 0x1000_0000;
/// Base of the payload region (targets of dependent loads).
pub const PAYLOAD_BASE: u64 = 0x4000_0000;
/// Base of the streaming-read region.
pub const STREAM_BASE: u64 = 0x8000_0000;
/// Offset from the read stream to the write stream (lbm-style kernels).
pub const STREAM_WB_OFFSET: u64 = 0x2000_0000;
/// Base of the random-access region.
pub const RANDOM_BASE: u64 = 0x1_0000_0000;

// Register plan (see module docs of `emc_types::uop` for the 16-reg ISA):
// r0/r1 chase ptrs | r2/r3 address scratch | r4-r7 accumulators
// r8 spill base | r9 rng state | r10 random mask | r11 random base
// r12 branch scratch | r13 stream ptr | r14 fp accumulator | r15 loop ctr
const R_CHASE: [Reg; 2] = [Reg(0), Reg(1)];
const R_T0: Reg = Reg(2);
const R_T1: Reg = Reg(3);
const R_ACC: [Reg; 4] = [Reg(4), Reg(5), Reg(6), Reg(7)];
const R_SPILL: Reg = Reg(8);
const R_RNG: Reg = Reg(9);
const R_MASK: Reg = Reg(10);
const R_RBASE: Reg = Reg(11);
const R_BR: Reg = Reg(12);
const R_STREAM: Reg = Reg(13);
const R_FP: Reg = Reg(14);
const R_LOOP: Reg = Reg(15);

/// A generated workload: the program plus its initialized memory image.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The benchmark this models.
    pub bench: Benchmark,
    /// The static program (one big loop).
    pub program: Program,
    /// The initialized functional memory.
    pub memory: MemoryImage,
    /// Number of uops in one loop iteration (diagnostics/calibration).
    pub body_uops: usize,
}

/// Build the synthetic workload for `bench`.
///
/// `seed` decorrelates multiple copies of the same benchmark (homogeneous
/// mixes); `iterations` bounds the loop so functional reference runs
/// terminate (timing runs usually stop on a retired-uop budget first).
///
/// # Example
///
/// ```
/// use emc_workloads::{build, Benchmark};
///
/// let w = build(Benchmark::Mcf, 1, 10_000);
/// assert!(w.program.validate().is_ok());
/// assert!(w.memory.resident_pages() > 0, "chase pointers initialized");
/// ```
pub fn build(bench: Benchmark, seed: u64, iterations: u64) -> Workload {
    let p = bench.profile();
    let mut rng = seeded_rng(substream(seed, bench as u64 + 1));
    let mut memory = MemoryImage::new();
    init_chase_regions(&p, &mut memory, &mut rng);

    let mut e = Emitter {
        uops: Vec::new(),
        spill_slot: 0,
        acc: 0,
        chase_idx: 0,
    };
    // --- preamble: architectural constants ---
    e.push(StaticUop::mov_imm(R_LOOP, iterations.max(1)));
    // Independent chase walkers start at opposite phases of the Sattolo
    // cycle (real pointer codes sustain memory-level parallelism through
    // several concurrent traversals).
    e.push(StaticUop::mov_imm(R_CHASE[0], CHASE_BASE));
    e.push(StaticUop::mov_imm(
        R_CHASE[1],
        CHASE_BASE + (p.chase_lines / 2) * 64,
    ));
    e.push(StaticUop::mov_imm(R_SPILL, SPILL_BASE));
    e.push(StaticUop::mov_imm(R_RNG, rng.gen::<u64>() | 1));
    e.push(StaticUop::mov_imm(R_MASK, (p.random_span - 1) & !7));
    e.push(StaticUop::mov_imm(R_RBASE, RANDOM_BASE));
    e.push(StaticUop::mov_imm(R_STREAM, STREAM_BASE));
    let loop_start = e.uops.len() as u32;

    // --- loop body: shuffled segments with compute spread between ---
    #[derive(Clone, Copy)]
    enum Seg {
        Chase,
        Stream,
        Random,
        Spill,
        Branch,
    }
    let mut segs = Vec::new();
    segs.extend(std::iter::repeat_n(Seg::Chase, p.chase_segments as usize));
    segs.extend(std::iter::repeat_n(Seg::Stream, p.stream_segments as usize));
    segs.extend(std::iter::repeat_n(Seg::Random, p.random_segments as usize));
    segs.extend(std::iter::repeat_n(Seg::Spill, p.spill_segments as usize));
    segs.extend(std::iter::repeat_n(Seg::Branch, p.noisy_branches as usize));
    segs.shuffle(&mut rng);

    let gaps = segs.len() + 1;
    let compute_per_gap = p.compute_ops as usize / gaps;
    let fp_per_gap = p.fp_ops as usize / gaps;
    e.emit_compute(compute_per_gap + p.compute_ops as usize % gaps, fp_per_gap);
    for seg in segs {
        match seg {
            Seg::Chase => e.emit_chase(&p),
            Seg::Stream => e.emit_stream(&p),
            Seg::Random => e.emit_random(),
            Seg::Spill => e.emit_spill(),
            Seg::Branch => e.emit_branch(),
        }
        e.emit_compute(compute_per_gap, fp_per_gap);
    }

    // --- loop control ---
    e.push(StaticUop::alu(UopKind::IntSub, R_LOOP, R_LOOP, None, 1));
    e.push(StaticUop::branch(
        BranchCond::NotZero,
        Some(R_LOOP),
        loop_start,
    ));

    let body_uops = e.uops.len() - loop_start as usize;
    let program = Program::new(e.uops, 0x1_0000 * (bench as u64 + 1));
    debug_assert!(program.validate().is_ok());
    Workload {
        bench,
        program,
        memory,
        body_uops,
    }
}

/// Build with the default iteration cap ([`crate::DEFAULT_ITERATIONS`]).
pub fn build_default(bench: Benchmark, seed: u64) -> Workload {
    build(bench, seed, crate::DEFAULT_ITERATIONS)
}

fn init_chase_regions(p: &Profile, memory: &mut MemoryImage, rng: &mut impl Rng) {
    if p.chase_lines == 0 || p.chase_segments == 0 {
        return;
    }
    // Sattolo's algorithm: a single-cycle permutation of the node region,
    // so the chase visits every node with no short cycles for a prefetcher
    // to latch onto.
    let n = p.chase_lines as usize;
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i);
        perm.swap(i, j);
    }
    // perm is a random permutation; convert to successor mapping by
    // chaining the permutation order into a cycle.
    //
    // Payload pointers cluster by *walk order*: consecutive chase hops
    // touch nearby payload lines (allocation-order locality, as in mcf's
    // arc arrays). This is what makes dependent misses issued together
    // by the EMC coalesce into DRAM row batches (§6.3: 85% of the
    // row-conflict reduction comes from batched same-row dependents).
    // A small fraction of payloads point into a hot region, giving the
    // EMC data cache and the LLC some temporal reuse (Figure 17).
    let payload_span = p.payload_lines.max(64);
    for w in 0..n {
        let cur = perm[w] as u64;
        let next = perm[(w + 1) % n] as u64;
        let node = CHASE_BASE + cur * 64;
        memory.write_u64(Addr(node), CHASE_BASE + next * 64);
        let payload_line = if rng.gen_range(0..100) < 15 {
            // Hot subset: 64 lines (4 KB).
            rng.gen_range(0..64u64)
        } else {
            (w as u64 * 8 + rng.gen_range(0..16)) % payload_span
        };
        let payload = PAYLOAD_BASE + payload_line * 64;
        memory.write_u64(Addr(node + 8), payload);
    }
    if p.dep_depth > 1 {
        // Payload lines chain onward for deeper indirection.
        for i in 0..p.payload_lines {
            let addr = PAYLOAD_BASE + i * 64 + 0x18;
            let next = PAYLOAD_BASE + rng.gen_range(0..p.payload_lines) * 64;
            memory.write_u64(Addr(addr), next);
        }
    }
}

struct Emitter {
    uops: Vec<StaticUop>,
    spill_slot: u64,
    acc: usize,
    chase_idx: usize,
}

impl Emitter {
    fn push(&mut self, u: StaticUop) {
        self.uops.push(u);
    }

    fn next_acc(&mut self) -> Reg {
        self.acc = (self.acc + 1) % R_ACC.len();
        R_ACC[self.acc]
    }

    /// mcf-style pointer chase: the node load is the *source miss*, the
    /// payload load (behind `interleave_ops` ALU ops) is the *dependent
    /// miss* (Figure 5 of the paper). Successive chase segments use
    /// independent walker registers, so a profile with two segments
    /// sustains two concurrent dependence chains.
    fn emit_chase(&mut self, p: &Profile) {
        if p.chase_lines == 0 {
            return;
        }
        let ptr = R_CHASE[self.chase_idx % R_CHASE.len()];
        self.chase_idx += 1;
        // Source miss: payload pointer and next pointer share the node line.
        self.push(StaticUop::load(R_T0, ptr, 8));
        // Address arithmetic between source and dependent load: a serial
        // chain of `interleave_ops` ALU ops on the address path (the
        // "small number of relatively simple uops" of Figure 5/6 —
        // pointer math, tag masking, bounds checks in real code).
        self.push(StaticUop::alu(UopKind::IntAdd, R_T1, R_T0, None, 0x18));
        for k in 1..p.interleave_ops {
            let kind = match k % 3 {
                0 => UopKind::IntAdd, // + 0: identity, stays on the path
                1 => UopKind::Xor,    // ^ 0
                _ => UopKind::Or,     // | 0
            };
            self.push(StaticUop::alu(kind, R_T1, R_T1, None, 0));
        }
        // Dependent miss(es).
        let mut addr_reg = R_T1;
        for d in 0..p.dep_depth.max(1) {
            let dst = self.next_acc();
            self.push(StaticUop::load(dst, addr_reg, 0));
            if d + 1 < p.dep_depth {
                // Deeper indirection: follow the payload chain at +0x18.
                self.push(StaticUop::alu(UopKind::IntAdd, R_T1, dst, None, 0x18));
                addr_reg = R_T1;
            }
        }
        // Advance the walker (the next source miss).
        self.push(StaticUop::load(ptr, ptr, 0));
    }

    /// Sequential stream: read (and for lbm-style kernels, write) and
    /// advance. Trivially prefetchable; generates zero dependent misses.
    fn emit_stream(&mut self, p: &Profile) {
        let dst = self.next_acc();
        self.push(StaticUop::load(dst, R_STREAM, 0));
        if p.stream_stores {
            self.push(StaticUop::store(R_STREAM, dst, STREAM_WB_OFFSET));
        }
        self.push(StaticUop::alu(
            UopKind::IntAdd,
            R_STREAM,
            R_STREAM,
            None,
            p.stream_stride,
        ));
        let acc = self.next_acc();
        self.push(StaticUop::alu(UopKind::IntAdd, acc, acc, Some(dst), 0));
    }

    /// Independent random miss: an xorshift address computed in registers.
    /// Hard to prefetch, but *not* dependent on any prior miss — the class
    /// of miss that runahead-style techniques (not the EMC) target.
    fn emit_random(&mut self) {
        self.push(StaticUop::alu(UopKind::Shl, R_T0, R_RNG, None, 13));
        self.push(StaticUop::alu(UopKind::Xor, R_RNG, R_RNG, Some(R_T0), 0));
        self.push(StaticUop::alu(UopKind::Shr, R_T0, R_RNG, None, 7));
        self.push(StaticUop::alu(UopKind::Xor, R_RNG, R_RNG, Some(R_T0), 0));
        self.push(StaticUop::alu(UopKind::And, R_T0, R_RNG, Some(R_MASK), 0));
        self.push(StaticUop::alu(
            UopKind::IntAdd,
            R_T0,
            R_T0,
            Some(R_RBASE),
            0,
        ));
        let dst = self.next_acc();
        self.push(StaticUop::load(dst, R_T0, 0));
    }

    /// Register spill/fill pair (x86 idiom the EMC supports: a store is
    /// chain-eligible only when a matching fill exists, §4.3).
    fn emit_spill(&mut self) {
        let off = (self.spill_slot % 8) * 8;
        self.spill_slot += 1;
        let v = R_ACC[self.acc];
        self.push(StaticUop::store(R_SPILL, v, off));
        let dst = self.next_acc();
        self.push(StaticUop::alu(UopKind::IntAdd, dst, v, None, 1));
        self.push(StaticUop::load(v, R_SPILL, off));
    }

    /// Data-dependent branch with ~50% taken rate (hybrid predictors fare
    /// poorly on these, creating realistic pipeline flushes).
    fn emit_branch(&mut self) {
        self.push(StaticUop::alu(UopKind::Shl, R_T0, R_RNG, None, 13));
        self.push(StaticUop::alu(UopKind::Xor, R_RNG, R_RNG, Some(R_T0), 0));
        self.push(StaticUop::alu(UopKind::Shr, R_T0, R_RNG, None, 9));
        self.push(StaticUop::alu(UopKind::Xor, R_RNG, R_RNG, Some(R_T0), 0));
        self.push(StaticUop::alu(UopKind::And, R_BR, R_RNG, None, 1));
        let target = self.uops.len() as u32 + 2;
        self.push(StaticUop::branch(BranchCond::Zero, Some(R_BR), target));
        let dst = self.next_acc();
        self.push(StaticUop::alu(UopKind::IntAdd, dst, dst, None, 3));
    }

    /// Integer (and optional FP) filler with ILP across accumulators.
    fn emit_compute(&mut self, int_ops: usize, fp_ops: usize) {
        for k in 0..int_ops {
            let dst = self.next_acc();
            let kind = match k % 4 {
                0 => UopKind::IntAdd,
                1 => UopKind::Xor,
                2 => UopKind::Shl,
                _ => UopKind::IntSub,
            };
            let imm = match kind {
                UopKind::Shl => 1,
                _ => 0x9e37 + k as u64,
            };
            self.push(StaticUop::alu(kind, dst, dst, None, imm));
        }
        for k in 0..fp_ops {
            let kind = if k % 2 == 0 {
                UopKind::FpAdd
            } else {
                UopKind::FpMul
            };
            self.push(StaticUop::alu(kind, R_FP, R_FP, Some(R_ACC[self.acc]), 0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emc_types::program::run_reference;

    #[test]
    fn all_benchmarks_generate_valid_programs() {
        for b in Benchmark::all() {
            let w = build(b, 7, 100);
            w.program.validate().unwrap_or_else(|e| panic!("{b}: {e}"));
            assert!(w.body_uops > 0, "{b} empty body");
            assert!(w.program.len() < 1000, "{b} program too large");
        }
    }

    #[test]
    fn programs_terminate_at_iteration_count() {
        let w = build(Benchmark::Libquantum, 3, 50);
        let mut mem = w.memory.clone();
        let st = run_reference(&w.program, &mut mem, 10_000_000);
        assert!(!st.capped, "program must terminate");
        // r15 counted down to zero.
        assert_eq!(st.regs[R_LOOP.idx()], 0);
    }

    #[test]
    fn chase_follows_initialized_pointers() {
        let w = build(Benchmark::Mcf, 11, 200);
        let mut mem = w.memory.clone();
        let st = run_reference(&w.program, &mut mem, 10_000_000);
        assert!(!st.capped);
        // After the run the chase register holds a valid node address.
        let r0 = st.regs[R_CHASE[0].idx()];
        assert!(r0 >= CHASE_BASE, "chase pointer escaped: {r0:#x}");
        assert!(r0 < CHASE_BASE + Benchmark::Mcf.profile().chase_lines * 64);
        assert_eq!(r0 % 64, 0, "nodes are line-aligned");
    }

    #[test]
    fn chase_cycle_has_full_period() {
        // The Sattolo cycle must visit every node: walk it functionally.
        let p = Profile {
            chase_lines: 64,
            payload_lines: 8,
            ..Benchmark::Mcf.profile()
        };
        let mut mem = MemoryImage::new();
        let mut rng = seeded_rng(5);
        init_chase_regions(&p, &mut mem, &mut rng);
        let mut seen = std::collections::HashSet::new();
        let mut node = CHASE_BASE;
        for _ in 0..64 {
            assert!(seen.insert(node), "cycle shorter than region");
            node = mem.read_u64(Addr(node));
        }
        assert_eq!(node, CHASE_BASE, "single full cycle");
    }

    #[test]
    fn payload_pointers_stay_in_region() {
        let w = build(Benchmark::Omnetpp, 13, 1);
        let p = Benchmark::Omnetpp.profile();
        let mut node = CHASE_BASE;
        for _ in 0..100 {
            let payload = w.memory.read_u64(Addr(node + 8));
            assert!(payload >= PAYLOAD_BASE);
            assert!(payload < PAYLOAD_BASE + p.payload_lines * 64);
            node = w.memory.read_u64(Addr(node));
        }
    }

    #[test]
    fn different_seeds_differ_but_same_seed_reproduces() {
        let a = build(Benchmark::Mcf, 1, 10);
        let b = build(Benchmark::Mcf, 1, 10);
        let c = build(Benchmark::Mcf, 2, 10);
        assert_eq!(a.program.uops, b.program.uops);
        assert_ne!(
            a.memory.read_u64(Addr(CHASE_BASE)),
            c.memory.read_u64(Addr(CHASE_BASE)),
            "different seeds give different permutations"
        );
    }

    #[test]
    fn streamers_touch_no_chase_memory() {
        let w = build(Benchmark::Libquantum, 1, 10);
        assert_eq!(w.memory.resident_pages(), 0, "pure streaming needs no init");
    }

    #[test]
    fn spill_fill_round_trips() {
        let w = build(Benchmark::Gcc, 1, 20);
        let mut mem = w.memory.clone();
        let st = run_reference(&w.program, &mut mem, 1_000_000);
        assert!(!st.capped);
        assert!(st.stores > 0, "gcc profile spills");
        assert!(st.loads > st.stores);
    }

    #[test]
    fn fp_benchmarks_emit_fp_uops() {
        let w = build(Benchmark::Lbm, 1, 1);
        let has_fp = w
            .program
            .uops
            .iter()
            .any(|u| matches!(u.kind, UopKind::FpAdd | UopKind::FpMul));
        assert!(has_fp);
    }

    #[test]
    fn noisy_branch_rate_is_balanced() {
        // Execute mcf's noisy branches and check the taken rate is not
        // degenerate (the xorshift low bit must actually toggle).
        let w = build(Benchmark::Mcf, 9, 500);
        let mut mem = w.memory.clone();
        let st = run_reference(&w.program, &mut mem, 10_000_000);
        assert!(!st.capped);
        // r4..r7 accumulate +3 on not-taken paths; if branches were
        // constant the accumulators would be exactly 0 or maximal. Just
        // sanity-check execution ran a meaningful number of uops.
        assert!(st.dyn_uops > 10_000);
    }
}
