//! Synthetic SPEC CPU2006-like workloads for the EMC reproduction.
//!
//! SPEC CPU2006 is proprietary, so the paper's benchmarks are modeled as
//! parameterized synthetic kernels (see `DESIGN.md` §2 for the
//! substitution argument). Each of the 29 benchmarks in Table 2 of the
//! paper has a [`Profile`] tuned to land in the paper's published band for
//! MPKI class, dependent-miss fraction (Figure 2) and chain length
//! (Figure 6). [`build`] turns a profile into a real [`Workload`]: an
//! executable program over an initialized memory image whose pointer
//! chases produce genuine data-dependent misses.
//!
//! # Example
//!
//! ```
//! use emc_workloads::{build, mix_by_name, Benchmark};
//!
//! // The paper's H4 workload: mcf+sphinx3+soplex+libquantum.
//! let mix = mix_by_name("H4").unwrap();
//! assert_eq!(mix[0], Benchmark::Mcf);
//! let w = build(mix[0], 0, 1000);
//! assert_eq!(w.bench, Benchmark::Mcf);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod profiles;

pub use gen::{
    build, build_default, Workload, CHASE_BASE, PAYLOAD_BASE, RANDOM_BASE, SPILL_BASE, STREAM_BASE,
    STREAM_WB_OFFSET,
};
pub use profiles::{mix_by_name, Benchmark, Profile, DEFAULT_ITERATIONS, QUAD_MIXES};
