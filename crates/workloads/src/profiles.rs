//! Benchmark profiles: the 29 SPEC CPU2006 benchmarks of Table 2, modeled
//! as parameterized synthetic kernels.
//!
//! Each profile is tuned so that the synthetic benchmark lands in the
//! paper's published band for that application: its MPKI class (Table 2),
//! its dependent-cache-miss fraction (Figure 2: mcf/omnetpp high,
//! libquantum/lbm ≈ 0), its short source→dependent chain lengths
//! (Figure 6), and its qualitative access pattern (pointer-chasing vs
//! streaming vs mixed; integer vs floating-point).

use serde::{Deserialize, Serialize};

/// The SPEC CPU2006 benchmarks (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Benchmark {
    // High memory intensity (MPKI >= 10), Table 2.
    Omnetpp,
    Milc,
    Soplex,
    Sphinx3,
    Bwaves,
    Libquantum,
    Lbm,
    Mcf,
    // Low memory intensity (MPKI < 10), Table 2.
    Calculix,
    Povray,
    Namd,
    Gamess,
    Perlbench,
    Tonto,
    Gromacs,
    Gobmk,
    DealII,
    Sjeng,
    Gcc,
    Hmmer,
    H264ref,
    Bzip2,
    Astar,
    Xalancbmk,
    Zeusmp,
    CactusADM,
    Wrf,
    GemsFDTD,
    Leslie3d,
}

impl Benchmark {
    /// The high-memory-intensity benchmarks (Table 2, MPKI ≥ 10).
    pub const HIGH_INTENSITY: [Benchmark; 8] = [
        Benchmark::Omnetpp,
        Benchmark::Milc,
        Benchmark::Soplex,
        Benchmark::Sphinx3,
        Benchmark::Bwaves,
        Benchmark::Libquantum,
        Benchmark::Lbm,
        Benchmark::Mcf,
    ];

    /// The low-memory-intensity benchmarks (Table 2, MPKI < 10).
    pub const LOW_INTENSITY: [Benchmark; 21] = [
        Benchmark::Calculix,
        Benchmark::Povray,
        Benchmark::Namd,
        Benchmark::Gamess,
        Benchmark::Perlbench,
        Benchmark::Tonto,
        Benchmark::Gromacs,
        Benchmark::Gobmk,
        Benchmark::DealII,
        Benchmark::Sjeng,
        Benchmark::Gcc,
        Benchmark::Hmmer,
        Benchmark::H264ref,
        Benchmark::Bzip2,
        Benchmark::Astar,
        Benchmark::Xalancbmk,
        Benchmark::Zeusmp,
        Benchmark::CactusADM,
        Benchmark::Wrf,
        Benchmark::GemsFDTD,
        Benchmark::Leslie3d,
    ];

    /// Every benchmark, high-intensity first (the sort order used by the
    /// paper's Figure 1 is ascending intensity; harnesses re-sort).
    pub fn all() -> Vec<Benchmark> {
        let mut v = Self::HIGH_INTENSITY.to_vec();
        v.extend(Self::LOW_INTENSITY);
        v
    }

    /// Lower-case benchmark name as printed in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Omnetpp => "omnetpp",
            Benchmark::Milc => "milc",
            Benchmark::Soplex => "soplex",
            Benchmark::Sphinx3 => "sphinx3",
            Benchmark::Bwaves => "bwaves",
            Benchmark::Libquantum => "libquantum",
            Benchmark::Lbm => "lbm",
            Benchmark::Mcf => "mcf",
            Benchmark::Calculix => "calculix",
            Benchmark::Povray => "povray",
            Benchmark::Namd => "namd",
            Benchmark::Gamess => "gamess",
            Benchmark::Perlbench => "perlbench",
            Benchmark::Tonto => "tonto",
            Benchmark::Gromacs => "gromacs",
            Benchmark::Gobmk => "gobmk",
            Benchmark::DealII => "dealII",
            Benchmark::Sjeng => "sjeng",
            Benchmark::Gcc => "gcc",
            Benchmark::Hmmer => "hmmer",
            Benchmark::H264ref => "h264ref",
            Benchmark::Bzip2 => "bzip2",
            Benchmark::Astar => "astar",
            Benchmark::Xalancbmk => "xalancbmk",
            Benchmark::Zeusmp => "zeusmp",
            Benchmark::CactusADM => "cactusADM",
            Benchmark::Wrf => "wrf",
            Benchmark::GemsFDTD => "GemsFDTD",
            Benchmark::Leslie3d => "leslie3d",
        }
    }

    /// Whether Table 2 classifies this benchmark as high memory intensity.
    pub fn is_high_intensity(self) -> bool {
        Self::HIGH_INTENSITY.contains(&self)
    }

    /// The synthetic-kernel parameters for this benchmark.
    pub fn profile(self) -> Profile {
        profile_of(self)
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Synthetic-kernel parameters. One loop iteration of the generated
/// program contains the configured number of each segment type; see
/// `emc-workloads::gen` for segment shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    /// Pointer-chase node region size in cache lines (0 = no chasing).
    pub chase_lines: u64,
    /// Payload region size in cache lines (targets of dependent loads).
    pub payload_lines: u64,
    /// Pointer-chase segments per iteration (source + dependent misses).
    pub chase_segments: u32,
    /// Dependent loads per chase beyond the first (levels of indirection).
    pub dep_depth: u32,
    /// ALU ops between the source load and the dependent load (Figure 6).
    pub interleave_ops: u32,
    /// Sequential-stream segments per iteration.
    pub stream_segments: u32,
    /// Stream advance in bytes per segment (8 = dense scan, 64 = line).
    pub stream_stride: u64,
    /// Whether streams also store (write-back traffic, lbm-style).
    pub stream_stores: bool,
    /// Random independent-load segments per iteration (xorshift address).
    pub random_segments: u32,
    /// Span of the random region in bytes (power of two).
    pub random_span: u64,
    /// Integer filler ALU ops per iteration.
    pub compute_ops: u32,
    /// Floating-point filler ops per iteration (not EMC-executable).
    pub fp_ops: u32,
    /// Register spill/fill segments per iteration.
    pub spill_segments: u32,
    /// Data-dependent (hard-to-predict) branches per iteration.
    pub noisy_branches: u32,
}

/// Default iteration count cap used by [`crate::build_default`]; sims
/// usually stop on a retired-uop budget first.
pub const DEFAULT_ITERATIONS: u64 = 50_000_000;

fn profile_of(b: Benchmark) -> Profile {
    // Shorthand base profiles.
    let zero = Profile {
        chase_lines: 0,
        payload_lines: 0,
        chase_segments: 0,
        dep_depth: 1,
        interleave_ops: 4,
        stream_segments: 0,
        stream_stride: 64,
        stream_stores: false,
        random_segments: 0,
        random_span: 1 << 26,
        compute_ops: 0,
        fp_ops: 0,
        spill_segments: 0,
        noisy_branches: 0,
    };
    match b {
        // ----- high intensity -----
        // mcf: the pointer-chasing poster child. Highest dependent-miss
        // fraction in Figure 2 (and lowest IPC of the suite).
        Benchmark::Mcf => Profile {
            chase_lines: 128 * 1024,   // 8 MB node region
            payload_lines: 128 * 1024, // 8 MB payload region
            chase_segments: 1,
            dep_depth: 2,
            interleave_ops: 6,
            compute_ops: 8,
            spill_segments: 1,
            noisy_branches: 1,
            ..zero
        },
        // omnetpp: discrete-event simulator; heavy linked structures with
        // a high dependent-miss fraction, some locality.
        Benchmark::Omnetpp => Profile {
            chase_lines: 96 * 1024,
            payload_lines: 64 * 1024,
            chase_segments: 1,
            dep_depth: 1,
            interleave_ops: 6,
            stream_segments: 1,
            stream_stride: 8,
            compute_ops: 14,
            spill_segments: 1,
            noisy_branches: 2,
            ..zero
        },
        // milc: lattice QCD, FP streaming with indexed gathers.
        Benchmark::Milc => Profile {
            chase_lines: 10 * 1024,
            payload_lines: 10 * 1024,
            chase_segments: 1,
            interleave_ops: 5,
            stream_segments: 2,
            stream_stride: 8,
            compute_ops: 10,
            fp_ops: 6,
            ..zero
        },
        // soplex: sparse LP solver; indexed sparse accesses + streams.
        Benchmark::Soplex => Profile {
            chase_lines: 48 * 1024,
            payload_lines: 32 * 1024,
            chase_segments: 1,
            interleave_ops: 4,
            stream_segments: 2,
            stream_stride: 8,
            compute_ops: 12,
            fp_ops: 3,
            spill_segments: 1,
            ..zero
        },
        // sphinx3: speech recognition; mixed gather + streaming.
        Benchmark::Sphinx3 => Profile {
            chase_lines: 14 * 1024,
            payload_lines: 14 * 1024,
            chase_segments: 1,
            interleave_ops: 6,
            stream_segments: 2,
            stream_stride: 8,
            compute_ops: 16,
            fp_ops: 4,
            ..zero
        },
        // bwaves: blast-wave CFD; dominant regular streams, a few indexed
        // accesses, FP heavy.
        Benchmark::Bwaves => Profile {
            chase_lines: 3 * 1024,
            payload_lines: 3 * 1024,
            chase_segments: 1,
            interleave_ops: 4,
            stream_segments: 3,
            stream_stride: 8,
            compute_ops: 6,
            fp_ops: 8,
            ..zero
        },
        // libquantum: quantum simulation; dense sequential sweeps over a
        // huge array, trivially prefetchable, ~zero dependent misses.
        Benchmark::Libquantum => Profile {
            stream_segments: 3,
            stream_stride: 8,
            compute_ops: 4,
            noisy_branches: 0,
            ..zero
        },
        // lbm: lattice Boltzmann; streaming reads AND writes, FP heavy,
        // no dependent misses, saturates bandwidth.
        Benchmark::Lbm => Profile {
            stream_segments: 3,
            stream_stride: 8,
            stream_stores: true,
            compute_ops: 4,
            fp_ops: 6,
            ..zero
        },
        // ----- low intensity -----
        // leslie3d sits just under the MPKI 10 boundary in Table 2.
        Benchmark::Leslie3d => Profile {
            stream_segments: 2,
            stream_stride: 8,
            compute_ops: 18,
            fp_ops: 10,
            ..zero
        },
        Benchmark::GemsFDTD => Profile {
            stream_segments: 2,
            stream_stride: 8,
            compute_ops: 22,
            fp_ops: 12,
            ..zero
        },
        Benchmark::Zeusmp | Benchmark::CactusADM | Benchmark::Wrf => Profile {
            stream_segments: 1,
            stream_stride: 8,
            compute_ops: 24,
            fp_ops: 14,
            spill_segments: 1,
            ..zero
        },
        // xalancbmk/astar/gcc: pointer-y integer codes whose working sets
        // mostly fit: small chase regions that hit in the LLC.
        Benchmark::Xalancbmk | Benchmark::Astar | Benchmark::Gcc => Profile {
            chase_lines: 256, // 16 KB: cache-resident pointer work
            payload_lines: 128,
            chase_segments: 1,
            interleave_ops: 4,
            stream_segments: 1,
            stream_stride: 8,
            compute_ops: 20,
            spill_segments: 1,
            noisy_branches: 3,
            ..zero
        },
        Benchmark::Bzip2 | Benchmark::Hmmer | Benchmark::H264ref => Profile {
            stream_segments: 1,
            stream_stride: 8,
            compute_ops: 28,
            spill_segments: 1,
            noisy_branches: 2,
            ..zero
        },
        Benchmark::Perlbench | Benchmark::Gobmk | Benchmark::Sjeng => Profile {
            chase_lines: 384, // 24 KB: cache-resident pointer work
            payload_lines: 128,
            chase_segments: 1,
            interleave_ops: 4,
            stream_segments: 1,
            stream_stride: 8,
            compute_ops: 26,
            spill_segments: 2,
            noisy_branches: 4,
            ..zero
        },
        // Pure compute: negligible miss traffic.
        Benchmark::Calculix
        | Benchmark::Povray
        | Benchmark::Namd
        | Benchmark::Gamess
        | Benchmark::Tonto
        | Benchmark::Gromacs
        | Benchmark::DealII => Profile {
            compute_ops: 30,
            fp_ops: 16,
            spill_segments: 1,
            noisy_branches: 1,
            ..zero
        },
    }
}

/// The ten heterogeneous quad-core workloads of Table 3.
pub const QUAD_MIXES: [(&str, [Benchmark; 4]); 10] = [
    (
        "H1",
        [
            Benchmark::Bwaves,
            Benchmark::Lbm,
            Benchmark::Milc,
            Benchmark::Omnetpp,
        ],
    ),
    (
        "H2",
        [
            Benchmark::Soplex,
            Benchmark::Omnetpp,
            Benchmark::Bwaves,
            Benchmark::Libquantum,
        ],
    ),
    (
        "H3",
        [
            Benchmark::Sphinx3,
            Benchmark::Mcf,
            Benchmark::Omnetpp,
            Benchmark::Milc,
        ],
    ),
    (
        "H4",
        [
            Benchmark::Mcf,
            Benchmark::Sphinx3,
            Benchmark::Soplex,
            Benchmark::Libquantum,
        ],
    ),
    (
        "H5",
        [
            Benchmark::Lbm,
            Benchmark::Mcf,
            Benchmark::Libquantum,
            Benchmark::Bwaves,
        ],
    ),
    (
        "H6",
        [
            Benchmark::Lbm,
            Benchmark::Soplex,
            Benchmark::Mcf,
            Benchmark::Milc,
        ],
    ),
    (
        "H7",
        [
            Benchmark::Bwaves,
            Benchmark::Libquantum,
            Benchmark::Sphinx3,
            Benchmark::Omnetpp,
        ],
    ),
    (
        "H8",
        [
            Benchmark::Omnetpp,
            Benchmark::Soplex,
            Benchmark::Mcf,
            Benchmark::Bwaves,
        ],
    ),
    (
        "H9",
        [
            Benchmark::Lbm,
            Benchmark::Mcf,
            Benchmark::Libquantum,
            Benchmark::Soplex,
        ],
    ),
    (
        "H10",
        [
            Benchmark::Libquantum,
            Benchmark::Bwaves,
            Benchmark::Soplex,
            Benchmark::Omnetpp,
        ],
    ),
];

/// Look up a Table 3 mix by name ("H1".."H10").
pub fn mix_by_name(name: &str) -> Option<[Benchmark; 4]> {
    QUAD_MIXES.iter().find(|(n, _)| *n == name).map(|(_, m)| *m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_classification_sizes() {
        assert_eq!(Benchmark::HIGH_INTENSITY.len(), 8);
        assert_eq!(Benchmark::LOW_INTENSITY.len(), 21);
        assert_eq!(Benchmark::all().len(), 29);
    }

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut names: Vec<_> = Benchmark::all().iter().map(|b| b.name()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(names.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn pointer_chasers_have_dependent_misses() {
        for b in [Benchmark::Mcf, Benchmark::Omnetpp] {
            let p = b.profile();
            assert!(p.chase_segments > 0 && p.chase_lines > 0, "{b} must chase");
            // Working set must overflow the 4 MB quad-core LLC.
            assert!(
                p.chase_lines * 64 + p.payload_lines * 64 > 4 << 20,
                "{b} working set"
            );
        }
    }

    #[test]
    fn streamers_have_no_dependent_misses() {
        for b in [Benchmark::Libquantum, Benchmark::Lbm] {
            let p = b.profile();
            assert_eq!(p.chase_segments, 0, "{b} must not chase");
            assert!(p.stream_segments > 0);
        }
        assert!(
            Benchmark::Lbm.profile().stream_stores,
            "lbm writes its streams"
        );
    }

    #[test]
    fn table3_mixes_match_paper() {
        assert_eq!(QUAD_MIXES.len(), 10);
        for (name, mix) in QUAD_MIXES {
            assert_eq!(mix.len(), 4, "{name}");
            // Each benchmark appears only once per mix (paper §5).
            let mut m = mix.to_vec();
            m.sort();
            m.dedup();
            assert_eq!(m.len(), 4, "{name} has duplicates");
            // All mixes draw from the high-intensity set.
            assert!(mix.iter().all(|b| b.is_high_intensity()), "{name}");
        }
        assert_eq!(
            mix_by_name("H4").unwrap(),
            [
                Benchmark::Mcf,
                Benchmark::Sphinx3,
                Benchmark::Soplex,
                Benchmark::Libquantum
            ]
        );
        assert!(mix_by_name("H11").is_none());
    }

    #[test]
    fn fp_benchmarks_carry_fp_ops() {
        for b in [Benchmark::Milc, Benchmark::Bwaves, Benchmark::Lbm] {
            assert!(b.profile().fp_ops > 0, "{b} is an FP benchmark");
        }
        assert_eq!(Benchmark::Mcf.profile().fp_ops, 0, "mcf is integer");
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", Benchmark::Mcf), "mcf");
    }
}
