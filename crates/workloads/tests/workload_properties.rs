//! Property-based tests over the workload generators.

use emc_types::program::run_reference;
use emc_workloads::{build, Benchmark};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every benchmark, under any seed, builds a valid terminating
    /// program whose loop counter reaches zero.
    #[test]
    fn any_seed_builds_valid_programs(seed in any::<u64>(), bench_idx in 0usize..29) {
        let bench = Benchmark::all()[bench_idx];
        let w = build(bench, seed, 30);
        prop_assert!(w.program.validate().is_ok());
        let mut mem = w.memory.clone();
        let st = run_reference(&w.program, &mut mem, 5_000_000);
        prop_assert!(!st.capped, "{bench} did not terminate");
        prop_assert_eq!(st.regs[15], 0, "loop counter must reach zero");
    }

    /// The chase structure is consistent for any seed: following next
    /// pointers stays inside the node region and payload pointers inside
    /// the payload region.
    #[test]
    fn chase_regions_are_closed(seed in any::<u64>()) {
        let w = build(Benchmark::Omnetpp, seed, 1);
        let p = Benchmark::Omnetpp.profile();
        let mut node = emc_workloads::CHASE_BASE;
        for _ in 0..200 {
            let next = w.memory.read_u64(emc_types::Addr(node));
            let payload = w.memory.read_u64(emc_types::Addr(node + 8));
            prop_assert!(next >= emc_workloads::CHASE_BASE);
            prop_assert!(next < emc_workloads::CHASE_BASE + p.chase_lines * 64);
            prop_assert_eq!(next % 64, 0);
            prop_assert!(payload >= emc_workloads::PAYLOAD_BASE);
            prop_assert!(payload < emc_workloads::PAYLOAD_BASE + p.payload_lines.max(64) * 64);
            node = next;
        }
    }
}
