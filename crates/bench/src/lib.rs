//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§6). See `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! The `figures` binary (`cargo run -p emc-bench --release --bin figures
//! -- <id>`) prints each figure's rows; `all` regenerates everything.
//! Since the campaign engine landed, every grid run goes through
//! `emc-campaign`: jobs are content-addressed, results are cached under
//! `results/cache/`, and an interrupted `figures all` resumes instead of
//! starting over. Criterion benches under `benches/` run scaled-down
//! versions of the same harnesses so `cargo bench` exercises every code
//! path quickly.

// `deny`, not `forbid`: the one sanctioned exception is the counting
// global allocator in `alloc`, which must implement `GlobalAlloc`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod perf;

use std::path::PathBuf;

use emc_campaign::{Campaign, CampaignOptions};
use emc_sim::cycle_cap;
use emc_types::{JsonValue, PrefetcherKind, SystemConfig, ToJson};
use emc_workloads::Benchmark;

pub use emc_campaign::{
    config_grid, config_json, homog_jobs, mix8_jobs, parallel_map, quad_jobs, JobSpec, RunResult,
};

/// Default per-core retired-uop budget for figure runs.
pub const DEFAULT_FIGURE_BUDGET: u64 = 30_000;

/// Schema tag stamped into every figure sidecar.
pub const FIGURES_SCHEMA: &str = "emc-figures-v1";

/// Resolve a figure budget from an explicit source string (the
/// injectable core of [`figure_budget`] — tests pass values directly
/// instead of mutating process-global environment).
pub fn budget_from(source: Option<&str>) -> u64 {
    source
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_FIGURE_BUDGET)
}

/// Per-core retired-uop budget for figure runs. Override with the
/// `EMC_FIGURE_BUDGET` environment variable. Campaign job keys embed the
/// value this *resolves to*, never the variable itself, so cached
/// results are immune to later environment changes.
pub fn figure_budget() -> u64 {
    budget_from(std::env::var("EMC_FIGURE_BUDGET").ok().as_deref())
}

/// Campaign options for figure harnesses: default cache under
/// `results/cache`, resume on, progress on stderr.
pub fn figure_campaign_options() -> CampaignOptions {
    CampaignOptions::default()
}

/// Run a named set of jobs through the campaign engine (cache +
/// manifest + all cores) and unwrap every result, in job order.
pub fn run_jobs(name: &str, jobs: Vec<JobSpec>) -> Vec<RunResult> {
    Campaign::new(name, jobs)
        .run(&figure_campaign_options())
        .expect_completed()
}

/// Run one heterogeneous mix under `cfg`, uncached (single-shot paths
/// and criterion benches; grids go through [`run_jobs`]).
pub fn run_one_mix(name: &str, mix: [Benchmark; 4], cfg: SystemConfig, budget: u64) -> RunResult {
    JobSpec::mix(name, mix, cfg, budget).run_now()
}

/// Run one homogeneous workload (`cfg.cores` copies of `bench`),
/// uncached.
pub fn run_one_homog(bench: Benchmark, cfg: SystemConfig, budget: u64) -> RunResult {
    JobSpec::homog(bench, cfg, budget).run_now()
}

/// Run one eight-core mix (two copies of a quad mix, §5), uncached.
pub fn run_one_mix8(name: &str, mix: [Benchmark; 4], cfg: SystemConfig, budget: u64) -> RunResult {
    JobSpec::mix8(name, mix, cfg, budget).run_now()
}

/// Weighted speedup of `run` against per-core baseline IPCs, normalized
/// per core (1.0 = baseline performance).
pub fn norm_weighted_speedup(run: &RunResult, baseline_ipcs: &[f64]) -> f64 {
    run.stats.weighted_speedup(baseline_ipcs) / baseline_ipcs.len() as f64
}

/// Order-preserving parallel map across all cores (kept for harness
/// code that runs ad-hoc job lists; campaign grids use [`run_jobs`]).
pub fn par_map<T, R, F>(jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map(jobs, 0, |_, job| f(job))
}

/// All quad-core heterogeneous grid runs (H1–H10 × 8 configs), the input
/// to Figures 12, 15, 16, 17, 18, 19, 21, 22 and 23. Campaign-cached.
pub fn quad_grid(budget: u64) -> Vec<RunResult> {
    run_jobs("quad-grid", quad_jobs(budget))
}

/// All homogeneous grid runs (8 high-intensity benchmarks × 8 configs),
/// the input to Figures 13 and 24. Campaign-cached.
pub fn homog_grid(budget: u64) -> Vec<RunResult> {
    run_jobs("homog-grid", homog_jobs(budget))
}

/// Find the run for (workload, prefetcher label, emc) in a grid.
pub fn find<'a>(
    grid: &'a [RunResult],
    workload: &str,
    pf: PrefetcherKind,
    emc: bool,
) -> &'a RunResult {
    grid.iter()
        .find(|r| r.workload == workload && r.prefetcher == pf.label() && r.emc == emc)
        .unwrap_or_else(|| panic!("missing run {workload}/{}/{emc}", pf.label()))
}

/// Write a JSON sidecar next to the textual figure output: creates
/// `results/` explicitly, stamps the `emc-figures-v1` schema, and
/// returns the path written — or an error naming the path that failed.
/// (The pre-campaign version swallowed every I/O error silently.)
pub fn write_json<T: ToJson>(name: &str, value: &T) -> Result<PathBuf, String> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join(format!("{name}.json"));
    let doc = JsonValue::obj(vec![
        ("schema", FIGURES_SCHEMA.into()),
        ("name", name.into()),
        ("data", value.to_json_value()),
    ]);
    let mut text = doc.to_json_pretty();
    text.push('\n');
    std::fs::write(&path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// Fixed-width bar for terminal "figures".
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let frac = (value / max).clamp(0.0, 1.0);
    let n = (frac * width as f64).round() as usize;
    format!("{}{}", "#".repeat(n), " ".repeat(width - n))
}

/// A cycle cap consistent with the runner for direct System::run calls.
pub fn cap(budget: u64) -> u64 {
    cycle_cap(budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emc_types::Stats;

    #[test]
    fn config_grid_has_eight_entries() {
        let g = config_grid(SystemConfig::quad_core());
        assert_eq!(g.len(), 8);
        assert_eq!(g.iter().filter(|c| c.emc.enabled).count(), 4);
        let labels: std::collections::HashSet<_> = g.iter().map(|c| c.prefetcher.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn par_map_preserves_order() {
        let jobs: Vec<u64> = (0..6).collect();
        let out = par_map(jobs, |&i| RunResult {
            workload: format!("w{i}"),
            prefetcher: "No-PF".into(),
            emc: false,
            stats: Stats::new(1),
            energy: Default::default(),
            ipcs: vec![i as f64],
        });
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.workload, format!("w{i}"));
            assert_eq!(r.ipcs[0], i as f64);
        }
    }

    #[test]
    fn bar_renders_bounded() {
        assert_eq!(bar(0.0, 1.0, 10).trim(), "");
        assert_eq!(bar(1.0, 1.0, 10), "##########");
        assert_eq!(bar(2.0, 1.0, 4), "####", "clamped");
        assert_eq!(bar(0.5, 1.0, 10).matches('#').count(), 5);
    }

    #[test]
    fn budget_resolution_is_injectable() {
        // No process-global env mutation: budget_from takes its source
        // directly, so this can't race parallel tests.
        assert_eq!(budget_from(None), DEFAULT_FIGURE_BUDGET);
        assert_eq!(budget_from(Some("123")), 123);
        assert_eq!(budget_from(Some(" 456 ")), 456, "whitespace tolerated");
        assert_eq!(budget_from(Some("junk")), DEFAULT_FIGURE_BUDGET);
        assert_eq!(budget_from(Some("")), DEFAULT_FIGURE_BUDGET);
    }

    #[test]
    fn write_json_stamps_schema_and_reports_path() {
        let rows = vec![("w0", 1.5f64), ("w1", 2.5)];
        let path = write_json("bench_selftest", &rows).expect("writable results dir");
        let text = std::fs::read_to_string(&path).expect("file exists at reported path");
        let doc = JsonValue::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(FIGURES_SCHEMA)
        );
        assert_eq!(
            doc.get("data")
                .and_then(|d| d.idx(0))
                .and_then(|r| r.idx(0))
                .and_then(|v| v.as_str()),
            Some("w0")
        );
        let _ = std::fs::remove_file(path);
    }
}
