//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§6). See `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! The `figures` binary (`cargo run -p emc-bench --release --bin figures
//! -- <id>`) prints each figure's rows; `all` regenerates everything.
//! Criterion benches under `benches/` run scaled-down versions of the
//! same harnesses so `cargo bench` exercises every code path quickly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use emc_energy::{estimate_default, EnergyBreakdown};
use emc_sim::{cycle_cap, eight_core_mix, run_homogeneous, run_mix};
use emc_types::{PrefetcherKind, Stats, SystemConfig};
use emc_workloads::{Benchmark, QUAD_MIXES};
use serde::Serialize;

/// Per-core retired-uop budget for figure runs. Override with the
/// `EMC_FIGURE_BUDGET` environment variable.
pub fn figure_budget() -> u64 {
    std::env::var("EMC_FIGURE_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000)
}

/// One simulated configuration of one workload.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// Workload label ("H4", "mcf x4", ...).
    pub workload: String,
    /// Prefetcher configuration.
    pub prefetcher: String,
    /// Whether the EMC was enabled.
    pub emc: bool,
    /// Full statistics.
    pub stats: Stats,
    /// Energy estimate.
    pub energy: EnergyBreakdown,
    /// Per-core IPCs (for weighted speedup against a baseline run).
    pub ipcs: Vec<f64>,
}

fn result_of(workload: String, cfg: &SystemConfig, stats: Stats) -> RunResult {
    let energy = estimate_default(&stats, cfg);
    let ipcs = stats.cores.iter().map(|c| c.ipc()).collect();
    RunResult {
        workload,
        prefetcher: cfg.prefetcher.label().to_string(),
        emc: cfg.emc.enabled,
        stats,
        energy,
        ipcs,
    }
}

/// Run one heterogeneous mix under `cfg`.
pub fn run_one_mix(name: &str, mix: [Benchmark; 4], cfg: SystemConfig, budget: u64) -> RunResult {
    let stats = run_mix(cfg.clone(), &mix, budget).expect_completed();
    result_of(name.to_string(), &cfg, stats)
}

/// Run one homogeneous workload (`cfg.cores` copies of `bench`).
pub fn run_one_homog(bench: Benchmark, cfg: SystemConfig, budget: u64) -> RunResult {
    let stats = run_homogeneous(cfg.clone(), bench, budget).expect_completed();
    result_of(format!("{}x{}", bench.name(), cfg.cores), &cfg, stats)
}

/// Run one eight-core mix (two copies of a quad mix, §5).
pub fn run_one_mix8(name: &str, mix: [Benchmark; 4], cfg: SystemConfig, budget: u64) -> RunResult {
    let benches = eight_core_mix(mix);
    let stats = run_mix(cfg.clone(), &benches, budget).expect_completed();
    result_of(name.to_string(), &cfg, stats)
}

/// The eight (prefetcher × EMC) configurations of Figures 12–14.
pub fn config_grid(base: SystemConfig) -> Vec<SystemConfig> {
    let mut v = Vec::new();
    for pf in PrefetcherKind::ALL {
        for emc in [false, true] {
            let mut c = base.clone().with_prefetcher(pf);
            c.emc.enabled = emc;
            v.push(c);
        }
    }
    v
}

/// Weighted speedup of `run` against per-core baseline IPCs, normalized
/// per core (1.0 = baseline performance).
pub fn norm_weighted_speedup(run: &RunResult, baseline_ipcs: &[f64]) -> f64 {
    run.stats.weighted_speedup(baseline_ipcs) / baseline_ipcs.len() as f64
}

/// Simple two-worker parallel map (the grids are embarrassingly
/// parallel; each run is internally deterministic).
pub fn par_map<T, F>(jobs: Vec<T>, f: F) -> Vec<RunResult>
where
    T: Send,
    F: Fn(T) -> RunResult + Sync,
{
    let n = jobs.len();
    let mut out: Vec<Option<RunResult>> = (0..n).map(|_| None).collect();
    let jobs: Vec<(usize, T)> = jobs.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(jobs);
    let results = std::sync::Mutex::new(&mut out);
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .min(4);
    crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let job = queue.lock().expect("queue lock").pop();
                let Some((i, job)) = job else { break };
                let r = f(job);
                results.lock().expect("results lock")[i] = Some(r);
            });
        }
    })
    .expect("worker panicked");
    out.into_iter().map(|r| r.expect("all jobs ran")).collect()
}

/// All quad-core heterogeneous grid runs (H1–H10 × 8 configs), the input
/// to Figures 12, 15, 16, 17, 18, 19, 21, 22 and 23.
pub fn quad_grid(budget: u64) -> Vec<RunResult> {
    let mut jobs = Vec::new();
    for (name, mix) in QUAD_MIXES {
        for cfg in config_grid(SystemConfig::quad_core()) {
            jobs.push((name, mix, cfg));
        }
    }
    par_map(jobs, |(name, mix, cfg)| run_one_mix(name, mix, cfg, budget))
}

/// All homogeneous grid runs (8 high-intensity benchmarks × 8 configs),
/// the input to Figures 13 and 24.
pub fn homog_grid(budget: u64) -> Vec<RunResult> {
    let mut jobs = Vec::new();
    for b in Benchmark::HIGH_INTENSITY {
        for cfg in config_grid(SystemConfig::quad_core()) {
            jobs.push((b, cfg));
        }
    }
    par_map(jobs, |(b, cfg)| run_one_homog(b, cfg, budget))
}

/// Find the run for (workload, prefetcher label, emc) in a grid.
pub fn find<'a>(
    grid: &'a [RunResult],
    workload: &str,
    pf: PrefetcherKind,
    emc: bool,
) -> &'a RunResult {
    grid.iter()
        .find(|r| r.workload == workload && r.prefetcher == pf.label() && r.emc == emc)
        .unwrap_or_else(|| panic!("missing run {workload}/{}/{emc}", pf.label()))
}

/// Write a JSON sidecar next to the textual figure output.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(s) = serde_json::to_string_pretty(value) {
            let _ = std::fs::write(path, s);
        }
    }
}

/// Fixed-width bar for terminal "figures".
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let frac = (value / max).clamp(0.0, 1.0);
    let n = (frac * width as f64).round() as usize;
    format!("{}{}", "#".repeat(n), " ".repeat(width - n))
}

/// A cycle cap consistent with the runner for direct System::run calls.
pub fn cap(budget: u64) -> u64 {
    cycle_cap(budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_grid_has_eight_entries() {
        let g = config_grid(SystemConfig::quad_core());
        assert_eq!(g.len(), 8);
        assert_eq!(g.iter().filter(|c| c.emc.enabled).count(), 4);
        let labels: std::collections::HashSet<_> = g.iter().map(|c| c.prefetcher.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn par_map_preserves_order() {
        let jobs: Vec<u64> = (0..6).collect();
        let out = par_map(jobs, |i| RunResult {
            workload: format!("w{i}"),
            prefetcher: "No-PF".into(),
            emc: false,
            stats: Stats::new(1),
            energy: Default::default(),
            ipcs: vec![i as f64],
        });
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.workload, format!("w{i}"));
            assert_eq!(r.ipcs[0], i as f64);
        }
    }

    #[test]
    fn bar_renders_bounded() {
        assert_eq!(bar(0.0, 1.0, 10).trim(), "");
        assert_eq!(bar(1.0, 1.0, 10), "##########");
        assert_eq!(bar(2.0, 1.0, 4), "####", "clamped");
        assert_eq!(bar(0.5, 1.0, 10).matches('#').count(), 5);
    }

    #[test]
    fn budget_env_override() {
        // Default without the env var.
        std::env::remove_var("EMC_FIGURE_BUDGET");
        assert_eq!(figure_budget(), 30_000);
    }
}
