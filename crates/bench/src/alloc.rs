//! A counting global allocator for the bench bins.
//!
//! ROADMAP item 1 targets per-request allocation churn in the
//! simulator's hot path; to optimize it we first have to see it. The
//! bins that care (`perf`, and any future harness) install
//! [`CountingAlloc`] as their `#[global_allocator]`:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: emc_bench::alloc::CountingAlloc = emc_bench::alloc::CountingAlloc;
//! ```
//!
//! and bracket measured regions with [`counters`] snapshots. The
//! counters are process-global relaxed atomics — an add per allocation,
//! which is noise next to the allocation itself. When the allocator is
//! *not* installed (library tests, other bins) the counters simply stay
//! at zero; [`AllocCounters::since`] then reports empty deltas, so code
//! reading them degrades gracefully rather than lying.
//!
//! This is the one module in the workspace allowed to use `unsafe`: the
//! `GlobalAlloc` contract requires it. Each method only forwards to
//! [`std::alloc::System`] under the exact contract it was called with.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Forwarding allocator over [`std::alloc::System`] that counts every
/// allocation (and reallocation) and the bytes requested.
pub struct CountingAlloc;

#[allow(unsafe_code)]
// SAFETY: every method forwards verbatim to `System`, which satisfies
// the `GlobalAlloc` contract; the counter updates are lock- and
// allocation-free (relaxed atomics), so no re-entrancy is possible.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREES.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// A snapshot of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocCounters {
    /// Allocations (plus reallocations) since process start.
    pub allocs: u64,
    /// Deallocations since process start.
    pub frees: u64,
    /// Bytes requested since process start.
    pub bytes: u64,
}

impl AllocCounters {
    /// The counter movement since an `earlier` snapshot (saturating, so
    /// snapshots taken across threads can never underflow).
    pub fn since(self, earlier: AllocCounters) -> AllocCounters {
        AllocCounters {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            frees: self.frees.saturating_sub(earlier.frees),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }

    /// Allocations per simulated kilocycle (0 when nothing simulated).
    pub fn allocs_per_kilocycle(&self, cycles: u64) -> f64 {
        per_kilocycle(self.allocs, cycles)
    }

    /// Bytes per simulated kilocycle (0 when nothing simulated).
    pub fn bytes_per_kilocycle(&self, cycles: u64) -> f64 {
        per_kilocycle(self.bytes, cycles)
    }
}

fn per_kilocycle(count: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    count as f64 / (cycles as f64 / 1e3)
}

/// Read the current counters. Zero everywhere unless [`CountingAlloc`]
/// is installed as the process's global allocator.
pub fn counters() -> AllocCounters {
    AllocCounters {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_and_saturates() {
        let early = AllocCounters {
            allocs: 10,
            frees: 5,
            bytes: 1000,
        };
        let late = AllocCounters {
            allocs: 14,
            frees: 6,
            bytes: 1600,
        };
        let d = late.since(early);
        assert_eq!(
            d,
            AllocCounters {
                allocs: 4,
                frees: 1,
                bytes: 600
            }
        );
        assert_eq!(early.since(late), AllocCounters::default(), "saturates");
    }

    #[test]
    fn per_kilocycle_rates() {
        let d = AllocCounters {
            allocs: 500,
            frees: 0,
            bytes: 2_000_000,
        };
        assert!((d.allocs_per_kilocycle(10_000) - 50.0).abs() < 1e-9);
        assert!((d.bytes_per_kilocycle(10_000) - 200_000.0).abs() < 1e-9);
        assert_eq!(d.allocs_per_kilocycle(0), 0.0);
    }

    #[test]
    fn counters_are_monotone() {
        // Whether or not the test harness installed the allocator, two
        // reads must never go backwards.
        let a = counters();
        let _v: Vec<u64> = (0..100).collect();
        let b = counters();
        assert!(b.allocs >= a.allocs);
        assert!(b.bytes >= a.bytes);
    }
}
