//! Host-performance trajectory bin: run the pinned fig12 quad grid
//! and write a `BENCH_<git-sha>.json` (`emc-bench-v1`) artifact.
//!
//! ```text
//! cargo run --release -p emc-bench --bin perf -- [--budget N] [--stride N]
//!     [--mix NAME] [--out PATH]
//! ```
//!
//! Defaults: budget 10000 uops/core, profile stride 64, mix H4, output
//! `BENCH_<sha>.json` in the current directory. See EXPERIMENTS.md
//! ("Perf trajectory") for the per-PR recording protocol.

use emc_bench::alloc::CountingAlloc;
use emc_bench::config_grid;
use emc_bench::perf::{
    git_sha, measure_cell, measure_tax, perf_doc, validate_bench_doc, DEFAULT_PERF_BUDGET,
    DEFAULT_PERF_MIX,
};
use emc_sim::DEFAULT_PROFILE_STRIDE;
use emc_types::SystemConfig;
use emc_workloads::mix_by_name;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn usage() -> ! {
    eprintln!(
        "usage: perf [--budget N] [--stride N] [--mix NAME] [--out PATH]\n\
         \n\
         Measures host throughput (cycles/sec), the per-phase profile, and\n\
         allocation churn over the fig12 quad grid, then writes an\n\
         emc-bench-v1 JSON artifact (default BENCH_<git-sha>.json)."
    );
    std::process::exit(2)
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("perf: {flag} needs a valid value");
        usage()
    })
}

fn main() {
    let mut budget = DEFAULT_PERF_BUDGET;
    let mut stride = DEFAULT_PROFILE_STRIDE;
    let mut mix_name = DEFAULT_PERF_MIX.to_string();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => budget = parse_value("--budget", args.next()),
            "--stride" => stride = parse_value("--stride", args.next()),
            "--mix" => mix_name = parse_value("--mix", args.next()),
            "--out" => out = Some(parse_value("--out", args.next())),
            _ => usage(),
        }
    }
    let Some(mix) = mix_by_name(&mix_name) else {
        eprintln!("perf: unknown mix {mix_name:?}");
        std::process::exit(2);
    };
    let sha = git_sha();
    let out = out.unwrap_or_else(|| format!("BENCH_{sha}.json"));

    // Warm the page cache / branch predictors once so the first grid
    // cell is not systematically slower than the rest.
    let _ = measure_cell(SystemConfig::quad_core(), &mix, budget.min(2_000), 0);

    // Cells run sequentially: this artifact measures single-thread host
    // throughput, and concurrent cells would contend for cache/DRAM.
    let grid = config_grid(SystemConfig::quad_core());
    let cells: Vec<_> = grid
        .into_iter()
        .map(|cfg| {
            let cell = measure_cell(cfg, &mix, budget, stride);
            eprintln!(
                "  {:<12} {:>7.2} Mcycles/s  {:>6.2} Muops/s  {:>6.1} allocs/kcyc",
                cell.config,
                cell.cycles_per_sec / 1e6,
                cell.uops_per_sec / 1e6,
                cell.alloc.allocs_per_kilocycle(cell.cycles),
            );
            cell
        })
        .collect();

    let tax = measure_tax(SystemConfig::quad_core(), &mix, budget, stride);
    let doc = perf_doc(&sha, &mix_name, budget, stride, &cells, &tax);
    if let Err(e) = validate_bench_doc(&doc) {
        eprintln!("perf: produced invalid document: {e}");
        std::process::exit(1);
    }
    let mut text = doc.to_json_pretty();
    text.push('\n');
    if let Err(e) = std::fs::write(&out, text) {
        eprintln!("perf: cannot write {out}: {e}");
        std::process::exit(1);
    }

    let slowest = cells
        .iter()
        .min_by(|a, b| a.cycles_per_sec.total_cmp(&b.cycles_per_sec))
        .expect("grid is non-empty");
    eprintln!(
        "observability tax at stride {stride}: {:+.2}% (baseline {:.2} Mcycles/s)",
        tax.delta_frac() * 100.0,
        tax.baseline_cycles_per_sec / 1e6,
    );
    eprintln!(
        "slowest cell {} at {:.2} Mcycles/s; hottest phase {}",
        slowest.config,
        slowest.cycles_per_sec / 1e6,
        slowest
            .profile
            .phases
            .iter()
            .max_by_key(|p| p.nanos)
            .map(|p| p.name)
            .unwrap_or("n/a"),
    );
    println!("{out}");
}
