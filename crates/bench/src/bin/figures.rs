//! Regenerate the paper's tables and figures.
//!
//! Usage: `cargo run -p emc-bench --release --bin figures -- <id>`
//! where `<id>` is one of: tab1 tab2 tab3 fig1 fig2 fig3 fig6 fig12 fig13
//! fig14 fig15 fig16 fig17 fig18 fig19 fig20 fig21 fig22 fig23 fig24
//! overhead ablation check all. Set `EMC_FIGURE_BUDGET` to change the
//! per-core retired-uop budget (default 30000).
//!
//! Every grid goes through the campaign engine: results are cached by
//! content under `results/cache/`, shared across figures (fig1, fig6 and
//! tab2 reuse the same baseline runs; `check` reuses the quad grid), and
//! an interrupted `all` resumes from its manifests instead of starting
//! over. Re-running a figure with a warm cache is pure lookups.

use emc_bench::{
    bar, config_grid, config_json, figure_budget, find, homog_grid, mix8_jobs,
    norm_weighted_speedup, quad_grid, run_jobs, write_json, JobSpec, RunResult,
};
use emc_types::{PrefetcherKind, SystemConfig, ToJson};
use emc_workloads::{Benchmark, QUAD_MIXES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(|s| s.as_str()).unwrap_or("all");
    let budget = figure_budget();
    eprintln!("# figure budget: {budget} retired uops/core (EMC_FIGURE_BUDGET to change)");
    match what {
        "tab1" => tab1(),
        "tab2" => tab2(budget),
        "tab3" => tab3(),
        "fig1" => fig1_2(budget, false),
        "fig2" => fig1_2(budget, true),
        "fig3" => fig3(budget),
        "fig6" => fig6(budget),
        "fig12" => with_quad(budget, fig12),
        "fig13" => with_homog(budget, fig13),
        "fig14" => fig14(budget),
        "fig15" => with_quad(budget, fig15),
        "fig16" => with_quad(budget, fig16),
        "fig17" => with_quad(budget, fig17),
        "fig18" => with_quad(budget, fig18),
        "fig19" => with_quad(budget, fig19),
        "fig20" => fig20(budget),
        "fig21" => with_quad(budget, fig21),
        "fig22" => with_quad(budget, fig22),
        "fig23" => with_quad(budget, fig23),
        "fig24" => with_homog(budget, fig24),
        "overhead" => with_quad(budget, overhead),
        "ablation" => ablation(budget),
        "check" => check(budget),
        "all" => {
            tab1();
            tab3();
            fig1_2(budget, false);
            fig1_2(budget, true);
            fig3(budget);
            fig6(budget);
            eprintln!("# running quad-core grid (80 simulations)...");
            let quad = quad_grid(budget);
            emit("quad_grid", &quad);
            fig12(&quad);
            fig15(&quad);
            fig16(&quad);
            fig17(&quad);
            fig18(&quad);
            fig19(&quad);
            fig21(&quad);
            fig22(&quad);
            fig23(&quad);
            overhead(&quad);
            eprintln!("# running homogeneous grid (64 simulations)...");
            let homog = homog_grid(budget);
            emit("homog_grid", &homog);
            fig13(&homog);
            fig24(&homog);
            fig14(budget);
            fig20(budget);
            ablation(budget);
            tab2(budget);
        }
        other => {
            eprintln!("unknown figure id: {other}");
            std::process::exit(2);
        }
    }
}

/// Write a sidecar, failing the run loudly (with the path) if the write
/// fails — a figure whose JSON silently vanished is worse than no
/// figure.
fn emit<T: ToJson>(name: &str, value: &T) {
    if let Err(e) = write_json(name, value) {
        eprintln!("# sidecar failure: {e}");
        std::process::exit(1);
    }
}

fn with_quad(budget: u64, f: impl FnOnce(&[RunResult])) {
    eprintln!("# running quad-core grid (80 simulations)...");
    let grid = quad_grid(budget);
    emit("quad_grid", &grid);
    f(&grid);
}

fn with_homog(budget: u64, f: impl FnOnce(&[RunResult])) {
    eprintln!("# running homogeneous grid (64 simulations)...");
    let grid = homog_grid(budget);
    emit("homog_grid", &grid);
    f(&grid);
}

/// The homogeneous no-EMC baseline specs over `benches` — the jobs
/// fig1, fig2, fig6 and tab2 all share (and therefore cache-hit on).
fn baseline_specs(benches: &[Benchmark], budget: u64) -> Vec<JobSpec> {
    let cfg = SystemConfig::quad_core().without_emc();
    benches
        .iter()
        .map(|&b| JobSpec::homog(b, cfg.clone(), budget))
        .collect()
}

fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

fn tab1() {
    header("Table 1: system configuration");
    println!(
        "{}",
        config_json(&SystemConfig::quad_core()).to_json_pretty()
    );
}

fn tab2(budget: u64) {
    header("Table 2: SPEC CPU2006 classification by memory intensity (measured MPKI)");
    let jobs: Vec<Benchmark> = Benchmark::all();
    let runs = run_jobs("tab2-mpki", baseline_specs(&jobs, budget));
    let mut rows: Vec<(String, f64, bool)> = jobs
        .iter()
        .zip(&runs)
        .map(|(b, r)| {
            (
                b.name().to_string(),
                r.stats.cores[0].mpki(),
                b.is_high_intensity(),
            )
        })
        .collect();
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    println!(
        "{:<12} {:>8}  {:<22} paper class",
        "benchmark", "MPKI", "measured class"
    );
    let mut agree = 0;
    for (name, mpki, paper_high) in &rows {
        let measured_high = *mpki >= 10.0;
        if measured_high == *paper_high {
            agree += 1;
        }
        println!(
            "{:<12} {:>8.1}  {:<22} {}",
            name,
            mpki,
            if measured_high {
                "high (MPKI >= 10)"
            } else {
                "low (MPKI < 10)"
            },
            if *paper_high { "high" } else { "low" },
        );
    }
    println!("classification agreement: {agree}/{}", rows.len());
    emit("tab2", &rows);
}

fn tab3() {
    header("Table 3: quad-core workloads");
    for (name, mix) in QUAD_MIXES {
        let names: Vec<&str> = mix.iter().map(|b| b.name()).collect();
        println!("{name:<4} {}", names.join("+"));
    }
}

// ---------------------------------------------------------------------
// Motivation figures (1, 2, 3, 6)
// ---------------------------------------------------------------------

/// Figures 1 and 2 share the homogeneous no-prefetch runs over the whole
/// suite; `ideal` additionally runs the dependent-misses-become-hits
/// limit study of Figure 2.
fn fig1_2(budget: u64, ideal: bool) {
    let jobs: Vec<Benchmark> = Benchmark::all();
    let runs = run_jobs("motivation-base", baseline_specs(&jobs, budget));
    // Sort ascending by memory intensity as the paper does.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        runs[a].stats.cores[0]
            .mpki()
            .partial_cmp(&runs[b].stats.cores[0].mpki())
            .expect("finite")
    });

    if !ideal {
        header("Figure 1: DRAM latency vs on-chip delay of LLC misses (cycles)");
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>9}",
            "benchmark", "dram", "on-chip", "total", "on-chip%"
        );
        let mut out = Vec::new();
        for &i in &order {
            let m = &runs[i].stats.mem;
            let dram = m.dram_service_latency.mean();
            let chip = m.on_chip_delay.mean();
            let total = dram + chip;
            if total == 0.0 {
                continue; // no misses at all
            }
            println!(
                "{:<12} {:>8.0} {:>8.0} {:>8.0} {:>8.1}%",
                jobs[i].name(),
                dram,
                chip,
                total,
                100.0 * chip / total
            );
            out.push((jobs[i].name(), dram, chip));
        }
        emit("fig1", &out);
        return;
    }

    header("Figure 2: dependent LLC misses and the ideal-hit limit study");
    let mut ideal_cfg = SystemConfig::quad_core().without_emc();
    ideal_cfg.ideal_dependent_hits = true;
    let ideal_runs = run_jobs(
        "motivation-ideal",
        jobs.iter()
            .map(|&b| JobSpec::homog(b, ideal_cfg.clone(), budget))
            .collect(),
    );
    println!(
        "{:<12} {:>12} {:>16}",
        "benchmark", "dependent%", "ideal speedup%"
    );
    let mut out = Vec::new();
    for &i in &order {
        let dep = 100.0 * runs[i].stats.cores[0].dependent_miss_fraction();
        let base_ipc: f64 = runs[i].ipcs.iter().sum();
        let ideal_ipc: f64 = ideal_runs[i].ipcs.iter().sum();
        let speedup = if base_ipc > 0.0 {
            100.0 * (ideal_ipc / base_ipc - 1.0)
        } else {
            0.0
        };
        println!("{:<12} {:>11.1}% {:>15.1}%", jobs[i].name(), dep, speedup);
        out.push((jobs[i].name(), dep, speedup));
    }
    emit("fig2", &out);
}

fn fig3(budget: u64) {
    header("Figure 3: % of dependent cache misses covered by each prefetcher");
    println!(
        "{:<12} {:>8} {:>8} {:>14}",
        "benchmark", "GHB", "Stream", "Markov+Stream"
    );
    let pfs = [
        PrefetcherKind::Ghb,
        PrefetcherKind::Stream,
        PrefetcherKind::MarkovStream,
    ];
    let mut specs = Vec::new();
    for b in Benchmark::HIGH_INTENSITY {
        for pf in pfs {
            specs.push(JobSpec::homog(
                b,
                SystemConfig::quad_core().without_emc().with_prefetcher(pf),
                budget,
            ));
        }
    }
    let runs = run_jobs("fig3-coverage", specs);
    let mut out = Vec::new();
    for (bi, b) in Benchmark::HIGH_INTENSITY.iter().enumerate() {
        let mut cov = [0.0f64; 3];
        for (pi, _) in pfs.iter().enumerate() {
            let r = &runs[bi * 3 + pi];
            let covered: u64 = r
                .stats
                .cores
                .iter()
                .map(|c| c.dependent_misses_prefetched)
                .sum();
            let dep: u64 = r.stats.cores.iter().map(|c| c.dependent_llc_misses).sum();
            let total = covered + dep;
            cov[pi] = if total == 0 {
                0.0
            } else {
                100.0 * covered as f64 / total as f64
            };
        }
        println!(
            "{:<12} {:>7.1}% {:>7.1}% {:>13.1}%",
            b.name(),
            cov[0],
            cov[1],
            cov[2]
        );
        out.push((b.name(), cov));
    }
    emit("fig3", &out);
}

fn fig6(budget: u64) {
    header("Figure 6: average ops between a source miss and its dependent miss");
    // Same specs as the fig1/tab2 baseline over the high-intensity
    // subset: all cache hits once either has run.
    let jobs: Vec<Benchmark> = Benchmark::HIGH_INTENSITY.to_vec();
    let runs = run_jobs("fig6-chains", baseline_specs(&jobs, budget));
    let mut out = Vec::new();
    for (b, r) in jobs.iter().zip(&runs) {
        let pairs: u64 = r.stats.cores.iter().map(|c| c.dep_chain_pairs).sum();
        let sum: u64 = r.stats.cores.iter().map(|c| c.dep_chain_uop_sum).sum();
        let mean = if pairs == 0 {
            0.0
        } else {
            sum as f64 / pairs as f64
        };
        println!("{:<12} {:>6.2}", b.name(), mean);
        out.push((b.name(), mean));
    }
    emit("fig6", &out);
}

// ---------------------------------------------------------------------
// Performance figures (12, 13, 14)
// ---------------------------------------------------------------------

fn perf_rows(grid: &[RunResult], workloads: &[String]) -> Vec<(String, Vec<(String, f64)>)> {
    let mut rows = Vec::new();
    for w in workloads {
        let base = find(grid, w, PrefetcherKind::None, false);
        let mut cols = Vec::new();
        for pf in PrefetcherKind::ALL {
            for emc in [false, true] {
                if pf == PrefetcherKind::None && !emc {
                    continue;
                }
                let r = find(grid, w, pf, emc);
                let label = format!("{}{}", pf.label(), if emc { "+EMC" } else { "" });
                cols.push((label, norm_weighted_speedup(r, &base.ipcs)));
            }
        }
        rows.push((w.clone(), cols));
    }
    rows
}

fn print_perf(rows: &[(String, Vec<(String, f64)>)]) {
    let labels: Vec<&str> = rows[0].1.iter().map(|(l, _)| l.as_str()).collect();
    print!("{:<12}", "workload");
    for l in &labels {
        print!(" {l:>14}");
    }
    println!();
    let mut sums = vec![0.0; labels.len()];
    for (w, cols) in rows {
        print!("{w:<12}");
        for (i, (_, v)) in cols.iter().enumerate() {
            print!(" {v:>14.3}");
            sums[i] += v;
        }
        println!();
    }
    print!("{:<12}", "gmean-ish");
    for s in &sums {
        print!(" {:>14.3}", s / rows.len() as f64);
    }
    println!();
}

fn fig12(grid: &[RunResult]) {
    header("Figure 12: quad-core weighted speedup vs no-PF baseline, H1-H10");
    let workloads: Vec<String> = QUAD_MIXES.iter().map(|(n, _)| n.to_string()).collect();
    let rows = perf_rows(grid, &workloads);
    print_perf(&rows);
    emit("fig12", &rows);
}

fn fig13(grid: &[RunResult]) {
    header("Figure 13: quad-core homogeneous workloads (4 copies each)");
    let workloads: Vec<String> = Benchmark::HIGH_INTENSITY
        .iter()
        .map(|b| format!("{}x4", b.name()))
        .collect();
    let rows = perf_rows(grid, &workloads);
    print_perf(&rows);
    emit("fig13", &rows);
}

fn fig14(budget: u64) {
    header("Figure 14: eight-core performance, single vs dual memory controller");
    for (label, cfg) in [
        ("1MC", SystemConfig::eight_core_1mc()),
        ("2MC", SystemConfig::eight_core_2mc()),
    ] {
        // Campaign names match the `campaign run mix8-*` CLI suites, so
        // either entry point warms the other.
        let grid = run_jobs(
            &format!("mix8-{}", label.to_lowercase()),
            mix8_jobs(cfg, budget),
        );
        println!("--- {label} ---");
        let workloads: Vec<String> = QUAD_MIXES.iter().map(|(n, _)| n.to_string()).collect();
        let rows = perf_rows(&grid, &workloads);
        print_perf(&rows);
        emit(&format!("fig14_{label}"), &rows);
    }
}

// ---------------------------------------------------------------------
// Analysis figures (15-19, 21, 22)
// ---------------------------------------------------------------------

fn emc_runs(grid: &[RunResult]) -> Vec<&RunResult> {
    QUAD_MIXES
        .iter()
        .map(|(n, _)| find(grid, n, PrefetcherKind::None, true))
        .collect()
}

fn fig15(grid: &[RunResult]) {
    header("Figure 15: fraction of all LLC misses generated by the EMC");
    let mut out = Vec::new();
    for r in emc_runs(grid) {
        let f = r.stats.emc_miss_fraction();
        println!(
            "{:<5} {:>6.1}%  |{}|",
            r.workload,
            100.0 * f,
            bar(f, 0.5, 40)
        );
        out.push((r.workload.clone(), f));
    }
    emit("fig15", &out);
}

fn fig16(grid: &[RunResult]) {
    header("Figure 16: row-buffer conflict-rate change vs no-PF baseline");
    let mut out = Vec::new();
    for (name, _) in QUAD_MIXES {
        let base = find(grid, name, PrefetcherKind::None, false);
        let emc = find(grid, name, PrefetcherKind::None, true);
        let delta = emc.stats.mem.row_conflict_rate() - base.stats.mem.row_conflict_rate();
        println!(
            "{name:<5} {:>+7.2}% (base {:.1}%, EMC {:.1}%)",
            100.0 * delta,
            100.0 * base.stats.mem.row_conflict_rate(),
            100.0 * emc.stats.mem.row_conflict_rate()
        );
        out.push((name, delta));
    }
    emit("fig16", &out);
}

fn fig17(grid: &[RunResult]) {
    header("Figure 17: EMC data-cache hit rate");
    let mut out = Vec::new();
    for r in emc_runs(grid) {
        let h = r.stats.emc.dcache_hit_rate();
        println!(
            "{:<5} {:>6.1}%  |{}|",
            r.workload,
            100.0 * h,
            bar(h, 0.6, 40)
        );
        out.push((r.workload.clone(), h));
    }
    emit("fig17", &out);
}

fn fig18(grid: &[RunResult]) {
    header("Figure 18: LLC-miss latency, EMC-issued vs core-issued (cycles)");
    // The paper's claim is about the latency *distribution*, so report
    // the median and tail of each histogram, not just the mean.
    println!(
        "{:<5} {:>24} {:>24} {:>9}",
        "mix", "core p50/p95/p99", "EMC p50/p95/p99", "saving"
    );
    let mut csum = 0.0;
    let mut esum = 0.0;
    let mut out = Vec::new();
    for r in emc_runs(grid) {
        let ch = &r.stats.mem.core_miss_latency;
        let eh = &r.stats.mem.emc_miss_latency;
        let (c, e) = (ch.mean(), eh.mean());
        let save = if c > 0.0 { 100.0 * (1.0 - e / c) } else { 0.0 };
        println!(
            "{:<5} {:>24} {:>24} {:>8.1}%",
            r.workload,
            format!("{}/{}/{}", ch.p50(), ch.p95(), ch.p99()),
            format!("{}/{}/{}", eh.p50(), eh.p95(), eh.p99()),
            save
        );
        csum += c;
        esum += e;
        out.push((
            r.workload.clone(),
            c,
            e,
            ch.p50(),
            ch.p95(),
            ch.p99(),
            eh.p50(),
            eh.p95(),
            eh.p99(),
        ));
    }
    println!(
        "{:<5} mean {:>7.0} vs {:>7.0} {:>8.1}%  (paper: ~20% lower for EMC requests)",
        "avg",
        csum / 10.0,
        esum / 10.0,
        100.0 * (1.0 - esum / csum)
    );
    emit("fig18", &out);
}

fn fig19(grid: &[RunResult]) {
    header("Figure 19: average cycles saved per EMC request, by source");
    println!(
        "{:<5} {:>12} {:>12} {:>12} {:>8}",
        "mix", "interconnect", "cache", "queue", "total"
    );
    let mut out = Vec::new();
    for r in emc_runs(grid) {
        let m = &r.stats.mem;
        let ring = m.core_ring_component.mean() - m.emc_ring_component.mean();
        let cache = m.core_cache_component.mean() - m.emc_cache_component.mean();
        let queue = m.core_queue_component.mean() - m.emc_queue_component.mean();
        println!(
            "{:<5} {:>12.0} {:>12.0} {:>12.0} {:>8.0}",
            r.workload,
            ring,
            cache,
            queue,
            ring + cache + queue
        );
        out.push((r.workload.clone(), ring, cache, queue));
    }
    emit("fig19", &out);
}

fn fig21(grid: &[RunResult]) {
    header("Figure 21: % of EMC-generated misses covered when prefetching is on");
    println!(
        "{:<5} {:>8} {:>8} {:>14}",
        "mix", "GHB", "Stream", "Markov+Stream"
    );
    let mut out = Vec::new();
    for (name, _) in QUAD_MIXES {
        let nopf = find(grid, name, PrefetcherKind::None, true);
        let denom = nopf.stats.emc.llc_misses_generated.max(1) as f64;
        let mut cov = [0.0f64; 3];
        for (i, pf) in [
            PrefetcherKind::Ghb,
            PrefetcherKind::Stream,
            PrefetcherKind::MarkovStream,
        ]
        .into_iter()
        .enumerate()
        {
            let r = find(grid, name, pf, true);
            cov[i] = 100.0 * r.stats.emc.requests_covered_by_prefetch as f64 / denom;
        }
        println!(
            "{name:<5} {:>7.1}% {:>7.1}% {:>13.1}%",
            cov[0], cov[1], cov[2]
        );
        out.push((name, cov));
    }
    emit("fig21", &out);
}

fn fig22(grid: &[RunResult]) {
    header("Figure 22: average uops per dependence chain");
    let mut out = Vec::new();
    let mut hist = [0u64; 17];
    for r in emc_runs(grid) {
        let m = r.stats.mean_chain_uops();
        println!("{:<5} {:>6.1}  |{}|", r.workload, m, bar(m, 16.0, 32));
        for c in &r.stats.cores {
            for (i, n) in c.chain_length_hist.iter().enumerate() {
                hist[i] += n;
            }
        }
        out.push((r.workload.clone(), m));
    }
    let total: u64 = hist.iter().sum();
    if total > 0 {
        println!("chain-length distribution over H1-H10:");
        for (len, n) in hist.iter().enumerate().filter(|(_, n)| **n > 0) {
            let frac = *n as f64 / total as f64;
            println!(
                "  {len:>2} uops {:>5.1}%  |{}|",
                100.0 * frac,
                bar(frac, 0.5, 30)
            );
        }
    }
    emit("fig22", &out);
}

// ---------------------------------------------------------------------
// Sensitivity (20), energy (23, 24), overhead (§6.5)
// ---------------------------------------------------------------------

fn fig20(budget: u64) {
    header("Figure 20: sensitivity to DRAM channels/ranks (speedup over 1C1R, no-PF)");
    // The paper averages H1-H10; we use three representative mixes to
    // bound runtime (override the budget env var for full sweeps).
    let mixes = ["H1", "H4", "H9"];
    let geoms = [
        (1, 1),
        (1, 2),
        (1, 4),
        (2, 1),
        (2, 2),
        (2, 4),
        (4, 2),
        (4, 4),
    ];
    let mut meta = Vec::new();
    let mut specs = Vec::new();
    for (c, r) in geoms {
        for emc in [false, true] {
            for m in mixes {
                let mut cfg = SystemConfig::quad_core().with_dram_geometry(c, r);
                cfg.emc.enabled = emc;
                let mix = emc_workloads::mix_by_name(m).expect("known mix");
                meta.push((c, r, emc));
                specs.push(JobSpec::mix(m, mix, cfg, budget));
            }
        }
    }
    let runs = run_jobs("fig20-dram-sensitivity", specs);
    // Aggregate IPC sum per (geom, emc) averaged over mixes, normalized
    // to (1,1,false).
    let agg = |c: usize, r: usize, emc: bool| -> f64 {
        let mut s = 0.0;
        for (j, run) in meta.iter().zip(&runs) {
            if j.0 == c && j.1 == r && j.2 == emc {
                s += run.stats.ipc_sum();
            }
        }
        s / mixes.len() as f64
    };
    let base = agg(1, 1, false);
    println!(
        "{:<8} {:>10} {:>10} {:>8}",
        "geometry", "no-EMC", "EMC", "EMC gain"
    );
    let mut out = Vec::new();
    for (c, r) in geoms {
        let b = agg(c, r, false) / base;
        let e = agg(c, r, true) / base;
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>+7.1}%",
            format!("{c}C{r}R"),
            b,
            e,
            100.0 * (e / b - 1.0)
        );
        out.push((format!("{c}C{r}R"), b, e));
    }
    emit("fig20", &out);
}

fn energy_rows(grid: &[RunResult], workloads: &[String], json: &str) {
    print!("{:<12}", "workload");
    let mut labels = Vec::new();
    for pf in PrefetcherKind::ALL {
        for emc in [false, true] {
            if pf == PrefetcherKind::None && !emc {
                continue;
            }
            labels.push(format!("{}{}", pf.label(), if emc { "+EMC" } else { "" }));
        }
    }
    for l in &labels {
        print!(" {l:>14}");
    }
    println!("   (% energy vs no-PF baseline)");
    let mut out = Vec::new();
    let mut sums = vec![0.0; labels.len()];
    for w in workloads {
        let base = find(grid, w, PrefetcherKind::None, false);
        print!("{w:<12}");
        let mut row = Vec::new();
        let mut i = 0;
        for pf in PrefetcherKind::ALL {
            for emc in [false, true] {
                if pf == PrefetcherKind::None && !emc {
                    continue;
                }
                let r = find(grid, w, pf, emc);
                let pct = r.energy.percent_vs(&base.energy);
                print!(" {pct:>+13.1}%");
                row.push(pct);
                sums[i] += pct;
                i += 1;
            }
        }
        println!();
        out.push((w.clone(), row));
    }
    print!("{:<12}", "mean");
    for s in &sums {
        print!(" {:>+13.1}%", s / workloads.len() as f64);
    }
    println!();
    emit(json, &out);
}

fn fig23(grid: &[RunResult]) {
    header("Figure 23: energy consumption vs no-EMC/no-PF baseline, H1-H10");
    let workloads: Vec<String> = QUAD_MIXES.iter().map(|(n, _)| n.to_string()).collect();
    energy_rows(grid, &workloads, "fig23");
}

fn fig24(grid: &[RunResult]) {
    header("Figure 24: energy consumption, homogeneous workloads");
    let workloads: Vec<String> = Benchmark::HIGH_INTENSITY
        .iter()
        .map(|b| format!("{}x4", b.name()))
        .collect();
    energy_rows(grid, &workloads, "fig24");
}

/// Automated reproduction self-test: re-runs a small grid and asserts
/// the scorecard's directional claims (EXPERIMENTS.md). Exits non-zero
/// on any violation.
fn check(budget: u64) {
    header("Reproduction self-check");
    let mut failures: Vec<String> = Vec::new();
    let mut claim = |name: &str, ok: bool, detail: String| {
        println!("{} {name}: {detail}", if ok { "PASS" } else { "FAIL" });
        if !ok {
            failures.push(name.to_string());
        }
    };

    // Representative mixes keep the check fast; the specs are a subset
    // of the quad grid, so a warm cache answers them without simulating.
    let mixes = ["H1", "H4", "H7"];
    let mut specs = Vec::new();
    for name in mixes {
        let mix = emc_workloads::mix_by_name(name).expect("known mix");
        for cfg in config_grid(SystemConfig::quad_core()) {
            specs.push(JobSpec::mix(name, mix, cfg, budget));
        }
    }
    let grid = run_jobs("check", specs);

    // 1. EMC speeds up the no-prefetch system on average.
    let mut emc_gain = 0.0;
    for name in mixes {
        let base = find(&grid, name, PrefetcherKind::None, false);
        let emc = find(&grid, name, PrefetcherKind::None, true);
        emc_gain += norm_weighted_speedup(emc, &base.ipcs);
    }
    emc_gain /= mixes.len() as f64;
    claim(
        "emc_speedup",
        emc_gain > 1.02,
        format!("mean weighted speedup {emc_gain:.3}"),
    );

    // 2. EMC-issued misses are faster than core-issued ones.
    let mut c = 0.0;
    let mut e = 0.0;
    for name in mixes {
        let r = find(&grid, name, PrefetcherKind::None, true);
        c += r.stats.mem.core_miss_latency.mean();
        e += r.stats.mem.emc_miss_latency.mean();
    }
    claim(
        "emc_latency",
        e < c,
        format!("core {:.0} vs EMC {:.0} cycles", c / 3.0, e / 3.0),
    );

    // 3. EMC saves energy; Markov+stream costs energy on chase mixes.
    let base = find(&grid, "H4", PrefetcherKind::None, false);
    let emc = find(&grid, "H4", PrefetcherKind::None, true);
    let mk = find(&grid, "H4", PrefetcherKind::MarkovStream, false);
    let d_emc = emc.energy.percent_vs(&base.energy);
    let d_mk = mk.energy.percent_vs(&base.energy);
    claim(
        "energy_direction",
        d_emc < d_mk,
        format!("EMC {d_emc:+.1}% vs Markov+Stream {d_mk:+.1}%"),
    );

    // 4. EMC traffic overhead is far below the Markov prefetcher's.
    let t_base = base.stats.mem.dram_traffic() as f64;
    let t_emc = emc.stats.mem.dram_traffic() as f64 / t_base;
    let t_mk = mk.stats.mem.dram_traffic() as f64 / t_base;
    claim(
        "traffic",
        t_emc < t_mk,
        format!("EMC x{t_emc:.2} vs Markov+Stream x{t_mk:.2}"),
    );

    // 5. Chains are real and bounded.
    let mean_chain = emc.stats.mean_chain_uops();
    claim(
        "chains",
        emc.stats.emc.chains_executed > 0 && mean_chain > 2.0 && mean_chain <= 16.0,
        format!(
            "{} chains, {:.1} uops mean",
            emc.stats.emc.chains_executed, mean_chain
        ),
    );

    if failures.is_empty() {
        println!(
            "
all checks passed"
        );
    } else {
        println!(
            "
FAILED: {failures:?}"
        );
        std::process::exit(1);
    }
}

/// Design-space ablations: the paper chose the EMC's context count, data
/// cache and uop-buffer sizes "via sensitivity analysis" (§5); this
/// regenerates that analysis, plus the §1/§2 mechanism comparison against
/// runahead execution.
fn ablation(budget: u64) {
    header("Ablation A: EMC design space (omnetpp x4, speedup vs no EMC)");
    let mut specs = vec![JobSpec::homog(
        Benchmark::Omnetpp,
        SystemConfig::quad_core().without_emc(),
        budget,
    )
    .with_label("baseline")];
    for contexts in [1usize, 2, 4] {
        let mut c = SystemConfig::quad_core();
        c.emc.contexts = contexts;
        specs.push(
            JobSpec::homog(Benchmark::Omnetpp, c, budget)
                .with_label(format!("contexts={contexts}")),
        );
    }
    for kb in [2u64, 4, 8] {
        let mut c = SystemConfig::quad_core();
        c.emc.dcache_bytes = kb * 1024;
        specs.push(
            JobSpec::homog(Benchmark::Omnetpp, c, budget).with_label(format!("dcache={kb}KB")),
        );
    }
    for buf in [8usize, 16, 32] {
        let mut c = SystemConfig::quad_core();
        c.emc.uop_buffer = buf;
        c.emc.prf_entries = buf.max(16);
        c.emc.live_in_entries = buf.max(16);
        specs.push(
            JobSpec::homog(Benchmark::Omnetpp, c, budget).with_label(format!("uop_buffer={buf}")),
        );
    }
    for cand in [1usize, 2, 4] {
        let mut c = SystemConfig::quad_core();
        c.emc.chain_candidates = cand;
        specs.push(
            JobSpec::homog(Benchmark::Omnetpp, c, budget).with_label(format!("candidates={cand}")),
        );
    }
    let runs = run_jobs("ablation-design", specs);
    let (base, variants) = runs.split_first().expect("baseline plus variants");
    let mut out = Vec::new();
    for r in variants {
        let ws = norm_weighted_speedup(r, &base.ipcs);
        println!(
            "{:<16} {ws:>7.3}  (chains {} / rejected {})",
            r.workload,
            r.stats.cores.iter().map(|c| c.chains_sent).sum::<u64>(),
            r.stats.emc.chains_rejected_busy
        );
        out.push((r.workload.clone(), ws));
    }
    emit("ablation_design", &out);

    header("Ablation B: mechanism comparison — runahead vs EMC (speedup vs plain core)");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "bench", "runahead", "EMC", "both"
    );
    let benches = [
        Benchmark::Mcf,
        Benchmark::Omnetpp,
        Benchmark::Soplex,
        Benchmark::Milc,
        Benchmark::Libquantum,
    ];
    let mut specs = Vec::new();
    for b in benches {
        let plain = SystemConfig::quad_core().without_emc();
        let mut ra = plain.clone();
        ra.core.runahead = true;
        let mut both = SystemConfig::quad_core();
        both.core.runahead = true;
        for (tag, cfg) in [
            ("plain", plain),
            ("runahead", ra),
            ("emc", SystemConfig::quad_core()),
            ("both", both),
        ] {
            specs.push(JobSpec::homog(b, cfg, budget).with_label(format!("{}-{tag}", b.name())));
        }
    }
    let runs = run_jobs("ablation-mechanisms", specs);
    let mut out = Vec::new();
    for (i, b) in benches.iter().enumerate() {
        let group = &runs[i * 4..(i + 1) * 4];
        let ws: Vec<f64> = group[1..]
            .iter()
            .map(|r| norm_weighted_speedup(r, &group[0].ipcs))
            .collect();
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3}",
            b.name(),
            ws[0],
            ws[1],
            ws[2]
        );
        out.push((b.name(), ws));
    }
    println!("(runahead targets independent misses; the EMC targets dependent ones — §1/§2)");
    emit("ablation_mechanisms", &out);
}

fn overhead(grid: &[RunResult]) {
    header("Section 6.5: EMC interconnect overhead (averages over H1-H10)");
    let mut live_in = 0.0;
    let mut live_out = 0.0;
    let mut chains = 0u64;
    let mut data_pct = 0.0;
    let mut ctrl_pct = 0.0;
    let mut emc_data_share = 0.0;
    let n = QUAD_MIXES.len() as f64;
    for (name, _) in QUAD_MIXES {
        let base = find(grid, name, PrefetcherKind::None, false);
        let emc = find(grid, name, PrefetcherKind::None, true);
        let c: u64 = emc.stats.cores.iter().map(|x| x.chains_sent).sum();
        chains += c;
        if c > 0 {
            live_in += emc
                .stats
                .cores
                .iter()
                .map(|x| x.chain_live_ins)
                .sum::<u64>() as f64
                / c as f64;
            live_out += emc
                .stats
                .cores
                .iter()
                .map(|x| x.chain_live_outs)
                .sum::<u64>() as f64
                / c as f64;
        }
        data_pct += 100.0
            * (emc.stats.ring.data_msgs as f64 / base.stats.ring.data_msgs.max(1) as f64 - 1.0);
        ctrl_pct += 100.0
            * (emc.stats.ring.control_msgs as f64 / base.stats.ring.control_msgs.max(1) as f64
                - 1.0);
        emc_data_share +=
            100.0 * emc.stats.ring.emc_data_msgs as f64 / emc.stats.ring.data_msgs.max(1) as f64;
    }
    println!("chains executed (total over mixes): {chains}");
    println!(
        "average live-ins per chain:  {:.1} (paper: 6.4)",
        live_in / n
    );
    println!(
        "average live-outs per chain: {:.1} (paper: 8.8)",
        live_out / n
    );
    println!(
        "data-ring message increase:  {:+.1}% (paper: +33%)",
        data_pct / n
    );
    println!(
        "control-ring message increase: {:+.1}% (paper: +7%)",
        ctrl_pct / n
    );
    println!(
        "EMC share of data messages:  {:.1}% (paper: 25%)",
        emc_data_share / n
    );
}
