//! The host-performance harness behind the `perf` bin: measure how
//! fast the simulator runs the pinned fig12 quad grid and emit a
//! versioned `emc-bench-v1` trajectory artifact.
//!
//! ROADMAP item 1 demands a tracked `BENCH_<git-sha>.json` at the repo
//! root so every perf PR can show its before/after. One document
//! contains, per quad-grid cell (4 prefetchers × EMC on/off on the
//! pinned mix): simulated cycles per host second, retired uops per
//! second, the [`ProfileReport`] phase breakdown, and the allocation
//! churn seen by [`crate::alloc`]. A final `observability_tax` entry
//! runs the base cell twice — profiler off, then on — so the artifact
//! carries the measured cost of its own instrumentation.
//!
//! Everything here is library code so the schema can be tested: the
//! bin only parses flags and installs the counting allocator.
//! EXPERIMENTS.md ("Perf trajectory") documents the recording
//! protocol; the CI `bench-smoke` job validates every build against
//! [`validate_bench_doc`] and a committed reference point.

use std::process::Command;

use emc_sim::{build_system, cycle_cap, ProfileReport, ThroughputMeter};
use emc_types::{JsonValue, SystemConfig};
use emc_workloads::Benchmark;

use crate::alloc::{counters, AllocCounters};

/// Schema tag stamped into every perf artifact.
pub const BENCH_SCHEMA: &str = "emc-bench-v1";

/// Default per-core retired-uop budget per cell. Large enough that a
/// release build amortizes startup, small enough that all 8 cells plus
/// the tax A/B finish in seconds.
pub const DEFAULT_PERF_BUDGET: u64 = 10_000;

/// Default workload mix for the grid (H4: the paper's headline
/// heterogeneous mix, also the `fig12_quadcore` criterion pin).
pub const DEFAULT_PERF_MIX: &str = "H4";

/// The short git SHA naming the measured tree: `EMC_GIT_SHA` when set
/// (CI provenance), else `git rev-parse --short=12 HEAD`, else
/// `"unknown"` (e.g. a source tarball without git).
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("EMC_GIT_SHA") {
        let sha = sha.trim().to_string();
        if !sha.is_empty() {
            return sha;
        }
    }
    Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Display label for one grid cell ("GHB+EMC", "No-PF", ...).
pub fn config_label(cfg: &SystemConfig) -> String {
    if cfg.emc.enabled {
        format!("{}+EMC", cfg.prefetcher.label())
    } else {
        cfg.prefetcher.label().to_string()
    }
}

/// One quad-grid cell's host-performance measurement.
#[derive(Debug, Clone)]
pub struct CellPerf {
    /// Cell label from [`config_label`].
    pub config: String,
    /// Prefetcher label.
    pub prefetcher: String,
    /// Whether the EMC was enabled.
    pub emc: bool,
    /// How the run ended ("completed", "wedged", "cap-hit").
    pub outcome: String,
    /// Simulated cycles executed.
    pub cycles: u64,
    /// Retired uops, summed over cores.
    pub retired_uops: u64,
    /// Host wall time for the run, nanoseconds.
    pub wall_nanos: u64,
    /// Simulated cycles per host second.
    pub cycles_per_sec: f64,
    /// Retired uops per host second.
    pub uops_per_sec: f64,
    /// Host-side phase breakdown (stride-sampled).
    pub profile: ProfileReport,
    /// Allocation churn during the run (zeros unless the counting
    /// allocator is installed, i.e. outside the `perf` bin).
    pub alloc: AllocCounters,
}

/// Simulate one cell and measure the host: wall time, throughput,
/// phase breakdown (at `stride`; 0 = profiler off), allocation churn.
///
/// # Panics
///
/// Panics if the system cannot be built (mismatched workload count or
/// invalid config) — perf cells are pinned configs, so that is a bug.
pub fn measure_cell(
    cfg: SystemConfig,
    benches: &[Benchmark],
    budget: u64,
    stride: u32,
) -> CellPerf {
    let config = config_label(&cfg);
    let prefetcher = cfg.prefetcher.label().to_string();
    let emc = cfg.emc.enabled;
    let mut sys = build_system(cfg, benches).unwrap_or_else(|e| panic!("perf cell: {e}"));
    if stride > 0 {
        sys.enable_profiling(stride);
    }
    let alloc_before = counters();
    let meter = ThroughputMeter::new();
    let report = sys.run(budget, cycle_cap(budget));
    let retired: u64 = report.stats.cores.iter().map(|c| c.retired_uops).sum();
    let throughput = meter.finish(report.stats.cycles, retired);
    let alloc = counters().since(alloc_before);
    CellPerf {
        config,
        prefetcher,
        emc,
        outcome: emc_sim::metrics::outcome_label(report.outcome).to_string(),
        cycles: report.stats.cycles,
        retired_uops: retired,
        wall_nanos: throughput.wall_nanos,
        cycles_per_sec: throughput.cycles_per_sec(),
        uops_per_sec: throughput.uops_per_sec(),
        profile: sys.profile_report(),
        alloc,
    }
}

/// The measured cost of the profiler itself: the same cell run with
/// profiling off, then on.
#[derive(Debug, Clone, Copy)]
pub struct ObservabilityTax {
    /// Cycles/sec with the profiler off (the true baseline).
    pub baseline_cycles_per_sec: f64,
    /// Cycles/sec with the profiler on at the artifact's stride.
    pub profiled_cycles_per_sec: f64,
}

impl ObservabilityTax {
    /// Fractional slowdown: 0.02 = profiling cost 2% of throughput.
    /// Negative values are measurement noise (the profiled run was
    /// faster) and read as zero cost.
    pub fn delta_frac(&self) -> f64 {
        if self.profiled_cycles_per_sec <= 0.0 {
            return 0.0;
        }
        self.baseline_cycles_per_sec / self.profiled_cycles_per_sec - 1.0
    }
}

/// Measure the [`ObservabilityTax`] on one pinned cell (profiler off
/// vs. on at `stride`).
pub fn measure_tax(
    cfg: SystemConfig,
    benches: &[Benchmark],
    budget: u64,
    stride: u32,
) -> ObservabilityTax {
    let off = measure_cell(cfg.clone(), benches, budget, 0);
    let on = measure_cell(cfg, benches, budget, stride);
    ObservabilityTax {
        baseline_cycles_per_sec: off.cycles_per_sec,
        profiled_cycles_per_sec: on.cycles_per_sec,
    }
}

fn cell_json(c: &CellPerf) -> JsonValue {
    JsonValue::obj(vec![
        ("config", c.config.as_str().into()),
        ("prefetcher", c.prefetcher.as_str().into()),
        ("emc", c.emc.into()),
        ("outcome", c.outcome.as_str().into()),
        ("cycles", c.cycles.into()),
        ("retired_uops", c.retired_uops.into()),
        ("wall_nanos", c.wall_nanos.into()),
        ("cycles_per_sec", c.cycles_per_sec.into()),
        ("uops_per_sec", c.uops_per_sec.into()),
        ("profile", c.profile.to_json()),
        (
            "alloc",
            JsonValue::obj(vec![
                ("allocs", c.alloc.allocs.into()),
                ("frees", c.alloc.frees.into()),
                ("bytes", c.alloc.bytes.into()),
                (
                    "allocs_per_kilocycle",
                    c.alloc.allocs_per_kilocycle(c.cycles).into(),
                ),
                (
                    "bytes_per_kilocycle",
                    c.alloc.bytes_per_kilocycle(c.cycles).into(),
                ),
            ]),
        ),
    ])
}

/// Assemble the full `emc-bench-v1` document.
pub fn perf_doc(
    git_sha: &str,
    mix: &str,
    budget: u64,
    stride: u32,
    cells: &[CellPerf],
    tax: &ObservabilityTax,
) -> JsonValue {
    let wall: u64 = cells.iter().map(|c| c.wall_nanos).sum();
    let cycles: u64 = cells.iter().map(|c| c.cycles).sum();
    let uops: u64 = cells.iter().map(|c| c.retired_uops).sum();
    let secs = wall as f64 / 1e9;
    let (cps, ups) = if wall > 0 {
        (cycles as f64 / secs, uops as f64 / secs)
    } else {
        (0.0, 0.0)
    };
    JsonValue::obj(vec![
        ("schema", BENCH_SCHEMA.into()),
        ("git_sha", git_sha.into()),
        ("suite", "fig12-quad-grid".into()),
        ("mix", mix.into()),
        ("budget", budget.into()),
        ("profile_stride", u64::from(stride).into()),
        (
            "cells",
            JsonValue::Arr(cells.iter().map(cell_json).collect()),
        ),
        (
            "totals",
            JsonValue::obj(vec![
                ("wall_nanos", wall.into()),
                ("cycles", cycles.into()),
                ("retired_uops", uops.into()),
                ("cycles_per_sec", cps.into()),
                ("uops_per_sec", ups.into()),
            ]),
        ),
        (
            "observability_tax",
            JsonValue::obj(vec![
                (
                    "baseline_cycles_per_sec",
                    tax.baseline_cycles_per_sec.into(),
                ),
                (
                    "profiled_cycles_per_sec",
                    tax.profiled_cycles_per_sec.into(),
                ),
                ("delta_frac", tax.delta_frac().into()),
            ]),
        ),
    ])
}

fn req_num(v: &JsonValue, ctx: &str, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(|x| x.as_f64())
        .filter(|n| n.is_finite())
        .ok_or_else(|| format!("{ctx}: missing or non-finite {key:?}"))
}

/// Structural validation of an `emc-bench-v1` document, including the
/// physical invariant the schema promises: per-phase wall-times are
/// non-negative and sum to at most the cell's total wall time (sampled
/// phase intervals are disjoint sub-intervals of the run).
pub fn validate_bench_doc(doc: &JsonValue) -> Result<(), String> {
    let schema = doc.get("schema").and_then(|v| v.as_str()).unwrap_or("");
    if schema != BENCH_SCHEMA {
        return Err(format!("schema {schema:?}, expected {BENCH_SCHEMA:?}"));
    }
    if doc
        .get("git_sha")
        .and_then(|v| v.as_str())
        .is_none_or(str::is_empty)
    {
        return Err("missing git_sha".into());
    }
    let cells = doc
        .get("cells")
        .and_then(|v| v.as_arr())
        .ok_or("missing cells")?;
    if cells.is_empty() {
        return Err("no cells measured".into());
    }
    for (i, cell) in cells.iter().enumerate() {
        let ctx = format!("cells[{i}]");
        let wall = req_num(cell, &ctx, "wall_nanos")?;
        let cps = req_num(cell, &ctx, "cycles_per_sec")?;
        if wall <= 0.0 || cps <= 0.0 {
            return Err(format!("{ctx}: non-positive wall_nanos/cycles_per_sec"));
        }
        req_num(cell, &ctx, "cycles")?;
        let alloc = cell
            .get("alloc")
            .ok_or_else(|| format!("{ctx}: no alloc"))?;
        for key in ["allocs", "bytes", "allocs_per_kilocycle"] {
            if req_num(alloc, &ctx, key)? < 0.0 {
                return Err(format!("{ctx}: negative alloc {key}"));
            }
        }
        let phases = cell
            .get("profile")
            .and_then(|p| p.get("phases"))
            .and_then(|p| p.as_arr())
            .ok_or_else(|| format!("{ctx}: no profile.phases"))?;
        let mut phase_sum = 0.0f64;
        for (j, phase) in phases.iter().enumerate() {
            let pctx = format!("{ctx}.phases[{j}]");
            if phase
                .get("phase")
                .and_then(|v| v.as_str())
                .is_none_or(str::is_empty)
            {
                return Err(format!("{pctx}: unnamed phase"));
            }
            let nanos = req_num(phase, &pctx, "nanos")?;
            if nanos < 0.0 {
                return Err(format!("{pctx}: negative wall-time"));
            }
            phase_sum += nanos;
        }
        if phase_sum > wall {
            return Err(format!(
                "{ctx}: phase nanos sum {phase_sum} exceeds run wall {wall}"
            ));
        }
    }
    let tax = doc.get("observability_tax").ok_or("no observability_tax")?;
    if req_num(tax, "observability_tax", "baseline_cycles_per_sec")? <= 0.0 {
        return Err("observability_tax: non-positive baseline".into());
    }
    req_num(tax, "observability_tax", "profiled_cycles_per_sec")?;
    req_num(tax, "observability_tax", "delta_frac")?;
    Ok(())
}
