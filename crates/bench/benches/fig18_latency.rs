//! Figure 18 (scaled down): the headline per-request claim — LLC misses
//! issued by the EMC observe lower latency than core-issued ones. The
//! bench runs one EMC configuration and asserts the direction of the
//! effect while measuring the harness cost.

use criterion::{criterion_group, criterion_main, Criterion};
use emc_sim::run_homogeneous;
use emc_types::SystemConfig;
use emc_workloads::Benchmark;

fn bench_fig18(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig18_latency");
    g.sample_size(10);
    g.bench_function("omnetpp_x4_emc_vs_core_latency", |b| {
        b.iter(|| {
            let stats = run_homogeneous(SystemConfig::quad_core(), Benchmark::Omnetpp, 4_000)
                .expect_completed();
            let core = stats.mem.core_miss_latency.mean();
            let emc = stats.mem.emc_miss_latency.mean();
            if emc > 0.0 && core > 0.0 {
                assert!(
                    emc < core * 1.05,
                    "EMC-issued misses must not be slower: {emc:.0} vs {core:.0}"
                );
            }
            std::hint::black_box((core, emc))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_fig18);
criterion_main!(benches);
