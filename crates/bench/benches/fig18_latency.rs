//! Figure 18 (scaled down): the headline per-request claim — LLC misses
//! issued by the EMC observe lower latency than core-issued ones. The
//! paper's figure is a distribution claim, so the assertion compares
//! percentiles (p50 and p95), not just the mean, while measuring the
//! harness cost.

use criterion::{criterion_group, criterion_main, Criterion};
use emc_sim::run_homogeneous;
use emc_types::SystemConfig;
use emc_workloads::Benchmark;

fn bench_fig18(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig18_latency");
    g.sample_size(10);
    g.bench_function("omnetpp_x4_emc_vs_core_latency", |b| {
        b.iter(|| {
            let stats = run_homogeneous(SystemConfig::quad_core(), Benchmark::Omnetpp, 4_000)
                .expect_completed();
            let core = &stats.mem.core_miss_latency;
            let emc = &stats.mem.emc_miss_latency;
            if emc.count > 0 && core.count > 0 {
                assert!(
                    emc.mean() < core.mean() * 1.05,
                    "EMC-issued misses must not be slower: {:.0} vs {:.0}",
                    emc.mean(),
                    core.mean()
                );
                // Log2 buckets are coarse, so allow one bucket (2x) of
                // slack at the median and insist the tail not regress.
                assert!(
                    emc.p50() < core.p50() * 2,
                    "EMC-issued median must not be slower: {} vs {}",
                    emc.p50(),
                    core.p50()
                );
                assert!(
                    emc.p95() <= core.p95() * 2,
                    "EMC-issued tail must not regress: p95 {} vs {}",
                    emc.p95(),
                    core.p95()
                );
            }
            std::hint::black_box((core.p50(), core.p95(), emc.p50(), emc.p95()))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_fig18);
criterion_main!(benches);
