//! Figure 1 (scaled down): DRAM latency vs on-chip delay for a memory-
//! intensive benchmark. The bench measures the simulation that produces
//! the figure's decomposition and asserts its defining property — for
//! high-MPKI workloads, on-chip delay is a large share of total miss
//! latency.

use criterion::{criterion_group, criterion_main, Criterion};
use emc_sim::run_homogeneous;
use emc_types::SystemConfig;
use emc_workloads::Benchmark;

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01_latency_breakdown");
    g.sample_size(10);
    g.bench_function("mcf_x4_latency_decomposition", |b| {
        b.iter(|| {
            let stats = run_homogeneous(
                SystemConfig::quad_core().without_emc(),
                Benchmark::Mcf,
                3_000,
            )
            .expect_completed();
            let dram = stats.mem.dram_service_latency.mean();
            let chip = stats.mem.on_chip_delay.mean();
            assert!(dram > 0.0, "misses must reach DRAM");
            assert!(
                chip > 0.2 * (dram + chip),
                "Figure 1 property: on-chip delay is a substantial share"
            );
            std::hint::black_box((dram, chip))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
