//! Simulator-throughput microbenchmarks: how fast the cycle model runs
//! for representative workload classes. These are engineering benches
//! (cycles simulated per wall-second), not paper figures.

use criterion::{criterion_group, criterion_main, Criterion};
use emc_sim::{build_system, cycle_cap};
use emc_types::SystemConfig;
use emc_workloads::Benchmark;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    for (name, bench) in [
        ("pointer_chase_mcf", Benchmark::Mcf),
        ("streaming_libquantum", Benchmark::Libquantum),
        ("compute_povray", Benchmark::Povray),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut sys =
                    build_system(SystemConfig::quad_core(), &[bench, bench, bench, bench])
                        .expect("build system");
                std::hint::black_box(sys.run(2_000, cycle_cap(2_000)))
            });
        });
    }
    g.finish();
}

/// Guard on the observability tax: with tracing disabled (the default),
/// the simulator must run at baseline speed — the trace hooks compile
/// down to a branch on a disabled sink. Criterion reports both
/// configurations side by side so a regression in the disabled path
/// shows up as the two bars separating; the traced run also asserts the
/// zero-perturbation property (identical statistics).
fn bench_observability_tax(c: &mut Criterion) {
    let mut g = c.benchmark_group("observability_tax");
    g.sample_size(10);
    let bench = Benchmark::Mcf;
    let baseline = {
        let mut sys = build_system(SystemConfig::quad_core(), &[bench, bench, bench, bench])
            .expect("build system");
        sys.run(2_000, cycle_cap(2_000))
    };
    g.bench_function("tracing_disabled", |b| {
        b.iter(|| {
            let mut sys = build_system(SystemConfig::quad_core(), &[bench, bench, bench, bench])
                .expect("build system");
            let report = sys.run(2_000, cycle_cap(2_000));
            assert_eq!(report.stats.cycles, baseline.stats.cycles);
            std::hint::black_box(report)
        });
    });
    g.bench_function("tracing_enabled", |b| {
        b.iter(|| {
            let mut sys = build_system(SystemConfig::quad_core(), &[bench, bench, bench, bench])
                .expect("build system");
            sys.enable_tracing();
            sys.set_sample_interval(1_000);
            let report = sys.run(2_000, cycle_cap(2_000));
            assert_eq!(
                report.stats.cycles, baseline.stats.cycles,
                "tracing perturbed the simulation"
            );
            std::hint::black_box(report)
        });
    });
    // The host-side phase profiler at its default stride: like tracing,
    // it must neither perturb results nor separate visibly from the
    // disabled bar.
    g.bench_function("profiler_enabled", |b| {
        b.iter(|| {
            let mut sys = build_system(SystemConfig::quad_core(), &[bench, bench, bench, bench])
                .expect("build system");
            sys.enable_profiling(emc_sim::DEFAULT_PROFILE_STRIDE);
            let report = sys.run(2_000, cycle_cap(2_000));
            assert_eq!(
                report.stats.cycles, baseline.stats.cycles,
                "profiling perturbed the simulation"
            );
            std::hint::black_box(report)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_sim, bench_observability_tax);
criterion_main!(benches);
