//! Simulator-throughput microbenchmarks: how fast the cycle model runs
//! for representative workload classes. These are engineering benches
//! (cycles simulated per wall-second), not paper figures.

use criterion::{criterion_group, criterion_main, Criterion};
use emc_sim::{build_system, cycle_cap};
use emc_types::SystemConfig;
use emc_workloads::Benchmark;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    for (name, bench) in [
        ("pointer_chase_mcf", Benchmark::Mcf),
        ("streaming_libquantum", Benchmark::Libquantum),
        ("compute_povray", Benchmark::Povray),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut sys =
                    build_system(SystemConfig::quad_core(), &[bench, bench, bench, bench])
                        .expect("build system");
                std::hint::black_box(sys.run(2_000, cycle_cap(2_000)))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
