//! Schema tests for the `emc-bench-v1` perf artifact: round-trip
//! through the hand-rolled `emc_types::json` parser, plus property
//! tests of the document invariant the schema promises — per-phase
//! wall-times are non-negative and sum to at most the cell's total run
//! wall-time.

use emc_bench::alloc::AllocCounters;
use emc_bench::perf::{
    measure_cell, measure_tax, perf_doc, validate_bench_doc, CellPerf, ObservabilityTax,
    BENCH_SCHEMA,
};
use emc_sim::{Phase, TickProfiler};
use emc_types::{JsonValue, SystemConfig};
use emc_workloads::mix_by_name;
use proptest::prelude::*;

/// A cell built from explicit numbers (no simulation): `phase_nanos`
/// feed the profiler via its test-support `record` hook.
fn synthetic_cell(phase_nanos: [u64; 7], wall_nanos: u64) -> CellPerf {
    let mut profiler = TickProfiler::with_stride(1);
    profiler.begin_tick();
    for (phase, nanos) in Phase::ALL.into_iter().zip(phase_nanos) {
        profiler.record(phase, nanos);
    }
    let secs = wall_nanos as f64 / 1e9;
    CellPerf {
        config: "GHB+EMC".into(),
        prefetcher: "GHB".into(),
        emc: true,
        outcome: "completed".into(),
        cycles: 40_000,
        retired_uops: 8_000,
        wall_nanos,
        cycles_per_sec: if secs > 0.0 { 40_000.0 / secs } else { 0.0 },
        uops_per_sec: if secs > 0.0 { 8_000.0 / secs } else { 0.0 },
        profile: profiler.report(),
        alloc: AllocCounters {
            allocs: 120,
            frees: 110,
            bytes: 64_000,
        },
    }
}

fn tax() -> ObservabilityTax {
    ObservabilityTax {
        baseline_cycles_per_sec: 1.0e6,
        profiled_cycles_per_sec: 0.98e6,
    }
}

#[test]
fn doc_round_trips_through_hand_rolled_parser() {
    let cells = vec![
        synthetic_cell([10, 20, 30, 40, 50, 60, 70], 1_000),
        synthetic_cell([0, 0, 0, 0, 0, 0, 0], 500),
    ];
    let doc = perf_doc("abc123def456", "H4", 10_000, 64, &cells, &tax());
    validate_bench_doc(&doc).expect("generated doc is valid");

    // Compact and pretty forms both parse back to the same structure.
    let back = JsonValue::parse(&doc.to_json()).expect("compact parses");
    assert_eq!(back, doc, "compact round-trip is lossless");
    let back = JsonValue::parse(&doc.to_json_pretty()).expect("pretty parses");
    assert_eq!(back, doc, "pretty round-trip is lossless");

    assert_eq!(
        back.get("schema").and_then(|v| v.as_str()),
        Some(BENCH_SCHEMA)
    );
    assert_eq!(
        back.get("cells").and_then(|c| c.as_arr()).map(<[_]>::len),
        Some(2)
    );
}

#[test]
fn validator_rejects_structural_breakage() {
    let cells = vec![synthetic_cell([1, 2, 3, 4, 5, 6, 7], 100)];
    let good = perf_doc("sha", "H4", 1_000, 64, &cells, &tax());

    let mut wrong_schema = good.clone();
    if let JsonValue::Obj(pairs) = &mut wrong_schema {
        pairs[0].1 = "emc-bench-v0".into();
    }
    assert!(validate_bench_doc(&wrong_schema).is_err(), "schema tag");

    let empty = perf_doc("sha", "H4", 1_000, 64, &[], &tax());
    assert!(validate_bench_doc(&empty).is_err(), "no cells");

    // Phase nanos exceeding the run wall violate the core invariant.
    let impossible = vec![synthetic_cell([50, 50, 50, 0, 0, 0, 0], 100)];
    let doc = perf_doc("sha", "H4", 1_000, 64, &impossible, &tax());
    let e = validate_bench_doc(&doc).expect_err("sum 150 > wall 100");
    assert!(e.contains("exceeds run wall"), "got: {e}");
}

#[test]
fn measured_cell_satisfies_the_schema() {
    // One real (tiny) simulation through the full pipeline: the doc it
    // produces validates, i.e. the profiler's sampled phase intervals
    // really are disjoint sub-intervals of the measured run.
    let mix = mix_by_name("H4").expect("pinned mix exists");
    let cell = measure_cell(SystemConfig::quad_core(), &mix, 300, 4);
    let phase_sum: u64 = cell.profile.phases.iter().map(|p| p.nanos).sum();
    assert!(cell.wall_nanos > 0);
    assert!(
        phase_sum <= cell.wall_nanos,
        "phase sum {phase_sum} within wall {}",
        cell.wall_nanos
    );
    let t = measure_tax(SystemConfig::quad_core(), &mix, 300, 4);
    let doc = perf_doc("test-sha", "H4", 300, 4, &[cell], &t);
    validate_bench_doc(&doc).expect("real measurement validates");
}

proptest! {
    /// For any phase timings whose sum fits under the wall, the doc is
    /// valid, every serialized phase nano is non-negative, and the
    /// parsed doc equals the original (the hand-rolled writer/parser
    /// pair is lossless for schema documents).
    #[test]
    fn phase_times_nonnegative_and_bounded_by_wall(
        nanos_vec in prop::collection::vec(0u64..200_000, 7),
        slack in 0u64..1_000_000,
    ) {
        let nanos: [u64; 7] = nanos_vec.try_into().expect("exactly 7");
        let sum: u64 = nanos.iter().sum();
        let wall = (sum + slack).max(1);
        let cells = vec![synthetic_cell(nanos, wall)];
        let doc = perf_doc("sha", "H4", 1_000, 64, &cells, &tax());
        prop_assert!(validate_bench_doc(&doc).is_ok());

        let parsed = JsonValue::parse(&doc.to_json()).expect("parses");
        prop_assert_eq!(&parsed, &doc);
        let phases = parsed
            .get("cells").and_then(|c| c.idx(0))
            .and_then(|c| c.get("profile"))
            .and_then(|p| p.get("phases"))
            .and_then(|p| p.as_arr())
            .expect("phases present");
        let mut total = 0.0f64;
        for p in phases {
            let n = p.get("nanos").and_then(|v| v.as_f64()).expect("nanos");
            prop_assert!(n >= 0.0);
            total += n;
        }
        prop_assert!(total <= wall as f64);
    }

    /// Timings that overflow the wall always fail validation: the
    /// invariant is enforced, not just documented.
    #[test]
    fn overflowing_phase_times_are_rejected(
        nanos_vec in prop::collection::vec(1u64..200_000, 7),
        deficit in 1u64..500,
    ) {
        let nanos: [u64; 7] = nanos_vec.try_into().expect("exactly 7");
        let sum: u64 = nanos.iter().sum();
        let wall = sum.saturating_sub(deficit).max(1);
        prop_assume!(wall < sum);
        let cells = vec![synthetic_cell(nanos, wall)];
        let doc = perf_doc("sha", "H4", 1_000, 64, &cells, &tax());
        prop_assert!(validate_bench_doc(&doc).is_err());
    }
}
