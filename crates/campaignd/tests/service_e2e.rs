//! End-to-end service test, in-process: the ISSUE-9 acceptance
//! scenario. Three tenants queue 1000+ tasks onto a 4-worker pool,
//! the daemon is killed mid-run (abrupt stop, workers abandoned), and a
//! second service instance over the same cache directory resumes every
//! journaled job without re-executing a single simulation. Along the
//! way: per-tenant queue waits stay bounded by the aging threshold,
//! and `/v1/stats` agrees with the manifests on disk (hit counts,
//! executed counts, latency percentiles).
//!
//! The cross-process variant of this scenario (release binary, real
//! sockets, `kill -9`) runs in CI as the `campaignd-smoke` job; this
//! test keeps the same logic fast and deterministic under `cargo test`.

use std::path::{Path, PathBuf};
use std::time::Duration;

use emc_campaign::Manifest;
use emc_campaignd::{Service, ServiceConfig};
use emc_types::{Histogram, JobState, SubmitRequest};

const WORKERS: usize = 4;
const AGE_MS: u64 = 2_000;
const BUDGET: u64 = 250;
/// Tasks per submission: the quad suite narrowed to (No-PF, EMC off)
/// is 10 configs, repeated 3× with bumped seeds.
const TASKS_PER_JOB: u64 = 30;
/// Identical flood submissions per tenant (same keys every time).
const FLOOD_PER_TENANT: usize = 12;

fn tmp_cache() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("emc-service-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(cache_dir: &Path) -> ServiceConfig {
    ServiceConfig {
        workers: WORKERS,
        queue_cap: 4096,
        mark_cap: 4,
        age_ms: AGE_MS,
        default_budget: BUDGET,
        cache_dir: cache_dir.to_path_buf(),
        poll_timeout_ms: 2_000,
    }
}

/// The shared grid every submission in this test expands to: same
/// suite, same narrowing, same repeat/seed — so every tenant's tasks
/// resolve to the same 30 cache keys.
fn shared_request(tenant: &str) -> SubmitRequest {
    let mut req = SubmitRequest::new(tenant, "quad");
    req.prefetcher = Some("No-PF".into());
    req.emc = Some(false);
    req.repeat = 3;
    req
}

#[test]
fn three_tenants_thousand_tasks_kill_and_resume() {
    let cache_dir = tmp_cache();
    let tenants = ["alice", "bob", "carol"];

    // ---------------- Life 1: warm up, flood, die mid-run ----------------
    let svc = Service::new(cfg(&cache_dir));
    let workers = svc.start_workers();

    // Alice's first submission executes all 30 unique specs cold.
    let warmup = svc.submit(&shared_request("alice")).expect("admitted");
    assert_eq!(warmup.total, TASKS_PER_JOB);
    assert!(svc.wait_all_jobs(Duration::from_secs(120)), "warmup drains");

    // Stats vs. manifest, cold side: everything executed, nothing hit,
    // and the latency percentiles in /v1/stats are the same numbers the
    // manifest's host-perf columns hold.
    let stats1 = svc.stats();
    assert_eq!(stats1.executed, TASKS_PER_JOB);
    assert_eq!(stats1.hits, 0);
    assert_eq!(stats1.hit_rate, 0.0);
    assert_eq!(stats1.task_wall_ms.count, TASKS_PER_JOB, "executed only");
    let m1 = Manifest::load(&cache_dir, &format!("svc-{}", warmup.id)).expect("warmup manifest");
    let mut manifest_wall = Histogram::new();
    for e in m1.entries.iter().filter(|e| e.sim_cycles > 0) {
        manifest_wall.saturating_record(e.wall_ms);
    }
    assert_eq!(manifest_wall.count, TASKS_PER_JOB);
    assert_eq!(stats1.task_wall_ms.p50, manifest_wall.p50(), "p50 agrees");
    assert_eq!(stats1.task_wall_ms.p95, manifest_wall.p95(), "p95 agrees");
    assert!(stats1.mcycles_per_sec > 0.0);

    // Flood: 36 identical submissions across three tenants — 1080
    // tasks, every one a cache hit of the warmed 30 keys. With the
    // warmup job that is 1110 tasks queued through the service.
    let mut flood_ids = Vec::new();
    for _ in 0..FLOOD_PER_TENANT {
        for tenant in tenants {
            let ack = svc.submit(&shared_request(tenant)).expect("admitted");
            flood_ids.push(ack.id);
        }
    }
    let total_jobs = 1 + flood_ids.len() as u64;
    let total_tasks = total_jobs * TASKS_PER_JOB;
    assert!(total_tasks >= 1_000, "acceptance floor: {total_tasks}");

    // Kill mid-run: abrupt stop with the queue still deep, like the
    // process dying. The journal (written before every ack) is the only
    // thing resume gets to rely on.
    let depth_at_kill = svc.stats().queue_depth;
    assert!(depth_at_kill > 0, "flood must still be queued at the kill");
    svc.stop();
    for w in workers {
        let _ = w.join();
    }
    drop(svc);

    // ---------------- Life 2: resume, drain, reconcile ----------------
    let svc = Service::new(cfg(&cache_dir));
    let workers = svc.start_workers();
    assert!(
        svc.wait_all_jobs(Duration::from_secs(120)),
        "resumed backlog drains"
    );

    // No re-execution: every unique key was cached in life 1, so the
    // second life resolves its whole backlog from the cache.
    let stats2 = svc.stats();
    assert_eq!(stats2.executed, 0, "resume must not re-execute");
    assert_eq!(stats2.failed, 0);
    assert_eq!(stats2.task_wall_ms.count, 0, "no fresh simulations");
    assert_eq!(stats2.jobs, total_jobs);
    assert_eq!(stats2.jobs_done, total_jobs);
    if stats2.tasks_done > 0 {
        assert_eq!(stats2.hit_rate, 1.0, "life 2 is pure cache hits");
    }

    // Every job — warmup and flood, whichever life finished it — is
    // Done, and its event stream reports complete.
    for id in std::iter::once(&warmup.id).chain(&flood_ids) {
        let view = svc.status(id).unwrap_or_else(|| panic!("status of {id}"));
        assert_eq!(view.state, JobState::Done, "{id}");
        assert_eq!(view.total, TASKS_PER_JOB);
        assert_eq!(view.done, TASKS_PER_JOB);
        assert_eq!(view.failed, 0);
        let batch = svc
            .events(id, 0, 0)
            .unwrap_or_else(|| panic!("events of {id}"));
        assert!(batch.complete, "{id} stream must be closed");
        // Streams from re-run jobs are gap-free and ordered.
        for (i, ev) in batch.events.iter().enumerate() {
            assert_eq!(ev.seq, i as u64 + 1, "{id} event order");
        }
    }

    // Fairness: no tenant's queue wait ever exceeded the aging
    // threshold plus scheduling slack (escalation rescues a starving
    // head within one service round).
    let slack_ms = 10_000;
    let names: Vec<&str> = stats2.tenants.iter().map(|t| t.tenant.as_str()).collect();
    assert_eq!(names, tenants, "all three tenants accounted for");
    for t in &stats2.tenants {
        assert!(
            t.max_wait_ms <= AGE_MS + slack_ms,
            "tenant {} waited {}ms (cap {}ms)",
            t.tenant,
            t.max_wait_ms,
            AGE_MS + slack_ms
        );
    }

    // Manifests on disk reconcile with the service's view: one fully
    // resolved manifest per job, 1110 rows total, and the executed
    // provenance (host-perf rows) still exactly the 30 cold runs.
    let mut manifest_rows = 0u64;
    let mut measured_rows = 0u64;
    for id in std::iter::once(&warmup.id).chain(&flood_ids) {
        let m = Manifest::load(&cache_dir, &format!("svc-{id}"))
            .unwrap_or_else(|| panic!("manifest svc-{id}"));
        assert_eq!(m.done_count(), m.entries.len(), "svc-{id} fully resolved");
        manifest_rows += m.entries.len() as u64;
        measured_rows += m.entries.iter().filter(|e| e.sim_cycles > 0).count() as u64;
    }
    assert_eq!(manifest_rows, total_tasks);
    assert_eq!(
        measured_rows, TASKS_PER_JOB,
        "exactly the warmup rows carry host-perf; hits never overwrite them"
    );

    svc.stop();
    for w in workers {
        let _ = w.join();
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
}
