//! The campaignd daemon: bind, resume, serve until drained.
//!
//! ```text
//! campaignd [--addr 127.0.0.1:8321] [--workers N] [--cache-dir DIR]
//!           [--queue-cap N] [--mark-cap N] [--age-ms MS] [--budget N]
//! ```
//!
//! The process exits 0 after `POST /v1/drain` once the queue empties and
//! the last in-flight task lands; exits 2 on usage errors.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

use emc_campaignd::{Service, ServiceConfig};

/// Default listen address (localhost only: the protocol is unauthenticated).
const DEFAULT_ADDR: &str = "127.0.0.1:8321";

fn usage() -> String {
    format!(
        "usage: campaignd [options]\n\
         \n\
         options:\n\
         \x20 --addr HOST:PORT   listen address (default {DEFAULT_ADDR})\n\
         \x20 --workers N        worker threads (default: one per core)\n\
         \x20 --cache-dir DIR    result cache root (default {})\n\
         \x20 --queue-cap N      admission-control capacity in tasks (default {})\n\
         \x20 --mark-cap N       fair-batch marking cap per tenant (default {})\n\
         \x20 --age-ms MS        aging escalation threshold (default {})\n\
         \x20 --budget N         default per-core uop budget (default {})\n",
        emc_campaign::DEFAULT_CACHE_DIR,
        ServiceConfig::default().queue_cap,
        ServiceConfig::default().mark_cap,
        ServiceConfig::default().age_ms,
        ServiceConfig::default().default_budget,
    )
}

fn parse_args(args: &[String]) -> Result<(String, ServiceConfig), String> {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut cfg = ServiceConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?.clone(),
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs a number".to_string())?
            }
            "--cache-dir" => cfg.cache_dir = PathBuf::from(value("--cache-dir")?),
            "--queue-cap" => {
                cfg.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|_| "--queue-cap needs a number".to_string())?
            }
            "--mark-cap" => {
                cfg.mark_cap = value("--mark-cap")?
                    .parse()
                    .map_err(|_| "--mark-cap needs a number".to_string())?
            }
            "--age-ms" => {
                cfg.age_ms = value("--age-ms")?
                    .parse()
                    .map_err(|_| "--age-ms needs a number".to_string())?
            }
            "--budget" => {
                cfg.default_budget = value("--budget")?
                    .parse()
                    .map_err(|_| "--budget needs a number".to_string())?
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n\n{}", usage())),
        }
    }
    Ok((addr, cfg))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, cfg) = match parse_args(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("campaignd: cannot bind {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "# campaignd: listening on {addr}, cache {}",
        cfg.cache_dir.display()
    );

    let service = Service::new(cfg);
    let workers = service.start_workers();
    eprintln!("# campaignd: {} workers resident", workers.len());

    // Blocks until a drain completes (stop flag set with an idle queue).
    service.serve(listener);
    for w in workers {
        let _ = w.join();
    }
    eprintln!("# campaignd: drained; bye");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_args_maps_every_flag() {
        let (addr, cfg) = parse_args(&strs(&[
            "--addr",
            "127.0.0.1:9000",
            "--workers",
            "3",
            "--cache-dir",
            "/tmp/c",
            "--queue-cap",
            "64",
            "--mark-cap",
            "2",
            "--age-ms",
            "500",
            "--budget",
            "1234",
        ]))
        .unwrap();
        assert_eq!(addr, "127.0.0.1:9000");
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.cache_dir, PathBuf::from("/tmp/c"));
        assert_eq!(cfg.queue_cap, 64);
        assert_eq!(cfg.mark_cap, 2);
        assert_eq!(cfg.age_ms, 500);
        assert_eq!(cfg.default_budget, 1234);
    }

    #[test]
    fn parse_args_rejects_unknown_and_incomplete_flags() {
        assert!(parse_args(&strs(&["--frobnicate"]))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse_args(&strs(&["--workers"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_args(&strs(&["--workers", "many"]))
            .unwrap_err()
            .contains("number"));
        let (addr, cfg) = parse_args(&[]).unwrap();
        assert_eq!(addr, DEFAULT_ADDR);
        assert_eq!(cfg.queue_cap, ServiceConfig::default().queue_cap);
    }
}
