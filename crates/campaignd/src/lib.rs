//! `campaignd`: the always-on experiment service over the campaign
//! engine.
//!
//! Where the `campaign` CLI runs one suite and exits, this crate keeps a
//! resident worker pool alive behind an HTTP/JSON protocol
//! (`emc-campaignd-v1`, hand-rolled HTTP/1.1 over `std::net` — no new
//! dependencies) so several tenants can share one simulation host and
//! one content-addressed result cache:
//!
//! - [`queue`] — per-tenant fair scheduling: PAR-BS-style batching with
//!   a per-tenant marking cap, round-robin rank within a batch, and
//!   aging escalation for starving tenants (the scheduling lineage runs
//!   straight from `crates/memctrl`; see the module docs for the
//!   mapping and the one deliberate divergence).
//! - [`service`] — admission control (bounded queue → structured 429),
//!   the worker pool over a shared reentrant
//!   [`Executor`](emc_campaign::Executor), per-job progress streams with
//!   long-polling, service statistics (queue depth, per-tenant waits,
//!   hit rate, latency percentiles, host Mcycles/s), graceful drain, and
//!   kill -9 resume via a submission journal.
//! - [`http`] — the minimal HTTP/1.1 transport (parse + serialize only;
//!   routing stays in [`service::handle_request`], pure of sockets).
//!
//! The `campaignd` binary wires these to a `TcpListener`; the `campaign`
//! CLI's `submit` / `watch` / `svc-status` subcommands are the matching
//! client.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod queue;
pub mod service;

pub use http::{read_request, write_response, Request};
pub use queue::{Dispatch, FairQueue, QueueFull, TaskRef, DEFAULT_AGE_MS, DEFAULT_MARK_CAP};
pub use service::{expand_request, handle_request, Service, ServiceConfig};
