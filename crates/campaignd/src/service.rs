//! The campaignd service core: submissions, the worker pool, progress
//! streams, statistics, drain, and crash resume.
//!
//! A [`Service`] owns one [`FairQueue`](crate::queue::FairQueue) of
//! (job, task) references, one shared reentrant
//! [`Executor`](emc_campaign::Executor) over the content-addressed
//! result cache, and a pool of resident worker threads. Submissions
//! expand a [`SubmitRequest`] into concrete [`JobSpec`]s
//! ([`expand_request`]), pass admission control (all-or-nothing against
//! the queue capacity → structured 429), and are journaled to
//! `<cache>/service/jobs/<id>.json` *before* the ack goes out — so a
//! `kill -9` at any point loses no admitted job: on restart the journal
//! replays every submission, completed jobs register as done from their
//! manifests, and incomplete jobs re-enqueue all their tasks, where the
//! previously-finished ones resolve as instant cache hits instead of
//! re-executing.
//!
//! Everything network-shaped lives behind [`handle_request`], a pure
//! `(service, request) → (status, body)` router, so the protocol is
//! unit-testable without sockets; [`Service::serve`] is the thin accept
//! loop that feeds it.

use std::collections::HashMap;
use std::fs;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use emc_campaign::{
    default_workers, eta, homog_jobs, mix8_jobs, quad_jobs, Executor, JobRecord, JobSource,
    JobSpec, JobStatus, Manifest, ResultCache,
};
use emc_types::codec::u;
use emc_types::{
    EventBatch, Histogram, JobState, JobStatusView, JsonValue, ProgressEvent, Rejection,
    ServiceStats, SubmitAck, SubmitRequest, SystemConfig, TenantStats, SVC_SCHEMA,
};

use crate::http::{read_request, write_response, Request};
use crate::queue::{FairQueue, TaskRef, DEFAULT_AGE_MS, DEFAULT_MARK_CAP};

/// Service configuration (defaults suit an interactive localhost daemon).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Resident worker threads (0 = one per available core).
    pub workers: usize,
    /// Admission-control capacity: queued tasks across all tenants.
    /// Resume may raise the effective capacity to fit a journaled
    /// backlog that was already admitted before the restart.
    pub queue_cap: usize,
    /// Fair-queue marking cap (tasks per tenant per batch).
    pub mark_cap: usize,
    /// Aging threshold: a tenant head waiting past this escalates above
    /// batch boundaries.
    pub age_ms: u64,
    /// Per-core retired-uop budget when a submission says `budget: 0`.
    pub default_budget: u64,
    /// Result-cache root (also holds manifests and the job journal).
    pub cache_dir: PathBuf,
    /// Upper bound on one long-poll wait, milliseconds.
    pub poll_timeout_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_cap: 8192,
            mark_cap: DEFAULT_MARK_CAP,
            age_ms: DEFAULT_AGE_MS,
            default_budget: 2_000,
            cache_dir: PathBuf::from(emc_campaign::DEFAULT_CACHE_DIR),
            poll_timeout_ms: 10_000,
        }
    }
}

/// One admitted job and its live progress.
struct Job {
    id: String,
    tenant: usize,
    name: String,
    specs: Vec<JobSpec>,
    manifest: Manifest,
    /// Task completions since the manifest was last saved.
    manifest_dirty: u32,
    admitted_ms: u64,
    finished_ms: u64,
    done: u64,
    hits: u64,
    executed: u64,
    failed: u64,
    running: u64,
    complete: bool,
    events: Vec<ProgressEvent>,
}

impl Job {
    fn total(&self) -> u64 {
        self.specs.len() as u64
    }
}

/// Per-tenant fairness accounting.
struct Tenant {
    name: String,
    running: u64,
    done: u64,
    failed: u64,
    wait_ms: Histogram,
    max_wait_ms: u64,
    escalated: u64,
}

impl Tenant {
    fn new(name: String) -> Self {
        Tenant {
            name,
            running: 0,
            done: 0,
            failed: 0,
            wait_ms: Histogram::new(),
            max_wait_ms: 0,
            escalated: 0,
        }
    }
}

/// Everything behind the state mutex.
struct State {
    jobs: Vec<Job>,
    job_index: HashMap<String, usize>,
    tenants: Vec<Tenant>,
    tenant_index: HashMap<String, usize>,
    queue: FairQueue,
    next_job: u64,
    draining: bool,
    stopping: bool,
    running: u64,
    jobs_done: u64,
    tasks_done: u64,
    hits: u64,
    executed: u64,
    failed: u64,
    /// Queue waits across all tenants (clock anomalies clamp, never
    /// poison the distribution — `saturating_record`).
    wait_all: Histogram,
    /// Resolve latency of *executed* tasks only, so the distribution
    /// matches the manifests' host-perf rows (cache hits are microsecond
    /// deserializations that would drown the signal).
    task_wall_ms: Histogram,
    /// Job latency, admission → final task.
    job_wall_ms: Histogram,
    /// Host-perf aggregates over executed tasks (PR-8 JobRecord.wall).
    exec_wall_ms: u64,
    sim_cycles: u64,
}

struct Inner {
    cfg: ServiceConfig,
    executor: Executor,
    state: Mutex<State>,
    /// Workers sleep here when the queue is empty.
    work_cv: Condvar,
    /// Long-pollers sleep here until a task completes.
    event_cv: Condvar,
    started: Instant,
}

/// Handle to the running service; clones share one core.
#[derive(Clone)]
pub struct Service {
    inner: Arc<Inner>,
}

impl Service {
    /// Build the service: open the cache, replay the submission journal
    /// (crash resume), and size the queue.
    pub fn new(cfg: ServiceConfig) -> Service {
        let cache = ResultCache::new(&cfg.cache_dir);
        let executor = Executor::new(Some(cache)).with_tag("campaignd");
        let journaled = read_journal(&cfg.cache_dir, cfg.default_budget);
        let resumed_tasks: usize = journaled.iter().map(|(_, _, specs)| specs.len()).sum();
        // Resumed work already passed admission control in a previous
        // life; never bounce it against the cap it once fit under.
        let capacity = cfg.queue_cap.max(resumed_tasks);
        let state = State {
            jobs: Vec::new(),
            job_index: HashMap::new(),
            tenants: Vec::new(),
            tenant_index: HashMap::new(),
            queue: FairQueue::new(capacity, cfg.mark_cap, cfg.age_ms),
            next_job: 1,
            draining: false,
            stopping: false,
            running: 0,
            jobs_done: 0,
            tasks_done: 0,
            hits: 0,
            executed: 0,
            failed: 0,
            wait_all: Histogram::new(),
            task_wall_ms: Histogram::new(),
            job_wall_ms: Histogram::new(),
            exec_wall_ms: 0,
            sim_cycles: 0,
        };
        let service = Service {
            inner: Arc::new(Inner {
                cfg,
                executor,
                state: Mutex::new(state),
                work_cv: Condvar::new(),
                event_cv: Condvar::new(),
                started: Instant::now(),
            }),
        };
        service.resume(journaled);
        service
    }

    /// Milliseconds since the daemon started (the queue's virtual clock).
    fn now_ms(&self) -> u64 {
        self.inner.started.elapsed().as_millis() as u64
    }

    /// The configured cache root.
    pub fn cache_dir(&self) -> &Path {
        &self.inner.cfg.cache_dir
    }

    // -----------------------------------------------------------------
    // Submission
    // -----------------------------------------------------------------

    /// Admit one submission: expand, journal, enqueue. The error side
    /// carries the HTTP status the rejection maps to (400 bad request,
    /// 429 queue full, 503 draining).
    pub fn submit(&self, req: &SubmitRequest) -> Result<SubmitAck, (u16, Rejection)> {
        let (name, specs) = expand_request(req, self.inner.cfg.default_budget)
            .map_err(|e| (400, Rejection::of("bad-request", e)))?;
        let now = self.now_ms();
        let mut state = self.lock();
        if state.draining {
            let mut rej = Rejection::of("draining", "service is draining; not accepting jobs");
            rej.queue_depth = state.queue.len() as u64;
            return Err((503, rej));
        }
        let id = format!("j{}", state.next_job);
        let tenant = tenant_index(&mut state, &req.tenant);
        let tasks: Vec<TaskRef> = (0..specs.len())
            .map(|index| TaskRef {
                job: state.jobs.len(),
                index,
            })
            .collect();
        if let Err(full) = state.queue.admit(tenant, tasks, now) {
            return Err((
                429,
                Rejection {
                    error: "queue-full".into(),
                    detail: format!(
                        "{} queued + {} submitted exceeds capacity {}",
                        full.depth,
                        specs.len(),
                        full.capacity
                    ),
                    queue_depth: full.depth as u64,
                    capacity: full.capacity as u64,
                },
            ));
        }
        state.next_job += 1;

        // Journal before acking: an acked job must survive kill -9.
        if let Err(e) = write_journal(&self.inner.cfg.cache_dir, &id, req) {
            eprintln!("# campaignd: {e}");
        }
        let job = self.register_job(&mut state, &id, tenant, name, specs, now);
        let ack = SubmitAck {
            id,
            total: job,
            queue_depth: state.queue.len() as u64,
        };
        drop(state);
        self.inner.work_cv.notify_all();
        Ok(ack)
    }

    /// Insert the job table row (manifest loaded or freshly saved).
    /// Returns the task count.
    fn register_job(
        &self,
        state: &mut State,
        id: &str,
        tenant: usize,
        name: String,
        specs: Vec<JobSpec>,
        now: u64,
    ) -> u64 {
        let manifest = load_or_fresh_manifest(&self.inner.cfg.cache_dir, id, &specs);
        let job = Job {
            id: id.to_string(),
            tenant,
            name,
            specs,
            manifest,
            manifest_dirty: 0,
            admitted_ms: now,
            finished_ms: 0,
            done: 0,
            hits: 0,
            executed: 0,
            failed: 0,
            running: 0,
            complete: false,
            events: Vec::new(),
        };
        let total = job.total();
        state.job_index.insert(job.id.clone(), state.jobs.len());
        state.jobs.push(job);
        total
    }

    // -----------------------------------------------------------------
    // Crash resume
    // -----------------------------------------------------------------

    /// Replay journaled submissions: jobs whose manifests show every
    /// task resolved register as done; everything else re-enqueues all
    /// its tasks, and the ones that already ran resolve as instant cache
    /// hits rather than re-executing.
    fn resume(&self, journaled: Vec<(u64, SubmitRequest, Vec<JobSpec>)>) {
        if journaled.is_empty() {
            return;
        }
        let now = self.now_ms();
        let mut state = self.lock();
        for (seq, req, specs) in journaled {
            let id = format!("j{seq}");
            state.next_job = state.next_job.max(seq + 1);
            let name = if req.name.is_empty() {
                format!("{}:{}", req.tenant, req.suite)
            } else {
                req.name.clone()
            };
            let tenant = tenant_index(&mut state, &req.tenant);
            let job_idx = state.jobs.len();
            let total = self.register_job(&mut state, &id, tenant, name, specs, now);
            let job = &mut state.jobs[job_idx];
            let resolved = job
                .manifest
                .entries
                .iter()
                .filter(|e| e.status != JobStatus::Pending)
                .count() as u64;
            if resolved == total {
                // Fully resolved before the restart: surface the final
                // tallies without queueing anything.
                job.complete = true;
                job.finished_ms = now;
                job.done = total;
                job.hits = job
                    .manifest
                    .entries
                    .iter()
                    .filter(|e| e.outcome == "cache-hit")
                    .count() as u64;
                job.failed = job
                    .manifest
                    .entries
                    .iter()
                    .filter(|e| e.status == JobStatus::Failed)
                    .count() as u64;
                job.executed = total - job.hits - job.failed;
                state.jobs_done += 1;
                continue;
            }
            let tasks: Vec<TaskRef> = (0..total as usize)
                .map(|index| TaskRef {
                    job: job_idx,
                    index,
                })
                .collect();
            match state.queue.admit(tenant, tasks, now) {
                Ok(n) => eprintln!("# campaignd: resumed {id} ({n} tasks re-queued)"),
                Err(full) => {
                    // Capacity was pre-sized to the journaled backlog, so
                    // this only fires on a journal written by a larger
                    // configuration. Fail the job loudly rather than
                    // wedge it half-registered.
                    let job = &mut state.jobs[job_idx];
                    job.complete = true;
                    job.finished_ms = now;
                    job.failed = total;
                    job.done = total;
                    state.jobs_done += 1;
                    eprintln!(
                        "# campaignd: cannot resume {id}: queue full ({}/{})",
                        full.depth, full.capacity
                    );
                }
            }
        }
        drop(state);
        self.inner.work_cv.notify_all();
    }

    // -----------------------------------------------------------------
    // Workers
    // -----------------------------------------------------------------

    /// Spawn the resident worker pool.
    pub fn start_workers(&self) -> Vec<JoinHandle<()>> {
        let n = if self.inner.cfg.workers == 0 {
            default_workers()
        } else {
            self.inner.cfg.workers
        };
        (0..n)
            .map(|i| {
                let svc = self.clone();
                std::thread::Builder::new()
                    .name(format!("campaignd-worker-{i}"))
                    .spawn(move || svc.worker_loop())
                    .expect("spawn worker")
            })
            .collect()
    }

    fn worker_loop(&self) {
        let mut state = self.lock();
        loop {
            if state.stopping {
                return;
            }
            let now = self.now_ms();
            let Some(d) = state.queue.pop(now) else {
                let (guard, _) = self
                    .inner
                    .work_cv
                    .wait_timeout(state, Duration::from_millis(100))
                    .expect("state lock");
                state = guard;
                continue;
            };

            // Dispatch bookkeeping under the lock, simulation outside it.
            let tenant = d.tenant;
            state.tenants[tenant].wait_ms.saturating_record(d.wait_ms);
            state.tenants[tenant].max_wait_ms = state.tenants[tenant].max_wait_ms.max(d.wait_ms);
            if d.escalated {
                state.tenants[tenant].escalated += 1;
            }
            state.wait_all.saturating_record(d.wait_ms);
            state.tenants[tenant].running += 1;
            state.jobs[d.task.job].running += 1;
            state.running += 1;
            let spec = state.jobs[d.task.job].specs[d.task.index].clone();
            drop(state);

            let record = self.inner.executor.resolve(&spec);

            state = self.lock();
            self.complete_task(&mut state, d.task, tenant, &record);
            self.inner.event_cv.notify_all();
        }
    }

    /// Fold one resolved task into its job, tenant, manifest, and the
    /// service aggregates; fire the progress event; detect completion.
    fn complete_task(&self, state: &mut State, task: TaskRef, tenant: usize, record: &JobRecord) {
        let now = self.now_ms();
        let failed = record.result.is_none();
        let hit = record.source == JobSource::CacheHit;

        state.running -= 1;
        state.tenants[tenant].running -= 1;
        state.tenants[tenant].done += 1;
        state.tasks_done += 1;
        if failed {
            state.failed += 1;
            state.tenants[tenant].failed += 1;
        } else if hit {
            state.hits += 1;
        } else {
            state.executed += 1;
        }
        if record.source == JobSource::Executed {
            let wall_ms = record.wall.as_millis() as u64;
            state.task_wall_ms.saturating_record(wall_ms);
            state.exec_wall_ms += wall_ms;
            state.sim_cycles += record.sim_cycles();
        }

        let job = &mut state.jobs[task.job];
        job.running -= 1;
        job.done += 1;
        if failed {
            job.failed += 1;
        } else if hit {
            job.hits += 1;
        } else {
            job.executed += 1;
        }

        // Manifest row — same rules as the campaign engine: host-perf
        // columns are only overwritten by real executions, so a resumed
        // run's cache hits preserve the original measurements.
        let entry = &mut job.manifest.entries[task.index];
        entry.status = if failed {
            JobStatus::Failed
        } else {
            JobStatus::Done
        };
        entry.attempts += record.attempts;
        entry.outcome = record.outcome.clone();
        if record.attempts > 0 {
            entry.wall_ms = record.wall.as_millis() as u64;
            entry.sim_cycles = record.sim_cycles();
        }
        job.manifest_dirty += 1;

        job.complete = job.done == job.total();
        if job.complete {
            job.finished_ms = now;
        }
        let elapsed = Duration::from_millis(now.saturating_sub(job.admitted_ms));
        let event = ProgressEvent {
            seq: job.events.len() as u64 + 1,
            label: record.label.clone(),
            outcome: record.outcome.clone(),
            done: job.done,
            total: job.total(),
            hits: job.hits,
            failed: job.failed,
            eta_ms: eta(job.done as usize, job.total() as usize, elapsed)
                .map(|d| d.as_millis() as u64),
        };
        job.events.push(event);

        // Save the manifest on a throttle (every 16 completions) and at
        // completion: a crash between saves costs manifest rows, not
        // results — the cache already holds them, and resume replays the
        // lost rows as instant hits.
        if job.complete || job.manifest_dirty >= 16 {
            job.manifest_dirty = 0;
            if let Err(e) = job.manifest.save(&self.inner.cfg.cache_dir) {
                eprintln!("# campaignd: {e}");
            }
        }
        if job.complete {
            let job_wall = now.saturating_sub(job.admitted_ms);
            state.job_wall_ms.saturating_record(job_wall);
            state.jobs_done += 1;
        }

        if state.draining && state.queue.is_empty() && state.running == 0 {
            state.stopping = true;
            self.inner.work_cv.notify_all();
        }
    }

    // -----------------------------------------------------------------
    // Queries
    // -----------------------------------------------------------------

    /// Snapshot one job's status.
    pub fn status(&self, id: &str) -> Option<JobStatusView> {
        let state = self.lock();
        let job = &state.jobs[*state.job_index.get(id)?];
        let wall_ms = if job.complete {
            job.finished_ms.saturating_sub(job.admitted_ms)
        } else {
            self.now_ms().saturating_sub(job.admitted_ms)
        };
        let lifecycle = if job.complete {
            JobState::Done
        } else if job.done > 0 {
            JobState::Running
        } else {
            JobState::Queued
        };
        Some(JobStatusView {
            id: job.id.clone(),
            tenant: state.tenants[job.tenant].name.clone(),
            name: job.name.clone(),
            state: lifecycle,
            total: job.total(),
            done: job.done,
            hits: job.hits,
            executed: job.executed,
            failed: job.failed,
            eta_ms: eta(
                job.done as usize,
                job.total() as usize,
                Duration::from_millis(wall_ms),
            )
            .map(|d| d.as_millis() as u64),
            wall_ms,
        })
    }

    /// Long-poll the job's event stream: block until an event with
    /// `seq > since` exists, the job completes, or the timeout expires
    /// (bounded by the configured `poll_timeout_ms`).
    pub fn events(&self, id: &str, since: u64, timeout_ms: u64) -> Option<EventBatch> {
        let deadline =
            Instant::now() + Duration::from_millis(timeout_ms.min(self.inner.cfg.poll_timeout_ms));
        let mut state = self.lock();
        loop {
            let idx = *state.job_index.get(id)?;
            let job = &state.jobs[idx];
            let fresh: Vec<ProgressEvent> = job
                .events
                .iter()
                .filter(|e| e.seq > since)
                .cloned()
                .collect();
            if !fresh.is_empty() || job.complete {
                let next = fresh.last().map_or(since, |e| e.seq);
                return Some(EventBatch {
                    id: job.id.clone(),
                    next,
                    complete: job.complete,
                    events: fresh,
                });
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                // Timeout: an empty, incomplete batch tells the client
                // to poll again from the same cursor.
                return Some(EventBatch {
                    id: id.to_string(),
                    next: since,
                    complete: false,
                    events: Vec::new(),
                });
            }
            let (guard, _) = self
                .inner
                .event_cv
                .wait_timeout(state, left)
                .expect("state lock");
            state = guard;
        }
    }

    /// Service-wide statistics.
    pub fn stats(&self) -> ServiceStats {
        let state = self.lock();
        let mut tenants: Vec<TenantStats> = state
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| TenantStats {
                tenant: t.name.clone(),
                queued: state.queue.depth_of(i) as u64,
                running: t.running,
                done: t.done,
                failed: t.failed,
                wait_ms: emc_types::HistSummary::of(&t.wait_ms),
                max_wait_ms: t.max_wait_ms,
                escalated: t.escalated,
            })
            .collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        let hit_rate = if state.tasks_done == 0 {
            0.0
        } else {
            state.hits as f64 / state.tasks_done as f64
        };
        let mcycles_per_sec = if state.exec_wall_ms == 0 {
            0.0
        } else {
            (state.sim_cycles as f64 / 1e6) / (state.exec_wall_ms as f64 / 1e3)
        };
        ServiceStats {
            uptime_ms: self.now_ms(),
            workers: if self.inner.cfg.workers == 0 {
                default_workers() as u64
            } else {
                self.inner.cfg.workers as u64
            },
            queue_depth: state.queue.len() as u64,
            queue_cap: state.queue.capacity() as u64,
            draining: state.draining,
            jobs: state.jobs.len() as u64,
            jobs_done: state.jobs_done,
            tasks_done: state.tasks_done,
            hits: state.hits,
            executed: state.executed,
            failed: state.failed,
            hit_rate,
            wait_ms: emc_types::HistSummary::of(&state.wait_all),
            task_wall_ms: emc_types::HistSummary::of(&state.task_wall_ms),
            job_wall_ms: emc_types::HistSummary::of(&state.job_wall_ms),
            mcycles_per_sec,
            tenants,
        }
    }

    // -----------------------------------------------------------------
    // Lifecycle
    // -----------------------------------------------------------------

    /// Stop accepting submissions; once the queue drains and the last
    /// in-flight task finishes, the workers and accept loop exit.
    pub fn drain(&self) -> JsonValue {
        let mut state = self.lock();
        state.draining = true;
        if state.queue.is_empty() && state.running == 0 {
            state.stopping = true;
        }
        let doc = JsonValue::obj(vec![
            ("schema", SVC_SCHEMA.into()),
            ("draining", JsonValue::Bool(true)),
            ("queue_depth", u(state.queue.len() as u64)),
            ("running", u(state.running)),
        ]);
        drop(state);
        self.inner.work_cv.notify_all();
        self.inner.event_cv.notify_all();
        doc
    }

    /// True once drain (or a direct stop) has fully landed.
    pub fn stopped(&self) -> bool {
        self.lock().stopping
    }

    /// Abrupt stop for tests: workers exit after their current task.
    pub fn stop(&self) {
        self.lock().stopping = true;
        self.inner.work_cv.notify_all();
        self.inner.event_cv.notify_all();
    }

    /// Block until every admitted job is complete (test helper).
    pub fn wait_all_jobs(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            if state.jobs.iter().all(|j| j.complete) {
                return true;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let (guard, _) = self
                .inner
                .event_cv
                .wait_timeout(state, left.min(Duration::from_millis(200)))
                .expect("state lock");
            state = guard;
        }
    }

    /// Accept loop: thread per connection, `Connection: close`, polls
    /// the stop flag between accepts. Returns when the service stops.
    pub fn serve(&self, listener: TcpListener) {
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        loop {
            if self.stopped() {
                return;
            }
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let svc = self.clone();
                    let _ = std::thread::Builder::new()
                        .name("campaignd-conn".into())
                        .spawn(move || {
                            let _ = stream.set_nodelay(true);
                            let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                            let (status, body) = match read_request(&stream) {
                                Ok(req) => handle_request(&svc, &req),
                                Err(e) => (400, Rejection::of("bad-request", e).to_json()),
                            };
                            let _ = write_response(&stream, status, &body.to_json());
                        });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    eprintln!("# campaignd: accept: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.inner.state.lock().expect("state lock")
    }
}

/// Get or create the tenant row for `name`.
fn tenant_index(state: &mut State, name: &str) -> usize {
    if let Some(&i) = state.tenant_index.get(name) {
        return i;
    }
    let i = state.tenants.len();
    state.tenants.push(Tenant::new(name.to_string()));
    state.tenant_index.insert(name.to_string(), i);
    i
}

/// Load the job's manifest if one matches its task list (crash resume),
/// else create and persist a fresh one.
fn load_or_fresh_manifest(cache_dir: &Path, id: &str, specs: &[JobSpec]) -> Manifest {
    let name = format!("svc-{id}");
    let keys: Vec<(emc_campaign::JobKey, String)> =
        specs.iter().map(|s| (s.key(), s.label.clone())).collect();
    let key_list: Vec<emc_campaign::JobKey> = keys.iter().map(|(k, _)| k.clone()).collect();
    if let Some(m) = Manifest::load(cache_dir, &name) {
        if m.id == Manifest::id_of(&key_list) && m.entries.len() == specs.len() {
            return m;
        }
        eprintln!("# campaignd: manifest {name} does not match its journal; starting fresh");
    }
    let m = Manifest::fresh(&name, &keys);
    if let Err(e) = m.save(cache_dir) {
        eprintln!("# campaignd: {e}");
    }
    m
}

// ---------------------------------------------------------------------
// Submission expansion
// ---------------------------------------------------------------------

/// Expand a wire submission into `(display name, concrete specs)`:
/// suite × optional (prefetcher, EMC) narrowing × `repeat` seed-bumped
/// copies. Pure, so the grid a submission produces is unit-testable.
///
/// # Errors
///
/// Names the unknown suite or prefetcher label (with the valid options).
pub fn expand_request(
    req: &SubmitRequest,
    default_budget: u64,
) -> Result<(String, Vec<JobSpec>), String> {
    let budget = if req.budget == 0 {
        default_budget
    } else {
        req.budget
    };
    let base = match req.suite.as_str() {
        "quad" => quad_jobs(budget),
        "homog" => homog_jobs(budget),
        "mix8-1mc" => mix8_jobs(SystemConfig::eight_core_1mc(), budget),
        "mix8-2mc" => mix8_jobs(SystemConfig::eight_core_2mc(), budget),
        other => {
            return Err(format!(
                "unknown suite {other:?} (quad, homog, mix8-1mc, mix8-2mc)"
            ))
        }
    };
    let narrowed: Vec<JobSpec> = base
        .into_iter()
        .filter(|s| {
            req.prefetcher
                .as_deref()
                .is_none_or(|pf| s.cfg.prefetcher.label().eq_ignore_ascii_case(pf))
        })
        .filter(|s| req.emc.is_none_or(|emc| s.cfg.emc.enabled == emc))
        .collect();
    if narrowed.is_empty() {
        let labels: Vec<&str> = emc_types::PrefetcherKind::ALL
            .iter()
            .map(|p| p.label())
            .collect();
        return Err(format!(
            "no jobs match prefetcher {:?} / emc {:?} (prefetchers: {})",
            req.prefetcher,
            req.emc,
            labels.join(", ")
        ));
    }
    let mut specs = Vec::with_capacity(narrowed.len() * req.repeat as usize);
    for rep in 0..req.repeat.max(1) {
        for s in &narrowed {
            let mut s = s.clone();
            s.cfg.seed ^= req.seed_bump + rep;
            if req.repeat > 1 {
                s.label = format!("{}#{rep}", s.label);
            }
            specs.push(s);
        }
    }
    let name = if req.name.is_empty() {
        format!("{}:{}", req.tenant, req.suite)
    } else {
        req.name.clone()
    };
    Ok((name, specs))
}

// ---------------------------------------------------------------------
// Submission journal
// ---------------------------------------------------------------------

fn journal_dir(cache_dir: &Path) -> PathBuf {
    cache_dir.join("service").join("jobs")
}

/// Persist one admitted submission (atomic temp + rename, like every
/// other artifact under the cache root).
fn write_journal(cache_dir: &Path, id: &str, req: &SubmitRequest) -> Result<(), String> {
    let dir = journal_dir(cache_dir);
    fs::create_dir_all(&dir).map_err(|e| format!("journal: create {}: {e}", dir.display()))?;
    let doc = JsonValue::obj(vec![
        ("schema", SVC_SCHEMA.into()),
        ("id", id.into()),
        ("request", req.to_json()),
    ]);
    let mut text = doc.to_json();
    text.push('\n');
    let tmp = dir.join(format!(".{id}.tmp"));
    let path = dir.join(format!("{id}.json"));
    fs::write(&tmp, &text).map_err(|e| format!("journal: write {}: {e}", tmp.display()))?;
    fs::rename(&tmp, &path).map_err(|e| format!("journal: rename {}: {e}", path.display()))?;
    Ok(())
}

/// Read every journaled submission, expanded and ordered by job id.
/// Corrupt or inconsistent entries are logged and skipped — resume must
/// never be wedged by one bad file. Expansion uses the *configured*
/// default budget: restarting with a different `--budget` changes the
/// keys a `budget: 0` submission expands to, which would orphan its
/// manifest and cache entries — so keep the flag stable across restarts.
fn read_journal(cache_dir: &Path, default_budget: u64) -> Vec<(u64, SubmitRequest, Vec<JobSpec>)> {
    let dir = journal_dir(cache_dir);
    let Ok(entries) = fs::read_dir(&dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|x| x != "json") {
            continue;
        }
        let parsed = fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|t| JsonValue::parse(&t))
            .and_then(|doc| {
                let id = doc
                    .get("id")
                    .and_then(|v| v.as_str())
                    .ok_or("missing id")?
                    .to_string();
                let seq: u64 = id
                    .strip_prefix('j')
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| format!("bad id {id:?}"))?;
                let req = SubmitRequest::from_json(doc.get("request").ok_or("missing request")?)?;
                Ok((seq, req))
            });
        match parsed {
            Ok((seq, req)) => {
                // Re-expansion is deterministic: same request, same code
                // fingerprint, same specs — so the re-queued tasks carry
                // the same cache keys the pre-crash run stored under.
                match expand_request(&req, default_budget) {
                    Ok((_, specs)) => out.push((seq, req, specs)),
                    Err(e) => eprintln!("# campaignd: journal {}: {e}", path.display()),
                }
            }
            Err(e) => eprintln!("# campaignd: journal {}: {e}", path.display()),
        }
    }
    out.sort_by_key(|(seq, _, _)| *seq);
    out
}

// ---------------------------------------------------------------------
// HTTP routing
// ---------------------------------------------------------------------

/// Route one parsed request to the service — the entire protocol
/// surface, pure of sockets:
///
/// | method & path                | handler                       |
/// |------------------------------|-------------------------------|
/// | `POST /v1/jobs`              | [`Service::submit`]           |
/// | `GET /v1/jobs/<id>`          | [`Service::status`]           |
/// | `GET /v1/jobs/<id>/events`   | [`Service::events`] (long-poll, `?since=N&timeout_ms=M`) |
/// | `GET /v1/stats`              | [`Service::stats`]            |
/// | `GET /v1/healthz`            | liveness probe                |
/// | `POST /v1/drain`             | [`Service::drain`]            |
pub fn handle_request(svc: &Service, req: &Request) -> (u16, JsonValue) {
    let segments = req.segments();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => (
            200,
            JsonValue::obj(vec![
                ("schema", SVC_SCHEMA.into()),
                ("ok", JsonValue::Bool(true)),
                ("uptime_ms", u(svc.now_ms())),
            ]),
        ),
        ("POST", ["v1", "jobs"]) => {
            let submission = JsonValue::parse(&req.body)
                .map_err(|e| format!("request body is not JSON: {e}"))
                .and_then(|doc| SubmitRequest::from_json(&doc));
            match submission {
                Ok(sr) => match svc.submit(&sr) {
                    Ok(ack) => (200, ack.to_json()),
                    Err((code, rej)) => (code, rej.to_json()),
                },
                Err(e) => (400, Rejection::of("bad-request", e).to_json()),
            }
        }
        ("GET", ["v1", "jobs", id]) => match svc.status(id) {
            Some(view) => (200, view.to_json()),
            None => not_found(id),
        },
        ("GET", ["v1", "jobs", id, "events"]) => {
            let since = req.query_u64("since", 0);
            let timeout = req.query_u64("timeout_ms", svc.inner.cfg.poll_timeout_ms);
            match svc.events(id, since, timeout) {
                Some(batch) => (200, batch.to_json()),
                None => not_found(id),
            }
        }
        ("GET", ["v1", "stats"]) => (200, svc.stats().to_json()),
        ("POST", ["v1", "drain"]) => (200, svc.drain()),
        (_, ["v1", ..]) => (
            405,
            Rejection::of(
                "bad-request",
                format!("no route for {} {}", req.method, req.path),
            )
            .to_json(),
        ),
        _ => (
            404,
            Rejection::of("not-found", format!("unknown path {}", req.path)).to_json(),
        ),
    }
}

fn not_found(id: &str) -> (u16, JsonValue) {
    (
        404,
        Rejection::of("not-found", format!("no job {id:?}")).to_json(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpcache(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("emc-campaignd-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn small_cfg(tag: &str) -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_cap: 256,
            mark_cap: 4,
            age_ms: 10_000,
            default_budget: 300,
            cache_dir: tmpcache(tag),
            poll_timeout_ms: 2_000,
        }
    }

    /// One narrowed submission: quad suite × No-PF × EMC off = 10 jobs.
    fn small_request(tenant: &str) -> SubmitRequest {
        let mut req = SubmitRequest::new(tenant, "quad");
        req.prefetcher = Some("No-PF".into());
        req.emc = Some(false);
        req
    }

    #[test]
    fn expand_request_covers_suites_filters_and_repeats() {
        let d = 1_000;
        for (suite, n) in [
            ("quad", 80),
            ("homog", 64),
            ("mix8-1mc", 80),
            ("mix8-2mc", 80),
        ] {
            let (_, specs) = expand_request(&SubmitRequest::new("t", suite), d).unwrap();
            assert_eq!(specs.len(), n, "{suite}");
        }
        assert!(expand_request(&SubmitRequest::new("t", "octo"), d)
            .unwrap_err()
            .contains("unknown suite"));

        // Narrowing: one prefetcher (case-insensitive) × one EMC side.
        let mut req = SubmitRequest::new("t", "quad");
        req.prefetcher = Some("ghb".into());
        req.emc = Some(true);
        let (_, specs) = expand_request(&req, d).unwrap();
        assert_eq!(specs.len(), 10);
        assert!(specs
            .iter()
            .all(|s| s.cfg.prefetcher.label() == "GHB" && s.cfg.emc.enabled));

        req.prefetcher = Some("NotAPrefetcher".into());
        assert!(expand_request(&req, d).unwrap_err().contains("GHB"));

        // Repeat fans out distinct seed grids with suffixed labels.
        let mut rep = small_request("t");
        rep.repeat = 3;
        rep.seed_bump = 100;
        let (_, specs) = expand_request(&rep, d).unwrap();
        assert_eq!(specs.len(), 30);
        assert!(specs[0].label.ends_with("#0"));
        assert!(specs[29].label.ends_with("#2"));
        let keys: std::collections::HashSet<String> = specs.iter().map(|s| s.key().0).collect();
        assert_eq!(keys.len(), 30, "every repeat copy is a distinct job");
    }

    #[test]
    fn expand_request_budget_default_and_override() {
        let (_, specs) = expand_request(&small_request("t"), 777).unwrap();
        assert!(specs.iter().all(|s| s.budget == 777), "0 means default");
        let mut req = small_request("t");
        req.budget = 1234;
        let (_, specs) = expand_request(&req, 777).unwrap();
        assert!(specs.iter().all(|s| s.budget == 1234));
    }

    #[test]
    fn submit_run_stream_and_warm_resubmit() {
        let cfg = small_cfg("roundtrip");
        let cache_dir = cfg.cache_dir.clone();
        let svc = Service::new(cfg);
        let workers = svc.start_workers();

        let ack = svc.submit(&small_request("alice")).expect("admitted");
        assert_eq!(ack.id, "j1");
        assert_eq!(ack.total, 10);

        // Long-poll the ordered event stream to completion.
        let mut since = 0;
        let mut seen = Vec::new();
        loop {
            let batch = svc.events("j1", since, 1_000).expect("job exists");
            for e in &batch.events {
                seen.push(e.seq);
            }
            since = batch.next;
            if batch.complete {
                break;
            }
        }
        assert_eq!(seen, (1..=10).collect::<Vec<u64>>(), "ordered, gap-free");

        let status = svc.status("j1").expect("status");
        assert_eq!(status.state, JobState::Done);
        assert_eq!(status.done, 10);
        assert_eq!(status.executed, 10, "cold cache: everything executed");
        assert_eq!(status.tenant, "alice");
        assert_eq!(status.failed, 0);

        // Identical resubmission: all hits, zero re-execution.
        let ack2 = svc.submit(&small_request("bob")).expect("admitted");
        assert!(svc.wait_all_jobs(Duration::from_secs(60)));
        let status2 = svc.status(&ack2.id).unwrap();
        assert_eq!(status2.hits, 10, "warm resubmit is pure cache hits");
        assert_eq!(status2.executed, 0);

        let stats = svc.stats();
        assert_eq!(stats.tasks_done, 20);
        assert_eq!(stats.hits, 10);
        assert_eq!(stats.executed, 10);
        assert!((stats.hit_rate - 0.5).abs() < 1e-9);
        assert_eq!(stats.jobs_done, 2);
        assert_eq!(stats.tenants.len(), 2);
        assert_eq!(stats.task_wall_ms.count, 10, "executed tasks only");
        assert!(stats.mcycles_per_sec > 0.0, "host-perf aggregated");

        // Manifests on disk agree with the service's tallies.
        let m = Manifest::load(&cache_dir, "svc-j1").expect("manifest");
        assert_eq!(m.done_count(), 10);
        assert!(m.entries.iter().all(|e| e.sim_cycles > 0));

        svc.stop();
        for w in workers {
            w.join().unwrap();
        }
        let _ = fs::remove_dir_all(cache_dir);
    }

    #[test]
    fn admission_control_rejects_with_structured_reason() {
        let mut cfg = small_cfg("admission");
        cfg.queue_cap = 15; // one 10-task job fits, a second cannot
        cfg.workers = 1;
        let cache_dir = cfg.cache_dir.clone();
        let svc = Service::new(cfg);
        // No workers started: the queue stays full.
        svc.submit(&small_request("alice")).expect("first fits");
        let (code, rej) = svc.submit(&small_request("bob")).unwrap_err();
        assert_eq!(code, 429);
        assert_eq!(rej.error, "queue-full");
        assert_eq!(rej.capacity, 15);
        assert!(rej.queue_depth >= 10);
        assert!(rej.detail.contains("capacity"));
        let _ = fs::remove_dir_all(cache_dir);
    }

    #[test]
    fn drain_rejects_submissions_and_stops_when_idle() {
        let cfg = small_cfg("drain");
        let cache_dir = cfg.cache_dir.clone();
        let svc = Service::new(cfg);
        let doc = svc.drain();
        assert!(matches!(doc.get("draining"), Some(JsonValue::Bool(true))));
        let (code, rej) = svc.submit(&small_request("alice")).unwrap_err();
        assert_eq!(code, 503);
        assert_eq!(rej.error, "draining");
        assert!(svc.stopped(), "idle drain stops immediately");
        let _ = fs::remove_dir_all(cache_dir);
    }

    #[test]
    fn journal_round_trips_submissions_for_resume() {
        let dir = tmpcache("journal");
        let mut req = small_request("carol");
        req.repeat = 2;
        req.seed_bump = 5;
        write_journal(&dir, "j3", &req).unwrap();
        write_journal(&dir, "j10", &small_request("dave")).unwrap();
        // A corrupt journal entry is skipped, not fatal.
        fs::write(journal_dir(&dir).join("j4.json"), "{broken").unwrap();

        let entries = read_journal(&dir, 300);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, 3, "ordered by id");
        assert_eq!(entries[1].0, 10);
        assert_eq!(entries[0].1, req, "request round-trips exactly");
        assert_eq!(entries[0].2.len(), 20, "specs re-expanded");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn restart_resumes_without_reexecuting_completed_work() {
        let cfg = small_cfg("resume");
        let cache_dir = cfg.cache_dir.clone();

        // First life: run one job to completion, admit a second, then
        // stop abruptly with its tasks still queued (no workers ever saw
        // them — the moral equivalent of kill -9 mid-queue).
        {
            let svc = Service::new(cfg.clone());
            let workers = svc.start_workers();
            svc.submit(&small_request("alice")).unwrap();
            assert!(svc.wait_all_jobs(Duration::from_secs(120)));
            svc.stop();
            for w in workers {
                w.join().unwrap();
            }
            svc.submit(&small_request("bob")).unwrap();
        }

        // Second life: both journals replay. Job 1 is already complete
        // per its manifest; job 2's tasks re-queue and resolve as pure
        // cache hits (alice's run populated the shared cache).
        let svc = Service::new(cfg);
        let s1 = svc.status("j1").expect("job 1 survives");
        assert_eq!(s1.state, JobState::Done);
        assert_eq!(s1.done, 10);
        let s2 = svc.status("j2").expect("job 2 survives");
        assert_eq!(s2.state, JobState::Queued);

        let workers = svc.start_workers();
        assert!(svc.wait_all_jobs(Duration::from_secs(120)));
        let s2 = svc.status("j2").unwrap();
        assert_eq!(s2.state, JobState::Done);
        assert_eq!(s2.hits, 10, "resume re-executes nothing");
        assert_eq!(s2.executed, 0);
        let stats = svc.stats();
        assert_eq!(stats.executed, 0, "this life simulated nothing");
        svc.stop();
        for w in workers {
            w.join().unwrap();
        }
        let _ = fs::remove_dir_all(cache_dir);
    }

    #[test]
    fn router_handles_protocol_without_sockets() {
        let cfg = small_cfg("router");
        let cache_dir = cfg.cache_dir.clone();
        let svc = Service::new(cfg);

        let get = |path: &str| Request {
            method: "GET".into(),
            path: path.into(),
            query: HashMap::new(),
            body: String::new(),
        };

        let (code, body) = handle_request(&svc, &get("/v1/healthz"));
        assert_eq!(code, 200);
        assert!(matches!(body.get("ok"), Some(JsonValue::Bool(true))));

        let (code, body) = handle_request(&svc, &get("/v1/jobs/j99"));
        assert_eq!(code, 404);
        assert_eq!(
            body.get("error").and_then(|v| v.as_str()),
            Some("not-found")
        );

        let (code, _) = handle_request(&svc, &get("/v1/nonsense"));
        assert_eq!(code, 405, "unknown v1 route");
        let (code, _) = handle_request(&svc, &get("/other"));
        assert_eq!(code, 404);

        let (code, body) = handle_request(
            &svc,
            &Request {
                method: "POST".into(),
                path: "/v1/jobs".into(),
                query: HashMap::new(),
                body: "{not json".into(),
            },
        );
        assert_eq!(code, 400);
        assert_eq!(
            body.get("error").and_then(|v| v.as_str()),
            Some("bad-request")
        );

        let (code, body) = handle_request(&svc, &get("/v1/stats"));
        assert_eq!(code, 200);
        let stats = ServiceStats::from_json(&body).expect("stats document decodes");
        assert_eq!(stats.jobs, 0);
        let _ = fs::remove_dir_all(cache_dir);
    }
}
