//! Per-tenant fair queue with PAR-BS-style batching and aging.
//!
//! This is the same algorithm family as the memory controller's
//! parallelism-aware batch scheduler in `crates/memctrl`, lifted from
//! DRAM requests to experiment tasks — the mapping is deliberate and
//! one-to-one:
//!
//! | memctrl (PAR-BS)                  | campaignd fair queue            |
//! |-----------------------------------|---------------------------------|
//! | request in a bank queue           | task in a tenant queue          |
//! | per-(core, bank) marking cap      | per-tenant marking cap          |
//! | marked > unmarked priority        | batch tasks dispatch first      |
//! | rank within batch (row hits, age) | round-robin tenants, oldest-first within a tenant |
//! | aging escalation past threshold   | aging escalation past threshold |
//!
//! **Batching** bounds how far a bulk submitter can get ahead: when no
//! marked task remains, the queue marks up to `mark_cap` of the oldest
//! tasks from *every* tenant with pending work, and marked tasks are
//! dispatched before any unmarked one. A tenant that dumps 10 000 tasks
//! therefore contributes at most `mark_cap` tasks per batch, and every
//! other tenant's work rides in the same batch — the bulk queue drains
//! in the background instead of blocking the interactive one.
//!
//! **Ranking** within a batch is round-robin across tenants (each tenant
//! oldest-first), so batch service is interleaved rather than
//! tenant-serial.
//!
//! **Aging** is the same backstop PR 6 added to the memory controller:
//! a tenant whose *head-of-line* task waits past `age_ms` escalates
//! above batch membership entirely, so a tenant arriving mid-way
//! through a giant batch is bounded by the aging threshold, not by the
//! batch's residual drain time — exactly the role `mc_escalation_age`
//! plays against open-row streams. One deliberate adaptation: memctrl
//! ranks escalated *requests* oldest-first (the starved request is the
//! oldest), but here the fairness unit is the tenant, and under
//! saturation every deep queue is older than any threshold — global
//! oldest-first would collapse into FIFO and hand the service back to
//! the bulk submitter. Escalated *heads* therefore share service
//! round-robin, exactly like the batch rank, and only the head of each
//! tenant queue is age-checked (a tenant's own backlog behind its head
//! is fair-share delay, not starvation).
//!
//! The queue is a pure data structure: callers pass `now_ms` (any
//! monotonic millisecond clock) so every fairness property is testable
//! with a virtual clock.

use std::collections::VecDeque;

/// Default marking cap: tasks per tenant per batch.
pub const DEFAULT_MARK_CAP: usize = 16;

/// Default aging threshold (milliseconds) before a queued task escalates
/// above batch boundaries.
pub const DEFAULT_AGE_MS: u64 = 30_000;

/// An opaque reference to a queued unit of work: a (job, task) index
/// pair into the service's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskRef {
    /// Index of the owning job.
    pub job: usize,
    /// Index of the task within the job.
    pub index: usize,
}

#[derive(Debug)]
struct QueuedTask {
    task: TaskRef,
    enqueued_ms: u64,
    marked: bool,
    escalated: bool,
}

#[derive(Debug, Default)]
struct TenantQueue {
    tasks: VecDeque<QueuedTask>,
}

/// Admission-control rejection: the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// Tasks queued at rejection time.
    pub depth: usize,
    /// The configured capacity.
    pub capacity: usize,
}

/// What [`FairQueue::pop`] dispatched, beyond the task itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// The dispatched task.
    pub task: TaskRef,
    /// Tenant the task belongs to.
    pub tenant: usize,
    /// How long the task waited in the queue, milliseconds.
    pub wait_ms: u64,
    /// True when the task was dispatched via aging escalation rather
    /// than normal batch order.
    pub escalated: bool,
}

/// The service's fair scheduler (see module docs).
#[derive(Debug)]
pub struct FairQueue {
    tenants: Vec<TenantQueue>,
    /// Round-robin rank cursor over tenants.
    cursor: usize,
    capacity: usize,
    mark_cap: usize,
    age_ms: u64,
    len: usize,
}

impl FairQueue {
    /// An empty queue admitting at most `capacity` tasks, marking up to
    /// `mark_cap` tasks per tenant per batch, and escalating tasks older
    /// than `age_ms`.
    pub fn new(capacity: usize, mark_cap: usize, age_ms: u64) -> Self {
        FairQueue {
            tenants: Vec::new(),
            cursor: 0,
            capacity,
            mark_cap: mark_cap.max(1),
            age_ms: age_ms.max(1),
            len: 0,
        }
    }

    /// Total queued tasks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The admission-control capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queued tasks for one tenant (0 for unknown tenants).
    pub fn depth_of(&self, tenant: usize) -> usize {
        self.tenants.get(tenant).map_or(0, |t| t.tasks.len())
    }

    /// Admit a job's tasks for `tenant`, all or nothing: if the batch
    /// would push the queue past capacity, nothing is admitted and the
    /// caller turns the [`QueueFull`] into a structured 429.
    pub fn admit(
        &mut self,
        tenant: usize,
        tasks: impl IntoIterator<Item = TaskRef>,
        now_ms: u64,
    ) -> Result<usize, QueueFull> {
        let tasks: Vec<TaskRef> = tasks.into_iter().collect();
        if self.len + tasks.len() > self.capacity {
            return Err(QueueFull {
                depth: self.len,
                capacity: self.capacity,
            });
        }
        while self.tenants.len() <= tenant {
            self.tenants.push(TenantQueue::default());
        }
        let n = tasks.len();
        for task in tasks {
            self.tenants[tenant].tasks.push_back(QueuedTask {
                task,
                enqueued_ms: now_ms,
                marked: false,
                escalated: false,
            });
        }
        self.len += n;
        Ok(n)
    }

    /// Escalate every tenant *head* whose wait crossed the aging
    /// threshold (the pure `(queue ages, now)` scan, as in the memory
    /// controller — restricted to heads, see module docs). Only heads
    /// are ever popped, so at most one task per tenant carries the flag.
    fn escalate_aged(&mut self, now_ms: u64) {
        for tq in &mut self.tenants {
            if let Some(t) = tq.tasks.front_mut() {
                if !t.escalated && now_ms.saturating_sub(t.enqueued_ms) >= self.age_ms {
                    t.escalated = true;
                }
            }
        }
    }

    /// Form a new batch if no marked task remains: mark up to `mark_cap`
    /// of the oldest tasks from every tenant with pending work.
    fn form_batch(&mut self) {
        if self
            .tenants
            .iter()
            .any(|tq| tq.tasks.iter().any(|t| t.marked))
        {
            return;
        }
        for tq in &mut self.tenants {
            for t in tq.tasks.iter_mut().take(self.mark_cap) {
                t.marked = true;
            }
        }
    }

    /// Dispatch the next task, or `None` when the queue is empty. Only
    /// tenant heads are candidates (marking covers the oldest prefix of
    /// each queue and pops remove from the front, so the head is always
    /// a tenant's highest-priority task). Priority classes: escalated
    /// heads > marked heads > any head, with the shared round-robin
    /// cursor ranking tenants inside whichever class is non-empty.
    pub fn pop(&mut self, now_ms: u64) -> Option<Dispatch> {
        if self.len == 0 {
            return None;
        }
        self.escalate_aged(now_ms);

        let head = |tq: &TenantQueue| -> Option<(bool, bool)> {
            tq.tasks.front().map(|t| (t.escalated, t.marked))
        };
        let any_escalated = self.tenants.iter().any(|tq| head(tq).is_some_and(|h| h.0));
        if !any_escalated {
            self.form_batch();
        }
        let any_marked = self.tenants.iter().any(|tq| head(tq).is_some_and(|h| h.1));

        let n = self.tenants.len();
        for step in 0..n {
            let ti = (self.cursor + step) % n;
            let Some((escalated, marked)) = head(&self.tenants[ti]) else {
                continue;
            };
            let eligible = if any_escalated {
                escalated
            } else if any_marked {
                marked
            } else {
                true
            };
            if eligible {
                self.cursor = (ti + 1) % n;
                return Some(self.take(ti, now_ms, escalated));
            }
        }
        None
    }

    fn take(&mut self, tenant: usize, now_ms: u64, escalated: bool) -> Dispatch {
        let t = self.tenants[tenant]
            .tasks
            .pop_front()
            .expect("head checked by caller");
        self.len -= 1;
        Dispatch {
            task: t.task,
            tenant,
            wait_ms: now_ms.saturating_sub(t.enqueued_ms),
            escalated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs(job: usize, n: usize) -> Vec<TaskRef> {
        (0..n).map(|index| TaskRef { job, index }).collect()
    }

    #[test]
    fn admission_control_is_all_or_nothing() {
        let mut q = FairQueue::new(10, 4, 1_000);
        assert_eq!(q.admit(0, refs(0, 8), 0), Ok(8));
        let err = q.admit(1, refs(1, 3), 0).unwrap_err();
        assert_eq!(
            err,
            QueueFull {
                depth: 8,
                capacity: 10
            }
        );
        assert_eq!(q.len(), 8, "rejected batch admitted nothing");
        assert_eq!(q.admit(1, refs(1, 2), 0), Ok(2), "exact fit admits");
        assert_eq!(q.len(), 10);
    }

    #[test]
    fn batching_interleaves_a_bulk_tenant_with_a_small_one() {
        // Tenant 0 dumps 100 tasks; tenant 1 submits 4. With mark_cap 4
        // the first batch holds 4+4 tasks and round-robin ranking
        // alternates tenants, so tenant 1's last task dispatches within
        // the first 8 pops — not after tenant 0's 100.
        let mut q = FairQueue::new(4096, 4, 1_000_000);
        q.admit(0, refs(0, 100), 0).unwrap();
        q.admit(1, refs(1, 4), 0).unwrap();
        let mut last_t1_pop = 0;
        for i in 0..q.len() {
            let d = q.pop(1).unwrap();
            if d.tenant == 1 {
                last_t1_pop = i;
            }
            assert!(!d.escalated, "nothing should age in this scenario");
        }
        assert!(
            last_t1_pop < 8,
            "small tenant finished at pop {last_t1_pop}, starved behind bulk"
        );
    }

    #[test]
    fn round_robin_ranks_three_tenants_evenly_within_a_batch() {
        let mut q = FairQueue::new(4096, 2, 1_000_000);
        for tenant in 0..3 {
            q.admit(tenant, refs(tenant, 2), 0).unwrap();
        }
        // One batch of 6; the first three pops hit three distinct
        // tenants (round-robin), not one tenant twice.
        let first3: Vec<usize> = (0..3).map(|_| q.pop(1).unwrap().tenant).collect();
        let mut sorted = first3.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2], "rank interleaves: {first3:?}");
    }

    #[test]
    fn late_tenant_is_rescued_by_aging_not_batch_drain() {
        // Bulk tenant forms a huge batch (mark_cap 1000 ≈ no batching);
        // tenant 1 arrives after batch formation. Without aging it would
        // wait for the whole batch; with aging it dispatches as soon as
        // its wait crosses the threshold.
        let age = 50;
        let mut q = FairQueue::new(16_384, 1_000, age);
        q.admit(0, refs(0, 1_000), 0).unwrap();
        let _ = q.pop(1).unwrap(); // batch formed at t=1
        q.admit(1, refs(1, 1), 2).unwrap();

        // Before the threshold, bulk tasks keep dispatching.
        for now in [10, 20, 30] {
            assert_eq!(q.pop(now).unwrap().tenant, 0);
        }
        // First pop at/after the threshold dispatches the aged task.
        let d = q.pop(2 + age).unwrap();
        assert_eq!(d.tenant, 1, "aged task outranks the batch");
        assert!(d.escalated);
        assert_eq!(d.wait_ms, age);
    }

    #[test]
    fn escalated_heads_share_service_round_robin_not_fifo() {
        // Under saturation every head crosses the threshold; dispatch
        // must still interleave tenants (round-robin) instead of
        // degrading to global FIFO that would favor the oldest (bulk)
        // queue — see module docs for why this diverges from memctrl's
        // oldest-first request ranking.
        let mut q = FairQueue::new(4096, 1, 10);
        q.admit(0, refs(0, 5), 0).unwrap(); // oldest, deepest
        q.admit(1, refs(1, 2), 3).unwrap();
        q.admit(2, refs(2, 2), 5).unwrap();
        let order: Vec<(usize, bool)> = (0..6)
            .map(|i| {
                let d = q.pop(100 + i).unwrap();
                (d.tenant, d.escalated)
            })
            .collect();
        assert!(order.iter().all(|&(_, esc)| esc), "all waits crossed 10ms");
        let first3: Vec<usize> = order.iter().take(3).map(|&(t, _)| t).collect();
        let mut sorted = first3.clone();
        sorted.sort();
        assert_eq!(
            sorted,
            vec![0, 1, 2],
            "escalated service interleaves tenants: {order:?}"
        );
    }

    #[test]
    fn wait_is_measured_and_queue_drains_empty() {
        let mut q = FairQueue::new(64, 4, 1_000_000);
        q.admit(0, refs(0, 3), 100).unwrap();
        let d = q.pop(250).unwrap();
        assert_eq!(d.wait_ms, 150);
        assert_eq!(q.len(), 2);
        assert!(q.pop(260).is_some());
        assert!(q.pop(270).is_some());
        assert!(q.pop(280).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn wait_bound_property_under_continuous_bulk_load() {
        // Deterministic end-to-end fairness property: with aging at A
        // and a single server popping every 1ms, a small tenant's worst
        // wait stays within A plus the escalated backlog it joins —
        // never the bulk tenant's full drain time.
        let age = 40;
        let mut q = FairQueue::new(65_536, 8, age);
        q.admit(0, refs(0, 2_000), 0).unwrap();
        let mut worst_small_wait = 0;
        let mut now = 0;
        // Tenant 1 submits one task every 25ms; serve one task per ms.
        for step in 0..500u64 {
            now = step;
            if step % 25 == 0 {
                q.admit(1, refs(1, 1), now).unwrap();
            }
            if let Some(d) = q.pop(now) {
                if d.tenant == 1 {
                    worst_small_wait = worst_small_wait.max(d.wait_ms);
                }
            }
        }
        let _ = now;
        assert!(
            worst_small_wait <= age + 8,
            "small tenant worst wait {worst_small_wait}ms exceeds aging bound"
        );
    }
}
