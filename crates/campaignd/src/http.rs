//! Hand-rolled HTTP/1.1 transport for the service, over
//! `std::net::TcpListener` — no web framework, no async runtime, in
//! keeping with the workspace's no-new-deps discipline (the JSON wire
//! format is already covered by `emc_types::json`).
//!
//! The shape is deliberately minimal: one request per connection
//! (`Connection: close`), a thread per connection (long-poll handlers
//! block, and localhost clients are few), bounded header/body sizes, and
//! read timeouts so a stuck client can never wedge a handler thread.
//! Routing lives in [`crate::service`]; this module only parses requests
//! and writes responses, both ways exercised by unit tests without
//! sockets.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

/// Maximum accepted request body (1 MiB — submissions are small).
pub const MAX_BODY: usize = 1 << 20;

/// Maximum accepted header section (16 KiB).
pub const MAX_HEADER: usize = 16 << 10;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method, upper-case (`GET`, `POST`).
    pub method: String,
    /// Path without the query string (`/v1/jobs/j3/events`).
    pub path: String,
    /// Decoded query parameters (last occurrence wins).
    pub query: HashMap<String, String>,
    /// Raw request body (UTF-8; empty for bodyless requests).
    pub body: String,
}

impl Request {
    /// A query parameter parsed as `u64`, or `default` when absent or
    /// malformed.
    pub fn query_u64(&self, key: &str, default: u64) -> u64 {
        self.query
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Split the path into its non-empty segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Read and parse one HTTP/1.1 request from a stream.
///
/// # Errors
///
/// Returns a message for malformed request lines, oversized headers or
/// bodies, and I/O failures (including read timeouts).
pub fn read_request<S: Read>(stream: S) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or("empty request line")?
        .to_ascii_uppercase();
    let target = parts.next().ok_or("request line missing target")?;
    if !target.starts_with('/') {
        return Err(format!("bad request target {target:?}"));
    }

    // Headers: we only act on Content-Length.
    let mut content_length = 0usize;
    let mut header_bytes = 0usize;
    loop {
        let mut h = String::new();
        reader
            .read_line(&mut h)
            .map_err(|e| format!("read header: {e}"))?;
        header_bytes += h.len();
        if header_bytes > MAX_HEADER {
            return Err("header section too large".into());
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad content-length {value:?}"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body of {content_length} bytes exceeds {MAX_BODY}"));
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = HashMap::new();
    for pair in query_str.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(percent_decode(k), percent_decode(v));
    }

    Ok(Request {
        method,
        path: path.to_string(),
        query,
        body,
    })
}

/// Minimal percent-decoding for query values (`%XX` and `+`).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                if let (Some(hi), Some(lo)) = (
                    bytes.get(i + 1).copied().and_then(hex_val),
                    bytes.get(i + 2).copied().and_then(hex_val),
                ) {
                    out.push(hi * 16 + lo);
                    i += 3;
                    continue;
                }
                out.push(b'%');
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// The reason phrase for the status codes the service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Serialize one JSON response with `Connection: close`.
pub fn response_bytes(status: u16, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        reason_phrase(status),
        body.len(),
    )
    .into_bytes()
}

/// Write one JSON response to a stream.
///
/// # Errors
///
/// Propagates the I/O failure message.
pub fn write_response<S: Write>(mut stream: S, status: u16, body: &str) -> Result<(), String> {
    stream
        .write_all(&response_bytes(status, body))
        .and_then(|_| stream.flush())
        .map_err(|e| format!("write response: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body_and_headers() {
        let raw = "POST /v1/jobs HTTP/1.1\r\nHost: localhost\r\nContent-Length: 13\r\n\r\n{\"a\":\"hello\"}";
        let req = read_request(raw.as_bytes()).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.body, "{\"a\":\"hello\"}");
        assert_eq!(req.segments(), vec!["v1", "jobs"]);
    }

    #[test]
    fn parses_query_strings_with_decoding() {
        let raw = "GET /v1/jobs/j3/events?since=42&tag=a%20b+c HTTP/1.1\r\n\r\n";
        let req = read_request(raw.as_bytes()).unwrap();
        assert_eq!(req.path, "/v1/jobs/j3/events");
        assert_eq!(req.query_u64("since", 0), 42);
        assert_eq!(req.query_u64("missing", 7), 7);
        assert_eq!(req.query.get("tag").map(String::as_str), Some("a b c"));
        assert_eq!(req.segments(), vec!["v1", "jobs", "j3", "events"]);
    }

    #[test]
    fn rejects_malformed_and_oversized_requests() {
        assert!(read_request("\r\n".as_bytes()).is_err());
        assert!(read_request("GET\r\n\r\n".as_bytes()).is_err());
        assert!(read_request("GET nopath HTTP/1.1\r\n\r\n".as_bytes()).is_err());
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(read_request(huge.as_bytes()).unwrap_err().contains("body"));
        // Truncated body (fewer bytes than Content-Length) is an error,
        // never a hang or a silent short read.
        let short = "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(read_request(short.as_bytes()).is_err());
    }

    #[test]
    fn response_is_well_formed_http() {
        let bytes = response_bytes(429, "{\"error\":\"queue-full\"}");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("content-length: 22\r\n"));
        assert!(text.ends_with("{\"error\":\"queue-full\"}"));
    }
}
