//! Chaos tests for the fault-injection layer: under arbitrary (valid)
//! fault plans the simulator still terminates, still produces the same
//! architectural state as a fault-free run (faults are timing-only),
//! and remains bit-identical across reruns with the same seed. Plus
//! run-outcome reporting: starved runs report `CapHit`, never a silent
//! truncation.

use emc_sim::{build_system, cycle_cap, BuildError, RunOutcome, System};
use emc_types::{FaultPlan, Stats, SystemConfig};
use emc_workloads::{build, Benchmark, SPILL_BASE};
use proptest::prelude::*;

/// Architectural fingerprint of a finished run: retired counts, final
/// committed registers, and the spill words every benchmark writes.
type ArchState = (Vec<u64>, Vec<[u64; 16]>, Vec<u64>);

/// Run four copies of `bench` to completion (small iteration count)
/// under `faults` and return the architectural state plus statistics.
fn run_to_completion(faults: FaultPlan, bench: Benchmark, iters: u64) -> (ArchState, Stats) {
    let mut cfg = SystemConfig::quad_core();
    cfg.faults = faults;
    let workloads: Vec<_> = (0..4).map(|i| build(bench, 50 + i, iters)).collect();
    let mut sys = System::new(cfg, workloads).expect("build system");
    let report = sys.run(u64::MAX, cycle_cap(100_000));
    assert_eq!(
        report.outcome,
        RunOutcome::Completed,
        "faulty run must still terminate: {:?}",
        report.wedge
    );
    let stats = report.stats;
    let retired = stats.cores.iter().map(|c| c.retired_uops).collect();
    let regs = (0..4).map(|c| *sys.core(c).committed_regs()).collect();
    let mem = (0..4)
        .flat_map(|c| (0..8).map(move |k| (c, k)))
        .map(|(c, k)| {
            sys.core(c)
                .mem
                .read_u64(emc_types::Addr(SPILL_BASE + k * 8))
        })
        .collect();
    ((retired, regs, mem), stats)
}

/// [`run_to_completion`] with a config tweak (liveness thresholds) and
/// an explicit cycle-cap multiplier: storm scenarios legitimately need
/// more wall-clock than a clean run, so they get 10× the normal cap and
/// must still terminate — via liveness escalation, not luck.
fn run_storm(
    faults: FaultPlan,
    tweak: impl FnOnce(&mut SystemConfig),
    iters: u64,
    cap_mult: u64,
) -> (ArchState, Stats) {
    let mut cfg = SystemConfig::quad_core();
    cfg.faults = faults;
    tweak(&mut cfg);
    let workloads: Vec<_> = (0..4)
        .map(|i| build(Benchmark::Mcf, 50 + i, iters))
        .collect();
    let mut sys = System::new(cfg, workloads).expect("build system");
    let report = sys.run(u64::MAX, cycle_cap(100_000) * cap_mult);
    assert_eq!(
        report.outcome,
        RunOutcome::Completed,
        "storm run must still terminate; class {:?}, wedge {:?}",
        report.class,
        report.wedge
    );
    let stats = report.stats;
    let retired = stats.cores.iter().map(|c| c.retired_uops).collect();
    let regs = (0..4).map(|c| *sys.core(c).committed_regs()).collect();
    let mem = (0..4)
        .flat_map(|c| (0..8).map(move |k| (c, k)))
        .map(|(c, k)| {
            sys.core(c)
                .mem
                .read_u64(emc_types::Addr(SPILL_BASE + k * 8))
        })
        .collect();
    ((retired, regs, mem), stats)
}

fn fault_plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        0.0..0.05f64,  // ring_delay_prob
        1u64..32,      // ring_delay_cycles
        0.0..0.02f64,  // dram_reissue_prob
        1u64..200,     // dram_reissue_penalty
        0.0..0.003f64, // emc_kill_prob (per busy context per cycle)
        0.0..0.001f64, // mc_storm_prob
        1u64..300,     // mc_storm_cycles
    )
        .prop_map(|(rp, rd, dp, dpen, kp, sp, sc)| FaultPlan {
            enabled: true,
            ring_delay_prob: rp,
            ring_delay_cycles: rd,
            dram_reissue_prob: dp,
            dram_reissue_penalty: dpen,
            emc_kill_prob: kp,
            mc_storm_prob: sp,
            mc_storm_cycles: sc,
        })
}

fn baseline() -> &'static ArchState {
    static BASELINE: std::sync::OnceLock<ArchState> = std::sync::OnceLock::new();
    BASELINE.get_or_init(|| run_to_completion(FaultPlan::default(), Benchmark::Mcf, 120).0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any valid fault plan: the run terminates and its final
    /// architectural state is bit-identical to the fault-free run —
    /// faults perturb timing only.
    #[test]
    fn chaos_faults_are_architecturally_invisible(plan in fault_plan_strategy()) {
        let (faulty, _) = run_to_completion(plan, Benchmark::Mcf, 120);
        let clean = baseline();
        prop_assert_eq!(&faulty.0, &clean.0, "retired-uop counts diverged under {:?}", plan);
        prop_assert_eq!(&faulty.1, &clean.1, "final registers diverged under {:?}", plan);
        prop_assert_eq!(&faulty.2, &clean.2, "spill memory diverged under {:?}", plan);
    }

    /// Same seed, same fault plan: reruns are bit-identical, faults and
    /// all.
    #[test]
    fn chaos_runs_are_deterministic(plan in fault_plan_strategy()) {
        let (state_a, a) = run_to_completion(plan, Benchmark::Mcf, 100);
        let (state_b, b) = run_to_completion(plan, Benchmark::Mcf, 100);
        prop_assert_eq!(state_a, state_b);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.mem.dram_reads, b.mem.dram_reads);
        prop_assert_eq!(a.ring.injected_delays, b.ring.injected_delays);
        prop_assert_eq!(a.mem.ecc_reissues, b.mem.ecc_reissues);
        prop_assert_eq!(a.mem.backpressure_storms, b.mem.backpressure_storms);
        for (ca, cb) in a.cores.iter().zip(&b.cores) {
            prop_assert_eq!(ca.chains_aborted_injected, cb.chains_aborted_injected);
            prop_assert_eq!(ca.emc_quiesce_events, cb.emc_quiesce_events);
        }
    }
}

#[test]
fn chaos_plan_actually_injects_faults() {
    let (_, stats) = run_to_completion(FaultPlan::chaos(), Benchmark::Mcf, 150);
    assert!(
        stats.ring.injected_delays > 0,
        "no ring delays injected: {:?}",
        stats.ring
    );
    assert!(
        stats.mem.ecc_reissues > 0,
        "no ECC re-issues injected: {:?}",
        stats.mem
    );
}

#[test]
fn emc_kill_storm_degrades_gracefully() {
    // An absurdly hostile kill rate: most chains die mid-flight. The
    // run must still complete (cores re-execute locally), the injected
    // aborts must be counted, and the per-core quiesce logic must kick
    // in at least once.
    let plan = FaultPlan {
        enabled: true,
        emc_kill_prob: 0.05,
        ..FaultPlan::default()
    };
    let (state, stats) = run_to_completion(plan, Benchmark::Mcf, 120);
    assert_eq!(&state, baseline(), "kill storm changed architectural state");
    let injected: u64 = stats.cores.iter().map(|c| c.chains_aborted_injected).sum();
    let quiesces: u64 = stats.cores.iter().map(|c| c.emc_quiesce_events).sum();
    assert!(injected > 0, "kill storm never killed a chain");
    assert!(
        quiesces > 0,
        "consecutive kills never triggered a quiesce: {injected} kills"
    );
}

#[test]
fn backpressure_storm_terminates_via_escalation() {
    // Frequent long backpressure storms shrink the MC queue to a
    // quarter and bounce everything else to the retry path. With the
    // escalation age tightened below the storm length, aged requests
    // must escalate (the counter proves the mechanism fired), the run
    // must complete inside 10× the normal cap, and the storm must stay
    // architecturally invisible.
    let plan = FaultPlan {
        enabled: true,
        mc_storm_prob: 0.005,
        mc_storm_cycles: 300,
        ..FaultPlan::default()
    };
    let (state, stats) = run_storm(plan, |cfg| cfg.liveness.mc_escalation_age = 256, 120, 10);
    assert_eq!(&state, baseline(), "storm changed architectural state");
    assert!(
        stats.mem.backpressure_storms > 0,
        "storm plan never stormed: {:?}",
        stats.mem
    );
    assert!(
        stats.mem.escalated_requests > 0,
        "no request escalated under sustained storms: {:?}",
        stats.mem
    );
}

#[test]
fn combined_storm_with_short_lease_terminates() {
    // Everything at once: backpressure storms, chain kills, ring
    // delays, ECC re-issues — plus a lease short enough that stalled
    // EMC contexts are reclaimed rather than waited out. Termination
    // must come from the liveness layer (escalations observed), and the
    // re-executed chains must leave architectural state untouched.
    let plan = FaultPlan {
        enabled: true,
        ring_delay_prob: 0.05,
        ring_delay_cycles: 32,
        dram_reissue_prob: 0.02,
        dram_reissue_penalty: 200,
        emc_kill_prob: 0.01,
        mc_storm_prob: 0.003,
        mc_storm_cycles: 300,
    };
    let (state, stats) = run_storm(
        plan,
        |cfg| {
            cfg.liveness.mc_escalation_age = 256;
            cfg.liveness.emc_lease = 1_500;
        },
        120,
        10,
    );
    assert_eq!(
        &state,
        baseline(),
        "combined storm changed architectural state"
    );
    assert!(
        stats.mem.escalated_requests > 0,
        "no request escalated under the combined storm: {:?}",
        stats.mem
    );
}

#[test]
fn starved_run_reports_cap_hit_with_progress() {
    // Budget far beyond what the cycle cap allows: the run must report
    // CapHit — with real per-core progress — and never pretend it
    // completed.
    let mix = [
        Benchmark::Mcf,
        Benchmark::Sphinx3,
        Benchmark::Soplex,
        Benchmark::Libquantum,
    ];
    let mut sys = build_system(SystemConfig::quad_core(), &mix).expect("build system");
    let report = sys.run(1_000_000_000, 20_000);
    assert_eq!(report.outcome, RunOutcome::CapHit);
    assert!(report.wedge.is_none(), "cap-hit is not a wedge");
    assert!(!report.is_completed());
    for (i, c) in report.stats.cores.iter().enumerate() {
        assert!(
            c.retired_uops > 0,
            "core {i} shows no progress in a cap-hit report"
        );
        assert!(c.retired_uops < 1_000_000_000);
    }
}

#[test]
fn starved_warmup_reports_cap_hit_too() {
    let mix = [
        Benchmark::Mcf,
        Benchmark::Sphinx3,
        Benchmark::Soplex,
        Benchmark::Libquantum,
    ];
    let mut sys = build_system(SystemConfig::quad_core(), &mix).expect("build system");
    let report = sys.run_with_warmup(1_000_000_000, 2_000_000_000, 20_000);
    assert_eq!(report.outcome, RunOutcome::CapHit);
}

#[test]
#[should_panic(expected = "cycle cap")]
fn expect_completed_fails_loudly_on_starved_run() {
    let mix = [
        Benchmark::Mcf,
        Benchmark::Sphinx3,
        Benchmark::Soplex,
        Benchmark::Libquantum,
    ];
    let mut sys = build_system(SystemConfig::quad_core(), &mix).expect("build system");
    let _ = sys.run(1_000_000_000, 20_000).expect_completed();
}

#[test]
fn invalid_fault_plan_is_rejected_at_build_time() {
    let mut cfg = SystemConfig::quad_core();
    cfg.faults = FaultPlan {
        enabled: true,
        ring_delay_prob: 1.5,
        ..FaultPlan::default()
    };
    let err = build_system(cfg, &[Benchmark::Mcf; 4])
        .err()
        .expect("must reject");
    match err {
        BuildError::InvalidConfig(msg) => {
            assert!(
                msg.contains("ring_delay_prob"),
                "error must name the field: {msg}"
            )
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn workload_count_mismatch_is_a_typed_error() {
    let err = build_system(SystemConfig::quad_core(), &[Benchmark::Mcf; 3])
        .err()
        .expect("must reject");
    assert_eq!(
        err,
        BuildError::WorkloadMismatch {
            workloads: 3,
            cores: 4
        }
    );
    assert!(err.to_string().contains("one workload per core"));
}
