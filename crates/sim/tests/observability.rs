//! End-to-end tests of the observability layer: miss-journey tracing,
//! latency histograms, the time-series sampler, the JSON exporters, and
//! the zero-perturbation guarantee (tracing must not change simulated
//! behavior, only record it).

use emc_sim::{build_system, cycle_cap, metrics_json, summary_json};
use emc_types::{JsonValue, SystemConfig, TraceEvent};
use emc_workloads::mix_by_name;

const BUDGET: u64 = 20_000;

fn traced_run() -> emc_sim::System {
    let mix = mix_by_name("H4").unwrap();
    let mut sys = build_system(SystemConfig::quad_core(), &mix).unwrap();
    sys.enable_tracing();
    sys.set_sample_interval(1_000);
    let report = sys.run(BUDGET, cycle_cap(BUDGET));
    report.expect_completed();
    sys
}

#[test]
fn journeys_are_recorded_and_stage_deltas_tile_the_total() {
    let sys = traced_run();
    let journeys = sys.trace().journeys();
    assert!(!journeys.is_empty(), "traced run produced no miss journeys");
    let mut emc_seen = false;
    for j in journeys {
        let stages = j.stages();
        assert!(!stages.is_empty(), "journey {:?} has no stages", j.req);
        // Stages are consecutive and cover created..delivered exactly.
        assert_eq!(stages.first().unwrap().1, j.created);
        assert_eq!(stages.last().unwrap().2, j.delivered);
        for w in stages.windows(2) {
            assert_eq!(w[0].2, w[1].1, "gap between stages in {:?}", j.req);
        }
        let sum: u64 = stages.iter().map(|(_, s, e)| e - s).sum();
        assert_eq!(sum, j.total(), "stage deltas must sum to the total");
        emc_seen |= j.emc;
    }
    assert!(emc_seen, "no EMC-issued journey was traced");
}

#[test]
fn every_latency_site_reports_percentiles() {
    let mix = mix_by_name("H4").unwrap();
    let mut sys = build_system(SystemConfig::quad_core(), &mix).unwrap();
    let report_stats = sys.run(BUDGET, cycle_cap(BUDGET)).expect_completed();
    let m = &report_stats.mem;
    for (name, h) in [
        ("core_miss_latency", &m.core_miss_latency),
        ("emc_miss_latency", &m.emc_miss_latency),
        ("dram_service_latency", &m.dram_service_latency),
        ("on_chip_delay", &m.on_chip_delay),
    ] {
        assert!(h.count > 0, "{name} recorded nothing");
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 > 0, "{name} p50 is zero");
        assert!(p50 <= p95 && p95 <= p99, "{name} percentiles not monotone");
        assert!(p99 <= h.max, "{name} p99 exceeds max");
    }
    // Stall episodes feed a histogram too.
    let stalls: u64 = report_stats
        .cores
        .iter()
        .map(|c| c.stall_episodes.count)
        .sum();
    assert!(stalls > 0, "no stall episodes recorded");
}

#[test]
fn sampler_captures_queue_depth_time_series() {
    let sys = traced_run();
    let samples = sys.samples();
    assert!(samples.len() >= 4, "too few samples: {}", samples.len());
    for w in samples.windows(2) {
        assert!(w[0].cycle < w[1].cycle, "samples out of order");
    }
    let cfg_cores = 4;
    for s in samples {
        assert_eq!(s.mc_queue_depth.len(), 1, "one MC in quad-core config");
        assert_eq!(s.rob_occupancy.len(), cfg_cores);
        assert_eq!(s.llc_occupancy.len(), cfg_cores, "one LLC slice per core");
    }
    // Something must have been in flight at least once.
    assert!(
        samples
            .iter()
            .any(|s| s.outstanding_misses > 0 || s.mc_queue_depth[0] > 0),
        "every sample shows an idle memory system"
    );
}

#[test]
fn chrome_trace_export_parses_and_names_tracks() {
    let sys = traced_run();
    let mut buf = Vec::new();
    sys.trace().write_chrome_trace(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let doc = JsonValue::parse(&text).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(events.len() > 10);
    let labels: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    assert!(labels.contains(&"core 0"), "labels: {labels:?}");
    assert!(
        labels.iter().any(|l| l.starts_with("mc ")),
        "no MC track: {labels:?}"
    );
    // Journeys appear as nestable async begin/end pairs.
    let begins = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("b"))
        .count();
    let ends = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("e"))
        .count();
    assert!(
        begins > 0 && begins == ends,
        "b/e mismatch: {begins}/{ends}"
    );
    // Counters from the sampler made it in.
    assert!(
        events
            .iter()
            .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C")),
        "no counter events"
    );
    // In-memory event stream contains spans (stalls, DRAM banks, chains).
    assert!(sys
        .trace()
        .events()
        .iter()
        .any(|e| matches!(e, TraceEvent::Span { .. })));
}

#[test]
fn metrics_and_summary_exports_have_required_keys() {
    let mix = mix_by_name("H4").unwrap();
    let mut sys = build_system(SystemConfig::quad_core(), &mix).unwrap();
    sys.set_sample_interval(1_000);
    let report = sys.run(BUDGET, cycle_cap(BUDGET));
    let names = sys.bench_names.clone();
    let doc = metrics_json(&report.stats, &names, report.outcome, sys.samples());
    let back = JsonValue::parse(&doc.to_json()).expect("metrics JSON parses");
    for key in [
        "schema", "outcome", "cycles", "cores", "mem", "emc", "samples",
    ] {
        assert!(back.get(key).is_some(), "metrics missing {key}");
    }
    assert!(
        !back.get("samples").unwrap().as_arr().unwrap().is_empty(),
        "metrics document carries no samples"
    );
    let summary = summary_json(&report.stats, &names, report.outcome);
    let back = JsonValue::parse(&summary.to_json()).expect("summary JSON parses");
    assert_eq!(
        back.get("outcome").and_then(|v| v.as_str()),
        Some("completed")
    );
    assert_eq!(back.get("cores").unwrap().as_arr().unwrap().len(), 4);
    assert!(back
        .get("latency")
        .and_then(|l| l.get("core_miss"))
        .and_then(|h| h.get("p95"))
        .is_some());
}

#[test]
fn tracing_does_not_perturb_simulation() {
    let mix = mix_by_name("H4").unwrap();
    let mut plain = build_system(SystemConfig::quad_core(), &mix).unwrap();
    let plain_stats = plain.run(BUDGET, cycle_cap(BUDGET)).expect_completed();
    let traced_stats = {
        let mix = mix_by_name("H4").unwrap();
        let mut sys = build_system(SystemConfig::quad_core(), &mix).unwrap();
        sys.enable_tracing();
        sys.set_sample_interval(1_000);
        sys.run(BUDGET, cycle_cap(BUDGET)).expect_completed()
    };
    assert_eq!(
        format!("{plain_stats:?}"),
        format!("{traced_stats:?}"),
        "tracing+sampling changed simulated statistics"
    );
}

#[test]
fn profiling_does_not_perturb_results_and_attributes_wall_time() {
    let mix = mix_by_name("H4").unwrap();
    let mut plain = build_system(SystemConfig::quad_core(), &mix).unwrap();
    let plain_stats = plain.run(BUDGET, cycle_cap(BUDGET)).expect_completed();

    let mut profiled = build_system(SystemConfig::quad_core(), &mix).unwrap();
    profiled.enable_profiling(16);
    let profiled_stats = profiled.run(BUDGET, cycle_cap(BUDGET)).expect_completed();
    assert_eq!(
        format!("{plain_stats:?}"),
        format!("{profiled_stats:?}"),
        "host profiling changed simulated statistics"
    );

    let report = profiled.profile_report();
    assert!(report.sampled_ticks > 0, "no ticks were sampled");
    assert!(
        report.total_ticks >= report.sampled_ticks,
        "coverage accounting inverted"
    );
    // Every phase ran at least once on sampled ticks, and the dominant
    // phases carry real time.
    assert!(report.sampled_nanos() > 0, "no wall time attributed");
    for p in &report.phases {
        assert_eq!(
            p.samples, report.sampled_ticks,
            "phase {} measured on {} of {} sampled ticks",
            p.name, p.samples, report.sampled_ticks
        );
    }
    let share_sum: f64 = report.phases.iter().map(|p| report.share(p.name)).sum();
    assert!(
        share_sum <= 1.0 + 1e-9,
        "phase shares sum to {share_sum} > 1"
    );

    // A disabled profiler reports all zeros.
    let empty = plain.profile_report();
    assert_eq!(empty.sampled_ticks, 0);
    assert_eq!(empty.sampled_nanos(), 0);
}

#[test]
fn wedge_report_carries_recent_sample_history() {
    let mix = mix_by_name("H4").unwrap();
    let mut sys = build_system(SystemConfig::quad_core(), &mix).unwrap();
    sys.set_sample_interval(500);
    // Run briefly, then ask for a wedge snapshot directly: the report
    // must carry the queue-depth history captured so far.
    sys.run(200, cycle_cap(200));
    let w = sys.wedge_report(123_456);
    assert!(
        !w.recent_samples.is_empty(),
        "wedge report has no sample history"
    );
    let rendered = format!("{w}");
    assert!(
        rendered.contains("queue history"),
        "wedge display omits sample history:\n{rendered}"
    );
}
