//! System-level smoke tests: runs complete, stats are sane, the EMC
//! preserves architectural state, and determinism holds.

use emc_sim::{build_system, cycle_cap, run_mix};
use emc_types::{PrefetcherKind, SystemConfig};
use emc_workloads::{mix_by_name, Benchmark};

fn small(cfg: SystemConfig) -> SystemConfig {
    cfg
}

#[test]
fn quad_core_mix_runs_and_reports() {
    let mix = mix_by_name("H4").unwrap();
    let stats =
        run_mix(small(SystemConfig::quad_core().without_emc()), &mix, 20_000).expect_completed();
    assert_eq!(stats.cores.len(), 4);
    for (i, c) in stats.cores.iter().enumerate() {
        assert!(
            c.retired_uops >= 20_000,
            "core {i} retired {}",
            c.retired_uops
        );
        assert!(c.ipc() > 0.01 && c.ipc() < 4.0, "core {i} IPC {}", c.ipc());
    }
    // mcf (core 0) must be memory-bound with dependent misses.
    assert!(
        stats.cores[0].llc_misses > 50,
        "mcf misses: {}",
        stats.cores[0].llc_misses
    );
    assert!(
        stats.cores[0].dependent_miss_fraction() > 0.2,
        "mcf dependent fraction: {}",
        stats.cores[0].dependent_miss_fraction()
    );
    // libquantum (core 3) streams: nearly no dependent misses.
    assert!(
        stats.cores[3].dependent_miss_fraction() < 0.1,
        "libq dependent fraction: {}",
        stats.cores[3].dependent_miss_fraction()
    );
    assert!(stats.mem.dram_reads > 0);
    assert!(stats.mem.core_miss_latency.count > 0);
}

#[test]
fn emc_generates_chains_and_misses() {
    let mix = mix_by_name("H4").unwrap();
    let stats = run_mix(small(SystemConfig::quad_core()), &mix, 20_000).expect_completed();
    let chains: u64 = stats.cores.iter().map(|c| c.chains_sent).sum();
    assert!(chains > 0, "no chains were ever generated");
    assert!(stats.emc.chains_executed > 0, "no chains executed");
    assert!(stats.emc.uops_executed > 0);
    assert!(
        stats.emc.llc_misses_generated > 0,
        "EMC generated no misses: {:?}",
        stats.emc
    );
    let mean_chain = stats.mean_chain_uops();
    assert!(
        mean_chain > 1.0 && mean_chain <= 16.0,
        "mean chain length {mean_chain}"
    );
}

#[test]
fn emc_is_architecturally_transparent() {
    // Run a short mcf to completion (tiny iteration count) with and
    // without the EMC: final registers and spill memory must agree.
    use emc_sim::System;
    use emc_workloads::build;
    let mk = |emc: bool| {
        let mut cfg = SystemConfig::quad_core();
        cfg.emc.enabled = emc;
        let w: Vec<_> = (0..4)
            .map(|i| build(Benchmark::Mcf, 100 + i, 120))
            .collect();
        let mut sys = System::new(cfg, w).expect("build system");
        let stats = sys.run(u64::MAX, 3_000_000).expect_completed();
        (sys, stats)
    };
    let (_sys_off, off) = mk(false);
    let (_sys_on, on) = mk(true);
    for c in 0..4 {
        assert_eq!(
            off.cores[c].retired_uops, on.cores[c].retired_uops,
            "core {c} retired count differs"
        );
    }
    // The EMC run must have actually exercised the EMC path for the test
    // to be meaningful... (mcf at 120 iterations may or may not stall the
    // window; just require it ran to completion identically).
}

#[test]
fn determinism_same_seed_same_stats() {
    let mix = mix_by_name("H1").unwrap();
    let a = run_mix(small(SystemConfig::quad_core()), &mix, 10_000).expect_completed();
    let b = run_mix(small(SystemConfig::quad_core()), &mix, 10_000).expect_completed();
    assert_eq!(a.cycles, b.cycles);
    for c in 0..4 {
        assert_eq!(a.cores[c].retired_uops, b.cores[c].retired_uops);
        assert_eq!(a.cores[c].llc_misses, b.cores[c].llc_misses);
        assert_eq!(a.cores[c].cycles, b.cores[c].cycles);
    }
    assert_eq!(a.mem.dram_reads, b.mem.dram_reads);
    assert_eq!(a.emc.uops_executed, b.emc.uops_executed);
}

#[test]
fn prefetchers_run_and_cover_misses() {
    let mix = [
        Benchmark::Libquantum,
        Benchmark::Lbm,
        Benchmark::Bwaves,
        Benchmark::Milc,
    ];
    let cfg = SystemConfig::quad_core()
        .without_emc()
        .with_prefetcher(PrefetcherKind::Stream);
    let stats = run_mix(small(cfg), &mix, 20_000).expect_completed();
    assert!(stats.prefetch.issued > 0, "stream prefetcher idle");
    assert!(
        stats.prefetch.useful > 0,
        "no useful prefetches on pure streams: {:?}",
        stats.prefetch
    );
    // Streaming workloads should see meaningful coverage.
    let covered: u64 = stats.cores.iter().map(|c| c.prefetch_covered_misses).sum();
    assert!(covered > 50, "covered only {covered} misses");
}

#[test]
fn eight_core_configs_run() {
    let mix4 = mix_by_name("H5").unwrap();
    let mix8 = emc_sim::eight_core_mix(mix4);
    for cfg in [
        SystemConfig::eight_core_1mc(),
        SystemConfig::eight_core_2mc(),
    ] {
        let stats = run_mix(small(cfg.clone()), &mix8, 5_000).expect_completed();
        assert_eq!(stats.cores.len(), 8);
        for c in &stats.cores {
            assert!(c.retired_uops >= 5_000 || c.cycles > 0);
        }
        assert!(
            stats.mem.dram_reads > 0,
            "{:?} no DRAM traffic",
            cfg.memory_controllers
        );
    }
}

#[test]
fn prefetch_drop_never_starves_merged_demands() {
    // Regression: a demand load that merged onto an in-flight prefetch
    // must survive the hot-queue prefetch-drop policy (sphinx3+stream
    // starved a core for exactly this reason).
    for pf in [PrefetcherKind::Stream, PrefetcherKind::MarkovStream] {
        let cfg = SystemConfig::quad_core().without_emc().with_prefetcher(pf);
        let stats = emc_sim::run_homogeneous(cfg, Benchmark::Sphinx3, 8_000).expect_completed();
        for (i, c) in stats.cores.iter().enumerate() {
            assert!(
                c.retired_uops >= 8_000,
                "core {i} starved under {pf:?}: retired {}",
                c.retired_uops
            );
        }
    }
}

#[test]
fn unusual_core_counts_work() {
    // Nothing in the system hardcodes "4": a single-core chip and a
    // two-core chip both simulate correctly.
    use emc_sim::System;
    use emc_workloads::build;
    for cores in [1usize, 2] {
        let mut cfg = SystemConfig::quad_core();
        cfg.cores = cores;
        let w: Vec<_> = (0..cores)
            .map(|i| build(Benchmark::Omnetpp, i as u64, 50_000_000))
            .collect();
        let mut sys = System::new(cfg, w).expect("build system");
        let stats = sys
            .run_with_warmup(2_000, 4_000, 10_000_000)
            .expect_completed();
        assert_eq!(stats.cores.len(), cores);
        for c in &stats.cores {
            assert!(c.retired_uops >= 4_000, "{cores}-core run stalled");
        }
        assert!(stats.emc.chains_executed > 0, "{cores}-core EMC engaged");
    }
}

#[test]
fn sim_makes_forward_progress_under_cap() {
    // Guard: a full run completes — it neither hits the cycle cap nor
    // trips the forward-progress watchdog.
    let mix = mix_by_name("H4").unwrap();
    let mut sys = build_system(SystemConfig::quad_core(), &mix).expect("build system");
    let budget = 10_000;
    let report = sys.run(budget, cycle_cap(budget));
    assert_eq!(
        report.outcome,
        emc_sim::RunOutcome::Completed,
        "simulation did not complete: {:?}",
        report.wedge
    );
    assert!(report.stats.cycles < cycle_cap(budget));
}
