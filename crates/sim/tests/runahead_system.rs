//! System-level runahead: the paper's §1/§2 contrast between runahead
//! (independent misses) and the EMC (dependent misses), end to end.

use emc_sim::run_homogeneous;
use emc_types::SystemConfig;
use emc_workloads::Benchmark;

fn ipc_sum(stats: &emc_types::Stats) -> f64 {
    stats.cores.iter().map(|c| c.ipc()).sum()
}

#[test]
fn runahead_and_emc_compose() {
    let budget = 6_000;
    let base = SystemConfig::quad_core().without_emc();
    let mut ra = base.clone();
    ra.core.runahead = true;
    let emc = SystemConfig::quad_core();
    let mut both = SystemConfig::quad_core();
    both.core.runahead = true;

    // soplex mixes dependent chases with independent xorshift misses:
    // each mechanism must engage, and neither may break the other.
    let b = run_homogeneous(base, Benchmark::Soplex, budget).expect_completed();
    let r = run_homogeneous(ra, Benchmark::Soplex, budget).expect_completed();
    let e = run_homogeneous(emc, Benchmark::Soplex, budget).expect_completed();
    let be = run_homogeneous(both, Benchmark::Soplex, budget).expect_completed();

    assert!(r.cores.iter().map(|c| c.runahead_entries).sum::<u64>() > 0);
    assert!(e.emc.chains_executed > 0);
    assert!(be.cores.iter().map(|c| c.runahead_entries).sum::<u64>() > 0);

    let b_ipc = ipc_sum(&b);
    for (name, s) in [("runahead", &r), ("emc", &e), ("both", &be)] {
        let ipc = ipc_sum(s);
        assert!(
            ipc > 0.8 * b_ipc,
            "{name} must not cripple performance: {b_ipc:.3} -> {ipc:.3}"
        );
        for c in &s.cores {
            assert!(c.retired_uops >= budget);
        }
    }
}

#[test]
fn runahead_prefetches_independent_misses_at_system_level() {
    let budget = 6_000;
    let base = SystemConfig::quad_core().without_emc();
    let mut ra = base.clone();
    ra.core.runahead = true;
    // milc has streams + a chase; the streams give runahead real targets.
    let b = run_homogeneous(base, Benchmark::Milc, budget).expect_completed();
    let r = run_homogeneous(ra, Benchmark::Milc, budget).expect_completed();
    let reqs: u64 = r.cores.iter().map(|c| c.runahead_requests).sum();
    assert!(reqs > 0, "runahead must issue prefetching requests");
    // Speculative requests warm the caches; performance must not regress
    // meaningfully.
    assert!(ipc_sum(&r) > 0.85 * ipc_sum(&b));
}
