//! The time-series metrics pipeline: a configurable [`Sampler`] that
//! captures queue-occupancy [`MetricSample`]s each epoch, and the JSON
//! exporters behind `emcsim --metrics-out` and `--json`.
//!
//! All JSON here is rendered through [`JsonValue`] (not serde), so the
//! exporters work — and are tested — in environments without a
//! functional serde backend. The schemas are versioned by a `"schema"`
//! key so downstream consumers can detect format changes.

use emc_types::{Cycle, Histogram, JsonValue, MetricSample, RunOutcome, Stats};

/// Default sampling epoch: coarse enough to be free (one sample per
/// 10 k cycles), fine enough that a wedge report shows meaningful
/// queue-depth history.
pub const DEFAULT_SAMPLE_INTERVAL: Cycle = 10_000;

/// Retention cap: when the buffer fills, the oldest half is discarded
/// (and counted), so the most recent history always survives.
const SAMPLE_CAP: usize = 100_000;

/// Periodic capture of [`MetricSample`]s at a configurable interval.
///
/// The sampler itself does not know how to read the system; the
/// simulator asks [`Sampler::due`] each cycle and pushes a sample it
/// assembled. Sampling is on by default at [`DEFAULT_SAMPLE_INTERVAL`];
/// an interval of 0 disables it entirely.
#[derive(Debug, Clone)]
pub struct Sampler {
    interval: Cycle,
    next: Cycle,
    samples: Vec<MetricSample>,
    dropped: u64,
}

impl Default for Sampler {
    fn default() -> Self {
        Sampler::with_interval(DEFAULT_SAMPLE_INTERVAL)
    }
}

impl Sampler {
    /// A sampler firing every `interval` cycles (0 = disabled).
    pub fn with_interval(interval: Cycle) -> Self {
        Sampler {
            interval,
            next: 0,
            samples: Vec::new(),
            dropped: 0,
        }
    }

    /// Change the sampling interval (0 disables). The next sample is
    /// taken immediately.
    pub fn set_interval(&mut self, interval: Cycle) {
        self.interval = interval;
        self.next = 0;
    }

    /// Whether a sample should be captured at `now`.
    #[inline]
    pub fn due(&self, now: Cycle) -> bool {
        self.interval != 0 && now >= self.next
    }

    /// Store a captured sample and schedule the next epoch.
    pub fn push(&mut self, s: MetricSample) {
        self.next = s.cycle.saturating_add(self.interval.max(1));
        if self.samples.len() >= SAMPLE_CAP {
            let drop = SAMPLE_CAP / 2;
            self.samples.drain(..drop);
            self.dropped += drop as u64;
        }
        self.samples.push(s);
    }

    /// All retained samples, oldest first.
    pub fn samples(&self) -> &[MetricSample] {
        &self.samples
    }

    /// The most recent `n` samples (fewer if fewer were captured).
    pub fn recent(&self, n: usize) -> &[MetricSample] {
        &self.samples[self.samples.len().saturating_sub(n)..]
    }

    /// Samples discarded to honor the retention cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discard captured samples (used when warmup statistics are reset).
    pub fn clear(&mut self) {
        self.samples.clear();
        self.dropped = 0;
        self.next = 0;
    }
}

/// Stable lower-case label for a run outcome, used as a JSON value.
pub fn outcome_label(outcome: RunOutcome) -> &'static str {
    match outcome {
        RunOutcome::Completed => "completed",
        RunOutcome::CapHit => "cap-hit",
        RunOutcome::Wedged => "wedged",
    }
}

/// Render a [`Histogram`] with its headline percentiles.
pub fn histogram_json(h: &Histogram) -> JsonValue {
    JsonValue::obj(vec![
        ("count", h.count.into()),
        ("sum", h.sum.into()),
        ("mean", h.mean().into()),
        ("min", h.min.into()),
        ("max", h.max.into()),
        ("p50", h.p50().into()),
        ("p95", h.p95().into()),
        ("p99", h.p99().into()),
    ])
}

/// Render one [`MetricSample`].
pub fn sample_json(s: &MetricSample) -> JsonValue {
    fn nums(v: &[u32]) -> JsonValue {
        JsonValue::nums(v.iter().map(|&x| x as u64))
    }
    JsonValue::obj(vec![
        ("cycle", s.cycle.into()),
        ("mc_queue_depth", nums(&s.mc_queue_depth)),
        ("mc_retry_depth", nums(&s.mc_retry_depth)),
        ("banks_open", nums(&s.banks_open)),
        ("emc_busy_contexts", nums(&s.emc_busy_contexts)),
        ("ring_busy_links", u64::from(s.ring_busy_links).into()),
        ("outstanding_misses", u64::from(s.outstanding_misses).into()),
        ("llc_occupancy_permille", nums(&s.llc_occupancy)),
        ("rob_occupancy", nums(&s.rob_occupancy)),
    ])
}

/// The full `--metrics-out` document: run outcome, per-core statistics,
/// every latency histogram with percentiles, and the captured
/// time-series samples.
pub fn metrics_json(
    stats: &Stats,
    names: &[String],
    outcome: RunOutcome,
    samples: &[MetricSample],
) -> JsonValue {
    let cores: Vec<JsonValue> = stats
        .cores
        .iter()
        .enumerate()
        .map(|(i, c)| {
            JsonValue::obj(vec![
                ("core", (i as u64).into()),
                (
                    "bench",
                    names.get(i).map(String::as_str).unwrap_or("?").into(),
                ),
                ("ipc", c.ipc().into()),
                ("mpki", c.mpki().into()),
                ("retired_uops", c.retired_uops.into()),
                ("llc_misses", c.llc_misses.into()),
                (
                    "full_window_stall_cycles",
                    c.full_window_stall_cycles.into(),
                ),
                ("stall_episodes", histogram_json(&c.stall_episodes)),
                ("chains_sent", c.chains_sent.into()),
                ("chains_aborted_lease", c.chains_aborted_lease.into()),
            ])
        })
        .collect();
    let m = &stats.mem;
    let latency = JsonValue::obj(vec![
        ("core_miss", histogram_json(&m.core_miss_latency)),
        ("emc_miss", histogram_json(&m.emc_miss_latency)),
        ("dram_service", histogram_json(&m.dram_service_latency)),
        ("on_chip_delay", histogram_json(&m.on_chip_delay)),
        ("core_ring", histogram_json(&m.core_ring_component)),
        ("core_cache", histogram_json(&m.core_cache_component)),
        ("core_queue", histogram_json(&m.core_queue_component)),
        ("emc_ring", histogram_json(&m.emc_ring_component)),
        ("emc_cache", histogram_json(&m.emc_cache_component)),
        ("emc_queue", histogram_json(&m.emc_queue_component)),
    ]);
    JsonValue::obj(vec![
        ("schema", "emcsim-metrics-v1".into()),
        ("outcome", outcome_label(outcome).into()),
        ("cycles", stats.cycles.into()),
        ("cores", JsonValue::Arr(cores)),
        (
            "mem",
            JsonValue::obj(vec![
                ("dram_reads", m.dram_reads.into()),
                ("dram_writes", m.dram_writes.into()),
                ("dram_prefetches", m.dram_prefetches.into()),
                ("row_hits", m.row_hits.into()),
                ("row_conflicts", m.row_conflicts.into()),
                ("row_empties", m.row_empties.into()),
                ("escalated_requests", m.escalated_requests.into()),
                ("latency", latency),
            ]),
        ),
        (
            "emc",
            JsonValue::obj(vec![
                ("chains_executed", stats.emc.chains_executed.into()),
                ("uops_executed", stats.emc.uops_executed.into()),
                ("chain_latency", histogram_json(&stats.emc.chain_latency)),
                ("dcache_hit_rate", stats.emc.dcache_hit_rate().into()),
            ]),
        ),
        (
            "ring",
            JsonValue::obj(vec![
                ("control_msgs", stats.ring.control_msgs.into()),
                ("data_msgs", stats.ring.data_msgs.into()),
                ("total_hops", stats.ring.total_hops.into()),
            ]),
        ),
        (
            "prefetch",
            JsonValue::obj(vec![
                ("issued", stats.prefetch.issued.into()),
                ("useful", stats.prefetch.useful.into()),
                ("useless", stats.prefetch.useless.into()),
                ("degree", stats.prefetch.degree.into()),
            ]),
        ),
        (
            "samples",
            JsonValue::Arr(samples.iter().map(sample_json).collect()),
        ),
    ])
}

/// The compact `--json` run summary: outcome, per-core IPC, and the
/// headline latency percentiles.
pub fn summary_json(stats: &Stats, names: &[String], outcome: RunOutcome) -> JsonValue {
    fn pcts(h: &Histogram) -> JsonValue {
        JsonValue::obj(vec![
            ("p50", h.p50().into()),
            ("p95", h.p95().into()),
            ("p99", h.p99().into()),
            ("mean", h.mean().into()),
        ])
    }
    let cores: Vec<JsonValue> = stats
        .cores
        .iter()
        .enumerate()
        .map(|(i, c)| {
            JsonValue::obj(vec![
                ("core", (i as u64).into()),
                (
                    "bench",
                    names.get(i).map(String::as_str).unwrap_or("?").into(),
                ),
                ("ipc", c.ipc().into()),
                ("mpki", c.mpki().into()),
                ("chains_sent", c.chains_sent.into()),
                ("chains_aborted_lease", c.chains_aborted_lease.into()),
            ])
        })
        .collect();
    let lease_aborts: u64 = stats.cores.iter().map(|c| c.chains_aborted_lease).sum();
    JsonValue::obj(vec![
        ("schema", "emcsim-summary-v1".into()),
        ("outcome", outcome_label(outcome).into()),
        ("cycles", stats.cycles.into()),
        ("ipc_sum", stats.ipc_sum().into()),
        ("cores", JsonValue::Arr(cores)),
        (
            // PR 6's forward-progress counters: requests force-escalated
            // by MC aging and chains aborted by EMC context leases.
            "counters",
            JsonValue::obj(vec![
                ("escalated_requests", stats.mem.escalated_requests.into()),
                ("chains_aborted_lease", lease_aborts.into()),
            ]),
        ),
        (
            "latency",
            JsonValue::obj(vec![
                ("core_miss", pcts(&stats.mem.core_miss_latency)),
                ("emc_miss", pcts(&stats.mem.emc_miss_latency)),
                ("dram_service", pcts(&stats.mem.dram_service_latency)),
                ("mc_queue", pcts(&stats.mem.core_queue_component)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycle: Cycle) -> MetricSample {
        MetricSample {
            cycle,
            mc_queue_depth: vec![1],
            ..Default::default()
        }
    }

    #[test]
    fn sampler_fires_on_interval_boundaries() {
        let mut s = Sampler::with_interval(100);
        assert!(s.due(0));
        s.push(sample(0));
        assert!(!s.due(99));
        assert!(s.due(100));
        s.push(sample(100));
        assert_eq!(s.samples().len(), 2);
    }

    #[test]
    fn zero_interval_disables_sampling() {
        let s = Sampler::with_interval(0);
        assert!(!s.due(0));
        assert!(!s.due(1_000_000));
    }

    #[test]
    fn recent_returns_the_tail() {
        let mut s = Sampler::with_interval(1);
        for c in 0..10 {
            s.push(sample(c));
        }
        let r = s.recent(3);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].cycle, 7);
        assert_eq!(r[2].cycle, 9);
        assert_eq!(s.recent(100).len(), 10);
    }

    #[test]
    fn metrics_json_has_required_keys_and_parses() {
        let stats = Stats::new(2);
        let names = vec!["mcf".to_string(), "lbm".to_string()];
        let doc = metrics_json(&stats, &names, RunOutcome::Completed, &[sample(5)]);
        let text = doc.to_json();
        let back = JsonValue::parse(&text).expect("valid JSON");
        for key in [
            "schema", "outcome", "cycles", "cores", "mem", "emc", "samples",
        ] {
            assert!(back.get(key).is_some(), "missing key {key}");
        }
        assert_eq!(
            back.get("schema").and_then(|v| v.as_str()),
            Some("emcsim-metrics-v1")
        );
        let lat = back.get("mem").and_then(|m| m.get("latency")).unwrap();
        for site in ["core_miss", "emc_miss", "dram_service", "on_chip_delay"] {
            let h = lat.get(site).unwrap_or_else(|| panic!("missing {site}"));
            for p in ["p50", "p95", "p99", "count"] {
                assert!(h.get(p).is_some(), "{site} missing {p}");
            }
        }
        let samples = back.get("samples").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(samples.len(), 1);
        assert!(samples[0].get("mc_queue_depth").is_some());
    }

    #[test]
    fn summary_json_reports_per_core_ipc_and_percentiles() {
        let mut stats = Stats::new(1);
        stats.cores[0].retired_uops = 1000;
        stats.cores[0].cycles = 500;
        for v in [100u64, 200, 400] {
            stats.mem.core_miss_latency.record(v);
        }
        let doc = summary_json(&stats, &["mcf".to_string()], RunOutcome::CapHit);
        let back = JsonValue::parse(&doc.to_json()).expect("valid JSON");
        assert_eq!(
            back.get("outcome").and_then(|v| v.as_str()),
            Some("cap-hit")
        );
        let ipc = back
            .get("cores")
            .and_then(|c| c.idx(0))
            .and_then(|c| c.get("ipc"))
            .and_then(|v| v.as_f64())
            .unwrap();
        assert!((ipc - 2.0).abs() < 1e-9);
        let p99 = back
            .get("latency")
            .and_then(|l| l.get("core_miss"))
            .and_then(|h| h.get("p99"))
            .and_then(|v| v.as_f64())
            .unwrap();
        assert!(p99 >= 256.0, "p99 {p99} should bracket the 400-cycle tail");
    }

    #[test]
    fn summary_json_exports_forward_progress_counters() {
        let mut stats = Stats::new(2);
        stats.mem.escalated_requests = 7;
        stats.cores[0].chains_aborted_lease = 2;
        stats.cores[1].chains_aborted_lease = 3;
        let names = vec!["mcf".to_string(), "lbm".to_string()];
        let doc = summary_json(&stats, &names, RunOutcome::Completed);
        let back = JsonValue::parse(&doc.to_json()).expect("valid JSON");
        let counters = back.get("counters").expect("counters object");
        assert_eq!(
            counters.get("escalated_requests").and_then(|v| v.as_f64()),
            Some(7.0)
        );
        assert_eq!(
            counters
                .get("chains_aborted_lease")
                .and_then(|v| v.as_f64()),
            Some(5.0),
            "summed across cores"
        );
        assert_eq!(
            back.get("cores")
                .and_then(|c| c.idx(1))
                .and_then(|c| c.get("chains_aborted_lease"))
                .and_then(|v| v.as_f64()),
            Some(3.0),
            "per-core breakdown exported too"
        );
    }
}
