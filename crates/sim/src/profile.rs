//! Host-performance profiling: where does the simulator's *wall-clock*
//! time go?
//!
//! Everything else in this workspace measures *simulated* time; this
//! module measures the host. [`TickProfiler`] attributes wall-time
//! across the sub-phases of [`System::tick`](crate::System::tick) —
//! event drain, memory controllers, EMCs, chain generation, prefetch,
//! cores, observability — and [`ThroughputMeter`] turns a whole run
//! into simulated-cycles-per-second and retired-uops-per-second. The
//! `perf` bin in `emc-bench` uses both to emit the `emc-bench-v1`
//! perf-trajectory artifact (`BENCH_<sha>.json`, EXPERIMENTS.md).
//!
//! # Overhead model
//!
//! Profiling is **off by default** and costs one predictable branch per
//! phase boundary when off (a `None` check — no clock read, no atomic).
//! When on, clock reads are amortized by *stride sampling*: only one
//! tick in every `stride` is measured, and within a measured tick each
//! phase boundary is a single monotonic-clock read (`phase_mark` reuses
//! the end of phase *n* as the start of phase *n+1*). At the default
//! stride of 64 that is ⅛ of a clock read per tick — far below the
//! noise floor of the `observability_tax` criterion bench. Sampled
//! phase intervals are disjoint sub-intervals of the run's wall time,
//! so their sum can never exceed it (the invariant the `emc-bench-v1`
//! schema tests pin down).
//!
//! The profiler reads the clock and nothing else: it never touches
//! simulator state, so enabling it cannot perturb simulated results
//! (asserted by `profiling_does_not_perturb_results` below).

use std::time::Instant;

use emc_types::JsonValue;

/// Number of [`Phase`]s (sizes the accumulator arrays).
pub const PHASE_COUNT: usize = 7;

/// Default sampling stride for [`TickProfiler::with_stride`]: measure
/// one tick in 64.
pub const DEFAULT_PROFILE_STRIDE: u32 = 64;

/// The sub-phases of one [`System::tick`](crate::System::tick), in
/// execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Event-queue drain: ring deliveries, DRAM completions, L1 fills.
    Events,
    /// PAR-BS memory-controller scheduling (`tick_mcs`).
    Mcs,
    /// Enhanced-memory-controller contexts (`tick_emcs`).
    Emcs,
    /// Dependence-chain generation at full-window stalls.
    ChainGen,
    /// Prefetch-engine drains.
    Prefetch,
    /// Out-of-order core pipelines (`tick_cores`).
    Cores,
    /// Observability: retirement probe, sampler, tracing, snapshots.
    Observe,
}

impl Phase {
    /// Every phase, in tick order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Events,
        Phase::Mcs,
        Phase::Emcs,
        Phase::ChainGen,
        Phase::Prefetch,
        Phase::Cores,
        Phase::Observe,
    ];

    /// Stable label, used as the JSON `phase` value and the table row.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Events => "events",
            Phase::Mcs => "tick_mcs",
            Phase::Emcs => "tick_emcs",
            Phase::ChainGen => "chain_gen",
            Phase::Prefetch => "prefetch",
            Phase::Cores => "tick_cores",
            Phase::Observe => "observe",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Events => 0,
            Phase::Mcs => 1,
            Phase::Emcs => 2,
            Phase::ChainGen => 3,
            Phase::Prefetch => 4,
            Phase::Cores => 5,
            Phase::Observe => 6,
        }
    }
}

/// Stride-sampling scoped phase timer for `System::tick`.
///
/// Construct with [`TickProfiler::disabled`] (the default inside
/// [`System`](crate::System)) or [`TickProfiler::with_stride`]; read
/// results with [`report`](TickProfiler::report). See the module docs
/// for the overhead model.
#[derive(Debug, Clone)]
pub struct TickProfiler {
    /// Sampling stride (0 = disabled; 1 = every tick).
    stride: u32,
    /// Ticks until the next sampled one.
    countdown: u32,
    /// Whether the tick currently in flight is being measured.
    sampling: bool,
    /// Accumulated nanoseconds per phase, sampled ticks only.
    nanos: [u64; PHASE_COUNT],
    /// Number of sampled intervals per phase.
    samples: [u64; PHASE_COUNT],
    /// Ticks measured so far.
    sampled_ticks: u64,
    /// Ticks seen so far (measured or not).
    total_ticks: u64,
}

impl Default for TickProfiler {
    fn default() -> Self {
        TickProfiler::disabled()
    }
}

impl TickProfiler {
    /// A profiler that never samples (the zero-overhead default).
    pub fn disabled() -> Self {
        TickProfiler {
            stride: 0,
            countdown: 0,
            sampling: false,
            nanos: [0; PHASE_COUNT],
            samples: [0; PHASE_COUNT],
            sampled_ticks: 0,
            total_ticks: 0,
        }
    }

    /// A profiler measuring one tick in every `stride` (0 disables,
    /// 1 measures every tick). The first tick is always sampled, so
    /// short runs still produce a breakdown.
    pub fn with_stride(stride: u32) -> Self {
        TickProfiler {
            stride,
            ..TickProfiler::disabled()
        }
    }

    /// Whether any sampling will ever happen.
    pub fn is_enabled(&self) -> bool {
        self.stride != 0
    }

    /// Called once at the top of each tick: decides whether this tick
    /// is sampled. One branch when disabled.
    #[inline]
    pub fn begin_tick(&mut self) {
        if self.stride == 0 {
            return;
        }
        self.total_ticks += 1;
        if self.countdown == 0 {
            self.countdown = self.stride - 1;
            self.sampling = true;
            self.sampled_ticks += 1;
        } else {
            self.countdown -= 1;
            self.sampling = false;
        }
    }

    /// Start of the first phase: a clock read iff this tick is sampled.
    #[inline]
    pub fn phase_start(&self) -> Option<Instant> {
        if self.sampling {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Close `phase` and open the next one with a *single* clock read:
    /// the end of one phase is the start of its successor.
    #[inline]
    pub fn phase_mark(&mut self, phase: Phase, start: Option<Instant>) -> Option<Instant> {
        start.map(|t| {
            let now = Instant::now();
            self.record(phase, now.saturating_duration_since(t).as_nanos() as u64);
            now
        })
    }

    /// Close the final phase of a sampled tick (no successor to open).
    #[inline]
    pub fn phase_end(&mut self, phase: Phase, start: Option<Instant>) {
        if let Some(t) = start {
            self.record(phase, t.elapsed().as_nanos() as u64);
        }
    }

    /// Credit `nanos` to `phase` directly (the measurement core;
    /// public so schema tests can synthesize known distributions).
    pub fn record(&mut self, phase: Phase, nanos: u64) {
        let i = phase.index();
        self.nanos[i] = self.nanos[i].saturating_add(nanos);
        self.samples[i] = self.samples[i].saturating_add(1);
    }

    /// Snapshot the accumulated breakdown.
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            phases: Phase::ALL
                .iter()
                .map(|&p| PhaseStat {
                    name: p.name(),
                    nanos: self.nanos[p.index()],
                    samples: self.samples[p.index()],
                })
                .collect(),
            sampled_ticks: self.sampled_ticks,
            total_ticks: self.total_ticks,
        }
    }
}

/// One phase's share of the sampled wall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// [`Phase::name`] label.
    pub name: &'static str,
    /// Nanoseconds accumulated over sampled ticks.
    pub nanos: u64,
    /// Sampled intervals contributing to `nanos`.
    pub samples: u64,
}

/// Snapshot of a [`TickProfiler`]: per-phase sampled nanoseconds plus
/// the sampling coverage needed to extrapolate run-wide totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Per-phase statistics, in tick order.
    pub phases: Vec<PhaseStat>,
    /// Ticks that were measured.
    pub sampled_ticks: u64,
    /// Ticks that ran (measured or not).
    pub total_ticks: u64,
}

impl ProfileReport {
    /// Total sampled nanoseconds across all phases.
    pub fn sampled_nanos(&self) -> u64 {
        self.phases.iter().map(|p| p.nanos).sum()
    }

    /// `phase`'s fraction of the sampled wall time (0 when nothing was
    /// sampled). Shares over all phases sum to ≤ 1.
    pub fn share(&self, name: &str) -> f64 {
        let total = self.sampled_nanos();
        if total == 0 {
            return 0.0;
        }
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map_or(0.0, |p| p.nanos as f64 / total as f64)
    }

    /// The breakdown as a JSON fragment: `[{phase, nanos, samples,
    /// share}, ...]` plus sampling coverage — the `phases` value inside
    /// each `emc-bench-v1` cell.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            (
                "phases",
                JsonValue::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            JsonValue::obj(vec![
                                ("phase", p.name.into()),
                                ("nanos", p.nanos.into()),
                                ("samples", p.samples.into()),
                                ("share", self.share(p.name).into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("sampled_ticks", self.sampled_ticks.into()),
            ("total_ticks", self.total_ticks.into()),
        ])
    }

    /// A human-readable table (one line per phase), widest share first.
    pub fn table(&self) -> String {
        let mut rows: Vec<&PhaseStat> = self.phases.iter().collect();
        rows.sort_by_key(|p| std::cmp::Reverse(p.nanos));
        let mut out = String::new();
        for p in rows {
            out.push_str(&format!(
                "{:<12} {:>6.1}%  {:>12} ns over {} samples\n",
                p.name,
                100.0 * self.share(p.name),
                p.nanos,
                p.samples
            ));
        }
        out.push_str(&format!(
            "(sampled {} of {} ticks)\n",
            self.sampled_ticks, self.total_ticks
        ));
        out
    }
}

/// Wall-clock throughput of one run: how fast the host simulates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Host nanoseconds between [`ThroughputMeter::start`] and
    /// [`finish`](ThroughputMeter::finish).
    pub wall_nanos: u64,
    /// Simulated cycles covered by that wall time.
    pub cycles: u64,
    /// Retired uops covered by that wall time (summed over cores).
    pub uops: u64,
}

impl Throughput {
    /// Simulated cycles per host second.
    pub fn cycles_per_sec(&self) -> f64 {
        per_sec(self.cycles, self.wall_nanos)
    }

    /// Retired uops per host second.
    pub fn uops_per_sec(&self) -> f64 {
        per_sec(self.uops, self.wall_nanos)
    }
}

fn per_sec(count: u64, wall_nanos: u64) -> f64 {
    if wall_nanos == 0 {
        return 0.0;
    }
    count as f64 / (wall_nanos as f64 / 1e9)
}

/// Measures a run's [`Throughput`]: two clock reads total.
#[derive(Debug)]
pub struct ThroughputMeter {
    start: Instant,
}

impl ThroughputMeter {
    /// Start the meter (reads the clock once).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        ThroughputMeter {
            start: Instant::now(),
        }
    }

    /// Stop the meter and bind the wall time to what was simulated.
    pub fn finish(self, cycles: u64, uops: u64) -> Throughput {
        Throughput {
            wall_nanos: self.start.elapsed().as_nanos() as u64,
            cycles,
            uops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_never_samples() {
        let mut p = TickProfiler::disabled();
        for _ in 0..100 {
            p.begin_tick();
            assert_eq!(p.phase_start(), None, "no clock reads when disabled");
        }
        let r = p.report();
        assert_eq!(r.sampled_ticks, 0);
        assert_eq!(r.sampled_nanos(), 0);
        assert!(!p.is_enabled());
    }

    #[test]
    fn stride_samples_one_tick_in_n() {
        let mut p = TickProfiler::with_stride(4);
        let mut sampled = 0;
        for _ in 0..17 {
            p.begin_tick();
            if p.phase_start().is_some() {
                sampled += 1;
            }
        }
        // Ticks 0, 4, 8, 12, 16.
        assert_eq!(sampled, 5);
        let r = p.report();
        assert_eq!(r.sampled_ticks, 5);
        assert_eq!(r.total_ticks, 17);
    }

    #[test]
    fn phase_mark_chains_and_attributes() {
        let mut p = TickProfiler::with_stride(1);
        p.begin_tick();
        let t = p.phase_start();
        assert!(t.is_some());
        let t = p.phase_mark(Phase::Events, t);
        let t = p.phase_mark(Phase::Cores, t);
        p.phase_end(Phase::Observe, t);
        let r = p.report();
        let by_name = |n: &str| r.phases.iter().find(|p| p.name == n).unwrap();
        assert_eq!(by_name("events").samples, 1);
        assert_eq!(by_name("tick_cores").samples, 1);
        assert_eq!(by_name("observe").samples, 1);
        assert_eq!(by_name("tick_mcs").samples, 0);
    }

    #[test]
    fn sampled_phase_time_is_bounded_by_wall_time() {
        // Phases are disjoint sub-intervals of the run: their sum can
        // never exceed the wall time bracketing them.
        let mut p = TickProfiler::with_stride(2);
        let meter = ThroughputMeter::new();
        for _ in 0..200 {
            p.begin_tick();
            let t = p.phase_start();
            let t = p.phase_mark(Phase::Events, t);
            std::hint::black_box((0..50).sum::<u64>());
            let t = p.phase_mark(Phase::Cores, t);
            p.phase_end(Phase::Observe, t);
        }
        let tp = meter.finish(200, 0);
        let r = p.report();
        assert!(r.sampled_ticks == 100);
        assert!(
            r.sampled_nanos() <= tp.wall_nanos,
            "sampled {} > wall {}",
            r.sampled_nanos(),
            tp.wall_nanos
        );
    }

    #[test]
    fn shares_sum_to_at_most_one() {
        let mut p = TickProfiler::with_stride(1);
        p.record(Phase::Cores, 600);
        p.record(Phase::Mcs, 300);
        p.record(Phase::Observe, 100);
        let r = p.report();
        let sum: f64 = Phase::ALL.iter().map(|ph| r.share(ph.name())).sum();
        assert!((sum - 1.0).abs() < 1e-12, "shares sum to {sum}");
        assert!((r.share("tick_cores") - 0.6).abs() < 1e-12);
    }

    #[test]
    fn report_json_round_trips() {
        let mut p = TickProfiler::with_stride(1);
        p.begin_tick();
        p.record(Phase::Cores, 1234);
        let doc = p.report().to_json();
        let back = JsonValue::parse(&doc.to_json()).expect("valid JSON");
        assert_eq!(back, doc, "shortest-float formatting round-trips");
        let cores = back
            .get("phases")
            .and_then(|a| a.as_arr())
            .and_then(|a| {
                a.iter()
                    .find(|e| e.get("phase").and_then(|v| v.as_str()) == Some("tick_cores"))
                    .cloned()
            })
            .unwrap();
        assert_eq!(cores.get("nanos").and_then(|v| v.as_f64()), Some(1234.0));
    }

    #[test]
    fn throughput_rates() {
        let tp = Throughput {
            wall_nanos: 2_000_000_000,
            cycles: 5_000_000,
            uops: 1_000_000,
        };
        assert!((tp.cycles_per_sec() - 2_500_000.0).abs() < 1e-6);
        assert!((tp.uops_per_sec() - 500_000.0).abs() < 1e-6);
        let zero = Throughput {
            wall_nanos: 0,
            cycles: 1,
            uops: 1,
        };
        assert_eq!(zero.cycles_per_sec(), 0.0, "zero wall never divides");
    }
}
