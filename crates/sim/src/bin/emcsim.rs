//! `emcsim` — command-line front end to the full-system simulator.
//!
//! Usage:
//!   emcsim [--mix H4 | --homog mcf] [--cores 4|8] [--mcs 1|2]
//!          [--prefetcher none|ghb|stream|markov|stride] [--no-emc] [--runahead]
//!          [--budget N] [--seed N] [--faults] [--json] [--liveness] [--no-liveness]
//!          [--metrics-out FILE] [--trace-out FILE] [--sample-interval N]
//!          [--profile] [--profile-stride N]
//!
//! Prints a human-readable report with latency percentiles, or a
//! machine-readable run summary with `--json`. `--metrics-out` writes
//! the full statistics document (histograms + time-series samples);
//! `--trace-out` writes a Chrome trace-event file loadable in Perfetto.
//! Both are written even for wedged or capped runs, so a bad run still
//! leaves its evidence behind. `--liveness` additionally dumps the
//! per-component liveness probe snapshot on any non-completed outcome.
//! `--profile` prints a host-side wall-time breakdown of the tick
//! phases (stderr), sampling one tick in `--profile-stride` (default
//! 64).
//!
//! Exit codes: 0 on a completed run, 2 on bad arguments. A run that
//! does not complete exits with its wedge root-cause class — 10
//! mc-starvation, 11 emc-context-leak, 12 ring-backpressure, 13
//! core-deadlock, 14 slow-but-live — falling back to 3 (wedged) or 4
//! (cycle-cap hit) when no class was captured.

use emc_sim::{
    build_system, cycle_cap, eight_core_mix, metrics_json, summary_json, RunOutcome,
    ThroughputMeter, DEFAULT_PROFILE_STRIDE,
};
use emc_types::{FaultPlan, Histogram, LivenessConfig, PrefetcherKind, SystemConfig, WedgeClass};
use emc_workloads::{mix_by_name, Benchmark};
use std::io::Write;

const EXIT_BAD_ARGS: i32 = 2;
const EXIT_WEDGED: i32 = 3;
const EXIT_CAP_HIT: i32 = 4;
const EXIT_MC_STARVATION: i32 = 10;
const EXIT_EMC_CONTEXT_LEAK: i32 = 11;
const EXIT_RING_BACKPRESSURE: i32 = 12;
const EXIT_CORE_DEADLOCK: i32 = 13;
const EXIT_SLOW_BUT_LIVE: i32 = 14;

/// Exit code for a classified non-completed run (one code per
/// [`WedgeClass`], so scripts can dispatch without parsing stderr).
fn class_exit_code(class: &WedgeClass) -> i32 {
    match class {
        WedgeClass::McStarvation { .. } => EXIT_MC_STARVATION,
        WedgeClass::EmcContextLeak { .. } => EXIT_EMC_CONTEXT_LEAK,
        WedgeClass::RingBackpressure { .. } => EXIT_RING_BACKPRESSURE,
        WedgeClass::CoreDeadlock { .. } => EXIT_CORE_DEADLOCK,
        WedgeClass::SlowButLive => EXIT_SLOW_BUT_LIVE,
    }
}

fn usage() {
    eprintln!(
        "usage: emcsim [--mix H1..H10 | --homog <bench>] [--cores 4|8] [--mcs 1|2]\n\
         \t[--prefetcher none|ghb|stream|markov|stride] [--no-emc] [--runahead]\n\
         \t[--budget N] [--seed N] [--faults] [--json] [--liveness] [--no-liveness]\n\
         \t[--metrics-out FILE] [--trace-out FILE] [--sample-interval N]\n\
         \t[--profile] [--profile-stride N]"
    );
}

/// Report a bad argument by name and exit with the bad-args code.
fn bad_args(msg: &str) -> ! {
    eprintln!("emcsim: error: {msg}");
    usage();
    std::process::exit(EXIT_BAD_ARGS)
}

/// The value following `flag`, or a bad-args exit naming the flag.
fn require_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next()
        .unwrap_or_else(|| bad_args(&format!("{flag} requires a value")))
}

/// Parse the value following `flag` as an integer, naming both the flag
/// and the offending value on failure.
fn parse_value<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let v = require_value(args, flag);
    v.parse()
        .unwrap_or_else(|_| bad_args(&format!("{flag}: expected a number, got {v:?}")))
}

/// One row of the latency percentile table.
fn latency_row(label: &str, h: &Histogram) -> String {
    format!(
        "{label:<16} {:>8} {:>8} {:>8} {:>8} {:>8.0}",
        h.p50(),
        h.p95(),
        h.p99(),
        h.max,
        h.mean()
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut mix_name = "H4".to_string();
    let mut homog: Option<String> = None;
    let mut cores = 4usize;
    let mut mcs = 1usize;
    let mut pf = PrefetcherKind::None;
    let mut emc = true;
    let mut runahead = false;
    let mut budget = 30_000u64;
    let mut seed = 0x00c0_ffeeu64;
    let mut faults = false;
    let mut json = false;
    let mut liveness = false;
    let mut no_liveness = false;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut sample_interval: Option<u64> = None;
    let mut profile_stride: Option<u32> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--mix" => mix_name = require_value(&mut args, "--mix"),
            "--homog" => homog = Some(require_value(&mut args, "--homog")),
            "--cores" => cores = parse_value(&mut args, "--cores"),
            "--mcs" => mcs = parse_value(&mut args, "--mcs"),
            "--prefetcher" => {
                let v = require_value(&mut args, "--prefetcher");
                pf = match v.as_str() {
                    "none" => PrefetcherKind::None,
                    "ghb" => PrefetcherKind::Ghb,
                    "stream" => PrefetcherKind::Stream,
                    "markov" => PrefetcherKind::MarkovStream,
                    "stride" => PrefetcherKind::Stride,
                    _ => bad_args(&format!(
                        "--prefetcher: unknown kind {v:?} (expected none|ghb|stream|markov|stride)"
                    )),
                }
            }
            "--no-emc" => emc = false,
            "--runahead" => runahead = true,
            "--budget" => budget = parse_value(&mut args, "--budget"),
            "--seed" => seed = parse_value(&mut args, "--seed"),
            "--faults" => faults = true,
            "--json" => json = true,
            "--liveness" => liveness = true,
            "--no-liveness" => no_liveness = true,
            "--metrics-out" => metrics_out = Some(require_value(&mut args, "--metrics-out")),
            "--trace-out" => trace_out = Some(require_value(&mut args, "--trace-out")),
            "--sample-interval" => {
                sample_interval = Some(parse_value(&mut args, "--sample-interval"))
            }
            "--profile" => profile_stride = profile_stride.or(Some(DEFAULT_PROFILE_STRIDE)),
            "--profile-stride" => profile_stride = Some(parse_value(&mut args, "--profile-stride")),
            other => bad_args(&format!("unknown flag {other:?}")),
        }
    }
    let mut cfg = match (cores, mcs) {
        (4, 1) => SystemConfig::quad_core(),
        (8, 1) => SystemConfig::eight_core_1mc(),
        (8, 2) => SystemConfig::eight_core_2mc(),
        _ => bad_args(&format!(
            "--cores {cores} --mcs {mcs}: unsupported combination (use 4/1, 8/1 or 8/2)"
        )),
    };
    cfg = cfg.with_prefetcher(pf);
    cfg.emc.enabled = emc;
    cfg.core.runahead = runahead;
    cfg.seed = seed;
    if faults {
        cfg.faults = FaultPlan::chaos();
    }
    if no_liveness {
        cfg.liveness = LivenessConfig::disabled();
    }

    let benches: Vec<Benchmark> = match &homog {
        Some(name) => {
            let b = Benchmark::all()
                .into_iter()
                .find(|b| b.name() == name)
                .unwrap_or_else(|| bad_args(&format!("--homog: unknown benchmark {name:?}")));
            vec![b; cores]
        }
        None => {
            let quad = mix_by_name(&mix_name)
                .unwrap_or_else(|| bad_args(&format!("--mix: unknown mix {mix_name:?}")));
            if cores == 8 {
                eight_core_mix(quad)
            } else {
                quad.to_vec()
            }
        }
    };
    let names: Vec<&str> = benches.iter().map(|b| b.name()).collect();
    eprintln!(
        "# {cores}-core, {mcs} MC, prefetcher {}, EMC {}, runahead {}, budget {budget}{}",
        pf.label(),
        emc,
        runahead,
        if faults { ", fault injection ON" } else { "" }
    );
    eprintln!("# workload: {}", names.join("+"));

    let mut sys = build_system(cfg, &benches).unwrap_or_else(|e| bad_args(&e.to_string()));
    if trace_out.is_some() {
        sys.enable_tracing();
    }
    if let Some(iv) = sample_interval {
        sys.set_sample_interval(iv);
    }
    if let Some(stride) = profile_stride {
        sys.enable_profiling(stride);
    }
    let meter = ThroughputMeter::new();
    let report = sys.run_with_warmup(budget / 2, budget, cycle_cap(budget));
    let throughput = meter.finish(
        sys.now(),
        report.stats.cores.iter().map(|c| c.retired_uops).sum(),
    );

    // Host-performance breakdown goes to stderr so it composes with
    // --json on stdout.
    if let Some(stride) = profile_stride {
        let prof = sys.profile_report();
        eprintln!(
            "# host: {:.2} Mcycles/s, {:.2} Muops/s (wall {:.2}s, profile stride {stride})",
            throughput.cycles_per_sec() / 1e6,
            throughput.uops_per_sec() / 1e6,
            throughput.wall_nanos as f64 / 1e9,
        );
        for line in prof.table().lines() {
            eprintln!("#   {line}");
        }
    }

    // Exporters run before outcome handling: a wedged or capped run
    // still writes its metrics and trace for post-mortem inspection.
    let bench_names = sys.bench_names.clone();
    if let Some(path) = &metrics_out {
        let doc = metrics_json(&report.stats, &bench_names, report.outcome, sys.samples());
        std::fs::write(path, doc.to_json() + "\n")
            .unwrap_or_else(|e| bad_args(&format!("--metrics-out {path}: {e}")));
        eprintln!("# metrics written to {path}");
    }
    if let Some(path) = &trace_out {
        let f = std::fs::File::create(path)
            .unwrap_or_else(|e| bad_args(&format!("--trace-out {path}: {e}")));
        let mut w = std::io::BufWriter::new(f);
        sys.trace()
            .write_chrome_trace(&mut w)
            .and_then(|()| w.flush())
            .unwrap_or_else(|e| bad_args(&format!("--trace-out {path}: {e}")));
        eprintln!(
            "# trace written to {path} ({} events, {} journeys, {} dropped)",
            sys.trace().events().len(),
            sys.trace().journeys().len(),
            sys.trace().dropped()
        );
    }

    match report.outcome {
        RunOutcome::Completed => {}
        outcome => {
            match outcome {
                RunOutcome::Wedged => {
                    eprintln!("emcsim: run WEDGED — no forward progress");
                    match &report.wedge {
                        Some(w) => eprintln!("{w}"),
                        None => eprintln!("(no wedge report captured)"),
                    }
                }
                _ => {
                    let progress: Vec<u64> =
                        report.stats.cores.iter().map(|c| c.retired_uops).collect();
                    eprintln!(
                        "emcsim: cycle cap hit after {} cycles before every core reached its \
                         budget; per-core retired uops: {progress:?}",
                        report.stats.cycles
                    );
                }
            }
            if let Some(class) = &report.class {
                eprintln!("emcsim: root cause: {class}");
            }
            if liveness {
                match &report.liveness {
                    Some(snap) => eprintln!("emcsim: liveness probes:\n{}", snap.summary()),
                    None => eprintln!("emcsim: liveness probes: (no snapshot captured)"),
                }
            }
            let code = report.class.as_ref().map(class_exit_code).unwrap_or(
                if outcome == RunOutcome::Wedged {
                    EXIT_WEDGED
                } else {
                    EXIT_CAP_HIT
                },
            );
            std::process::exit(code);
        }
    }
    let stats = report.stats;
    if json {
        println!(
            "{}",
            summary_json(&stats, &bench_names, report.outcome).to_json()
        );
        return;
    }
    println!(
        "{:<12} {:>8} {:>8} {:>10} {:>8}",
        "core", "IPC", "MPKI", "dep-miss%", "chains"
    );
    for (i, c) in stats.cores.iter().enumerate() {
        println!(
            "{:<12} {:>8.3} {:>8.1} {:>9.1}% {:>8}",
            names[i],
            c.ipc(),
            c.mpki(),
            100.0 * c.dependent_miss_fraction(),
            c.chains_sent
        );
    }
    println!();
    println!("cycles: {}", stats.cycles);
    println!(
        "DRAM reads/writes/prefetches: {}/{}/{}",
        stats.mem.dram_reads, stats.mem.dram_writes, stats.mem.dram_prefetches
    );
    println!(
        "row conflict rate: {:.1}%",
        100.0 * stats.mem.row_conflict_rate()
    );
    let lease_aborts: u64 = stats.cores.iter().map(|c| c.chains_aborted_lease).sum();
    println!(
        "escalated requests: {} · lease-aborted chains: {}",
        stats.mem.escalated_requests, lease_aborts
    );
    println!();
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "latency (cyc)", "p50", "p95", "p99", "max", "mean"
    );
    println!("{}", latency_row("core miss", &stats.mem.core_miss_latency));
    if emc {
        println!("{}", latency_row("emc miss", &stats.mem.emc_miss_latency));
    }
    println!(
        "{}",
        latency_row("dram service", &stats.mem.dram_service_latency)
    );
    println!(
        "{}",
        latency_row("mc queue", &stats.mem.core_queue_component)
    );
    println!("{}", latency_row("on-chip delay", &stats.mem.on_chip_delay));
    if emc {
        println!();
        println!(
            "EMC: {} chains, {:.1} uops/chain, {:.1}% of misses, dcache hit {:.1}%",
            stats.emc.chains_executed,
            stats.mean_chain_uops(),
            100.0 * stats.emc_miss_fraction(),
            100.0 * stats.emc.dcache_hit_rate()
        );
        println!(
            "{}",
            latency_row("chain (ship→done)", &stats.emc.chain_latency)
        );
        if faults {
            let injected: u64 = stats.cores.iter().map(|c| c.chains_aborted_injected).sum();
            let quiesces: u64 = stats.cores.iter().map(|c| c.emc_quiesce_events).sum();
            println!(
                "faults: {} ring delays, {} ECC re-issues, {} backpressure storms, \
                 {} chains killed, {} EMC quiesce events",
                stats.ring.injected_delays,
                stats.mem.ecc_reissues,
                stats.mem.backpressure_storms,
                injected,
                quiesces
            );
        }
    }
}
