//! `emcsim` — command-line front end to the full-system simulator.
//!
//! Usage:
//!   emcsim [--mix H4 | --homog mcf] [--cores 4|8] [--mcs 1|2]
//!          [--prefetcher none|ghb|stream|markov|stride] [--no-emc] [--runahead]
//!          [--budget N] [--seed N] [--json]
//!
//! Prints a human-readable report (or full JSON stats with `--json`).

use emc_sim::{eight_core_mix, run_mix};
use emc_types::{PrefetcherKind, SystemConfig};
use emc_workloads::{mix_by_name, Benchmark};

fn usage() -> ! {
    eprintln!(
        "usage: emcsim [--mix H1..H10 | --homog <bench>] [--cores 4|8] [--mcs 1|2]\n\
         \t[--prefetcher none|ghb|stream|markov|stride] [--no-emc] [--runahead]\n\
         \t[--budget N] [--seed N] [--json]"
    );
    std::process::exit(2)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut mix_name = "H4".to_string();
    let mut homog: Option<String> = None;
    let mut cores = 4usize;
    let mut mcs = 1usize;
    let mut pf = PrefetcherKind::None;
    let mut emc = true;
    let mut runahead = false;
    let mut budget = 30_000u64;
    let mut seed = 0x00c0_ffeeu64;
    let mut json = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--mix" => mix_name = args.next().unwrap_or_else(|| usage()),
            "--homog" => homog = Some(args.next().unwrap_or_else(|| usage())),
            "--cores" => cores = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--mcs" => mcs = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--prefetcher" => {
                pf = match args.next().as_deref() {
                    Some("none") => PrefetcherKind::None,
                    Some("ghb") => PrefetcherKind::Ghb,
                    Some("stream") => PrefetcherKind::Stream,
                    Some("markov") => PrefetcherKind::MarkovStream,
                    Some("stride") => PrefetcherKind::Stride,
                    _ => usage(),
                }
            }
            "--no-emc" => emc = false,
            "--runahead" => runahead = true,
            "--budget" => budget = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--json" => json = true,
            _ => usage(),
        }
    }
    let mut cfg = match (cores, mcs) {
        (4, 1) => SystemConfig::quad_core(),
        (8, 1) => SystemConfig::eight_core_1mc(),
        (8, 2) => SystemConfig::eight_core_2mc(),
        _ => usage(),
    };
    cfg = cfg.with_prefetcher(pf);
    cfg.emc.enabled = emc;
    cfg.core.runahead = runahead;
    cfg.seed = seed;

    let benches: Vec<Benchmark> = match &homog {
        Some(name) => {
            let b = Benchmark::all()
                .into_iter()
                .find(|b| b.name() == name)
                .unwrap_or_else(|| usage());
            vec![b; cores]
        }
        None => {
            let quad = mix_by_name(&mix_name).unwrap_or_else(|| usage());
            if cores == 8 { eight_core_mix(quad) } else { quad.to_vec() }
        }
    };
    let names: Vec<&str> = benches.iter().map(|b| b.name()).collect();
    eprintln!("# {cores}-core, {mcs} MC, prefetcher {}, EMC {}, runahead {}, budget {budget}",
        pf.label(), emc, runahead);
    eprintln!("# workload: {}", names.join("+"));
    let stats = run_mix(cfg, &benches, budget);
    if json {
        println!("{}", serde_json::to_string_pretty(&stats).expect("stats serialize"));
        return;
    }
    println!("{:<12} {:>8} {:>8} {:>10} {:>8}", "core", "IPC", "MPKI", "dep-miss%", "chains");
    for (i, c) in stats.cores.iter().enumerate() {
        println!(
            "{:<12} {:>8.3} {:>8.1} {:>9.1}% {:>8}",
            names[i],
            c.ipc(),
            c.mpki(),
            100.0 * c.dependent_miss_fraction(),
            c.chains_sent
        );
    }
    println!();
    println!("cycles: {}", stats.cycles);
    println!("DRAM reads/writes/prefetches: {}/{}/{}",
        stats.mem.dram_reads, stats.mem.dram_writes, stats.mem.dram_prefetches);
    println!("row conflict rate: {:.1}%", 100.0 * stats.mem.row_conflict_rate());
    if emc {
        println!(
            "EMC: {} chains, {:.1} uops/chain, {:.1}% of misses, dcache hit {:.1}%",
            stats.emc.chains_executed,
            stats.mean_chain_uops(),
            100.0 * stats.emc_miss_fraction(),
            100.0 * stats.emc.dcache_hit_rate()
        );
        println!(
            "miss latency: core {:.0} vs EMC {:.0} cycles",
            stats.mem.core_miss_latency.mean(),
            stats.mem.emc_miss_latency.mean()
        );
    }
}
