//! `calibrate` — workload-calibration report: per-benchmark MPKI, IPC,
//! dependent-miss fraction and full-window-stall share on the Table-1
//! quad-core (no EMC, no prefetching). Used to keep the synthetic
//! profiles inside the paper's published bands (see DESIGN.md §2).

use emc_sim::run_homogeneous;
use emc_types::SystemConfig;
use emc_workloads::Benchmark;

fn main() {
    println!(
        "{:<12} {:>7} {:>6} {:>6} {:>7}",
        "bench", "MPKI", "IPC", "dep%", "stall%"
    );
    for b in Benchmark::HIGH_INTENSITY {
        let stats =
            run_homogeneous(SystemConfig::quad_core().without_emc(), b, 150_000).expect_completed();
        let c = &stats.cores[0];
        println!(
            "{:<12} {:>7.1} {:>6.3} {:>6.1} {:>7.1}",
            b.name(),
            c.mpki(),
            c.ipc(),
            100.0 * c.dependent_miss_fraction(),
            100.0 * c.full_window_stall_cycles as f64 / c.cycles as f64
        );
    }
    for b in [
        Benchmark::Gcc,
        Benchmark::Perlbench,
        Benchmark::Leslie3d,
        Benchmark::Hmmer,
    ] {
        let stats =
            run_homogeneous(SystemConfig::quad_core().without_emc(), b, 150_000).expect_completed();
        let c = &stats.cores[0];
        println!(
            "{:<12} {:>7.1} {:>6.3} {:>6.1} {:>7.1}",
            b.name(),
            c.mpki(),
            c.ipc(),
            100.0 * c.dependent_miss_fraction(),
            100.0 * c.full_window_stall_cycles as f64 / c.cycles as f64
        );
    }
}
