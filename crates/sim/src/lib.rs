//! Full-system cycle-level simulator for the EMC reproduction.
//!
//! [`System`] wires together every substrate in the workspace — the
//! out-of-order cores (`emc-cpu`), private L1s and the sliced shared LLC
//! (`emc-cache`), the bi-directional control/data rings (`emc-ring`),
//! PAR-BS memory controllers over DDR3 channels (`emc-memctrl` /
//! `emc-dram`), the prefetch engines (`emc-prefetch`) — and the paper's
//! contribution, the Enhanced Memory Controller (`emc-core`): dependence
//! chains are generated at full-window stalls, shipped over the data
//! ring, executed at the EMC when the source data arrives from DRAM, and
//! their live-outs returned for in-order retirement.
//!
//! # Example
//!
//! ```no_run
//! use emc_sim::{run_mix, DEFAULT_BUDGET};
//! use emc_types::SystemConfig;
//! use emc_workloads::mix_by_name;
//!
//! let mix = mix_by_name("H4").unwrap();
//! let stats = run_mix(SystemConfig::quad_core(), &mix, DEFAULT_BUDGET).expect_completed();
//! println!("IPC sum: {:.2}", stats.ipc_sum());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod profile;
pub mod runner;
pub mod system;

pub use emc_types::{RunOutcome, RunReport, WedgeReport};
pub use metrics::{metrics_json, summary_json, Sampler, DEFAULT_SAMPLE_INTERVAL};
pub use profile::{
    Phase, PhaseStat, ProfileReport, Throughput, ThroughputMeter, TickProfiler,
    DEFAULT_PROFILE_STRIDE,
};
pub use runner::{
    build_system, cycle_cap, eight_core_mix, run_homogeneous, run_mix, run_mix_capped,
    DEFAULT_BUDGET,
};
pub use system::{BuildError, System};
