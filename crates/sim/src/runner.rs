//! Experiment helpers: build and run the paper's workload mixes.

use crate::system::{BuildError, System};
use emc_types::rng::substream;
use emc_types::{RunReport, SystemConfig};
use emc_workloads::{build, Benchmark, DEFAULT_ITERATIONS};

/// Default retired-uop budget per core for full experiments. The paper
/// runs 50 M instructions per benchmark; the synthetic kernels reach
/// steady state quickly, so scaled-down runs preserve the figures' shape.
pub const DEFAULT_BUDGET: u64 = 300_000;

/// Hard cycle cap as a multiple of the budget (guards against a
/// mis-configured system deadlocking a harness).
pub fn cycle_cap(budget: u64) -> u64 {
    budget.saturating_mul(60).max(10_000_000)
}

/// Build a [`System`] for `benches` (one per core) under `cfg`.
///
/// Returns a [`BuildError`] if the benchmark count differs from
/// `cfg.cores` or the configuration fails validation.
pub fn build_system(cfg: SystemConfig, benches: &[Benchmark]) -> Result<System, BuildError> {
    if benches.len() != cfg.cores {
        return Err(BuildError::WorkloadMismatch {
            workloads: benches.len(),
            cores: cfg.cores,
        });
    }
    let workloads = benches
        .iter()
        .enumerate()
        .map(|(i, &b)| build(b, substream(cfg.seed, i as u64), DEFAULT_ITERATIONS))
        .collect();
    System::new(cfg, workloads)
}

/// Run `benches` under `cfg` with a per-core retired-uop budget,
/// preceded by a half-budget warmup whose statistics are discarded
/// (SimPoint-style methodology, §5 of the paper). Inspect the returned
/// [`RunReport`]'s outcome — or call
/// [`expect_completed`](RunReport::expect_completed) — before treating
/// the statistics as a measurement.
///
/// # Panics
///
/// Panics if the system cannot be built (mismatched benchmark count or
/// invalid config); use [`build_system`] directly to handle that case.
pub fn run_mix(cfg: SystemConfig, benches: &[Benchmark], budget: u64) -> RunReport {
    run_mix_capped(cfg, benches, budget, None)
}

/// [`run_mix`] with an explicit cycle cap (`None` = the default
/// [`cycle_cap`]). The campaign engine uses this to grant one extended
/// re-run when a cap hit is classified slow-but-live — the run is
/// making progress, it just needs more wall-clock.
///
/// # Panics
///
/// Panics if the system cannot be built (mismatched benchmark count or
/// invalid config); use [`build_system`] directly to handle that case.
pub fn run_mix_capped(
    cfg: SystemConfig,
    benches: &[Benchmark],
    budget: u64,
    cap: Option<u64>,
) -> RunReport {
    let mut sys = build_system(cfg, benches).unwrap_or_else(|e| panic!("run_mix: {e}"));
    sys.run_with_warmup(budget / 2, budget, cap.unwrap_or_else(|| cycle_cap(budget)))
}

/// Run a homogeneous workload: `cfg.cores` copies of one benchmark.
///
/// # Panics
///
/// Panics if the system cannot be built (invalid config).
pub fn run_homogeneous(cfg: SystemConfig, bench: Benchmark, budget: u64) -> RunReport {
    let benches = vec![bench; cfg.cores];
    run_mix(cfg, &benches, budget)
}

/// Expand a quad-core mix to eight cores (two copies, §5).
pub fn eight_core_mix(mix: [Benchmark; 4]) -> Vec<Benchmark> {
    let mut v = mix.to_vec();
    v.extend_from_slice(&mix);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_core_mix_duplicates() {
        let m = eight_core_mix([
            Benchmark::Mcf,
            Benchmark::Lbm,
            Benchmark::Milc,
            Benchmark::Soplex,
        ]);
        assert_eq!(m.len(), 8);
        assert_eq!(m[0], m[4]);
    }

    #[test]
    fn cycle_cap_scales() {
        assert!(cycle_cap(1_000_000) >= 60_000_000);
        assert!(cycle_cap(10) >= 10_000_000);
    }
}
