//! The full-system cycle simulator: cores, private L1s, a sliced shared
//! LLC on a bi-directional ring, one or two (enhanced) memory controllers
//! with PAR-BS scheduling over DDR3 channels, per-core prefetch engines
//! with FDP throttling, and the EMC chain-generation/remote-execution
//! flow (paper Figures 7 and 11).

use crate::events::{Ev, Scheduled};
use crate::metrics::Sampler;
use crate::profile::{Phase, ProfileReport, TickProfiler};
use emc_cache::SetAssocCache;
use emc_core::{generate_chain, AbortReason, DepMissCounter, Emc, EmcEvent, LoadRoute};
use emc_cpu::{Core, CoreEvent, EntryState, RobId};
use emc_dram::map_line;
use emc_memctrl::MemoryController;
use emc_prefetch::PrefetchEngine;
use emc_ring::{Ring, RingKind, Topology};
use emc_types::{
    physical_line, substream, AccessKind, Addr, CoreId, CoreStats, Cycle, LineAddr,
    LivenessSnapshot, MemReq, MetricSample, MissJourney, ReqId, Requester, RunOutcome, RunReport,
    Stats, SystemConfig, TraceSink, TraceTrack, UopKind, WedgeCoreState, WedgeEmcContext,
    WedgeReport, CACHE_LINE_BYTES,
};
use emc_workloads::Workload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Fault-injection RNG stream identifiers (decorrelated from the
/// workload streams, which use small indices `0..cores`).
const FAULT_STREAM_RING: u64 = 0xF001;
const FAULT_STREAM_MC_BASE: u64 = 0xF100;
const FAULT_STREAM_EMC_KILL: u64 = 0xF200;

/// Default watchdog sampling cadence; the live value comes from
/// `LivenessConfig::probe_interval`.
#[cfg(test)]
const WATCHDOG_INTERVAL: Cycle = 10_000;
/// Default zero-retirement window that declares a wedge; the live value
/// comes from `LivenessConfig::core_stall_age`.
#[cfg(test)]
const WEDGE_THRESHOLD: Cycle = 250_000;
/// How many time-series samples a [`WedgeReport`] carries as the
/// queue-depth history leading up to the wedge.
const WEDGE_SAMPLE_HISTORY: usize = 8;

/// Why a [`System`] could not be constructed from its inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The [`SystemConfig`] failed validation (the message names the
    /// offending field).
    InvalidConfig(String),
    /// The number of workloads does not match `cfg.cores`.
    WorkloadMismatch {
        /// Workloads supplied by the caller.
        workloads: usize,
        /// Cores the configuration asks for.
        cores: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            BuildError::WorkloadMismatch { workloads, cores } => write!(
                f,
                "workload count ({workloads}) does not match configured cores ({cores}); \
                 supply exactly one workload per core"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// In-loop forward-progress watchdog: samples total retirement every
/// `interval` cycles and reports how long the system has been stalled
/// once the zero-retirement window exceeds `threshold`. Both come from
/// `LivenessConfig` (`probe_interval` / `core_stall_age`).
struct Watchdog {
    last_retired: u64,
    last_progress_at: Cycle,
    next_check: Cycle,
    interval: Cycle,
    threshold: Cycle,
}

impl Watchdog {
    fn new(now: Cycle, retired: u64, interval: Cycle, threshold: Cycle) -> Self {
        let interval = interval.max(1);
        Watchdog {
            last_retired: retired,
            last_progress_at: now,
            next_check: now + interval,
            interval,
            threshold,
        }
    }

    /// Returns `Some(stalled_for)` once no uop has retired anywhere for
    /// at least the configured threshold.
    fn check(&mut self, now: Cycle, retired: u64) -> Option<Cycle> {
        if now < self.next_check {
            return None;
        }
        self.next_check = now + self.interval;
        if retired != self.last_retired {
            self.last_retired = retired;
            self.last_progress_at = now;
            return None;
        }
        let stalled = now - self.last_progress_at;
        (stalled >= self.threshold).then_some(stalled)
    }
}

/// An EMC load merged onto an outstanding line fetch.
#[derive(Debug, Clone, Copy)]
struct EmcWait {
    mc: usize,
    tag: u64,
    ctx: usize,
    uop: usize,
    home_core: CoreId,
    vaddr: Addr,
}

/// LLC-level outstanding miss bookkeeping.
#[derive(Debug, Default)]
struct Outstanding {
    waiters: Vec<(CoreId, RobId)>,
    emc_waiters: Vec<EmcWait>,
}

/// Metadata for EMC-issued memory requests.
#[derive(Debug, Clone, Copy)]
struct EmcReqMeta {
    mc: usize,
    tag: u64,
    ctx: usize,
    uop: usize,
    vaddr: Addr,
    ring_cycles: Cycle,
    cache_cycles: Cycle,
}

/// Per-request latency components threaded to the completion point.
#[derive(Debug, Clone, Copy, Default)]
struct Components {
    ring: Cycle,
    cache: Cycle,
}

/// The simulated system.
pub struct System {
    /// Configuration this system was built with.
    pub cfg: SystemConfig,
    now: Cycle,
    seq: u64,
    cores: Vec<Core>,
    /// Benchmark names per core (reporting).
    pub bench_names: Vec<String>,
    l1d: Vec<SetAssocCache>,
    llc: Vec<SetAssocCache>,
    ring: Ring,
    topo: Topology,
    mcs: Vec<MemoryController>,
    mc_retry: Vec<Vec<MemReq>>,
    emcs: Vec<Emc>,
    emc_ctx_tag: Vec<Vec<u64>>,
    prefetchers: Vec<PrefetchEngine>,
    dep_counters: Vec<DepMissCounter>,
    active_chain: Vec<Option<Vec<RobId>>>,
    chain_cooldown: Vec<Cycle>,
    /// Consecutive chain aborts per home core (graceful degradation).
    chain_fail_streak: Vec<u32>,
    /// Current quiesce backoff window per home core (doubles on each
    /// quiesce event, saturating; resets when a chain completes).
    chain_backoff: Vec<Cycle>,
    /// EMC context-kill fault stream, armed iff the fault plan enables
    /// `emc_kill_prob`.
    emc_fault: Option<(f64, SmallRng)>,
    pending_sources: HashMap<(CoreId, RobId), (usize, usize, u64)>,
    source_ready: HashSet<(CoreId, RobId)>,
    events: BinaryHeap<Scheduled>,
    outstanding: HashMap<LineAddr, Outstanding>,
    deliver_waiters: HashMap<ReqId, Vec<(CoreId, RobId)>>,
    prefetched_by: HashMap<LineAddr, CoreId>,
    req_components: HashMap<ReqId, Components>,
    emc_req_meta: HashMap<ReqId, EmcReqMeta>,
    next_req: u64,
    /// Accumulated system statistics (cores filled at snapshot time).
    pub stats: Stats,
    trace: TraceSink,
    sampler: Sampler,
    profiler: TickProfiler,
    /// Per EMC context: ship-start and execution-start cycles of the
    /// chain currently occupying it (chain-latency attribution).
    emc_ctx_ship: Vec<Vec<Option<(Cycle, Cycle)>>>,
    /// Per EMC context: cycle of the last forward-progress event (ship
    /// arrival, source delivery, load completion or result drain) of
    /// the occupying chain — the context-lease clock.
    emc_ctx_progress: Vec<Vec<Cycle>>,
    /// Per-core cycle of the last retirement (liveness probe).
    core_last_retire: Vec<Cycle>,
    /// Per-core retired-uop count at the last probe update.
    core_prev_retired: Vec<u64>,
    snapshots: Vec<Option<CoreStats>>,
    scratch_events: Vec<CoreEvent>,
    measure_start: Cycle,
    #[doc(hidden)]
    dbg_regions: Option<[u64; 5]>,
    #[doc(hidden)]
    dbg_cov: Option<[u64; 4]>,
}

impl System {
    /// Build a system running one workload per core.
    ///
    /// Returns a [`BuildError`] (rather than panicking) if the config
    /// fails validation or the workload count differs from `cfg.cores`.
    pub fn new(cfg: SystemConfig, workloads: Vec<Workload>) -> Result<Self, BuildError> {
        cfg.validate()
            .map_err(|e| BuildError::InvalidConfig(e.to_string()))?;
        if workloads.len() != cfg.cores {
            return Err(BuildError::WorkloadMismatch {
                workloads: workloads.len(),
                cores: cfg.cores,
            });
        }
        let topo = Topology {
            cores: cfg.cores,
            mcs: cfg.memory_controllers,
        };
        let cores: Vec<Core> = workloads
            .iter()
            .map(|w| Core::new(&cfg.core, Arc::new(w.program.clone()), w.memory.clone()))
            .collect();
        let bench_names = workloads
            .iter()
            .map(|w| w.bench.name().to_string())
            .collect();
        let mut mcs: Vec<MemoryController> = (0..cfg.memory_controllers)
            .map(|m| MemoryController::new(&cfg.dram, cfg.channels_of_mc(m).collect()))
            .collect();
        let emcs: Vec<Emc> = (0..cfg.memory_controllers)
            .map(|_| Emc::new(&cfg.emc, cfg.cores))
            .collect();
        let emc_ctx_tag = vec![vec![0u64; cfg.emc.contexts]; cfg.memory_controllers];
        let mut ring = Ring::new(topo, cfg.ring);
        ring.set_fault_plan(&cfg.faults, substream(cfg.seed, FAULT_STREAM_RING));
        for (m, mc) in mcs.iter_mut().enumerate() {
            mc.set_fault_plan(
                &cfg.faults,
                substream(cfg.seed, FAULT_STREAM_MC_BASE + m as u64),
            );
            if cfg.liveness.enabled {
                mc.set_escalation_threshold(Some(cfg.liveness.mc_escalation_age));
            }
        }
        let emc_fault = (cfg.faults.enabled && cfg.faults.emc_kill_prob > 0.0).then(|| {
            let rng = SmallRng::seed_from_u64(substream(cfg.seed, FAULT_STREAM_EMC_KILL));
            (cfg.faults.emc_kill_prob, rng)
        });
        Ok(System {
            now: 0,
            seq: 0,
            l1d: (0..cfg.cores)
                .map(|_| SetAssocCache::new(&cfg.l1))
                .collect(),
            llc: (0..cfg.cores)
                .map(|_| SetAssocCache::new(&cfg.llc_slice))
                .collect(),
            ring,
            topo,
            mc_retry: vec![Vec::new(); cfg.memory_controllers],
            mcs,
            emcs,
            emc_ctx_tag,
            prefetchers: (0..cfg.cores)
                .map(|_| PrefetchEngine::new(cfg.prefetcher, &cfg.prefetch))
                .collect(),
            dep_counters: (0..cfg.cores)
                .map(|_| DepMissCounter::new(cfg.emc.dep_counter_trigger))
                .collect(),
            active_chain: vec![None; cfg.cores],
            chain_cooldown: vec![0; cfg.cores],
            chain_fail_streak: vec![0; cfg.cores],
            chain_backoff: vec![cfg.emc.quiesce_backoff; cfg.cores],
            emc_fault,
            pending_sources: HashMap::new(),
            source_ready: HashSet::new(),
            events: BinaryHeap::new(),
            outstanding: HashMap::new(),
            deliver_waiters: HashMap::new(),
            prefetched_by: HashMap::new(),
            req_components: HashMap::new(),
            emc_req_meta: HashMap::new(),
            next_req: 0,
            stats: Stats::new(cfg.cores),
            trace: TraceSink::disabled(),
            sampler: Sampler::default(),
            profiler: TickProfiler::disabled(),
            emc_ctx_ship: vec![vec![None; cfg.emc.contexts]; cfg.memory_controllers],
            emc_ctx_progress: vec![vec![0; cfg.emc.contexts]; cfg.memory_controllers],
            core_last_retire: vec![0; cfg.cores],
            core_prev_retired: vec![0; cfg.cores],
            snapshots: vec![None; cfg.cores],
            scratch_events: Vec::new(),
            measure_start: 0,
            dbg_regions: None,
            dbg_cov: None,
            cores,
            bench_names,
            cfg,
        })
    }

    /// Current simulation cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Read access to a core (final architectural state, statistics).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn core(&self, idx: CoreId) -> &Core {
        &self.cores[idx]
    }

    // ==================================================================
    // Observability
    // ==================================================================

    /// Enable miss-journey tracing with the default event cap. Until
    /// this is called the sink is disabled and every trace call site
    /// costs one predictable branch.
    pub fn enable_tracing(&mut self) {
        self.trace = TraceSink::enabled();
    }

    /// Enable tracing with an explicit buffered-event cap (events past
    /// the cap are counted as dropped rather than stored).
    pub fn enable_tracing_with_cap(&mut self, cap: usize) {
        self.trace = TraceSink::enabled_with_cap(cap);
    }

    /// The trace sink: journey records, buffered events, drop count,
    /// and the Chrome-trace exporter.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Set the time-series sampling interval in cycles. 0 disables
    /// sampling entirely; the default is one sample per 10 k cycles
    /// (which feeds wedge-report history at negligible cost).
    pub fn set_sample_interval(&mut self, interval: Cycle) {
        self.sampler.set_interval(interval);
    }

    /// Captured time-series samples, oldest first.
    pub fn samples(&self) -> &[MetricSample] {
        self.sampler.samples()
    }

    /// Enable the host-side per-phase tick profiler, measuring one tick
    /// in every `stride` (0 disables again). Until this is called every
    /// phase boundary costs one predictable branch and no clock read;
    /// the profiler never touches simulated state, so enabling it
    /// cannot change results (see `crate::profile`).
    pub fn enable_profiling(&mut self, stride: u32) {
        self.profiler = TickProfiler::with_stride(stride);
    }

    /// Snapshot the host-side phase breakdown (all zeros unless
    /// [`enable_profiling`](Self::enable_profiling) was called).
    pub fn profile_report(&self) -> ProfileReport {
        self.profiler.report()
    }

    fn schedule(&mut self, at: Cycle, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Scheduled {
            at: at.max(self.now + 1),
            seq,
            ev,
        });
    }

    fn new_req_id(&mut self) -> ReqId {
        self.next_req += 1;
        ReqId(self.next_req)
    }

    fn mc_of_line(&self, pline: LineAddr) -> usize {
        let ch = map_line(pline, &self.cfg.dram).channel;
        (0..self.cfg.memory_controllers)
            .find(|&m| self.cfg.channels_of_mc(m).contains(&ch))
            .expect("every channel has an owner")
    }

    fn slice_of(&self, pline: LineAddr) -> usize {
        self.topo.llc_slice_of(pline)
    }

    // ==================================================================
    // Run control
    // ==================================================================

    /// Run until every core has retired `budget_uops` (or finished its
    /// program), or `max_cycles` elapse. Returns a [`RunReport`] whose
    /// statistics snapshot each core at its budget crossing, as in the
    /// paper's multiprogrammed methodology (§5).
    ///
    /// The report's [`RunOutcome`] says *how* the run ended: reaching
    /// the cycle cap yields [`RunOutcome::CapHit`] (truncated stats,
    /// never silently passed off as a measurement), and a forward-
    /// progress watchdog aborts runs where no core retires anything for
    /// `LivenessConfig::core_stall_age` cycles, attaching a
    /// [`WedgeReport`] of the scheduler state (with its liveness-probe
    /// root-cause classification).
    pub fn run(&mut self, budget_uops: u64, max_cycles: u64) -> RunReport {
        let mut watch = self.new_watchdog();
        while self.now < max_cycles && !self.all_cores_done(budget_uops) {
            self.tick(budget_uops);
            if let Some(stalled) = watch.check(self.now, self.total_retired()) {
                return self.wedged(stalled);
            }
        }
        self.report(budget_uops)
    }

    /// Run with a warmup phase: execute `warmup_uops` per core with
    /// statistics discarded (caches, predictors, DRAM row buffers and
    /// prefetcher state all warm up), then measure `budget_uops` per
    /// core. This mirrors the paper's SimPoint methodology (§5), where
    /// measurement starts from a warmed representative region.
    ///
    /// The watchdog covers the warmup phase too: a wedge during warmup
    /// is reported exactly like one during measurement.
    pub fn run_with_warmup(
        &mut self,
        warmup_uops: u64,
        budget_uops: u64,
        max_cycles: u64,
    ) -> RunReport {
        let mut watch = self.new_watchdog();
        while self.now < max_cycles && !self.all_cores_done(warmup_uops) {
            self.tick(u64::MAX); // no snapshots during warmup
            if let Some(stalled) = watch.check(self.now, self.total_retired()) {
                return self.wedged(stalled);
            }
        }
        if self.now >= max_cycles && !self.all_cores_done(warmup_uops) {
            return self.report(warmup_uops); // cap hit inside warmup
        }
        self.reset_statistics();
        let mut watch = self.new_watchdog();
        while self.now < max_cycles && !self.all_cores_done(budget_uops) {
            self.tick(budget_uops);
            if let Some(stalled) = watch.check(self.now, self.total_retired()) {
                return self.wedged(stalled);
            }
        }
        self.report(budget_uops)
    }

    fn total_retired(&self) -> u64 {
        self.cores.iter().map(|c| c.stats.retired_uops).sum()
    }

    fn new_watchdog(&self) -> Watchdog {
        Watchdog::new(
            self.now,
            self.total_retired(),
            self.cfg.liveness.probe_interval,
            self.cfg.liveness.core_stall_age,
        )
    }

    fn report(&mut self, budget_uops: u64) -> RunReport {
        let outcome = if self.all_cores_done(budget_uops) {
            RunOutcome::Completed
        } else {
            RunOutcome::CapHit
        };
        let (class, liveness) = if outcome == RunOutcome::Completed {
            (None, None)
        } else {
            let snap = self.liveness_snapshot();
            (Some(snap.classify(&self.cfg.liveness)), Some(snap))
        };
        RunReport {
            outcome,
            stats: self.finalize(),
            wedge: None,
            class,
            liveness,
        }
    }

    fn wedged(&mut self, stalled_for: Cycle) -> RunReport {
        let wedge = self.wedge_report(stalled_for);
        RunReport {
            outcome: RunOutcome::Wedged,
            stats: self.finalize(),
            class: wedge.class.clone(),
            liveness: wedge.liveness.clone(),
            wedge: Some(wedge),
        }
    }

    /// Read every per-component liveness probe: per-channel oldest
    /// queued-request age at each MC, per-context progress age at each
    /// EMC, the worst ring link backlog, and per-core retirement ages.
    /// Pure observation — never changes simulated state.
    pub fn liveness_snapshot(&self) -> LivenessSnapshot {
        let mut mc_oldest_age = Vec::new();
        for (m, mc) in self.mcs.iter().enumerate() {
            for (ch, age) in mc.oldest_queue_ages(self.now) {
                mc_oldest_age.push((m, ch, age));
            }
        }
        let mut emc_ctx_age = Vec::new();
        for (m, emc) in self.emcs.iter().enumerate() {
            for ctx in 0..self.cfg.emc.contexts {
                if emc.context_chain(ctx).is_some() {
                    let age = self.now.saturating_sub(self.emc_ctx_progress[m][ctx]);
                    emc_ctx_age.push((m, ctx, age));
                }
            }
        }
        LivenessSnapshot {
            cycle: self.now,
            mc_oldest_age,
            emc_ctx_age,
            ring_backlog: self.ring.max_backlog(self.now),
            core_retire_age: self
                .core_last_retire
                .iter()
                .map(|&at| self.now.saturating_sub(at))
                .collect(),
            cores_finished: self
                .cores
                .iter()
                .map(|c| c.finished_at().is_some())
                .collect(),
        }
    }

    /// Structured snapshot of every scheduler-visible queue, built when
    /// the forward-progress watchdog fires.
    pub fn wedge_report(&self, stalled_for: Cycle) -> WedgeReport {
        let cores = (0..self.cfg.cores)
            .map(|i| {
                let c = &self.cores[i];
                WedgeCoreState {
                    core: i,
                    bench: self.bench_names[i].clone(),
                    retired_uops: c.stats.retired_uops,
                    rob_len: c.rob_len(),
                    finished: c.finished_at().is_some(),
                    active_chain_uops: self.active_chain[i].as_ref().map(|v| v.len()),
                    rob_head: c.rob_iter().next().map(|e| {
                        format!(
                            "id={} {:?} state={:?} remote={} llc_miss={} addr={:?}",
                            e.id, e.uop.kind, e.state, e.remote, e.llc_miss, e.addr
                        )
                    }),
                }
            })
            .collect();
        let emc_contexts = self
            .emcs
            .iter()
            .enumerate()
            .flat_map(|(m, emc)| {
                (0..self.cfg.emc.contexts).filter_map(move |ctx| {
                    emc.context_chain(ctx).map(|ch| WedgeEmcContext {
                        mc: m,
                        ctx,
                        home_core: ch.home_core,
                        chain_uops: ch.uops.len(),
                        awaiting_source: self
                            .pending_sources
                            .contains_key(&(ch.home_core, ch.source_rob)),
                    })
                })
            })
            .collect();
        let liveness = self.liveness_snapshot();
        WedgeReport {
            cycle: self.now,
            stalled_for,
            cores,
            mc_queue_depths: self.mcs.iter().map(|m| m.queue_len()).collect(),
            mc_retry_depths: self.mc_retry.iter().map(|r| r.len()).collect(),
            emc_contexts,
            outstanding_lines: self.outstanding.len(),
            pending_events: self.events.len(),
            recent_samples: self.sampler.recent(WEDGE_SAMPLE_HISTORY).to_vec(),
            class: Some(liveness.classify(&self.cfg.liveness)),
            liveness: Some(liveness),
        }
    }

    /// Zero all statistics counters, keeping microarchitectural state.
    fn reset_statistics(&mut self) {
        self.measure_start = self.now;
        self.stats = Stats::new(self.cfg.cores);
        for c in &mut self.cores {
            c.stats = CoreStats::default();
        }
        for e in &mut self.emcs {
            e.stats = Default::default();
        }
        self.snapshots = vec![None; self.cfg.cores];
        // Warmup-phase samples are discarded like every other statistic.
        self.sampler.clear();
        // The retirement probe starts a fresh epoch with the counters.
        self.core_prev_retired = vec![0; self.cfg.cores];
        self.core_last_retire = vec![self.now; self.cfg.cores];
    }

    fn all_cores_done(&self, budget: u64) -> bool {
        (0..self.cfg.cores).all(|c| {
            self.snapshots[c].is_some()
                || self.cores[c].stats.retired_uops >= budget
                || self.cores[c].finished_at().is_some()
        })
    }

    fn finalize(&mut self) -> Stats {
        let mut stats = self.stats.clone();
        stats.cycles = self.now - self.measure_start;
        for c in 0..self.cfg.cores {
            let snap = self.snapshots[c].clone().unwrap_or_else(|| {
                let mut s = self.cores[c].stats.clone();
                s.cycles =
                    (self.cores[c].finished_at().unwrap_or(self.now) - self.measure_start).max(1);
                s
            });
            stats.cores[c] = snap;
        }
        for emc in &self.emcs {
            merge_emc(&mut stats.emc, &emc.stats);
        }
        stats.prefetch.degree = self
            .prefetchers
            .iter()
            .map(|p| p.degree() as u64)
            .max()
            .unwrap_or(0);
        stats
    }

    /// One simulation cycle. Each sub-phase is bracketed by the host
    /// profiler (one branch per boundary when profiling is off; a
    /// single clock read per boundary on sampled ticks when on).
    pub fn tick(&mut self, budget: u64) {
        self.profiler.begin_tick();
        let t = self.profiler.phase_start();
        self.drain_events();
        let t = self.profiler.phase_mark(Phase::Events, t);
        self.tick_mcs();
        let t = self.profiler.phase_mark(Phase::Mcs, t);
        self.tick_emcs();
        let t = self.profiler.phase_mark(Phase::Emcs, t);
        self.maybe_generate_chains();
        let t = self.profiler.phase_mark(Phase::ChainGen, t);
        self.drain_prefetchers();
        let t = self.profiler.phase_mark(Phase::Prefetch, t);
        self.tick_cores();
        let t = self.profiler.phase_mark(Phase::Cores, t);
        self.track_retirement();
        self.observe();
        self.take_snapshots(budget);
        self.profiler.phase_end(Phase::Observe, t);
        self.now += 1;
    }

    /// Per-core retirement liveness probe: remember the cycle of each
    /// core's most recent retirement (read-only bookkeeping; never
    /// affects simulated behaviour).
    fn track_retirement(&mut self) {
        for c in 0..self.cfg.cores {
            let retired = self.cores[c].stats.retired_uops;
            if retired != self.core_prev_retired[c] {
                self.core_prev_retired[c] = retired;
                self.core_last_retire[c] = self.now;
            }
        }
    }

    /// Per-cycle observability hook: close finished ROB-stall spans and
    /// capture a time-series sample when one is due. With tracing off
    /// and sampling between epochs this is a branch per core plus one
    /// comparison.
    fn observe(&mut self) {
        if self.trace.is_enabled() {
            for c in 0..self.cfg.cores {
                if let Some((start, end)) = self.cores[c].take_finished_stall() {
                    self.trace
                        .span(TraceTrack::Core(c), "full-window stall", start, end, vec![]);
                }
            }
        }
        if self.sampler.due(self.now) {
            let s = self.capture_sample();
            if self.trace.is_enabled() {
                self.emit_sample_counters(&s);
            }
            self.sampler.push(s);
        }
    }

    /// Read every scheduler-visible queue occupancy at `now`.
    fn capture_sample(&self) -> MetricSample {
        MetricSample {
            cycle: self.now,
            mc_queue_depth: self.mcs.iter().map(|m| m.queue_len() as u32).collect(),
            mc_retry_depth: self.mc_retry.iter().map(|r| r.len() as u32).collect(),
            banks_open: self
                .mcs
                .iter()
                .map(|m| m.open_bank_count() as u32)
                .collect(),
            emc_busy_contexts: self.emcs.iter().map(|e| e.busy_contexts() as u32).collect(),
            ring_busy_links: self.ring.busy_links(self.now) as u32,
            outstanding_misses: self.outstanding.len() as u32,
            llc_occupancy: self.llc.iter().map(|c| c.occupancy_permille()).collect(),
            rob_occupancy: self.cores.iter().map(|c| c.rob_len() as u32).collect(),
        }
    }

    /// Mirror a sample onto counter tracks in the Chrome trace.
    fn emit_sample_counters(&mut self, s: &MetricSample) {
        for (m, &d) in s.mc_queue_depth.iter().enumerate() {
            self.trace
                .counter(TraceTrack::Mc(m), "mc queue depth", s.cycle, u64::from(d));
        }
        for (m, &d) in s.banks_open.iter().enumerate() {
            self.trace
                .counter(TraceTrack::Mc(m), "banks open", s.cycle, u64::from(d));
        }
        for (m, &d) in s.emc_busy_contexts.iter().enumerate() {
            self.trace.counter(
                TraceTrack::Mc(m),
                "emc busy contexts",
                s.cycle,
                u64::from(d),
            );
        }
        self.trace.counter(
            TraceTrack::Ring,
            "busy links",
            s.cycle,
            u64::from(s.ring_busy_links),
        );
        self.trace.counter(
            TraceTrack::Ring,
            "outstanding misses",
            s.cycle,
            u64::from(s.outstanding_misses),
        );
        for (sl, &occ) in s.llc_occupancy.iter().enumerate() {
            self.trace.counter(
                TraceTrack::LlcSlice(sl),
                "occupancy permille",
                s.cycle,
                u64::from(occ),
            );
        }
    }

    fn take_snapshots(&mut self, budget: u64) {
        for c in 0..self.cfg.cores {
            if self.snapshots[c].is_none()
                && (self.cores[c].stats.retired_uops >= budget
                    || self.cores[c].finished_at().is_some())
            {
                let mut s = self.cores[c].stats.clone();
                s.cycles = (self.now - self.measure_start).max(1);
                self.snapshots[c] = Some(s);
            }
        }
    }

    // ==================================================================
    // Cores
    // ==================================================================

    fn tick_cores(&mut self) {
        for c in 0..self.cfg.cores {
            let mut events = std::mem::take(&mut self.scratch_events);
            self.cores[c].tick(self.now, &mut events);
            for ev in events.drain(..) {
                match ev {
                    CoreEvent::LoadIssued { rob, addr, pc } => self.on_core_load(c, rob, addr, pc),
                    CoreEvent::StoreRetired { addr } => self.on_store_retired(c, addr),
                }
            }
            self.scratch_events = events;
        }
    }

    fn on_core_load(&mut self, core: CoreId, rob: RobId, vaddr: Addr, pc: u64) {
        let pline = physical_line(core, vaddr.line());
        self.cores[core].stats.l1d_accesses += 1;
        if self.l1d[core].access(pline, false).is_some() {
            let lat = self.l1d[core].latency;
            self.schedule(self.now + lat, Ev::L1Done { core, rob });
            return;
        }
        self.cores[core].stats.l1d_misses += 1;
        // Merge into an outstanding DRAM-bound miss if one exists (an
        // MSHR merge: it waits like a miss but is not a new one).
        if let Some(o) = self.outstanding.get_mut(&pline) {
            o.waiters.push((core, rob));
            self.cores[core].mark_llc_miss_merged(rob);
            return;
        }
        let slice = self.slice_of(pline);
        let start = self.now + self.l1d[core].latency;
        let arrive = self.ring.send(
            RingKind::Control,
            self.topo.core_stop(core),
            self.topo.llc_stop(slice),
            start,
            false,
            &mut self.stats.ring,
        );
        self.schedule(
            arrive,
            Ev::LlcReq {
                core,
                rob,
                pline,
                vaddr,
                pc,
                created: self.now,
                ring_cycles: arrive - start,
            },
        );
    }

    fn on_store_retired(&mut self, core: CoreId, vaddr: Addr) {
        let pline = physical_line(core, vaddr.line());
        // L1 is write-through (Table 1): update if present, no allocate.
        self.l1d[core].access(pline, true);
        // Write-through traffic updates the LLC copy (write-allocate).
        let slice = self.slice_of(pline);
        if let Some(hit) = self.llc[slice].access(pline, true) {
            if hit.flags.emc_resident {
                let mc = self.mc_of_line(pline);
                self.emcs[mc].invalidate_line(pline);
                self.llc[slice].set_emc_resident(pline, false);
            }
        } else if let Some(ev) = self.llc[slice].fill(pline, true, false) {
            self.handle_llc_eviction(ev);
        }
    }

    // ==================================================================
    // Event handlers
    // ==================================================================

    fn drain_events(&mut self) {
        while let Some(top) = self.events.peek() {
            if top.at > self.now {
                break;
            }
            let ev = self.events.pop().expect("peeked").ev;
            self.handle_event(ev);
        }
    }

    fn handle_event(&mut self, ev: Ev) {
        match ev {
            Ev::L1Done { core, rob } => {
                self.cores[core].complete_load(rob, self.now);
            }
            Ev::LlcReq {
                core,
                rob,
                pline,
                vaddr,
                pc,
                created,
                ring_cycles,
            } => {
                self.on_llc_req(core, rob, pline, vaddr, pc, created, ring_cycles);
            }
            Ev::LlcDone { core, rob, pline } => {
                self.l1d[core].fill(pline, false, false);
                self.cores[core].complete_load(rob, self.now);
            }
            Ev::McArrive { mc, mut req } => {
                if req.kind == AccessKind::Prefetch {
                    let has_waiters = self
                        .outstanding
                        .get(&req.line)
                        .is_some_and(|o| !o.waiters.is_empty() || !o.emc_waiters.is_empty());
                    if has_waiters {
                        // A demand merged onto this prefetch while it was
                        // in flight: it is a demand request now.
                        req.kind = AccessKind::Read;
                    } else if self.mcs[mc].queue_len() >= 3 * self.mcs[mc].capacity() / 4 {
                        // Prefetches are dropped when the memory queue
                        // runs hot: they must never back-pressure demands.
                        self.outstanding.remove(&req.line);
                        return;
                    }
                }
                if let Err(req) = self.mcs[mc].enqueue(req, self.now) {
                    self.mc_retry[mc].push(req);
                }
            }
            Ev::FillAtLlc {
                req,
                ring_cycles,
                cache_cycles,
            } => {
                self.on_fill_at_llc(req, ring_cycles, cache_cycles);
            }
            Ev::CoreDeliver {
                core,
                req,
                ring_cycles,
                cache_cycles,
            } => {
                self.on_core_deliver(core, req, ring_cycles, cache_cycles);
            }
            Ev::EmcLlcReq {
                mc,
                tag,
                ctx,
                uop,
                core,
                pline,
                vaddr,
                pc,
                created,
                ring_cycles,
            } => {
                self.on_emc_llc_req(
                    mc,
                    tag,
                    ctx,
                    uop,
                    core,
                    pline,
                    vaddr,
                    pc,
                    created,
                    ring_cycles,
                );
            }
            Ev::EmcLoadDone {
                mc,
                tag,
                ctx,
                uop,
                value,
            } => {
                if self.emc_ctx_tag[mc][ctx] == tag {
                    self.emcs[mc].complete_load(ctx, uop, value);
                    self.emc_ctx_progress[mc][ctx] = self.now;
                }
            }
            Ev::ChainResults { core, results } => {
                for r in results.iter() {
                    self.cores[core].complete_remote(r.rob, r.value, r.store, self.now);
                }
            }
            Ev::ChainAbortAtCore { core, rob_ids } => {
                self.cores[core].unmark_remote(&rob_ids);
                self.active_chain[core] = None;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_llc_req(
        &mut self,
        core: CoreId,
        rob: RobId,
        pline: LineAddr,
        vaddr: Addr,
        pc: u64,
        created: Cycle,
        ring_cycles: Cycle,
    ) {
        self.cores[core].stats.llc_accesses += 1;
        let slice = self.slice_of(pline);
        let lat = self.llc[slice].latency;
        if let Some(hit) = self.llc[slice].access(pline, false) {
            if hit.first_use_of_prefetch {
                self.prefetched_by.remove(&pline);
                self.prefetchers[core].on_useful();
                // Keep streams advancing once prefetches start covering
                // the demand stream (train on prefetched hits, as FDP's
                // L2-access training does).
                self.prefetchers[core].train_on_prefetch_hit(pline);
                self.stats.prefetch.useful += 1;
                self.cores[core].stats.prefetch_covered_misses += 1;
                self.cores[core].note_dependent_covered_by_prefetch(rob);
            }
            let back = self.ring.send(
                RingKind::Data,
                self.topo.llc_stop(slice),
                self.topo.core_stop(core),
                self.now + lat,
                false,
                &mut self.stats.ring,
            );
            self.schedule(back, Ev::LlcDone { core, rob, pline });
            return;
        }
        // Another request to the same line may have raced us here.
        if let Some(o) = self.outstanding.get_mut(&pline) {
            o.waiters.push((core, rob));
            self.cores[core].mark_llc_miss_merged(rob);
            return;
        }
        // Figure 2 limit study: dependent misses become LLC hits.
        if self.cfg.ideal_dependent_hits && self.cores[core].load_is_dependent(rob) {
            let back = self.ring.send(
                RingKind::Data,
                self.topo.llc_stop(slice),
                self.topo.core_stop(core),
                self.now + lat,
                false,
                &mut self.stats.ring,
            );
            self.schedule(back, Ev::LlcDone { core, rob, pline });
            return;
        }
        self.cores[core].stats.llc_misses += 1;
        if core == 0 {
            if let Some(r) = self.dbg_regions.as_mut() {
                let a = vaddr.0;
                let idx = if (0x1000_0000..0x4000_0000).contains(&a) {
                    0
                } else if (0x4000_0000..0x8000_0000).contains(&a) {
                    1
                } else if (0x8000_0000..0x1_0000_0000).contains(&a) {
                    2
                } else if a >= 0x1_0000_0000 {
                    3
                } else {
                    4
                };
                r[idx] += 1;
            }
        }
        if let Some(cv) = self.dbg_cov.as_mut() {
            let a = vaddr.0;
            if (0x1000_0000..0x4000_0000).contains(&a) {
                cv[0] += 1;
            }
            if (0x4000_0000..0x8000_0000).contains(&a) {
                cv[2] += 1;
            }
        }
        self.cores[core].mark_llc_miss(rob);
        let dependent = self.cores[core].load_is_dependent(rob);
        self.dep_counters[core].on_llc_miss(dependent);
        self.prefetchers[core].train(pline, pc);
        let id = self.new_req_id();
        let mut req = MemReq::read(id, pline, Requester::Core(core), pc, created);
        req.timeline.llc_arrive = Some(self.now);
        self.outstanding.insert(
            pline,
            Outstanding {
                waiters: vec![(core, rob)],
                emc_waiters: Vec::new(),
            },
        );
        let mc = self.mc_of_line(pline);
        let depart = self.now + lat;
        let arrive = self.ring.send(
            RingKind::Control,
            self.topo.llc_stop(slice),
            self.topo.mc_stop(mc),
            depart,
            false,
            &mut self.stats.ring,
        );
        self.req_components.insert(
            id,
            Components {
                ring: ring_cycles + (arrive - depart),
                cache: lat,
            },
        );
        self.schedule(arrive, Ev::McArrive { mc, req });
    }

    fn handle_llc_eviction(&mut self, ev: emc_cache::Eviction) {
        if ev.flags.prefetched {
            self.stats.prefetch.useless += 1;
            if let Some(core) = self.prefetched_by.remove(&ev.line) {
                self.prefetchers[core].on_useless();
            }
        } else {
            self.prefetched_by.remove(&ev.line);
        }
        if ev.flags.emc_resident {
            let mc = self.mc_of_line(ev.line);
            self.emcs[mc].invalidate_line(ev.line);
        }
        if ev.flags.dirty {
            let id = self.new_req_id();
            let req = MemReq::writeback(id, ev.line, Requester::Core(0), self.now);
            let mc = self.mc_of_line(ev.line);
            let slice = self.slice_of(ev.line);
            let arrive = self.ring.send(
                RingKind::Data,
                self.topo.llc_stop(slice),
                self.topo.mc_stop(mc),
                self.now,
                false,
                &mut self.stats.ring,
            );
            self.schedule(arrive, Ev::McArrive { mc, req });
        }
    }

    fn on_fill_at_llc(&mut self, req: MemReq, ring_cycles: Cycle, cache_cycles: Cycle) {
        let pline = req.line;
        let slice = self.slice_of(pline);
        let prefetched = req.kind == AccessKind::Prefetch;
        if prefetched {
            self.prefetched_by.insert(pline, req.requester.home_core());
        }
        // Low-confidence prefetches insert at LRU (FDP) so they cannot
        // pollute the LLC; everything else inserts at MRU.
        let lru_insert = prefetched && self.prefetchers[req.requester.home_core()].low_confidence();
        let evicted = if lru_insert {
            self.llc[slice].fill_lru(pline, false, prefetched)
        } else {
            self.llc[slice].fill(pline, false, prefetched)
        };
        if let Some(ev) = evicted {
            self.handle_llc_eviction(ev);
        }
        if self.cfg.emc.enabled {
            // The line also sits in the servicing EMC's data cache now.
            self.llc[slice].set_emc_resident(pline, true);
        }
        let waiters = self
            .outstanding
            .remove(&pline)
            .map(|o| o.waiters)
            .unwrap_or_default();
        // A prefetch that demand loads merged onto is a *late* prefetch:
        // it still delivers data to its waiters like a demand fill, and
        // it counts as useful for FDP (the right response to lateness is
        // a higher degree, not throttling).
        if prefetched && !waiters.is_empty() {
            self.prefetched_by.remove(&pline);
            let trainer = waiters[0].0;
            self.prefetchers[trainer].on_useful();
            self.prefetchers[trainer].train_on_prefetch_hit(pline);
            self.stats.prefetch.useful += 1;
            // The demand consumed the prefetched line.
            self.llc[slice].access(pline, false);
        }
        if waiters.is_empty() {
            return;
        }
        let core = waiters[0].0;
        self.deliver_waiters.insert(req.id, waiters);
        // The fill pays the LLC array access before continuing up the
        // hierarchy, and the L1 fill at the core — the part of the fill
        // path the EMC bypasses entirely (§6.3, Figure 19).
        let llc_lat = self.llc[slice].latency;
        let depart = self.now + llc_lat;
        let back = self.ring.send(
            RingKind::Data,
            self.topo.llc_stop(slice),
            self.topo.core_stop(core),
            depart,
            false,
            &mut self.stats.ring,
        );
        let l1_lat = self.l1d[core].latency;
        self.schedule(
            back + l1_lat,
            Ev::CoreDeliver {
                core,
                req,
                ring_cycles: ring_cycles + (back - depart),
                cache_cycles: cache_cycles + llc_lat + l1_lat,
            },
        );
    }

    fn on_core_deliver(&mut self, _core: CoreId, mut req: MemReq, ring: Cycle, cache: Cycle) {
        req.timeline.delivered = Some(self.now);
        let waiters = self.deliver_waiters.remove(&req.id).unwrap_or_default();
        for (c, rob) in waiters {
            self.l1d[c].fill(req.line, false, false);
            self.cores[c].complete_load(rob, self.now);
            self.source_ready.remove(&(c, rob));
            // A chain may be waiting on this load as its source miss and
            // have missed the MC-time interception (the load merged onto
            // an already-completed request): deliver at fill time.
            if let Some(&(emc_mc, ctx, tag)) = self.pending_sources.get(&(c, rob)) {
                if self.emc_ctx_tag[emc_mc][ctx] == tag {
                    let value = self.source_value(emc_mc, ctx, c, rob);
                    self.emcs[emc_mc].deliver_source(ctx, value);
                    self.emc_ctx_progress[emc_mc][ctx] = self.now;
                }
                self.pending_sources.remove(&(c, rob));
            }
        }
        // Latency attribution (Figures 1, 18, 19) — core-issued demand
        // requests only (EMC-issued ones are recorded at the MC).
        let t = req.timeline;
        if req.requester.is_emc() {
            return;
        }
        if let (Some(total), Some(dl)) = (t.total_latency(), t.dram_latency()) {
            self.stats.mem.core_miss_latency.record(total);
            self.stats.mem.dram_service_latency.record(dl);
            self.stats
                .mem
                .on_chip_delay
                .record(total.saturating_sub(dl));
            self.stats.mem.core_ring_component.record(ring);
            self.stats.mem.core_cache_component.record(cache);
            self.stats
                .mem
                .core_queue_component
                .record(t.mc_queue_delay().unwrap_or(0));
            if self.trace.is_enabled() {
                self.trace.journey(MissJourney {
                    req: req.id,
                    core: req.requester.home_core(),
                    emc: false,
                    line: req.line.0,
                    created: t.created,
                    llc_arrive: t.llc_arrive,
                    mc_enqueue: t.mc_enqueue,
                    dram_issue: t.dram_issue,
                    dram_done: t.dram_done,
                    delivered: self.now,
                    row_hit: t.row_hit,
                });
            }
        }
    }

    // ==================================================================
    // Memory controllers
    // ==================================================================

    fn tick_mcs(&mut self) {
        for mc in 0..self.mcs.len() {
            // Retry rejected enqueues first (FIFO).
            let mut retry = std::mem::take(&mut self.mc_retry[mc]);
            let mut still: Vec<MemReq> = Vec::new();
            for mut req in retry.drain(..) {
                if req.kind == AccessKind::Prefetch {
                    let has_waiters = self
                        .outstanding
                        .get(&req.line)
                        .is_some_and(|o| !o.waiters.is_empty() || !o.emc_waiters.is_empty());
                    if has_waiters {
                        req.kind = AccessKind::Read; // promoted by a merge
                        if self.mcs[mc].is_full() {
                            still.push(req);
                        } else {
                            let _ = self.mcs[mc].enqueue(req, self.now);
                        }
                    } else {
                        // Never retry pure prefetches into a full queue.
                        self.outstanding.remove(&req.line);
                    }
                } else if self.mcs[mc].is_full() {
                    still.push(req);
                } else {
                    let _ = self.mcs[mc].enqueue(req, self.now);
                }
            }
            self.mc_retry[mc] = still;

            let completions = self.mcs[mc].tick(self.now, &mut self.stats.mem);
            for comp in completions {
                self.on_mc_completion(mc, comp.req);
            }
        }
    }

    fn on_mc_completion(&mut self, mc: usize, req: MemReq) {
        if req.kind == AccessKind::Write {
            return;
        }
        let pline = req.line;
        if self.trace.is_enabled() {
            // One span per DRAM access on the serviced bank's track.
            let t = req.timeline;
            if let (Some(issue), Some(done)) = (t.dram_issue, t.dram_done) {
                let loc = map_line(pline, &self.cfg.dram);
                let bank = loc.rank * self.cfg.dram.banks_per_rank + loc.bank;
                self.trace.span(
                    TraceTrack::Bank {
                        mc,
                        channel: loc.channel,
                        bank,
                    },
                    if t.row_hit == Some(true) {
                        "dram row hit"
                    } else {
                        "dram access"
                    },
                    issue,
                    done,
                    vec![
                        ("req", req.id.0),
                        ("row_hit", t.row_hit.map(u64::from).unwrap_or(0)),
                    ],
                );
            }
        }
        if self.cfg.emc.enabled {
            // Every line from DRAM passes through this EMC's data cache
            // (§4.1.3).
            if let Some(evicted) = self.emcs[mc].on_dram_fill(pline) {
                let s = self.slice_of(evicted);
                self.llc[s].set_emc_resident(evicted, false);
            }
        }
        // Merged EMC loads get their data the moment it reaches the chip.
        let emc_waits = self
            .outstanding
            .get_mut(&pline)
            .map(|o| std::mem::take(&mut o.emc_waiters))
            .unwrap_or_default();
        for w in emc_waits {
            let value = self.cores[w.home_core].mem.read_u64(w.vaddr);
            let at = if w.mc == mc {
                self.now + 1
            } else {
                self.ring.send(
                    RingKind::Data,
                    self.topo.mc_stop(mc),
                    self.topo.mc_stop(w.mc),
                    self.now,
                    true,
                    &mut self.stats.ring,
                )
            };
            self.schedule(
                at,
                Ev::EmcLoadDone {
                    mc: w.mc,
                    tag: w.tag,
                    ctx: w.ctx,
                    uop: w.uop,
                    value,
                },
            );
        }
        // Source-data interception for waiting chains (§4.3): any read
        // completion can carry a chain's source line, regardless of who
        // issued it (the source load may have merged onto an EMC- or
        // prefetcher-issued fetch of the same line).
        if let Some(o) = self.outstanding.get(&pline) {
            let waiters = o.waiters.clone();
            for (c, rob) in waiters {
                self.source_ready.insert((c, rob));
                if let Some(&(emc_mc, ctx, tag)) = self.pending_sources.get(&(c, rob)) {
                    if self.emc_ctx_tag[emc_mc][ctx] == tag {
                        let value = self.source_value(emc_mc, ctx, c, rob);
                        self.emcs[emc_mc].deliver_source(ctx, value);
                        self.emc_ctx_progress[emc_mc][ctx] = self.now;
                    }
                    self.pending_sources.remove(&(c, rob));
                }
            }
        }
        match req.requester {
            Requester::Emc { .. } => {
                let meta = self.emc_req_meta.remove(&req.id).expect("EMC request meta");
                let value = self.cores[meta.mc_home(&req)].mem.read_u64(meta.vaddr);
                let deliver_at = if meta.mc == mc {
                    self.now + 1
                } else {
                    // Cross-channel dependency: data returns over the ring
                    // to the issuing EMC (§4.4).
                    self.ring.send(
                        RingKind::Data,
                        self.topo.mc_stop(mc),
                        self.topo.mc_stop(meta.mc),
                        self.now,
                        true,
                        &mut self.stats.ring,
                    )
                };
                // Record EMC-issued miss latency (Figure 18/19).
                let t = req.timeline;
                let total = deliver_at.saturating_sub(t.created);
                self.stats.mem.emc_miss_latency.record(total);
                self.stats.mem.emc_ring_component.record(meta.ring_cycles);
                self.stats.mem.emc_cache_component.record(meta.cache_cycles);
                self.stats
                    .mem
                    .emc_queue_component
                    .record(t.mc_queue_delay().unwrap_or(0));
                if self.trace.is_enabled() {
                    self.trace.journey(MissJourney {
                        req: req.id,
                        core: req.requester.home_core(),
                        emc: true,
                        line: pline.0,
                        created: t.created,
                        llc_arrive: t.llc_arrive,
                        mc_enqueue: t.mc_enqueue,
                        dram_issue: t.dram_issue,
                        dram_done: t.dram_done,
                        delivered: deliver_at,
                        row_hit: t.row_hit,
                    });
                }
                self.schedule(
                    deliver_at,
                    Ev::EmcLoadDone {
                        mc: meta.mc,
                        tag: meta.tag,
                        ctx: meta.ctx,
                        uop: meta.uop,
                        value,
                    },
                );
                // EMC fills also install into the LLC.
                let slice = self.slice_of(pline);
                let depart = self.ring.send(
                    RingKind::Data,
                    self.topo.mc_stop(mc),
                    self.topo.llc_stop(slice),
                    self.now,
                    true,
                    &mut self.stats.ring,
                );
                self.schedule(
                    depart,
                    Ev::FillAtLlc {
                        req,
                        ring_cycles: 0,
                        cache_cycles: 0,
                    },
                );
            }
            Requester::Core(_) | Requester::Prefetcher(_) => {
                let comps = self.req_components.remove(&req.id).unwrap_or_default();
                let slice = self.slice_of(pline);
                let arrive = self.ring.send(
                    RingKind::Data,
                    self.topo.mc_stop(mc),
                    self.topo.llc_stop(slice),
                    self.now,
                    false,
                    &mut self.stats.ring,
                );
                self.schedule(
                    arrive,
                    Ev::FillAtLlc {
                        req,
                        ring_cycles: comps.ring + (arrive - self.now),
                        cache_cycles: comps.cache,
                    },
                );
            }
        }
    }

    /// Value of a chain's source miss: the home core's entry result if the
    /// entry is still in flight, else re-read from the functional image.
    fn source_value(&self, mc: usize, ctx: usize, core: CoreId, rob: RobId) -> u64 {
        if let Some(e) = self.cores[core].entry(rob) {
            if e.uop.kind == UopKind::Load && e.state != EntryState::Waiting {
                return e.result;
            }
        }
        let addr = self.emcs[mc]
            .context_chain(ctx)
            .map(|c| c.source_addr)
            .expect("chain present");
        self.cores[core].mem.read_u64(addr)
    }

    // ==================================================================
    // EMC
    // ==================================================================

    fn tick_emcs(&mut self) {
        if !self.cfg.emc.enabled {
            return;
        }
        // Context leases: a shipped chain that has made no progress for
        // the whole lease window is deterministically killed; the abort
        // rides the normal chain-abort path, so the home core re-executes
        // the chain locally and architectural state is unaffected. The
        // quiesce machinery then backs chain generation off on repeats.
        if self.cfg.liveness.enabled {
            let lease = self.cfg.liveness.emc_lease;
            for mc in 0..self.emcs.len() {
                for ctx in 0..self.cfg.emc.contexts {
                    if self.emcs[mc].context_chain(ctx).is_some()
                        && self.now.saturating_sub(self.emc_ctx_progress[mc][ctx]) >= lease
                    {
                        self.emcs[mc].force_abort(ctx, AbortReason::LeaseExpired);
                        // Re-arm the clock so the context is not killed
                        // again while the abort drains through the ring.
                        self.emc_ctx_progress[mc][ctx] = self.now;
                    }
                }
            }
        }
        // Fault injection: kill busy contexts mid-chain. The abort rides
        // the normal chain-abort path (home core re-executes locally), so
        // only timing is perturbed.
        if let Some((prob, mut rng)) = self.emc_fault.take() {
            for mc in 0..self.emcs.len() {
                for ctx in 0..self.cfg.emc.contexts {
                    if self.emcs[mc].context_chain(ctx).is_some() && rng.gen_bool(prob) {
                        self.emcs[mc].force_abort(ctx, AbortReason::Injected);
                    }
                }
            }
            self.emc_fault = Some((prob, rng));
        }
        for mc in 0..self.emcs.len() {
            for ev in self.emcs[mc].tick(self.now) {
                match ev {
                    EmcEvent::Load {
                        ctx,
                        uop,
                        home_core,
                        vaddr,
                        pc,
                        route,
                    } => {
                        self.on_emc_load(mc, ctx, uop, home_core, vaddr, pc, route);
                    }
                    EmcEvent::Results { ctx } => self.on_emc_results(mc, ctx),
                    EmcEvent::ChainDone { ctx } => self.on_chain_done(mc, ctx),
                    EmcEvent::ChainAborted { ctx, reason } => {
                        self.on_chain_aborted(mc, ctx, reason)
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_emc_load(
        &mut self,
        mc: usize,
        ctx: usize,
        uop: usize,
        core: CoreId,
        vaddr: Addr,
        pc: u64,
        route: LoadRoute,
    ) {
        let tag = self.emc_ctx_tag[mc][ctx];
        // Memory disambiguation against the home core's older stores
        // (§4.3): conflicting or unresolved older store → cancel.
        let rob = self.emcs[mc]
            .context_chain(ctx)
            .map(|c| c.uops[uop].rob)
            .expect("chain present");
        let conflict = self.cores[core].rob_iter().any(|e| {
            e.id < rob
                && e.uop.kind == UopKind::Store
                && !e.remote
                && (e.addr.is_none() || e.addr == Some(vaddr))
        });
        if conflict {
            self.cores[core].stats.chains_cancelled_disambiguation += 1;
            self.emcs[mc].force_abort(ctx, AbortReason::Disambiguation);
            return;
        }
        let value = self.cores[core].mem.read_u64(vaddr);
        let pline = physical_line(core, vaddr.line());
        match route {
            LoadRoute::DcacheHit => {
                let lat = self.cfg.emc.dcache_latency;
                self.schedule(
                    self.now + lat,
                    Ev::EmcLoadDone {
                        mc,
                        tag,
                        ctx,
                        uop,
                        value,
                    },
                );
            }
            LoadRoute::Llc => {
                let slice = self.slice_of(pline);
                let arrive = self.ring.send(
                    RingKind::Control,
                    self.topo.mc_stop(mc),
                    self.topo.llc_stop(slice),
                    self.now,
                    true,
                    &mut self.stats.ring,
                );
                self.schedule(
                    arrive,
                    Ev::EmcLlcReq {
                        mc,
                        tag,
                        ctx,
                        uop,
                        core,
                        pline,
                        vaddr,
                        pc,
                        created: self.now,
                        ring_cycles: arrive - self.now,
                    },
                );
            }
            LoadRoute::DirectDram => {
                // The MC's home agent consults the coherence directory
                // before touching DRAM; a mispredicted bypass of an
                // LLC-resident line is redirected to the LLC instead of
                // wasting a DRAM fetch (and risking staleness).
                let slice = self.slice_of(pline);
                let was_present = self.llc[slice].probe(pline).is_some();
                self.emcs[mc].train_miss_predictor(core, pc, !was_present);
                if was_present {
                    let arrive = self.ring.send(
                        RingKind::Control,
                        self.topo.mc_stop(mc),
                        self.topo.llc_stop(slice),
                        self.now,
                        true,
                        &mut self.stats.ring,
                    );
                    self.schedule(
                        arrive,
                        Ev::EmcLlcReq {
                            mc,
                            tag,
                            ctx,
                            uop,
                            core,
                            pline,
                            vaddr,
                            pc,
                            created: self.now,
                            ring_cycles: arrive - self.now,
                        },
                    );
                    return;
                }
                self.emcs[mc].stats.llc_misses_generated += 1;
                self.send_emc_req_to_dram(mc, tag, ctx, uop, core, vaddr, pline, pc, 0, 0);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn send_emc_req_to_dram(
        &mut self,
        mc: usize,
        tag: u64,
        ctx: usize,
        uop: usize,
        core: CoreId,
        vaddr: Addr,
        pline: LineAddr,
        pc: u64,
        ring_cycles: Cycle,
        cache_cycles: Cycle,
    ) {
        if let Some(cv) = self.dbg_cov.as_mut() {
            let a = vaddr.0;
            if (0x1000_0000..0x4000_0000).contains(&a) {
                cv[1] += 1;
            }
            if (0x4000_0000..0x8000_0000).contains(&a) {
                cv[3] += 1;
            }
        }
        // Merge onto any outstanding fetch of the same line (the MC
        // snoops its own queue; chain loads often share a node line).
        if let Some(o) = self.outstanding.get_mut(&pline) {
            o.emc_waiters.push(EmcWait {
                mc,
                tag,
                ctx,
                uop,
                home_core: core,
                vaddr,
            });
            return;
        }
        let id = self.new_req_id();
        let req = MemReq::read(
            id,
            pline,
            Requester::Emc {
                home_core: core,
                mc,
            },
            pc,
            self.now,
        );
        self.emc_req_meta.insert(
            id,
            EmcReqMeta {
                mc,
                tag,
                ctx,
                uop,
                vaddr,
                ring_cycles,
                cache_cycles,
            },
        );
        self.outstanding.insert(
            pline,
            Outstanding {
                waiters: Vec::new(),
                emc_waiters: Vec::new(),
            },
        );
        let owner = self.mc_of_line(pline);
        if owner == mc {
            // The EMC is colocated with the memory queue: no ring hop.
            self.schedule(self.now + 1, Ev::McArrive { mc: owner, req });
        } else {
            // Cross-channel dependency: EMC→EMC direct (§4.4).
            let arrive = self.ring.send(
                RingKind::Control,
                self.topo.mc_stop(mc),
                self.topo.mc_stop(owner),
                self.now,
                true,
                &mut self.stats.ring,
            );
            self.schedule(arrive, Ev::McArrive { mc: owner, req });
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_emc_llc_req(
        &mut self,
        mc: usize,
        tag: u64,
        ctx: usize,
        uop: usize,
        core: CoreId,
        pline: LineAddr,
        vaddr: Addr,
        pc: u64,
        created: Cycle,
        ring_cycles: Cycle,
    ) {
        let _ = vaddr;
        if self.emc_ctx_tag[mc][ctx] != tag {
            return; // chain finished/aborted while the request was in flight
        }
        let slice = self.slice_of(pline);
        let lat = self.llc[slice].latency;
        if let Some(hit) = self.llc[slice].access(pline, false) {
            self.emcs[mc].train_miss_predictor(core, pc, false);
            if hit.first_use_of_prefetch {
                self.prefetched_by.remove(&pline);
                self.prefetchers[core].on_useful();
                self.stats.prefetch.useful += 1;
                self.emcs[mc].stats.requests_covered_by_prefetch += 1;
            }
            let value = self.cores[core].mem.read_u64(vaddr);
            let back = self.ring.send(
                RingKind::Data,
                self.topo.llc_stop(slice),
                self.topo.mc_stop(mc),
                self.now + lat,
                true,
                &mut self.stats.ring,
            );
            self.schedule(
                back,
                Ev::EmcLoadDone {
                    mc,
                    tag,
                    ctx,
                    uop,
                    value,
                },
            );
            return;
        }
        self.emcs[mc].train_miss_predictor(core, pc, true);
        self.emcs[mc].stats.llc_misses_generated += 1;
        let _ = created;
        self.send_emc_req_to_dram(mc, tag, ctx, uop, core, vaddr, pline, pc, ring_cycles, lat);
    }

    /// Ship the results completed this cycle back to the home core as
    /// one data-ring message (incremental live-out return).
    fn on_emc_results(&mut self, mc: usize, ctx: usize) {
        let Some(core) = self.emcs[mc].context_chain(ctx).map(|c| c.home_core) else {
            return;
        };
        let results = self.emcs[mc].drain_results(ctx);
        if results.is_empty() {
            return;
        }
        self.emc_ctx_progress[mc][ctx] = self.now;
        self.cores[core].stats.chain_live_outs += results.len() as u64;
        let arrive = self.ring.send(
            RingKind::Data,
            self.topo.mc_stop(mc),
            self.topo.core_stop(core),
            self.now,
            true,
            &mut self.stats.ring,
        );
        self.schedule(
            arrive,
            Ev::ChainResults {
                core,
                results: results.into_boxed_slice(),
            },
        );
    }

    fn on_chain_done(&mut self, mc: usize, ctx: usize) {
        // Ship any straggler results before freeing the context.
        self.on_emc_results(mc, ctx);
        let fin = self.emcs[mc].take_finished(ctx);
        self.emc_ctx_tag[mc][ctx] += 1;
        if let Some((ship_start, exec_start)) = self.emc_ctx_ship[mc][ctx].take() {
            // Chain latency: ship departure to last uop retired at the EMC.
            self.emcs[mc]
                .stats
                .chain_latency
                .record(self.now.saturating_sub(ship_start));
            self.trace.span(
                TraceTrack::EmcCtx { mc, ctx },
                "chain execute",
                exec_start.min(self.now),
                self.now,
                vec![("uops", fin.chain.uops.len() as u64)],
            );
        }
        let core = fin.chain.home_core;
        self.pending_sources.remove(&(core, fin.chain.source_rob));
        self.active_chain[core] = None;
        // A completed chain ends any failure streak and resets the
        // degradation backoff for this core.
        self.chain_fail_streak[core] = 0;
        self.chain_backoff[core] = self.cfg.emc.quiesce_backoff;
    }

    fn on_chain_aborted(&mut self, mc: usize, ctx: usize, reason: AbortReason) {
        let fin = self.emcs[mc].take_finished(ctx);
        self.emc_ctx_tag[mc][ctx] += 1;
        if let Some((_, exec_start)) = self.emc_ctx_ship[mc][ctx].take() {
            self.trace.span(
                TraceTrack::EmcCtx { mc, ctx },
                "chain aborted",
                exec_start.min(self.now),
                self.now,
                vec![],
            );
        }
        let core = fin.chain.home_core;
        self.pending_sources.remove(&(core, fin.chain.source_rob));
        match reason {
            AbortReason::TlbMiss => self.cores[core].stats.chains_aborted_tlb += 1,
            AbortReason::BranchMispredict => {
                self.cores[core].stats.chains_aborted_branch += 1;
            }
            AbortReason::Disambiguation => {}
            AbortReason::Injected => self.cores[core].stats.chains_aborted_injected += 1,
            AbortReason::LeaseExpired => self.cores[core].stats.chains_aborted_lease += 1,
        }
        // Graceful degradation: after `quiesce_threshold` consecutive
        // failed chains the EMC quiesces for this core, backing off for
        // a window that doubles (saturating) on every repeat.
        self.chain_fail_streak[core] += 1;
        if self.chain_fail_streak[core] >= self.cfg.emc.quiesce_threshold {
            self.chain_fail_streak[core] = 0;
            let backoff = self.chain_backoff[core];
            self.chain_cooldown[core] = self.chain_cooldown[core].max(self.now + backoff);
            self.chain_backoff[core] = backoff
                .saturating_mul(2)
                .min(self.cfg.emc.quiesce_backoff_max);
            self.cores[core].stats.emc_quiesce_events += 1;
        }
        let rob_ids: Vec<RobId> = fin.chain.uops.iter().map(|u| u.rob).collect();
        let arrive = self.ring.send(
            RingKind::Control,
            self.topo.mc_stop(mc),
            self.topo.core_stop(core),
            self.now,
            true,
            &mut self.stats.ring,
        );
        self.schedule(
            arrive,
            Ev::ChainAbortAtCore {
                core,
                rob_ids: rob_ids.into_boxed_slice(),
            },
        );
    }

    fn maybe_generate_chains(&mut self) {
        if !self.cfg.emc.enabled {
            return;
        }
        for core in 0..self.cfg.cores {
            if self.active_chain[core].is_some()
                || self.now < self.chain_cooldown[core]
                || self.cores[core].in_runahead()
            {
                continue;
            }
            if self.cores[core].full_window_stall().is_none() {
                continue;
            }
            if !self.dep_counters[core].should_generate() {
                continue;
            }
            // The head miss blocks retirement, but the chain worth
            // accelerating may hang off any outstanding miss in the
            // stalled window (e.g. the next pointer-chase hop, which
            // issued together with the head's). Walk the window oldest
            // first and take the first chain that reaches a dependent
            // load; fall back to the head's chain.
            let candidates: Vec<RobId> = self.cores[core]
                .rob_iter()
                .filter(|e| {
                    e.uop.kind == UopKind::Load
                        && e.llc_miss
                        && e.state == EntryState::Issued
                        && !e.remote
                        && e.addr.is_some()
                })
                .take(self.cfg.emc.chain_candidates.max(1))
                .map(|e| e.id)
                .collect();
            // Prefer the chain that reaches the most dependent loads: a
            // stalled window usually holds both the payload-pointer load
            // (whose chain is one payload miss) and the node load (whose
            // chain carries the entire pointer chase).
            let mut best: Option<(usize, emc_core::GeneratedChain)> = None;
            for src in candidates {
                if let Some(g) = generate_chain(&self.cores[core], core, src, &self.cfg.emc) {
                    let loads = g
                        .chain
                        .uops
                        .iter()
                        .filter(|u| u.kind == UopKind::Load)
                        .count();
                    let better = match &best {
                        None => true,
                        Some((bl, bg)) => {
                            loads > *bl
                                || (loads == *bl && g.chain.uops.len() > bg.chain.uops.len())
                        }
                    };
                    if better {
                        best = Some((loads, g));
                    }
                }
            }
            let Some((_, g)) = best else {
                self.chain_cooldown[core] = self.now + 8;
                continue;
            };
            let chain = g.chain;
            let source_pline = physical_line(core, chain.source_addr.line());
            let dest_mc = self.mc_of_line(source_pline);
            // The EMC advertises context availability on the control
            // ring; the context is reserved at generation time and the
            // chain's arrival over the data ring gates execution.
            if !self.emcs[dest_mc].has_free_context() {
                self.chain_cooldown[core] = self.now + 32;
                continue;
            }
            let rob_ids: Vec<RobId> = chain.uops.iter().map(|u| u.rob).collect();
            let source_rob = chain.source_rob;
            // Ship: 6 B/uop + live-ins, over the data ring (§6.5).
            let msgs = chain.transfer_bytes().div_ceil(CACHE_LINE_BYTES).max(1);
            let start = self.now + g.gen_cycles;
            let mut arrive = start;
            for _ in 0..msgs {
                arrive = self.ring.send(
                    RingKind::Data,
                    self.topo.core_stop(core),
                    self.topo.mc_stop(dest_mc),
                    start,
                    true,
                    &mut self.stats.ring,
                );
            }
            let Ok(ctx) = self.emcs[dest_mc].start_chain(chain, arrive) else {
                self.chain_cooldown[core] = self.now + 32;
                continue;
            };
            self.emc_ctx_ship[dest_mc][ctx] = Some((start, arrive));
            // Lease clock starts when the chain reaches the EMC; cycles
            // in flight on the ring never count against the lease.
            self.emc_ctx_progress[dest_mc][ctx] = arrive;
            if self.trace.is_enabled() {
                self.trace.span(
                    TraceTrack::EmcCtx { mc: dest_mc, ctx },
                    "chain ship",
                    start,
                    arrive,
                    vec![("core", core as u64), ("uops", rob_ids.len() as u64)],
                );
            }
            self.cores[core].stats.chains_sent += 1;
            self.cores[core].stats.chain_uops_sent += rob_ids.len() as u64;
            self.cores[core].stats.record_chain_length(rob_ids.len());
            self.cores[core].mark_remote(&rob_ids);
            self.active_chain[core] = Some(rob_ids);
            self.chain_cooldown[core] = self.now + g.gen_cycles;
            let tag = self.emc_ctx_tag[dest_mc][ctx];
            // Source data may already be on chip (or the load done).
            let already = self.source_ready.contains(&(core, source_rob))
                || self.cores[core]
                    .entry(source_rob)
                    .is_none_or(|e| e.state == EntryState::Done);
            if already {
                let value = self.source_value(dest_mc, ctx, core, source_rob);
                self.emcs[dest_mc].deliver_source(ctx, value);
            } else {
                self.pending_sources
                    .insert((core, source_rob), (dest_mc, ctx, tag));
            }
            if let Some(c) = self.emcs[dest_mc].context_chain(ctx) {
                self.cores[core].stats.chain_live_ins += c.live_in_count();
            }
        }
    }

    /// Diagnostics: count core-issued vs EMC-issued chase-region misses.
    #[doc(hidden)]
    pub fn debug_coverage(&mut self, cycles: u64) {
        self.dbg_cov = Some([0; 4]);
        for _ in 0..cycles {
            self.tick(u64::MAX);
        }
        let c = self.dbg_cov.unwrap();
        println!(
            "node: core={} emc={}  payload: core={} emc={}",
            c[0], c[1], c[2], c[3]
        );
        let chains: u64 = self.cores.iter().map(|x| x.stats.chains_sent).sum();
        println!(
            "chains={} stall0={} cycles0={}",
            chains, self.cores[0].stats.full_window_stall_cycles, self.cores[0].stats.cycles
        );
    }

    /// Diagnostics: print per-core progress.
    #[doc(hidden)]
    pub fn debug_progress(&self) {
        for (i, c) in self.cores.iter().enumerate() {
            println!(
                "  core {i} ({}): retired={} rob={} stalls={}",
                self.bench_names[i],
                c.stats.retired_uops,
                c.rob_len(),
                c.stats.full_window_stall_cycles
            );
        }
    }

    /// Diagnostics: dump one core's window and related chain state.
    #[doc(hidden)]
    pub fn debug_core_dump(&self, core: usize) {
        let c = &self.cores[core];
        println!(
            "core {core} retired={} rob_len={} finished={:?} r15={} active_chain={:?} cooldown={}",
            c.stats.retired_uops,
            c.rob_len(),
            c.finished_at(),
            c.committed_regs()[15],
            self.active_chain[core],
            self.chain_cooldown[core]
        );
        for e in c.rob_iter().take(20) {
            println!(
                "  id={} {:?} st={:?} rem={} llc={} ready=[{},{}] prod=[{:?},{:?}] addr={:?}",
                e.id,
                e.uop.kind,
                e.state,
                e.remote,
                e.llc_miss,
                e.srcs[0].ready(),
                e.srcs[1].ready(),
                e.srcs[0].producer,
                e.srcs[1].producer,
                e.addr
            );
        }
        for (m, emc) in self.emcs.iter().enumerate() {
            for ctx in 0..self.cfg.emc.contexts {
                if let Some(ch) = emc.context_chain(ctx) {
                    println!(
                        "emc {m} ctx {ctx}: home={} src_rob={} uops={} pending={:?} tag={}",
                        ch.home_core,
                        ch.source_rob,
                        ch.uops.len(),
                        self.pending_sources.get(&(ch.home_core, ch.source_rob)),
                        self.emc_ctx_tag[m][ctx]
                    );
                }
            }
        }
        println!(
            "source_ready: {:?}",
            self.source_ready
                .iter()
                .filter(|(c2, _)| *c2 == core)
                .collect::<Vec<_>>()
        );
        println!("outstanding: {}", self.outstanding.len());
    }

    /// Diagnostics: classify core-0 LLC misses by address region.
    #[doc(hidden)]
    pub fn debug_region_misses(&mut self, cycles: u64) {
        self.dbg_regions = Some([0; 5]);
        for _ in 0..cycles {
            self.tick(u64::MAX);
        }
        let r = self.dbg_regions.unwrap();
        println!(
            "misses: chase={} payload={} stream={} random={} other={}",
            r[0], r[1], r[2], r[3], r[4]
        );
        println!(
            "llc_misses={} accesses={}",
            self.cores[0].stats.llc_misses, self.cores[0].stats.llc_accesses
        );
    }

    /// Diagnostics: sample ROB occupancy and window composition of core 0.
    #[doc(hidden)]
    pub fn debug_window(&mut self, cycles: u64) {
        use std::collections::HashMap as Map;
        let mut occ_hist: Map<usize, u64> = Map::new();
        let mut stalls = 0u64;
        for _ in 0..cycles {
            self.tick(u64::MAX);
            let len = self.cores[0].rob_len();
            *occ_hist.entry(len / 32).or_insert(0) += 1;
            if self.cores[0].full_window_stall().is_some() {
                stalls += 1;
            }
        }
        let mut keys: Vec<_> = occ_hist.keys().copied().collect();
        keys.sort();
        for k in keys {
            println!("rob in [{},{}) : {}", k * 32, (k + 1) * 32, occ_hist[&k]);
        }
        println!("stall cycles: {stalls}");
        let waiting = self.cores[0]
            .rob_iter()
            .filter(|e| e.state == EntryState::Waiting)
            .count();
        println!(
            "rob_len={} waiting={} head={:?}",
            self.cores[0].rob_len(),
            waiting,
            self.cores[0]
                .rob_iter()
                .next()
                .map(|e| (e.uop.kind, e.state, e.llc_miss))
        );
    }

    /// Diagnostics: run until `n` chains have been generated, printing
    /// each chain and the stalled window context.
    #[doc(hidden)]
    pub fn debug_first_chains(&mut self, n: u64) {
        let mut seen = 0;
        let mut stall_reported = 0;
        for _ in 0..3_000_000u64 {
            let before: u64 = self.cores.iter().map(|c| c.stats.chains_sent).sum();
            self.tick(u64::MAX);
            let after: u64 = self.cores.iter().map(|c| c.stats.chains_sent).sum();
            if after > before {
                for core in 0..self.cfg.cores {
                    if let Some(ids) = &self.active_chain[core] {
                        if seen < n {
                            println!("--- chain from core {core} at cycle {} ---", self.now);
                            for &id in ids.iter() {
                                if let Some(e) = self.cores[core].entry(id) {
                                    println!(
                                        "  id={} kind={:?} dst={:?} imm={:#x}",
                                        e.id, e.uop.kind, e.uop.dst, e.uop.imm
                                    );
                                }
                            }
                        }
                    }
                }
                seen += 1;
                if seen >= n {
                    break;
                }
            }
            // report first few stalls
            if stall_reported < 3 {
                for core in 0..self.cfg.cores {
                    if let Some(src) = self.cores[core].full_window_stall() {
                        stall_reported += 1;
                        println!(
                            "=== stall core {core} cycle {} source id {src} dep_ctr={} ===",
                            self.now,
                            self.dep_counters[core].value()
                        );
                        let rob: Vec<_> = self.cores[core].rob_iter().take(14).collect();
                        for e in rob {
                            println!(
                                "  id={} {:?} state={:?} remote={} waiters={:?} srcs=[{:?},{:?}]",
                                e.id,
                                e.uop.kind,
                                e.state,
                                e.remote,
                                e.waiters,
                                e.srcs[0].producer,
                                e.srcs[1].producer
                            );
                        }
                        break;
                    }
                }
            }
        }
        println!("chains seen: {seen}");
    }

    // ==================================================================
    // Prefetch
    // ==================================================================

    fn drain_prefetchers(&mut self) {
        if self.cfg.prefetcher == emc_types::PrefetcherKind::None {
            return;
        }
        for core in 0..self.cfg.cores {
            let candidates = self.prefetchers[core].take_requests();
            for line in candidates {
                let pline = line; // trained on physical lines
                if self.outstanding.contains_key(&pline) {
                    continue;
                }
                let slice = self.slice_of(pline);
                if self.llc[slice].probe(pline).is_some() {
                    continue;
                }
                self.stats.prefetch.issued += 1;
                let id = self.new_req_id();
                let req = MemReq::prefetch(id, pline, core, self.now);
                self.outstanding.insert(
                    pline,
                    Outstanding {
                        waiters: Vec::new(),
                        emc_waiters: Vec::new(),
                    },
                );
                let mc = self.mc_of_line(pline);
                let arrive = self.ring.send(
                    RingKind::Control,
                    self.topo.core_stop(core),
                    self.topo.mc_stop(mc),
                    self.now,
                    false,
                    &mut self.stats.ring,
                );
                self.schedule(arrive, Ev::McArrive { mc, req });
            }
        }
    }
}

impl EmcReqMeta {
    fn mc_home(&self, req: &MemReq) -> CoreId {
        match req.requester {
            Requester::Emc { home_core, .. } => home_core,
            _ => unreachable!("EMC meta on non-EMC request"),
        }
    }
}

fn merge_emc(into: &mut emc_types::EmcStats, from: &emc_types::EmcStats) {
    into.chains_executed += from.chains_executed;
    into.uops_executed += from.uops_executed;
    into.loads_executed += from.loads_executed;
    into.stores_executed += from.stores_executed;
    into.dcache_accesses += from.dcache_accesses;
    into.dcache_hits += from.dcache_hits;
    into.direct_to_dram += from.direct_to_dram;
    into.llc_lookups += from.llc_lookups;
    into.llc_misses_generated += from.llc_misses_generated;
    into.tlb_hits += from.tlb_hits;
    into.tlb_misses += from.tlb_misses;
    into.chains_rejected_busy += from.chains_rejected_busy;
    into.branch_mispredicts_detected += from.branch_mispredicts_detected;
    into.requests_covered_by_prefetch += from.requests_covered_by_prefetch;
    into.chain_latency.merge(&from.chain_latency);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_stays_quiet_while_retirement_advances() {
        let mut w = Watchdog::new(0, 0, WATCHDOG_INTERVAL, WEDGE_THRESHOLD);
        let mut retired = 0;
        for now in (WATCHDOG_INTERVAL..10 * WEDGE_THRESHOLD).step_by(WATCHDOG_INTERVAL as usize) {
            retired += 1;
            assert_eq!(w.check(now, retired), None);
        }
    }

    #[test]
    fn watchdog_fires_after_threshold_of_zero_retirement() {
        let mut w = Watchdog::new(0, 42, WATCHDOG_INTERVAL, WEDGE_THRESHOLD);
        let mut fired = None;
        let mut now = 0;
        while fired.is_none() {
            now += WATCHDOG_INTERVAL;
            fired = w.check(now, 42);
            assert!(
                now <= WEDGE_THRESHOLD + WATCHDOG_INTERVAL,
                "watchdog never fired"
            );
        }
        assert!(fired.unwrap() >= WEDGE_THRESHOLD);
    }

    #[test]
    fn watchdog_resets_on_any_progress() {
        let mut w = Watchdog::new(0, 0, WATCHDOG_INTERVAL, WEDGE_THRESHOLD);
        // Stall almost to the threshold, then retire one uop.
        let mut now = 0;
        while now + WATCHDOG_INTERVAL < WEDGE_THRESHOLD {
            now += WATCHDOG_INTERVAL;
            assert_eq!(w.check(now, 0), None);
        }
        now += WATCHDOG_INTERVAL;
        assert_eq!(
            w.check(now, 1),
            None,
            "progress must reset the stall window"
        );
        now += WATCHDOG_INTERVAL;
        assert_eq!(w.check(now, 1), None, "fresh window has not expired yet");
    }

    #[test]
    fn watchdog_checks_are_interval_gated() {
        let mut w = Watchdog::new(0, 0, WATCHDOG_INTERVAL, WEDGE_THRESHOLD);
        // Off-interval calls never fire, no matter how stalled.
        for now in 1..WATCHDOG_INTERVAL {
            assert_eq!(w.check(now, 0), None);
        }
    }

    #[test]
    fn build_error_messages_name_the_problem() {
        let e = BuildError::WorkloadMismatch {
            workloads: 3,
            cores: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains('4'), "{msg}");
        let e = BuildError::InvalidConfig("faults.ring_delay_prob must be in [0, 1]".into());
        assert!(e.to_string().contains("ring_delay_prob"));
    }
}
