//! Scheduled-event plumbing for the system simulator.

use emc_core::ChainResult;
use emc_cpu::RobId;
use emc_types::{Addr, CoreId, Cycle, LineAddr, MemReq};

/// A scheduled simulator event.
#[derive(Debug)]
pub enum Ev {
    /// An L1 hit completes at the core.
    L1Done {
        /// Core.
        core: CoreId,
        /// Load's ROB id.
        rob: RobId,
    },
    /// A core demand request arrives at its home LLC slice.
    LlcReq {
        /// Requesting core.
        core: CoreId,
        /// Load's ROB id.
        rob: RobId,
        /// Physical line.
        pline: LineAddr,
        /// Virtual byte address.
        vaddr: Addr,
        /// Load PC.
        pc: u64,
        /// Cycle the request left the core (for latency attribution).
        created: Cycle,
        /// Ring cycles spent so far.
        ring_cycles: Cycle,
    },
    /// LLC-hit data arrives back at the requesting core.
    LlcDone {
        /// Core.
        core: CoreId,
        /// Load's ROB id.
        rob: RobId,
        /// Physical line (fills L1).
        pline: LineAddr,
    },
    /// A memory request arrives at a memory controller.
    McArrive {
        /// Target MC index.
        mc: usize,
        /// The request.
        req: MemReq,
    },
    /// DRAM fill data arrives at the home LLC slice: install + forward.
    FillAtLlc {
        /// The completed request.
        req: MemReq,
        /// Ring cycles spent so far.
        ring_cycles: Cycle,
        /// Cache-access cycles spent so far.
        cache_cycles: Cycle,
    },
    /// Data delivered to the requesting core: complete waiters.
    CoreDeliver {
        /// Core.
        core: CoreId,
        /// The completed request.
        req: MemReq,
        /// Ring component of the total latency.
        ring_cycles: Cycle,
        /// Cache component of the total latency.
        cache_cycles: Cycle,
    },
    /// An EMC load (route = LLC) arrives at the home LLC slice.
    EmcLlcReq {
        /// Issuing EMC.
        mc: usize,
        /// Context tag (staleness guard).
        tag: u64,
        /// Context index.
        ctx: usize,
        /// Uop index within the chain.
        uop: usize,
        /// Home core.
        core: CoreId,
        /// Physical line.
        pline: LineAddr,
        /// Virtual address.
        vaddr: Addr,
        /// PC.
        pc: u64,
        /// Issue cycle (latency attribution).
        created: Cycle,
        /// Ring cycles spent so far.
        ring_cycles: Cycle,
    },
    /// Data for an EMC load is available at its EMC.
    EmcLoadDone {
        /// EMC index.
        mc: usize,
        /// Context tag (staleness guard).
        tag: u64,
        /// Context index.
        ctx: usize,
        /// Uop index.
        uop: usize,
        /// Loaded value.
        value: u64,
    },
    /// Chain live-outs arrive back at the home core.
    ChainResults {
        /// Home core.
        core: CoreId,
        /// Per-uop results.
        results: Box<[ChainResult]>,
    },
    /// Chain abort notification arrives at the home core.
    ChainAbortAtCore {
        /// Home core.
        core: CoreId,
        /// ROB ids to return to local execution.
        rob_ids: Box<[RobId]>,
    },
}

/// Heap wrapper ordered by (cycle, sequence).
#[derive(Debug)]
pub struct Scheduled {
    /// Fire cycle.
    pub at: Cycle,
    /// Tie-break sequence (FIFO among same-cycle events).
    pub seq: u64,
    /// Payload.
    pub ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap: earliest first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(core: usize) -> Ev {
        Ev::L1Done { core, rob: 0 }
    }

    #[test]
    fn heap_pops_earliest_cycle_first() {
        let mut h = BinaryHeap::new();
        h.push(Scheduled {
            at: 30,
            seq: 0,
            ev: ev(0),
        });
        h.push(Scheduled {
            at: 10,
            seq: 1,
            ev: ev(1),
        });
        h.push(Scheduled {
            at: 20,
            seq: 2,
            ev: ev(2),
        });
        let order: Vec<u64> = std::iter::from_fn(|| h.pop().map(|s| s.at)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn same_cycle_events_pop_fifo() {
        let mut h = BinaryHeap::new();
        for seq in [5u64, 1, 3] {
            h.push(Scheduled {
                at: 7,
                seq,
                ev: ev(seq as usize),
            });
        }
        let order: Vec<u64> = std::iter::from_fn(|| h.pop().map(|s| s.seq)).collect();
        assert_eq!(order, vec![1, 3, 5], "ties break by insertion sequence");
    }
}
