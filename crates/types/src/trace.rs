//! Miss-journey tracing: per-request stage records and a Chrome
//! trace-event exporter.
//!
//! A [`TraceSink`] collects three kinds of evidence while the simulator
//! runs, all stamped in core-clock cycles:
//!
//! - [`MissJourney`] records — one per delivered demand miss, carrying
//!   the cycle it crossed every subsystem boundary (ROB → ring → LLC →
//!   MC queue → DRAM → fill return) so per-stage deltas can be computed
//!   exactly;
//! - span events on component tracks (core ROB stalls, DRAM bank
//!   service windows, EMC context occupancy, chain ships);
//! - counter events (queue depths, outstanding misses) sampled by the
//!   time-series sampler.
//!
//! The sink is **disabled by default** and every recording method
//! early-returns on a single branch in that state, so an untraced run
//! pays nothing beyond one predictable-not-taken branch per call site.
//!
//! [`TraceSink::write_chrome_trace`] renders everything in Chrome
//! trace-event JSON (the `traceEvents` array format), loadable directly
//! in Perfetto or `chrome://tracing`. One thread track is emitted per
//! core, LLC slice, memory controller, DRAM bank and EMC context;
//! journeys appear as nestable async slices on their home core's track.
//! Timestamps map 1 cycle → 1 µs (the formats have no unitless time).

use crate::req::ReqId;
use crate::{CoreId, Cycle};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{self, Write};

/// Default cap on buffered trace events before the sink starts
/// dropping (and counting) new ones: bounds memory on long runs.
pub const DEFAULT_TRACE_CAP: usize = 2_000_000;

/// A component timeline in the exported trace (one Perfetto track each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceTrack {
    /// A core pipeline (ROB stalls, chain ships, miss journeys).
    Core(CoreId),
    /// An LLC slice.
    LlcSlice(usize),
    /// A memory controller (queue-depth counters).
    Mc(usize),
    /// One DRAM bank behind a memory controller.
    Bank {
        /// Owning memory controller.
        mc: usize,
        /// DDR3 channel index (global).
        channel: usize,
        /// Bank index within the channel.
        bank: usize,
    },
    /// An EMC issue context.
    EmcCtx {
        /// Which memory controller's EMC.
        mc: usize,
        /// Context slot index.
        ctx: usize,
    },
    /// The ring interconnect (link-utilization counters).
    Ring,
}

impl TraceTrack {
    /// Human-readable track label shown in the trace viewer.
    pub fn label(&self) -> String {
        match self {
            TraceTrack::Core(c) => format!("core {c}"),
            TraceTrack::LlcSlice(s) => format!("llc slice {s}"),
            TraceTrack::Mc(m) => format!("mc {m}"),
            TraceTrack::Bank { mc, channel, bank } => {
                format!("mc {mc} ch {channel} bank {bank}")
            }
            TraceTrack::EmcCtx { mc, ctx } => format!("emc {mc} ctx {ctx}"),
            TraceTrack::Ring => "ring".to_string(),
        }
    }

    /// Stable ordering key so exported traces list tracks in a fixed,
    /// readable order regardless of first-use order.
    fn sort_key(&self) -> (u8, usize, usize, usize) {
        match *self {
            TraceTrack::Core(c) => (0, c, 0, 0),
            TraceTrack::LlcSlice(s) => (1, s, 0, 0),
            TraceTrack::Mc(m) => (2, m, 0, 0),
            TraceTrack::Bank { mc, channel, bank } => (3, mc, channel, bank),
            TraceTrack::EmcCtx { mc, ctx } => (4, mc, ctx, 0),
            TraceTrack::Ring => (5, 0, 0, 0),
        }
    }
}

/// One buffered trace event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A complete span (`ph: "X"`): a named interval on one track.
    Span {
        /// Track it belongs to.
        track: TraceTrack,
        /// Span name.
        name: &'static str,
        /// Start cycle.
        start: Cycle,
        /// Duration in cycles (0-length spans are given 1 so viewers
        /// render them).
        dur: Cycle,
        /// Extra key/value detail shown in the viewer's args pane.
        args: Vec<(&'static str, u64)>,
    },
    /// A nestable async begin (`ph: "b"`), paired by `id`.
    AsyncBegin {
        /// Track it belongs to.
        track: TraceTrack,
        /// Slice name.
        name: &'static str,
        /// Pairing id (unique per journey).
        id: u64,
        /// Begin cycle.
        ts: Cycle,
        /// Extra key/value detail.
        args: Vec<(&'static str, u64)>,
    },
    /// A nestable async end (`ph: "e"`), paired by `id`.
    AsyncEnd {
        /// Track it belongs to.
        track: TraceTrack,
        /// Slice name (must match the begin).
        name: &'static str,
        /// Pairing id.
        id: u64,
        /// End cycle.
        ts: Cycle,
    },
    /// A counter sample (`ph: "C"`): viewers draw these as area charts.
    Counter {
        /// Track it belongs to.
        track: TraceTrack,
        /// Counter name.
        name: &'static str,
        /// Sample cycle.
        ts: Cycle,
        /// Counter value.
        value: u64,
    },
}

/// The full per-request record of one demand miss: the cycle it crossed
/// each subsystem boundary, assembled at delivery time from the
/// request's [`ReqTimeline`](crate::ReqTimeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissJourney {
    /// The memory request this journey describes.
    pub req: ReqId,
    /// Core the miss belongs to (home core for EMC-issued requests).
    pub core: CoreId,
    /// Whether the EMC issued the request (the paper's fast path).
    pub emc: bool,
    /// Physical line address.
    pub line: u64,
    /// Cycle the request was created.
    pub created: Cycle,
    /// Arrival at the LLC slice (None when the EMC bypassed the LLC).
    pub llc_arrive: Option<Cycle>,
    /// Entry into the memory-controller queue.
    pub mc_enqueue: Option<Cycle>,
    /// First DRAM command issue.
    pub dram_issue: Option<Cycle>,
    /// Data return from DRAM.
    pub dram_done: Option<Cycle>,
    /// Cycle the data became consumable by the requester.
    pub delivered: Cycle,
    /// Whether the DRAM access hit the open row (None if it never
    /// touched DRAM).
    pub row_hit: Option<bool>,
}

impl MissJourney {
    /// The journey broken into consecutive `(stage, start, end)`
    /// intervals. Stages whose boundary stamp is missing (e.g. the LLC
    /// for a direct-to-DRAM EMC request) are skipped; the next present
    /// stage then covers the elapsed interval.
    pub fn stages(&self) -> Vec<(&'static str, Cycle, Cycle)> {
        let mut out = Vec::with_capacity(5);
        let mut prev = self.created;
        let stamps = [
            ("to-llc", self.llc_arrive),
            ("to-mc", self.mc_enqueue),
            ("mc-queue", self.dram_issue),
            ("dram", self.dram_done),
            ("fill", Some(self.delivered)),
        ];
        for (name, stamp) in stamps {
            if let Some(t) = stamp {
                if t >= prev {
                    out.push((name, prev, t));
                    prev = t;
                }
            }
        }
        out
    }

    /// Total creation-to-delivery latency in cycles.
    pub fn total(&self) -> Cycle {
        self.delivered.saturating_sub(self.created)
    }
}

/// Collector for trace events and miss journeys.
///
/// Construct with [`TraceSink::disabled`] (the default, free) or
/// [`TraceSink::enabled`]; check [`TraceSink::is_enabled`] before doing
/// any work to build event arguments.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSink {
    enabled: bool,
    cap: usize,
    events: Vec<TraceEvent>,
    journeys: Vec<MissJourney>,
    dropped: u64,
}

impl TraceSink {
    /// A sink that records nothing (every call is a single branch).
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// An enabled sink with the default event cap.
    pub fn enabled() -> Self {
        Self::enabled_with_cap(DEFAULT_TRACE_CAP)
    }

    /// An enabled sink that buffers at most `cap` events (and journey
    /// records); beyond that it counts drops instead of growing.
    pub fn enabled_with_cap(cap: usize) -> Self {
        TraceSink {
            enabled: true,
            cap,
            events: Vec::new(),
            journeys: Vec::new(),
            dropped: 0,
        }
    }

    /// Whether the sink records anything. Call sites guard argument
    /// construction on this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Record a complete span on a track.
    #[inline]
    pub fn span(
        &mut self,
        track: TraceTrack,
        name: &'static str,
        start: Cycle,
        end: Cycle,
        args: Vec<(&'static str, u64)>,
    ) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent::Span {
            track,
            name,
            start,
            dur: end.saturating_sub(start),
            args,
        });
    }

    /// Record a counter sample on a track.
    #[inline]
    pub fn counter(&mut self, track: TraceTrack, name: &'static str, ts: Cycle, value: u64) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent::Counter {
            track,
            name,
            ts,
            value,
        });
    }

    /// Record a finished miss journey: stores the record and emits one
    /// nestable async slice for the whole miss plus one child slice per
    /// stage, all on the home core's track.
    pub fn journey(&mut self, j: MissJourney) {
        if !self.enabled {
            return;
        }
        let track = TraceTrack::Core(j.core);
        let name = if j.emc { "emc-miss" } else { "miss" };
        let id = j.req.0;
        self.push(TraceEvent::AsyncBegin {
            track,
            name,
            id,
            ts: j.created,
            args: vec![
                ("req", j.req.0),
                ("line", j.line),
                ("total_cycles", j.total()),
                ("row_hit", j.row_hit.map(u64::from).unwrap_or(0)),
            ],
        });
        for (stage, start, end) in j.stages() {
            self.push(TraceEvent::AsyncBegin {
                track,
                name: stage,
                id,
                ts: start,
                args: vec![("cycles", end.saturating_sub(start))],
            });
            self.push(TraceEvent::AsyncEnd {
                track,
                name: stage,
                id,
                ts: end,
            });
        }
        self.push(TraceEvent::AsyncEnd {
            track,
            name,
            id,
            ts: j.delivered,
        });
        if self.journeys.len() < self.cap {
            self.journeys.push(j);
        } else {
            self.dropped += 1;
        }
    }

    /// The collected journey records.
    pub fn journeys(&self) -> &[MissJourney] {
        &self.journeys
    }

    /// The buffered trace events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events/journeys discarded after the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Write the buffered events as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` form), loadable in Perfetto. Emits
    /// process/thread metadata so every [`TraceTrack`] appears under
    /// its human-readable label.
    pub fn write_chrome_trace<W: Write>(&self, mut w: W) -> io::Result<()> {
        // Assign stable tids by sorted track order.
        let mut tracks: Vec<TraceTrack> = Vec::new();
        let mut seen: HashMap<TraceTrack, usize> = HashMap::new();
        for ev in &self.events {
            let track = match ev {
                TraceEvent::Span { track, .. }
                | TraceEvent::AsyncBegin { track, .. }
                | TraceEvent::AsyncEnd { track, .. }
                | TraceEvent::Counter { track, .. } => *track,
            };
            if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(track) {
                e.insert(0);
                tracks.push(track);
            }
        }
        tracks.sort_by_key(|t| t.sort_key());
        for (tid, t) in tracks.iter().enumerate() {
            seen.insert(*t, tid);
        }
        writeln!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        write!(
            w,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":\"emcsim\"}}}}"
        )?;
        for (tid, t) in tracks.iter().enumerate() {
            write!(
                w,
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                crate::json::JsonValue::Str(t.label()).to_json()
            )?;
        }
        for ev in &self.events {
            writeln!(w, ",")?;
            match ev {
                TraceEvent::Span {
                    track,
                    name,
                    start,
                    dur,
                    args,
                } => {
                    let tid = seen[track];
                    write!(
                        w,
                        "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\
                         \"ts\":{start},\"dur\":{}",
                        (*dur).max(1)
                    )?;
                    write_args(&mut w, args)?;
                    write!(w, "}}")?;
                }
                TraceEvent::AsyncBegin {
                    track,
                    name,
                    id,
                    ts,
                    args,
                } => {
                    let tid = seen[track];
                    write!(
                        w,
                        "{{\"name\":\"{name}\",\"cat\":\"journey\",\"ph\":\"b\",\
                         \"id\":{id},\"pid\":0,\"tid\":{tid},\"ts\":{ts}"
                    )?;
                    write_args(&mut w, args)?;
                    write!(w, "}}")?;
                }
                TraceEvent::AsyncEnd {
                    track,
                    name,
                    id,
                    ts,
                } => {
                    let tid = seen[track];
                    write!(
                        w,
                        "{{\"name\":\"{name}\",\"cat\":\"journey\",\"ph\":\"e\",\
                         \"id\":{id},\"pid\":0,\"tid\":{tid},\"ts\":{ts}}}"
                    )?;
                }
                TraceEvent::Counter {
                    track,
                    name,
                    ts,
                    value,
                } => {
                    let tid = seen[track];
                    write!(
                        w,
                        "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":0,\"tid\":{tid},\
                         \"ts\":{ts},\"args\":{{\"{name}\":{value}}}}}"
                    )?;
                }
            }
        }
        writeln!(w, "\n]}}")?;
        Ok(())
    }
}

fn write_args<W: Write>(w: &mut W, args: &[(&'static str, u64)]) -> io::Result<()> {
    if args.is_empty() {
        return Ok(());
    }
    write!(w, ",\"args\":{{")?;
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            write!(w, ",")?;
        }
        write!(w, "\"{k}\":{v}")?;
    }
    write!(w, "}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn sample_journey() -> MissJourney {
        MissJourney {
            req: ReqId(7),
            core: 1,
            emc: false,
            line: 0xabc,
            created: 100,
            llc_arrive: Some(110),
            mc_enqueue: Some(130),
            dram_issue: Some(150),
            dram_done: Some(200),
            delivered: 230,
            row_hit: Some(true),
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut s = TraceSink::disabled();
        assert!(!s.is_enabled());
        s.span(TraceTrack::Ring, "x", 0, 10, vec![]);
        s.counter(TraceTrack::Mc(0), "depth", 5, 3);
        s.journey(sample_journey());
        assert!(s.events().is_empty());
        assert!(s.journeys().is_empty());
    }

    #[test]
    fn journey_stages_tile_the_interval() {
        let j = sample_journey();
        let stages = j.stages();
        assert_eq!(stages.len(), 5);
        assert_eq!(stages[0], ("to-llc", 100, 110));
        assert_eq!(stages[4], ("fill", 200, 230));
        // Consecutive and covering created..delivered.
        for w in stages.windows(2) {
            assert_eq!(w[0].2, w[1].1);
        }
        assert_eq!(stages.first().unwrap().1, j.created);
        assert_eq!(stages.last().unwrap().2, j.delivered);
        let sum: Cycle = stages.iter().map(|(_, s, e)| e - s).sum();
        assert_eq!(sum, j.total());
    }

    #[test]
    fn skipped_stamps_collapse_stages() {
        let j = MissJourney {
            llc_arrive: None, // direct-to-DRAM
            ..sample_journey()
        };
        let stages = j.stages();
        assert_eq!(stages.len(), 4);
        assert_eq!(stages[0], ("to-mc", 100, 130));
    }

    #[test]
    fn cap_counts_drops_instead_of_growing() {
        let mut s = TraceSink::enabled_with_cap(2);
        for i in 0..5 {
            s.span(TraceTrack::Ring, "x", i, i + 1, vec![]);
        }
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.dropped(), 3);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_named_tracks() {
        let mut s = TraceSink::enabled();
        s.span(
            TraceTrack::Bank {
                mc: 0,
                channel: 1,
                bank: 3,
            },
            "dram",
            50,
            90,
            vec![("row_hit", 1)],
        );
        s.counter(TraceTrack::Mc(0), "queue_depth", 60, 12);
        s.journey(sample_journey());
        let mut buf = Vec::new();
        s.write_chrome_trace(&mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let doc = JsonValue::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        // Metadata names every track.
        let labels: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert!(labels.contains(&"core 1"), "labels: {labels:?}");
        assert!(labels.contains(&"mc 0 ch 1 bank 3"));
        // Phases present: span, counter, async begin/end.
        for ph in ["X", "C", "b", "e"] {
            assert!(
                events
                    .iter()
                    .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph)),
                "missing ph {ph}"
            );
        }
    }

    #[test]
    fn track_labels_are_distinct_and_ordered() {
        let tracks = [
            TraceTrack::Core(0),
            TraceTrack::LlcSlice(0),
            TraceTrack::Mc(1),
            TraceTrack::Bank {
                mc: 0,
                channel: 0,
                bank: 0,
            },
            TraceTrack::EmcCtx { mc: 0, ctx: 2 },
            TraceTrack::Ring,
        ];
        let labels: std::collections::HashSet<String> = tracks.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), tracks.len());
        let mut sorted = tracks.to_vec();
        sorted.sort_by_key(|t| t.sort_key());
        assert_eq!(sorted[0], TraceTrack::Core(0));
        assert_eq!(*sorted.last().unwrap(), TraceTrack::Ring);
    }
}
