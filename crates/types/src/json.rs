//! A minimal, dependency-free JSON document model.
//!
//! The metrics and run-summary exporters build [`JsonValue`] trees and
//! render them with [`JsonValue::to_json`]; the schema smoke tests (and
//! CI) re-parse the emitted files with [`JsonValue::parse`] to prove the
//! output is well-formed and contains the required keys. Keeping both
//! directions in-tree means the exporters are exercised end-to-end by
//! `cargo test` with no external JSON crate on the runtime path.
//!
//! Objects preserve insertion order so emitted reports are stable and
//! diffable across runs.

use std::fmt::Write as _;

/// A JSON value: the full document model, no external dependencies.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as f64; u64 counters above 2^53 lose
    /// precision, which is acceptable for reporting).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (insertion-ordered key/value pairs).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build an array of numbers from an iterator of `u64`.
    pub fn nums<I: IntoIterator<Item = u64>>(it: I) -> JsonValue {
        JsonValue::Arr(it.into_iter().map(JsonValue::from).collect())
    }

    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element access; `None` out of range or for non-arrays.
    pub fn idx(&self, i: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Render as indented (2-space) JSON text.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.is_finite() {
                    // Rust's shortest round-trip float formatting is
                    // valid JSON for all finite values.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns a message naming the byte offset
    /// of the first error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Conversion into a [`JsonValue`] tree, for arbitrary report shapes.
///
/// Implemented for the primitives, strings, `Option`, `Vec`, arrays,
/// and tuples up to arity 9, so figure harnesses can hand their row
/// tuples straight to a JSON sidecar writer. Tuples encode as arrays.
pub trait ToJson {
    /// Build the JSON tree for this value.
    fn to_json_value(&self) -> JsonValue;
}

impl ToJson for JsonValue {
    fn to_json_value(&self) -> JsonValue {
        self.clone()
    }
}

macro_rules! to_json_via_from {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::from(self.clone())
            }
        }
    )*};
}

to_json_via_from!(u64, usize, f64, bool, String);

impl ToJson for u32 {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Num(f64::from(*self))
    }
}

impl ToJson for &str {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str((*self).to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json_value(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json_value(),
            None => JsonValue::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(ToJson::to_json_value).collect())
    }
}

macro_rules! to_json_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::Arr(vec![$(self.$idx.to_json_value()),+])
            }
        }
    };
}

to_json_tuple!(A: 0, B: 1);
to_json_tuple!(A: 0, B: 1, C: 2);
to_json_tuple!(A: 0, B: 1, C: 2, D: 3);
to_json_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
to_json_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
to_json_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
to_json_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
to_json_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);

/// Escape and quote a string per RFC 8259.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("truncated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates (emitted only for exotic input)
                            // decode to the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("unknown escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = JsonValue::obj(vec![
            ("name", "emc\"sim".into()),
            ("n", 42u64.into()),
            ("pi", 3.25.into()),
            ("neg", (-7.0).into()),
            ("flag", true.into()),
            ("none", JsonValue::Null),
            ("arr", JsonValue::nums([0, 1, u32::MAX as u64])),
            (
                "nested",
                JsonValue::obj(vec![("tab\there", JsonValue::Arr(vec![]))]),
            ),
        ]);
        let text = doc.to_json();
        let back = JsonValue::parse(&text).expect("parse back");
        assert_eq!(back, doc);
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let doc = JsonValue::parse(r#"{"a": {"b": [1, 2, 3]}, "s": "x"}"#).unwrap();
        let b = doc.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(b.idx(2).and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(doc.get("s").and_then(|v| v.as_str()), Some("x"));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(b.as_arr().map(|a| a.len()), Some(3));
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let doc = JsonValue::parse(" { \"k\\n\" : \"a\\u0041\\\\\" , \"e\":[] } ").unwrap();
        assert_eq!(doc.get("k\n").and_then(|v| v.as_str()), Some("aA\\"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn control_characters_are_escaped() {
        let v = JsonValue::Str("a\u{1}b".into());
        assert_eq!(v.to_json(), "\"a\\u0001b\"");
        assert_eq!(JsonValue::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn to_json_covers_tuples_vecs_arrays_and_options() {
        let rows = vec![("mcf", 1.5f64, [2u64, 3]), ("lbm", 0.25, [0, 9])];
        let v = rows.to_json_value();
        assert_eq!(v.to_json(), r#"[["mcf",1.5,[2,3]],["lbm",0.25,[0,9]]]"#);

        let nested: (String, Vec<(String, f64)>) = ("H1".into(), vec![("GHB".into(), 1.125)]);
        assert_eq!(
            nested.to_json_value().to_json(),
            r#"["H1",[["GHB",1.125]]]"#
        );

        assert_eq!(Some(3.5f64).to_json_value(), JsonValue::Num(3.5));
        assert_eq!(None::<f64>.to_json_value(), JsonValue::Null);
        assert_eq!(
            <&bool as ToJson>::to_json_value(&&true),
            JsonValue::Bool(true)
        );
        let nine = ("a", 1f64, 2f64, 3u64, 4u64, 5u64, 6u64, 7u64, 8u64);
        assert_eq!(nine.to_json_value().to_json(), r#"["a",1,2,3,4,5,6,7,8]"#);
    }

    #[test]
    fn pretty_output_is_indented_and_reparses_equal() {
        let doc = JsonValue::obj(vec![
            ("a", JsonValue::nums([1, 2])),
            ("b", JsonValue::obj(vec![("c", JsonValue::Null)])),
            ("empty_arr", JsonValue::Arr(vec![])),
            ("empty_obj", JsonValue::Obj(vec![])),
        ]);
        let pretty = doc.to_json_pretty();
        assert!(
            pretty.contains("\n  \"a\": [\n    1,\n    2\n  ]"),
            "{pretty}"
        );
        assert!(
            pretty.contains("\"empty_arr\": []"),
            "empties stay inline: {pretty}"
        );
        assert_eq!(JsonValue::parse(&pretty).unwrap(), doc);
    }
}
