//! Canonical, lossless JSON codec for configs and statistics.
//!
//! This is the single hand-rolled encoding used everywhere a config or
//! a statistics block crosses a process boundary: the campaign result
//! cache, the `emcsim` metrics exporters, and the round-trip tests in
//! [`config`](crate::config) and [`stats`](crate::stats). It has no
//! external JSON dependency — documents are [`JsonValue`] trees from
//! [`json`](crate::json) — so it works identically in every build
//! environment.
//!
//! Two invariants make the encoding canonical:
//!
//! - **Exact numbers.** Floats use Rust's shortest round-trip
//!   formatting; `u64` counters above 2^53 are carried as strings (see
//!   [`u`]) so nothing is flattened onto the JSON double grid.
//! - **Exhaustive fields.** Every encoder destructures its struct
//!   without a `..` rest pattern, so adding a field to any config or
//!   stats struct without extending the codec is a compile error, not a
//!   silently lossy cache. This is what lets the campaign engine derive
//!   its content-addressed job keys from [`config_to_json`]: a new
//!   field (such as [`LivenessConfig`]) cannot ship without entering
//!   the cache key.
//!
//! Decoders are tolerant in exactly one dimension: a missing optional
//! key decodes as its default where the struct's serde annotation says
//! `#[serde(default)]`, so documents written before a field existed
//! still load.

use crate::config::{
    CacheConfig, CoreConfig, DramConfig, EmcConfig, FaultPlan, LivenessConfig, PrefetchConfig,
    PrefetcherKind, RingConfig, SystemConfig,
};
use crate::hist::Histogram;
use crate::json::JsonValue;
use crate::stats::{CoreStats, EmcStats, MemStats, PrefetchStats, RingStats, Stats};

/// Encode a `u64` exactly: numbers up to 2^53 fit JSON's double grid;
/// larger values (saturated histogram sums) are carried as strings so
/// the codec round-trips bit-exactly.
pub fn u(v: u64) -> JsonValue {
    if v <= (1u64 << 53) {
        JsonValue::Num(v as f64)
    } else {
        JsonValue::Str(v.to_string())
    }
}

fn b(v: bool) -> JsonValue {
    JsonValue::Bool(v)
}

fn f(v: f64) -> JsonValue {
    JsonValue::Num(v)
}

// ---------------------------------------------------------------------
// Decode helpers
// ---------------------------------------------------------------------

/// Fetch a required key from a JSON object.
///
/// # Errors
///
/// Returns a message naming the missing key.
pub fn get<'a>(obj: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    obj.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

/// Decode a value produced by [`u`] back to a `u64`.
///
/// # Errors
///
/// Returns a message naming `key` when the value is neither an exact
/// non-negative integer on the double grid nor a parseable string.
pub fn dec_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    match v {
        JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
            Ok(*n as u64)
        }
        JsonValue::Str(s) => s
            .parse()
            .map_err(|_| format!("{key}: bad u64 string {s:?}")),
        other => Err(format!("{key}: expected u64, got {other:?}")),
    }
}

/// Fetch and decode a required `u64` field.
///
/// # Errors
///
/// Propagates [`get`] / [`dec_u64`] failures.
pub fn get_u64(obj: &JsonValue, key: &str) -> Result<u64, String> {
    dec_u64(get(obj, key)?, key)
}

fn get_usize(obj: &JsonValue, key: &str) -> Result<usize, String> {
    usize::try_from(get_u64(obj, key)?).map_err(|_| format!("{key}: value exceeds usize"))
}

fn get_u8(obj: &JsonValue, key: &str) -> Result<u8, String> {
    u8::try_from(get_u64(obj, key)?).map_err(|_| format!("{key}: value exceeds u8"))
}

fn get_u32(obj: &JsonValue, key: &str) -> Result<u32, String> {
    u32::try_from(get_u64(obj, key)?).map_err(|_| format!("{key}: value exceeds u32"))
}

/// Fetch and decode a required `f64` field.
///
/// # Errors
///
/// Returns a message naming the key when missing or non-numeric.
pub fn get_f64(obj: &JsonValue, key: &str) -> Result<f64, String> {
    get(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("{key}: expected number"))
}

/// Fetch and decode a required `bool` field.
///
/// # Errors
///
/// Returns a message naming the key when missing or non-boolean.
pub fn get_bool(obj: &JsonValue, key: &str) -> Result<bool, String> {
    match get(obj, key)? {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(format!("{key}: expected bool")),
    }
}

/// Fetch a required string field.
///
/// # Errors
///
/// Returns a message naming the key when missing or non-string.
pub fn get_str<'a>(obj: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    get(obj, key)?
        .as_str()
        .ok_or_else(|| format!("{key}: expected string"))
}

/// Fetch and decode a required array of `u64`s.
///
/// # Errors
///
/// Returns a message naming the key when missing, non-array, or when
/// any element fails [`dec_u64`].
pub fn get_u64_vec(obj: &JsonValue, key: &str) -> Result<Vec<u64>, String> {
    get(obj, key)?
        .as_arr()
        .ok_or_else(|| format!("{key}: expected array"))?
        .iter()
        .map(|v| dec_u64(v, key))
        .collect()
}

/// Fetch and decode a required [`Histogram`] field.
///
/// # Errors
///
/// Returns a dotted path (`key.subfield`) naming the failure.
pub fn get_hist(obj: &JsonValue, key: &str) -> Result<Histogram, String> {
    histogram_from_json(get(obj, key)?).map_err(|e| format!("{key}.{e}"))
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// Encode a [`Histogram`] (count/sum/min/max plus the sparse-or-empty
/// bucket vector).
pub fn histogram_to_json(h: &Histogram) -> JsonValue {
    let Histogram {
        count,
        sum,
        min,
        max,
        buckets,
    } = h;
    JsonValue::obj(vec![
        ("count", u(*count)),
        ("sum", u(*sum)),
        ("min", u(*min)),
        ("max", u(*max)),
        (
            "buckets",
            JsonValue::Arr(buckets.iter().map(|&n| u(n)).collect()),
        ),
    ])
}

/// Decode a [`Histogram`].
///
/// # Errors
///
/// Returns a message naming the first bad field.
pub fn histogram_from_json(v: &JsonValue) -> Result<Histogram, String> {
    Ok(Histogram {
        count: get_u64(v, "count")?,
        sum: get_u64(v, "sum")?,
        min: get_u64(v, "min")?,
        max: get_u64(v, "max")?,
        buckets: get_u64_vec(v, "buckets")?,
    })
}

// ---------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------

fn core_stats_to_json(c: &CoreStats) -> JsonValue {
    let CoreStats {
        cycles,
        retired_uops,
        retired_loads,
        retired_stores,
        retired_branches,
        branch_mispredicts,
        l1d_accesses,
        l1d_misses,
        llc_accesses,
        llc_misses,
        dependent_llc_misses,
        dependent_misses_prefetched,
        dep_chain_uop_sum,
        dep_chain_pairs,
        full_window_stall_cycles,
        chains_sent,
        chain_uops_sent,
        chain_live_ins,
        chain_live_outs,
        chains_aborted_branch,
        chains_aborted_tlb,
        chains_cancelled_disambiguation,
        chains_aborted_injected,
        chains_aborted_lease,
        emc_quiesce_events,
        prefetch_covered_misses,
        runahead_entries,
        runahead_uops,
        runahead_requests,
        chain_length_hist,
        stall_episodes,
    } = c;
    JsonValue::obj(vec![
        ("cycles", u(*cycles)),
        ("retired_uops", u(*retired_uops)),
        ("retired_loads", u(*retired_loads)),
        ("retired_stores", u(*retired_stores)),
        ("retired_branches", u(*retired_branches)),
        ("branch_mispredicts", u(*branch_mispredicts)),
        ("l1d_accesses", u(*l1d_accesses)),
        ("l1d_misses", u(*l1d_misses)),
        ("llc_accesses", u(*llc_accesses)),
        ("llc_misses", u(*llc_misses)),
        ("dependent_llc_misses", u(*dependent_llc_misses)),
        (
            "dependent_misses_prefetched",
            u(*dependent_misses_prefetched),
        ),
        ("dep_chain_uop_sum", u(*dep_chain_uop_sum)),
        ("dep_chain_pairs", u(*dep_chain_pairs)),
        ("full_window_stall_cycles", u(*full_window_stall_cycles)),
        ("chains_sent", u(*chains_sent)),
        ("chain_uops_sent", u(*chain_uops_sent)),
        ("chain_live_ins", u(*chain_live_ins)),
        ("chain_live_outs", u(*chain_live_outs)),
        ("chains_aborted_branch", u(*chains_aborted_branch)),
        ("chains_aborted_tlb", u(*chains_aborted_tlb)),
        (
            "chains_cancelled_disambiguation",
            u(*chains_cancelled_disambiguation),
        ),
        ("chains_aborted_injected", u(*chains_aborted_injected)),
        ("chains_aborted_lease", u(*chains_aborted_lease)),
        ("emc_quiesce_events", u(*emc_quiesce_events)),
        ("prefetch_covered_misses", u(*prefetch_covered_misses)),
        ("runahead_entries", u(*runahead_entries)),
        ("runahead_uops", u(*runahead_uops)),
        ("runahead_requests", u(*runahead_requests)),
        (
            "chain_length_hist",
            JsonValue::Arr(chain_length_hist.iter().map(|&n| u(n)).collect()),
        ),
        ("stall_episodes", histogram_to_json(stall_episodes)),
    ])
}

fn core_stats_from_json(v: &JsonValue) -> Result<CoreStats, String> {
    Ok(CoreStats {
        cycles: get_u64(v, "cycles")?,
        retired_uops: get_u64(v, "retired_uops")?,
        retired_loads: get_u64(v, "retired_loads")?,
        retired_stores: get_u64(v, "retired_stores")?,
        retired_branches: get_u64(v, "retired_branches")?,
        branch_mispredicts: get_u64(v, "branch_mispredicts")?,
        l1d_accesses: get_u64(v, "l1d_accesses")?,
        l1d_misses: get_u64(v, "l1d_misses")?,
        llc_accesses: get_u64(v, "llc_accesses")?,
        llc_misses: get_u64(v, "llc_misses")?,
        dependent_llc_misses: get_u64(v, "dependent_llc_misses")?,
        dependent_misses_prefetched: get_u64(v, "dependent_misses_prefetched")?,
        dep_chain_uop_sum: get_u64(v, "dep_chain_uop_sum")?,
        dep_chain_pairs: get_u64(v, "dep_chain_pairs")?,
        full_window_stall_cycles: get_u64(v, "full_window_stall_cycles")?,
        chains_sent: get_u64(v, "chains_sent")?,
        chain_uops_sent: get_u64(v, "chain_uops_sent")?,
        chain_live_ins: get_u64(v, "chain_live_ins")?,
        chain_live_outs: get_u64(v, "chain_live_outs")?,
        chains_aborted_branch: get_u64(v, "chains_aborted_branch")?,
        chains_aborted_tlb: get_u64(v, "chains_aborted_tlb")?,
        chains_cancelled_disambiguation: get_u64(v, "chains_cancelled_disambiguation")?,
        chains_aborted_injected: get_u64(v, "chains_aborted_injected")?,
        // Written by runs that predate lease enforcement.
        chains_aborted_lease: opt_u64(v, "chains_aborted_lease")?,
        emc_quiesce_events: get_u64(v, "emc_quiesce_events")?,
        prefetch_covered_misses: get_u64(v, "prefetch_covered_misses")?,
        runahead_entries: get_u64(v, "runahead_entries")?,
        runahead_uops: get_u64(v, "runahead_uops")?,
        runahead_requests: get_u64(v, "runahead_requests")?,
        chain_length_hist: get_u64_vec(v, "chain_length_hist")?,
        stall_episodes: get_hist(v, "stall_episodes")?,
    })
}

/// Decode an optional `u64` field: absent means zero (mirrors the
/// struct's `#[serde(default)]`).
fn opt_u64(obj: &JsonValue, key: &str) -> Result<u64, String> {
    match obj.get(key) {
        Some(v) => dec_u64(v, key),
        None => Ok(0),
    }
}

fn mem_stats_to_json(m: &MemStats) -> JsonValue {
    let MemStats {
        dram_reads,
        dram_writes,
        dram_prefetches,
        row_hits,
        row_conflicts,
        row_empties,
        activates,
        precharges,
        core_miss_latency,
        emc_miss_latency,
        core_ring_component,
        core_cache_component,
        core_queue_component,
        emc_ring_component,
        emc_cache_component,
        emc_queue_component,
        dram_service_latency,
        on_chip_delay,
        ecc_reissues,
        backpressure_storms,
        escalated_requests,
    } = m;
    JsonValue::obj(vec![
        ("dram_reads", u(*dram_reads)),
        ("dram_writes", u(*dram_writes)),
        ("dram_prefetches", u(*dram_prefetches)),
        ("row_hits", u(*row_hits)),
        ("row_conflicts", u(*row_conflicts)),
        ("row_empties", u(*row_empties)),
        ("activates", u(*activates)),
        ("precharges", u(*precharges)),
        ("core_miss_latency", histogram_to_json(core_miss_latency)),
        ("emc_miss_latency", histogram_to_json(emc_miss_latency)),
        (
            "core_ring_component",
            histogram_to_json(core_ring_component),
        ),
        (
            "core_cache_component",
            histogram_to_json(core_cache_component),
        ),
        (
            "core_queue_component",
            histogram_to_json(core_queue_component),
        ),
        ("emc_ring_component", histogram_to_json(emc_ring_component)),
        (
            "emc_cache_component",
            histogram_to_json(emc_cache_component),
        ),
        (
            "emc_queue_component",
            histogram_to_json(emc_queue_component),
        ),
        (
            "dram_service_latency",
            histogram_to_json(dram_service_latency),
        ),
        ("on_chip_delay", histogram_to_json(on_chip_delay)),
        ("ecc_reissues", u(*ecc_reissues)),
        ("backpressure_storms", u(*backpressure_storms)),
        ("escalated_requests", u(*escalated_requests)),
    ])
}

fn mem_stats_from_json(v: &JsonValue) -> Result<MemStats, String> {
    Ok(MemStats {
        dram_reads: get_u64(v, "dram_reads")?,
        dram_writes: get_u64(v, "dram_writes")?,
        dram_prefetches: get_u64(v, "dram_prefetches")?,
        row_hits: get_u64(v, "row_hits")?,
        row_conflicts: get_u64(v, "row_conflicts")?,
        row_empties: get_u64(v, "row_empties")?,
        activates: get_u64(v, "activates")?,
        precharges: get_u64(v, "precharges")?,
        core_miss_latency: get_hist(v, "core_miss_latency")?,
        emc_miss_latency: get_hist(v, "emc_miss_latency")?,
        core_ring_component: get_hist(v, "core_ring_component")?,
        core_cache_component: get_hist(v, "core_cache_component")?,
        core_queue_component: get_hist(v, "core_queue_component")?,
        emc_ring_component: get_hist(v, "emc_ring_component")?,
        emc_cache_component: get_hist(v, "emc_cache_component")?,
        emc_queue_component: get_hist(v, "emc_queue_component")?,
        dram_service_latency: get_hist(v, "dram_service_latency")?,
        on_chip_delay: get_hist(v, "on_chip_delay")?,
        ecc_reissues: get_u64(v, "ecc_reissues")?,
        backpressure_storms: get_u64(v, "backpressure_storms")?,
        // Written by runs that predate anti-starvation aging.
        escalated_requests: opt_u64(v, "escalated_requests")?,
    })
}

fn ring_stats_to_json(r: &RingStats) -> JsonValue {
    let RingStats {
        control_msgs,
        data_msgs,
        emc_control_msgs,
        emc_data_msgs,
        total_hops,
        injected_delays,
    } = r;
    JsonValue::obj(vec![
        ("control_msgs", u(*control_msgs)),
        ("data_msgs", u(*data_msgs)),
        ("emc_control_msgs", u(*emc_control_msgs)),
        ("emc_data_msgs", u(*emc_data_msgs)),
        ("total_hops", u(*total_hops)),
        ("injected_delays", u(*injected_delays)),
    ])
}

fn ring_stats_from_json(v: &JsonValue) -> Result<RingStats, String> {
    Ok(RingStats {
        control_msgs: get_u64(v, "control_msgs")?,
        data_msgs: get_u64(v, "data_msgs")?,
        emc_control_msgs: get_u64(v, "emc_control_msgs")?,
        emc_data_msgs: get_u64(v, "emc_data_msgs")?,
        total_hops: get_u64(v, "total_hops")?,
        injected_delays: get_u64(v, "injected_delays")?,
    })
}

fn emc_stats_to_json(e: &EmcStats) -> JsonValue {
    let EmcStats {
        chains_executed,
        uops_executed,
        loads_executed,
        stores_executed,
        dcache_accesses,
        dcache_hits,
        direct_to_dram,
        llc_lookups,
        llc_misses_generated,
        tlb_hits,
        tlb_misses,
        chains_rejected_busy,
        branch_mispredicts_detected,
        requests_covered_by_prefetch,
        chain_latency,
    } = e;
    JsonValue::obj(vec![
        ("chains_executed", u(*chains_executed)),
        ("uops_executed", u(*uops_executed)),
        ("loads_executed", u(*loads_executed)),
        ("stores_executed", u(*stores_executed)),
        ("dcache_accesses", u(*dcache_accesses)),
        ("dcache_hits", u(*dcache_hits)),
        ("direct_to_dram", u(*direct_to_dram)),
        ("llc_lookups", u(*llc_lookups)),
        ("llc_misses_generated", u(*llc_misses_generated)),
        ("tlb_hits", u(*tlb_hits)),
        ("tlb_misses", u(*tlb_misses)),
        ("chains_rejected_busy", u(*chains_rejected_busy)),
        (
            "branch_mispredicts_detected",
            u(*branch_mispredicts_detected),
        ),
        (
            "requests_covered_by_prefetch",
            u(*requests_covered_by_prefetch),
        ),
        ("chain_latency", histogram_to_json(chain_latency)),
    ])
}

fn emc_stats_from_json(v: &JsonValue) -> Result<EmcStats, String> {
    Ok(EmcStats {
        chains_executed: get_u64(v, "chains_executed")?,
        uops_executed: get_u64(v, "uops_executed")?,
        loads_executed: get_u64(v, "loads_executed")?,
        stores_executed: get_u64(v, "stores_executed")?,
        dcache_accesses: get_u64(v, "dcache_accesses")?,
        dcache_hits: get_u64(v, "dcache_hits")?,
        direct_to_dram: get_u64(v, "direct_to_dram")?,
        llc_lookups: get_u64(v, "llc_lookups")?,
        llc_misses_generated: get_u64(v, "llc_misses_generated")?,
        tlb_hits: get_u64(v, "tlb_hits")?,
        tlb_misses: get_u64(v, "tlb_misses")?,
        chains_rejected_busy: get_u64(v, "chains_rejected_busy")?,
        branch_mispredicts_detected: get_u64(v, "branch_mispredicts_detected")?,
        requests_covered_by_prefetch: get_u64(v, "requests_covered_by_prefetch")?,
        chain_latency: get_hist(v, "chain_latency")?,
    })
}

fn prefetch_stats_to_json(p: &PrefetchStats) -> JsonValue {
    let PrefetchStats {
        issued,
        useful,
        useless,
        degree,
    } = p;
    JsonValue::obj(vec![
        ("issued", u(*issued)),
        ("useful", u(*useful)),
        ("useless", u(*useless)),
        ("degree", u(*degree)),
    ])
}

fn prefetch_stats_from_json(v: &JsonValue) -> Result<PrefetchStats, String> {
    Ok(PrefetchStats {
        issued: get_u64(v, "issued")?,
        useful: get_u64(v, "useful")?,
        useless: get_u64(v, "useless")?,
        degree: get_u64(v, "degree")?,
    })
}

/// Encode full run statistics.
pub fn stats_to_json(s: &Stats) -> JsonValue {
    let Stats {
        cycles,
        cores,
        mem,
        ring,
        emc,
        prefetch,
    } = s;
    JsonValue::obj(vec![
        ("cycles", u(*cycles)),
        (
            "cores",
            JsonValue::Arr(cores.iter().map(core_stats_to_json).collect()),
        ),
        ("mem", mem_stats_to_json(mem)),
        ("ring", ring_stats_to_json(ring)),
        ("emc", emc_stats_to_json(emc)),
        ("prefetch", prefetch_stats_to_json(prefetch)),
    ])
}

/// Decode full run statistics.
///
/// # Errors
///
/// Returns a dotted path naming the first bad field.
pub fn stats_from_json(v: &JsonValue) -> Result<Stats, String> {
    let cores = get(v, "cores")?
        .as_arr()
        .ok_or("cores: expected array")?
        .iter()
        .enumerate()
        .map(|(i, c)| core_stats_from_json(c).map_err(|e| format!("cores[{i}].{e}")))
        .collect::<Result<_, _>>()?;
    Ok(Stats {
        cycles: get_u64(v, "cycles")?,
        cores,
        mem: mem_stats_from_json(get(v, "mem")?).map_err(|e| format!("mem.{e}"))?,
        ring: ring_stats_from_json(get(v, "ring")?).map_err(|e| format!("ring.{e}"))?,
        emc: emc_stats_from_json(get(v, "emc")?).map_err(|e| format!("emc.{e}"))?,
        prefetch: prefetch_stats_from_json(get(v, "prefetch")?)
            .map_err(|e| format!("prefetch.{e}"))?,
    })
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Canonical encoding of a [`SystemConfig`]. Every field of every
/// nested struct is named; the destructuring patterns are intentionally
/// `..`-free so new fields cannot be omitted silently. This is the
/// document the campaign engine hashes into content-addressed job keys.
pub fn config_to_json(cfg: &SystemConfig) -> JsonValue {
    let SystemConfig {
        cores,
        memory_controllers,
        core,
        l1,
        llc_slice,
        ring,
        dram,
        prefetcher,
        prefetch,
        emc,
        seed,
        ideal_dependent_hits,
        faults,
        liveness,
    } = cfg;
    JsonValue::obj(vec![
        ("cores", u(*cores as u64)),
        ("memory_controllers", u(*memory_controllers as u64)),
        ("core", core_config_to_json(core)),
        ("l1", cache_config_to_json(l1)),
        ("llc_slice", cache_config_to_json(llc_slice)),
        ("ring", ring_config_to_json(ring)),
        ("dram", dram_config_to_json(dram)),
        ("prefetcher", prefetcher.label().into()),
        ("prefetch", prefetch_config_to_json(prefetch)),
        ("emc", emc_config_to_json(emc)),
        ("seed", u(*seed)),
        ("ideal_dependent_hits", b(*ideal_dependent_hits)),
        ("faults", fault_plan_to_json(faults)),
        ("liveness", liveness_config_to_json(liveness)),
    ])
}

/// Decode a [`SystemConfig`] written by [`config_to_json`].
///
/// Documents written before the fault or liveness layers existed (no
/// `faults` / `liveness` key) decode with those sections defaulted,
/// mirroring the struct's `#[serde(default)]` annotations.
///
/// # Errors
///
/// Returns a dotted path naming the first missing or malformed field.
pub fn config_from_json(v: &JsonValue) -> Result<SystemConfig, String> {
    Ok(SystemConfig {
        cores: get_usize(v, "cores")?,
        memory_controllers: get_usize(v, "memory_controllers")?,
        core: core_config_from_json(get(v, "core")?).map_err(|e| format!("core.{e}"))?,
        l1: cache_config_from_json(get(v, "l1")?).map_err(|e| format!("l1.{e}"))?,
        llc_slice: cache_config_from_json(get(v, "llc_slice")?)
            .map_err(|e| format!("llc_slice.{e}"))?,
        ring: ring_config_from_json(get(v, "ring")?).map_err(|e| format!("ring.{e}"))?,
        dram: dram_config_from_json(get(v, "dram")?).map_err(|e| format!("dram.{e}"))?,
        prefetcher: {
            let label = get_str(v, "prefetcher")?;
            PrefetcherKind::from_label(label)
                .ok_or_else(|| format!("prefetcher: unknown label {label:?}"))?
        },
        prefetch: prefetch_config_from_json(get(v, "prefetch")?)
            .map_err(|e| format!("prefetch.{e}"))?,
        emc: emc_config_from_json(get(v, "emc")?).map_err(|e| format!("emc.{e}"))?,
        seed: get_u64(v, "seed")?,
        ideal_dependent_hits: get_bool(v, "ideal_dependent_hits")?,
        faults: match v.get("faults") {
            Some(fv) => fault_plan_from_json(fv).map_err(|e| format!("faults.{e}"))?,
            None => FaultPlan::default(),
        },
        liveness: match v.get("liveness") {
            Some(lv) => liveness_config_from_json(lv).map_err(|e| format!("liveness.{e}"))?,
            None => LivenessConfig::default(),
        },
    })
}

fn core_config_to_json(c: &CoreConfig) -> JsonValue {
    let CoreConfig {
        fetch_width,
        issue_width,
        retire_width,
        rob_entries,
        rs_entries,
        lsq_entries,
        mispredict_penalty,
        bp_table_entries,
        runahead,
    } = c;
    JsonValue::obj(vec![
        ("fetch_width", u(*fetch_width as u64)),
        ("issue_width", u(*issue_width as u64)),
        ("retire_width", u(*retire_width as u64)),
        ("rob_entries", u(*rob_entries as u64)),
        ("rs_entries", u(*rs_entries as u64)),
        ("lsq_entries", u(*lsq_entries as u64)),
        ("mispredict_penalty", u(*mispredict_penalty)),
        ("bp_table_entries", u(*bp_table_entries as u64)),
        ("runahead", b(*runahead)),
    ])
}

fn core_config_from_json(v: &JsonValue) -> Result<CoreConfig, String> {
    Ok(CoreConfig {
        fetch_width: get_usize(v, "fetch_width")?,
        issue_width: get_usize(v, "issue_width")?,
        retire_width: get_usize(v, "retire_width")?,
        rob_entries: get_usize(v, "rob_entries")?,
        rs_entries: get_usize(v, "rs_entries")?,
        lsq_entries: get_usize(v, "lsq_entries")?,
        mispredict_penalty: get_u64(v, "mispredict_penalty")?,
        bp_table_entries: get_usize(v, "bp_table_entries")?,
        runahead: get_bool(v, "runahead")?,
    })
}

fn cache_config_to_json(c: &CacheConfig) -> JsonValue {
    let CacheConfig {
        bytes,
        ways,
        latency,
        mshrs,
    } = c;
    JsonValue::obj(vec![
        ("bytes", u(*bytes)),
        ("ways", u(*ways as u64)),
        ("latency", u(*latency)),
        ("mshrs", u(*mshrs as u64)),
    ])
}

fn cache_config_from_json(v: &JsonValue) -> Result<CacheConfig, String> {
    Ok(CacheConfig {
        bytes: get_u64(v, "bytes")?,
        ways: get_usize(v, "ways")?,
        latency: get_u64(v, "latency")?,
        mshrs: get_usize(v, "mshrs")?,
    })
}

fn ring_config_to_json(r: &RingConfig) -> JsonValue {
    let RingConfig {
        link_cycles,
        stop_cycles,
    } = r;
    JsonValue::obj(vec![
        ("link_cycles", u(*link_cycles)),
        ("stop_cycles", u(*stop_cycles)),
    ])
}

fn ring_config_from_json(v: &JsonValue) -> Result<RingConfig, String> {
    Ok(RingConfig {
        link_cycles: get_u64(v, "link_cycles")?,
        stop_cycles: get_u64(v, "stop_cycles")?,
    })
}

fn dram_config_to_json(d: &DramConfig) -> JsonValue {
    let DramConfig {
        channels,
        ranks_per_channel,
        banks_per_rank,
        row_bytes,
        t_cas,
        t_rcd,
        t_rp,
        t_ras,
        t_burst,
        queue_entries,
    } = d;
    JsonValue::obj(vec![
        ("channels", u(*channels as u64)),
        ("ranks_per_channel", u(*ranks_per_channel as u64)),
        ("banks_per_rank", u(*banks_per_rank as u64)),
        ("row_bytes", u(*row_bytes)),
        ("t_cas", u(*t_cas)),
        ("t_rcd", u(*t_rcd)),
        ("t_rp", u(*t_rp)),
        ("t_ras", u(*t_ras)),
        ("t_burst", u(*t_burst)),
        ("queue_entries", u(*queue_entries as u64)),
    ])
}

fn dram_config_from_json(v: &JsonValue) -> Result<DramConfig, String> {
    Ok(DramConfig {
        channels: get_usize(v, "channels")?,
        ranks_per_channel: get_usize(v, "ranks_per_channel")?,
        banks_per_rank: get_usize(v, "banks_per_rank")?,
        row_bytes: get_u64(v, "row_bytes")?,
        t_cas: get_u64(v, "t_cas")?,
        t_rcd: get_u64(v, "t_rcd")?,
        t_rp: get_u64(v, "t_rp")?,
        t_ras: get_u64(v, "t_ras")?,
        t_burst: get_u64(v, "t_burst")?,
        queue_entries: get_usize(v, "queue_entries")?,
    })
}

fn prefetch_config_to_json(p: &PrefetchConfig) -> JsonValue {
    let PrefetchConfig {
        stream_count,
        stream_distance,
        markov_entries,
        markov_fanout,
        ghb_entries,
        ghb_index_entries,
        fdp_min_degree,
        fdp_max_degree,
        fdp_high_accuracy,
        fdp_low_accuracy,
        fdp_interval,
    } = p;
    JsonValue::obj(vec![
        ("stream_count", u(*stream_count as u64)),
        ("stream_distance", u(*stream_distance)),
        ("markov_entries", u(*markov_entries as u64)),
        ("markov_fanout", u(*markov_fanout as u64)),
        ("ghb_entries", u(*ghb_entries as u64)),
        ("ghb_index_entries", u(*ghb_index_entries as u64)),
        ("fdp_min_degree", u(*fdp_min_degree as u64)),
        ("fdp_max_degree", u(*fdp_max_degree as u64)),
        ("fdp_high_accuracy", f(*fdp_high_accuracy)),
        ("fdp_low_accuracy", f(*fdp_low_accuracy)),
        ("fdp_interval", u(*fdp_interval)),
    ])
}

fn prefetch_config_from_json(v: &JsonValue) -> Result<PrefetchConfig, String> {
    Ok(PrefetchConfig {
        stream_count: get_usize(v, "stream_count")?,
        stream_distance: get_u64(v, "stream_distance")?,
        markov_entries: get_usize(v, "markov_entries")?,
        markov_fanout: get_usize(v, "markov_fanout")?,
        ghb_entries: get_usize(v, "ghb_entries")?,
        ghb_index_entries: get_usize(v, "ghb_index_entries")?,
        fdp_min_degree: get_usize(v, "fdp_min_degree")?,
        fdp_max_degree: get_usize(v, "fdp_max_degree")?,
        fdp_high_accuracy: get_f64(v, "fdp_high_accuracy")?,
        fdp_low_accuracy: get_f64(v, "fdp_low_accuracy")?,
        fdp_interval: get_u64(v, "fdp_interval")?,
    })
}

fn emc_config_to_json(e: &EmcConfig) -> JsonValue {
    let EmcConfig {
        enabled,
        contexts,
        uop_buffer,
        prf_entries,
        live_in_entries,
        lsq_entries,
        rs_entries,
        issue_width,
        tlb_entries,
        dcache_bytes,
        dcache_ways,
        dcache_latency,
        miss_pred_entries,
        miss_pred_threshold,
        dep_counter_trigger,
        chain_candidates,
        quiesce_threshold,
        quiesce_backoff,
        quiesce_backoff_max,
    } = e;
    JsonValue::obj(vec![
        ("enabled", b(*enabled)),
        ("contexts", u(*contexts as u64)),
        ("uop_buffer", u(*uop_buffer as u64)),
        ("prf_entries", u(*prf_entries as u64)),
        ("live_in_entries", u(*live_in_entries as u64)),
        ("lsq_entries", u(*lsq_entries as u64)),
        ("rs_entries", u(*rs_entries as u64)),
        ("issue_width", u(*issue_width as u64)),
        ("tlb_entries", u(*tlb_entries as u64)),
        ("dcache_bytes", u(*dcache_bytes)),
        ("dcache_ways", u(*dcache_ways as u64)),
        ("dcache_latency", u(*dcache_latency)),
        ("miss_pred_entries", u(*miss_pred_entries as u64)),
        ("miss_pred_threshold", u(*miss_pred_threshold as u64)),
        ("dep_counter_trigger", u(*dep_counter_trigger as u64)),
        ("chain_candidates", u(*chain_candidates as u64)),
        ("quiesce_threshold", u(*quiesce_threshold as u64)),
        ("quiesce_backoff", u(*quiesce_backoff)),
        ("quiesce_backoff_max", u(*quiesce_backoff_max)),
    ])
}

fn emc_config_from_json(v: &JsonValue) -> Result<EmcConfig, String> {
    Ok(EmcConfig {
        enabled: get_bool(v, "enabled")?,
        contexts: get_usize(v, "contexts")?,
        uop_buffer: get_usize(v, "uop_buffer")?,
        prf_entries: get_usize(v, "prf_entries")?,
        live_in_entries: get_usize(v, "live_in_entries")?,
        lsq_entries: get_usize(v, "lsq_entries")?,
        rs_entries: get_usize(v, "rs_entries")?,
        issue_width: get_usize(v, "issue_width")?,
        tlb_entries: get_usize(v, "tlb_entries")?,
        dcache_bytes: get_u64(v, "dcache_bytes")?,
        dcache_ways: get_usize(v, "dcache_ways")?,
        dcache_latency: get_u64(v, "dcache_latency")?,
        miss_pred_entries: get_usize(v, "miss_pred_entries")?,
        miss_pred_threshold: get_u8(v, "miss_pred_threshold")?,
        dep_counter_trigger: get_u8(v, "dep_counter_trigger")?,
        chain_candidates: get_usize(v, "chain_candidates")?,
        quiesce_threshold: get_u32(v, "quiesce_threshold")?,
        quiesce_backoff: get_u64(v, "quiesce_backoff")?,
        quiesce_backoff_max: get_u64(v, "quiesce_backoff_max")?,
    })
}

/// Encode a [`FaultPlan`].
pub fn fault_plan_to_json(p: &FaultPlan) -> JsonValue {
    let FaultPlan {
        enabled,
        ring_delay_prob,
        ring_delay_cycles,
        dram_reissue_prob,
        dram_reissue_penalty,
        emc_kill_prob,
        mc_storm_prob,
        mc_storm_cycles,
    } = p;
    JsonValue::obj(vec![
        ("enabled", b(*enabled)),
        ("ring_delay_prob", f(*ring_delay_prob)),
        ("ring_delay_cycles", u(*ring_delay_cycles)),
        ("dram_reissue_prob", f(*dram_reissue_prob)),
        ("dram_reissue_penalty", u(*dram_reissue_penalty)),
        ("emc_kill_prob", f(*emc_kill_prob)),
        ("mc_storm_prob", f(*mc_storm_prob)),
        ("mc_storm_cycles", u(*mc_storm_cycles)),
    ])
}

/// Decode a [`FaultPlan`].
///
/// # Errors
///
/// Returns a message naming the first missing or malformed field.
pub fn fault_plan_from_json(v: &JsonValue) -> Result<FaultPlan, String> {
    Ok(FaultPlan {
        enabled: get_bool(v, "enabled")?,
        ring_delay_prob: get_f64(v, "ring_delay_prob")?,
        ring_delay_cycles: get_u64(v, "ring_delay_cycles")?,
        dram_reissue_prob: get_f64(v, "dram_reissue_prob")?,
        dram_reissue_penalty: get_u64(v, "dram_reissue_penalty")?,
        emc_kill_prob: get_f64(v, "emc_kill_prob")?,
        mc_storm_prob: get_f64(v, "mc_storm_prob")?,
        mc_storm_cycles: get_u64(v, "mc_storm_cycles")?,
    })
}

/// Encode a [`LivenessConfig`].
pub fn liveness_config_to_json(l: &LivenessConfig) -> JsonValue {
    let LivenessConfig {
        enabled,
        mc_escalation_age,
        emc_lease,
        ring_backlog_threshold,
        core_stall_age,
        probe_interval,
    } = l;
    JsonValue::obj(vec![
        ("enabled", b(*enabled)),
        ("mc_escalation_age", u(*mc_escalation_age)),
        ("emc_lease", u(*emc_lease)),
        ("ring_backlog_threshold", u(*ring_backlog_threshold)),
        ("core_stall_age", u(*core_stall_age)),
        ("probe_interval", u(*probe_interval)),
    ])
}

/// Decode a [`LivenessConfig`].
///
/// # Errors
///
/// Returns a message naming the first missing or malformed field.
pub fn liveness_config_from_json(v: &JsonValue) -> Result<LivenessConfig, String> {
    Ok(LivenessConfig {
        enabled: get_bool(v, "enabled")?,
        mc_escalation_age: get_u64(v, "mc_escalation_age")?,
        emc_lease: get_u64(v, "emc_lease")?,
        ring_backlog_threshold: get_u64(v, "ring_backlog_threshold")?,
        core_stall_age: get_u64(v, "core_stall_age")?,
        probe_interval: get_u64(v, "probe_interval")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trips_exactly() {
        let mut cfg = SystemConfig::quad_core().with_faults(FaultPlan::chaos());
        cfg.prefetcher = PrefetcherKind::MarkovStream;
        cfg.liveness.emc_lease = 12_345;
        cfg.liveness.enabled = false;
        let text = config_to_json(&cfg).to_json();
        let back = config_from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cfg);
        // Byte-stable: re-encoding the decoded config is identical.
        assert_eq!(config_to_json(&back).to_json(), text);
    }

    #[test]
    fn legacy_config_without_faults_or_liveness_decodes_with_defaults() {
        let doc = config_to_json(&SystemConfig::quad_core());
        let JsonValue::Obj(pairs) = &doc else {
            panic!("config encodes as an object")
        };
        let stripped = JsonValue::Obj(
            pairs
                .iter()
                .filter(|(k, _)| k != "faults" && k != "liveness")
                .cloned()
                .collect(),
        );
        let back = config_from_json(&stripped).unwrap();
        assert_eq!(back.faults, FaultPlan::default());
        assert_eq!(back.liveness, LivenessConfig::default());
        assert_eq!(back, SystemConfig::quad_core());
    }

    #[test]
    fn prefetcher_label_round_trips() {
        for pf in PrefetcherKind::ALL {
            assert_eq!(PrefetcherKind::from_label(pf.label()), Some(pf));
        }
        assert_eq!(
            PrefetcherKind::from_label(PrefetcherKind::Stride.label()),
            Some(PrefetcherKind::Stride)
        );
        assert_eq!(PrefetcherKind::from_label("bogus"), None);
    }

    #[test]
    fn stats_round_trip_preserves_new_liveness_counters() {
        let mut s = Stats::new(1);
        s.cores[0].chains_aborted_lease = 3;
        s.mem.escalated_requests = 99;
        let text = stats_to_json(&s).to_json();
        let back = stats_from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back.cores[0].chains_aborted_lease, 3);
        assert_eq!(back.mem.escalated_requests, 99);
    }

    #[test]
    fn stats_without_liveness_counters_decode_as_zero() {
        let doc = stats_to_json(&Stats::new(1));
        let strip = |v: &JsonValue, keys: &[&str]| -> JsonValue {
            let JsonValue::Obj(pairs) = v else {
                panic!("expected object")
            };
            JsonValue::Obj(
                pairs
                    .iter()
                    .filter(|(k, _)| !keys.contains(&k.as_str()))
                    .cloned()
                    .collect(),
            )
        };
        let JsonValue::Obj(mut pairs) = doc else {
            panic!("stats encodes as an object")
        };
        for (k, v) in &mut pairs {
            if k == "mem" {
                *v = strip(v, &["escalated_requests"]);
            } else if k == "cores" {
                let JsonValue::Arr(cores) = v else {
                    panic!("cores is an array")
                };
                for c in cores {
                    *c = strip(c, &["chains_aborted_lease"]);
                }
            }
        }
        let back = stats_from_json(&JsonValue::Obj(pairs)).unwrap();
        assert_eq!(back.cores[0].chains_aborted_lease, 0);
        assert_eq!(back.mem.escalated_requests, 0);
    }

    #[test]
    fn decode_errors_name_dotted_paths() {
        let doc = config_to_json(&SystemConfig::quad_core());
        let JsonValue::Obj(mut pairs) = doc else {
            panic!("config encodes as an object")
        };
        for (k, v) in &mut pairs {
            if k == "dram" {
                if let JsonValue::Obj(dp) = v {
                    dp.retain(|(dk, _)| dk != "t_cas");
                }
            }
        }
        let err = config_from_json(&JsonValue::Obj(pairs)).unwrap_err();
        assert!(err.contains("dram.") && err.contains("t_cas"), "{err}");
    }
}
