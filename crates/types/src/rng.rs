//! Deterministic random-number helpers.
//!
//! Every stochastic element of the simulator draws from a seeded
//! [`SmallRng`] so that two runs with the same [`SystemConfig`] are
//! bit-identical (verified by an integration test).
//!
//! [`SystemConfig`]: crate::SystemConfig

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Create a deterministic RNG from a seed.
///
/// # Example
///
/// ```
/// use emc_types::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(7);
/// let mut b = seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Mix a stream identifier into a seed so that independent components
/// (per-core generators, predictors, workloads) get decorrelated but
/// reproducible streams.
pub fn substream(seed: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer.
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn determinism() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn substreams_decorrelate() {
        assert_ne!(substream(1, 0), substream(1, 1));
        assert_eq!(substream(9, 3), substream(9, 3));
    }
}
