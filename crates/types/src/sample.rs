//! Time-series metric samples captured by the `--sample-interval`
//! sampler.
//!
//! One [`MetricSample`] is captured per epoch, recording the occupancy
//! of every scheduler-visible queue in the system. The samples feed the
//! metrics exporter (`--metrics-out`), counter tracks in the Chrome
//! trace (`--trace-out`), and — via
//! [`WedgeReport::recent_samples`](crate::WedgeReport) — the wedge
//! diagnosis, so a wedged run shows the queue-depth history leading up
//! to the wedge rather than just the final snapshot.

use crate::Cycle;
use serde::{Deserialize, Serialize};

/// Occupancy of every scheduler-visible queue at one sample epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Cycle the sample was taken.
    pub cycle: Cycle,
    /// Memory-controller queue depth, per MC.
    pub mc_queue_depth: Vec<u32>,
    /// Memory-controller retry-queue depth (rejected enqueues), per MC.
    pub mc_retry_depth: Vec<u32>,
    /// DRAM banks with an open row, per MC (row-buffer state).
    pub banks_open: Vec<u32>,
    /// Occupied EMC issue contexts, per MC.
    pub emc_busy_contexts: Vec<u32>,
    /// Ring links (either kind, either direction) busy this cycle.
    pub ring_busy_links: u32,
    /// Cache lines with an outstanding fill (MSHR occupancy).
    pub outstanding_misses: u32,
    /// Valid lines per LLC slice.
    pub llc_occupancy: Vec<u32>,
    /// ROB occupancy, per core.
    pub rob_occupancy: Vec<u32>,
}

impl MetricSample {
    /// Compact single-line rendering used by the wedge report.
    pub fn summary_line(&self) -> String {
        format!(
            "cycle {}: mcq={:?} retry={:?} banks_open={:?} emc_ctx={:?} ring_links={} \
             outstanding={} rob={:?}",
            self.cycle,
            self.mc_queue_depth,
            self.mc_retry_depth,
            self.banks_open,
            self.emc_busy_contexts,
            self.ring_busy_links,
            self.outstanding_misses,
            self.rob_occupancy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_line_names_every_queue() {
        let s = MetricSample {
            cycle: 4000,
            mc_queue_depth: vec![12, 3],
            mc_retry_depth: vec![0, 1],
            banks_open: vec![5, 2],
            emc_busy_contexts: vec![2, 0],
            ring_busy_links: 7,
            outstanding_misses: 31,
            llc_occupancy: vec![100, 90],
            rob_occupancy: vec![192, 14],
        };
        let line = s.summary_line();
        for needle in [
            "cycle 4000",
            "mcq=[12, 3]",
            "retry=[0, 1]",
            "banks_open=[5, 2]",
            "emc_ctx=[2, 0]",
            "ring_links=7",
            "outstanding=31",
            "rob=[192, 14]",
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
    }
}
