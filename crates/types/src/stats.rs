//! Statistics counters collected by the simulator and consumed by the
//! figure harnesses and the energy model.

use crate::hist::Histogram;
use serde::{Deserialize, Serialize};

/// Per-core pipeline statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CoreStats {
    /// Cycles this core took to finish its benchmark (or cycles elapsed).
    pub cycles: u64,
    /// Retired micro-ops.
    pub retired_uops: u64,
    /// Retired loads.
    pub retired_loads: u64,
    /// Retired stores.
    pub retired_stores: u64,
    /// Retired branches.
    pub retired_branches: u64,
    /// Mispredicted branches.
    pub branch_mispredicts: u64,
    /// L1D accesses.
    pub l1d_accesses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// Demand LLC accesses by this core.
    pub llc_accesses: u64,
    /// Demand LLC misses by this core (core-issued only).
    pub llc_misses: u64,
    /// LLC misses that were data-dependent on an earlier in-flight LLC
    /// miss (the paper's "dependent cache misses", Figure 2).
    pub dependent_llc_misses: u64,
    /// Dependent cache misses that a prefetcher had already covered
    /// (Figure 3 numerator).
    pub dependent_misses_prefetched: u64,
    /// Sum over dependent misses of the number of chain uops between the
    /// source miss and the dependent miss (Figure 6 numerator).
    pub dep_chain_uop_sum: u64,
    /// Count of (source, dependent) miss pairs for the Figure 6 mean.
    pub dep_chain_pairs: u64,
    /// Cycles stalled with a full ROB whose head is an LLC-miss load.
    pub full_window_stall_cycles: u64,
    /// Dependence chains shipped to the EMC.
    pub chains_sent: u64,
    /// Total uops across all shipped chains (Figure 22).
    pub chain_uops_sent: u64,
    /// Total live-in registers shipped (§6.5).
    pub chain_live_ins: u64,
    /// Total live-out registers returned (§6.5).
    pub chain_live_outs: u64,
    /// Chains aborted because the EMC detected a mispredicted branch.
    pub chains_aborted_branch: u64,
    /// Chains aborted on an EMC TLB miss (core re-executes).
    pub chains_aborted_tlb: u64,
    /// Chains cancelled for memory-disambiguation conflicts.
    pub chains_cancelled_disambiguation: u64,
    /// Chains killed by injected EMC context faults (fault injection).
    pub chains_aborted_injected: u64,
    /// Chains killed because their EMC context lease expired without
    /// forward progress (liveness enforcement).
    #[serde(default)]
    pub chains_aborted_lease: u64,
    /// Times graceful degradation quiesced chain generation for this
    /// core after consecutive chain failures.
    pub emc_quiesce_events: u64,
    /// Demand misses by this core that hit in a prefetched line.
    pub prefetch_covered_misses: u64,
    /// Times the core entered runahead mode.
    pub runahead_entries: u64,
    /// Speculative uops pseudo-retired during runahead episodes.
    pub runahead_uops: u64,
    /// Memory requests issued from runahead mode (the prefetch effect).
    pub runahead_requests: u64,
    /// Histogram of shipped chain lengths (index = uops, 0..=16).
    pub chain_length_hist: Vec<u64>,
    /// Distribution of full-window stall *episode* lengths in cycles
    /// (one sample per contiguous stall; `full_window_stall_cycles` is
    /// the sum of all episodes).
    #[serde(default)]
    pub stall_episodes: Histogram,
}

impl CoreStats {
    /// Record a shipped chain's length in the histogram.
    pub fn record_chain_length(&mut self, uops: usize) {
        if self.chain_length_hist.is_empty() {
            self.chain_length_hist = vec![0; 17];
        }
        let i = uops.min(16);
        self.chain_length_hist[i] += 1;
    }

    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_uops as f64 / self.cycles as f64
        }
    }

    /// LLC misses per thousand retired instructions.
    pub fn mpki(&self) -> f64 {
        if self.retired_uops == 0 {
            0.0
        } else {
            1000.0 * self.llc_misses as f64 / self.retired_uops as f64
        }
    }

    /// Fraction of LLC misses that are dependent on a prior LLC miss.
    pub fn dependent_miss_fraction(&self) -> f64 {
        if self.llc_misses == 0 {
            0.0
        } else {
            self.dependent_llc_misses as f64 / self.llc_misses as f64
        }
    }
}

/// DRAM / memory-controller statistics (summed over channels).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MemStats {
    /// Demand read requests serviced by DRAM.
    pub dram_reads: u64,
    /// Write-backs serviced by DRAM.
    pub dram_writes: u64,
    /// Prefetch reads serviced by DRAM.
    pub dram_prefetches: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer conflicts (row open to a different row).
    pub row_conflicts: u64,
    /// Row-buffer "empty" accesses (bank precharged, plain activate).
    pub row_empties: u64,
    /// DRAM activate commands issued.
    pub activates: u64,
    /// DRAM precharge commands issued.
    pub precharges: u64,
    /// Latency of core-issued demand misses, creation → delivery (Fig 18).
    pub core_miss_latency: Histogram,
    /// Latency of EMC-issued demand misses, creation → delivery (Fig 18).
    pub emc_miss_latency: Histogram,
    /// Ring/fill-path component of core-issued miss latency (Fig 19).
    pub core_ring_component: Histogram,
    /// Cache-hierarchy component of core-issued miss latency (Fig 19).
    pub core_cache_component: Histogram,
    /// MC queueing component of core-issued miss latency (Fig 19).
    pub core_queue_component: Histogram,
    /// Ring/fill-path component of EMC-issued miss latency.
    pub emc_ring_component: Histogram,
    /// Cache-hierarchy component of EMC-issued miss latency.
    pub emc_cache_component: Histogram,
    /// MC queueing component of EMC-issued miss latency.
    pub emc_queue_component: Histogram,
    /// Pure DRAM service latency across demand misses (Figure 1).
    pub dram_service_latency: Histogram,
    /// On-chip delay across demand misses (Figure 1).
    pub on_chip_delay: Histogram,
    /// DRAM accesses re-issued with a latency penalty by injected
    /// ECC-style faults.
    pub ecc_reissues: u64,
    /// Injected queue-full backpressure storms started.
    pub backpressure_storms: u64,
    /// Requests escalated by anti-starvation aging (queue age crossed
    /// the liveness escalation threshold).
    #[serde(default)]
    pub escalated_requests: u64,
}

impl MemStats {
    /// Row-buffer conflict rate among DRAM accesses.
    pub fn row_conflict_rate(&self) -> f64 {
        let total = self.row_hits + self.row_conflicts + self.row_empties;
        if total == 0 {
            0.0
        } else {
            self.row_conflicts as f64 / total as f64
        }
    }

    /// Total DRAM data transfers (reads + writes + prefetches), a proxy for
    /// memory bandwidth consumption (§6.6 traffic numbers).
    pub fn dram_traffic(&self) -> u64 {
        self.dram_reads + self.dram_writes + self.dram_prefetches
    }
}

/// Ring interconnect statistics (§6.5 overhead numbers).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RingStats {
    /// Control-ring messages.
    pub control_msgs: u64,
    /// Data-ring messages.
    pub data_msgs: u64,
    /// Control-ring messages attributable to the EMC.
    pub emc_control_msgs: u64,
    /// Data-ring messages attributable to the EMC (chains, live-ins/outs).
    pub emc_data_msgs: u64,
    /// Total hop·message products (for occupancy/energy).
    pub total_hops: u64,
    /// Messages hit by an injected ring delay fault.
    pub injected_delays: u64,
}

/// EMC statistics (§6.3, Figures 15, 17, 21, 22).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EmcStats {
    /// Chains accepted and executed (at least partially).
    pub chains_executed: u64,
    /// Uops executed at the EMC.
    pub uops_executed: u64,
    /// Loads executed at the EMC.
    pub loads_executed: u64,
    /// Stores executed at the EMC (register spills).
    pub stores_executed: u64,
    /// EMC data-cache accesses.
    pub dcache_accesses: u64,
    /// EMC data-cache hits (Figure 17).
    pub dcache_hits: u64,
    /// Loads sent directly to DRAM on a predicted LLC miss.
    pub direct_to_dram: u64,
    /// Loads that queried the LLC (predicted hit).
    pub llc_lookups: u64,
    /// LLC misses generated by EMC execution (Figure 15 numerator).
    pub llc_misses_generated: u64,
    /// EMC TLB hits.
    pub tlb_hits: u64,
    /// EMC TLB misses (chain handed back to the core).
    pub tlb_misses: u64,
    /// Chains rejected because no context was free.
    pub chains_rejected_busy: u64,
    /// Mispredicted branches detected during chain execution.
    pub branch_mispredicts_detected: u64,
    /// EMC-generated misses that were LLC hits due to a prefetcher
    /// (Figure 21 numerator, measured against the no-prefetch EMC set).
    pub requests_covered_by_prefetch: u64,
    /// Distribution of chain ship-to-completion latency in cycles
    /// (data-ring departure at the core to context release at the EMC).
    #[serde(default)]
    pub chain_latency: Histogram,
}

impl EmcStats {
    /// EMC data-cache hit rate (Figure 17).
    pub fn dcache_hit_rate(&self) -> f64 {
        if self.dcache_accesses == 0 {
            0.0
        } else {
            self.dcache_hits as f64 / self.dcache_accesses as f64
        }
    }
}

/// Prefetcher statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Prefetch requests issued to the memory system.
    pub issued: u64,
    /// Prefetched lines later hit by a demand access (useful).
    pub useful: u64,
    /// Prefetched lines evicted without use.
    pub useless: u64,
    /// Current FDP dynamic degree (last value).
    pub degree: u64,
}

impl PrefetchStats {
    /// Prefetch accuracy (useful / issued).
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.useful as f64 / self.issued as f64
        }
    }
}

/// All statistics for one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Stats {
    /// Total cycles simulated (max over cores).
    pub cycles: u64,
    /// Per-core pipeline stats.
    pub cores: Vec<CoreStats>,
    /// Memory-system stats.
    pub mem: MemStats,
    /// Ring stats.
    pub ring: RingStats,
    /// EMC stats (zeroed when the EMC is disabled).
    pub emc: EmcStats,
    /// Prefetcher stats (zeroed when prefetching is off).
    pub prefetch: PrefetchStats,
}

impl Stats {
    /// Create stats for `cores` cores.
    pub fn new(cores: usize) -> Self {
        Stats {
            cores: vec![CoreStats::default(); cores],
            ..Default::default()
        }
    }

    /// Sum of per-core IPCs (throughput metric).
    pub fn ipc_sum(&self) -> f64 {
        self.cores.iter().map(|c| c.ipc()).sum()
    }

    /// Weighted speedup against per-core baseline IPCs:
    /// `sum_i IPC_shared_i / IPC_baseline_i`.
    ///
    /// # Panics
    ///
    /// Panics if `baseline_ipcs.len()` differs from the core count.
    pub fn weighted_speedup(&self, baseline_ipcs: &[f64]) -> f64 {
        assert_eq!(
            baseline_ipcs.len(),
            self.cores.len(),
            "baseline core count mismatch"
        );
        self.cores
            .iter()
            .zip(baseline_ipcs)
            .map(|(c, b)| if *b > 0.0 { c.ipc() / b } else { 0.0 })
            .sum()
    }

    /// Fraction of all LLC misses generated by the EMC (Figure 15).
    pub fn emc_miss_fraction(&self) -> f64 {
        let core: u64 = self.cores.iter().map(|c| c.llc_misses).sum();
        let total = core + self.emc.llc_misses_generated;
        if total == 0 {
            0.0
        } else {
            self.emc.llc_misses_generated as f64 / total as f64
        }
    }

    /// Mean chain length in uops (Figure 22).
    pub fn mean_chain_uops(&self) -> f64 {
        let chains: u64 = self.cores.iter().map(|c| c.chains_sent).sum();
        let uops: u64 = self.cores.iter().map(|c| c.chain_uops_sent).sum();
        if chains == 0 {
            0.0
        } else {
            uops as f64 / chains as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sites_are_histograms_with_percentiles() {
        let mut m = MemStats::default();
        m.core_miss_latency.record(100);
        m.core_miss_latency.record(300);
        m.core_miss_latency.record(900);
        assert_eq!(m.core_miss_latency.count, 3);
        assert!((m.core_miss_latency.mean() - 433.333).abs() < 0.001);
        assert_eq!(m.core_miss_latency.percentile(0.0), 100);
        assert_eq!(m.core_miss_latency.percentile(100.0), 900);
        let mut e = EmcStats::default();
        e.chain_latency.record(50);
        assert_eq!(e.chain_latency.p99(), 50);
        let mut c = CoreStats::default();
        c.stall_episodes.record(1000);
        assert_eq!(c.stall_episodes.max, 1000);
    }

    #[test]
    fn core_derived_metrics() {
        let c = CoreStats {
            cycles: 1000,
            retired_uops: 500,
            llc_misses: 10,
            dependent_llc_misses: 4,
            ..Default::default()
        };
        assert_eq!(c.ipc(), 0.5);
        assert_eq!(c.mpki(), 20.0);
        assert_eq!(c.dependent_miss_fraction(), 0.4);
    }

    #[test]
    fn zero_division_is_safe() {
        let c = CoreStats::default();
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.mpki(), 0.0);
        assert_eq!(c.dependent_miss_fraction(), 0.0);
        let m = MemStats::default();
        assert_eq!(m.row_conflict_rate(), 0.0);
        let e = EmcStats::default();
        assert_eq!(e.dcache_hit_rate(), 0.0);
        let p = PrefetchStats::default();
        assert_eq!(p.accuracy(), 0.0);
    }

    #[test]
    fn weighted_speedup() {
        let mut s = Stats::new(2);
        s.cores[0].cycles = 100;
        s.cores[0].retired_uops = 100; // IPC 1.0
        s.cores[1].cycles = 100;
        s.cores[1].retired_uops = 50; // IPC 0.5
        let ws = s.weighted_speedup(&[0.5, 0.5]);
        assert!((ws - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn weighted_speedup_validates_len() {
        Stats::new(2).weighted_speedup(&[1.0]);
    }

    #[test]
    fn emc_fraction() {
        let mut s = Stats::new(1);
        s.cores[0].llc_misses = 78;
        s.emc.llc_misses_generated = 22;
        assert!((s.emc_miss_fraction() - 0.22).abs() < 1e-9);
    }

    #[test]
    fn chain_length_histogram() {
        let mut c = CoreStats::default();
        c.record_chain_length(3);
        c.record_chain_length(3);
        c.record_chain_length(16);
        c.record_chain_length(99); // clamped
        assert_eq!(c.chain_length_hist[3], 2);
        assert_eq!(c.chain_length_hist[16], 2);
    }

    #[test]
    fn chain_mean() {
        let mut s = Stats::new(2);
        s.cores[0].chains_sent = 2;
        s.cores[0].chain_uops_sent = 10;
        s.cores[1].chains_sent = 2;
        s.cores[1].chain_uops_sent = 26;
        assert_eq!(s.mean_chain_uops(), 9.0);
    }

    #[test]
    fn stats_serde_round_trip() {
        use crate::codec::{stats_from_json, stats_to_json};
        use crate::json::JsonValue;
        let mut s = Stats::new(2);
        s.cycles = 123;
        s.cores[0].retired_uops = 77;
        s.cores[0].record_chain_length(5);
        s.mem.core_miss_latency.record(300);
        s.mem.escalated_requests = 2;
        s.emc.chains_executed = 9;
        let json = stats_to_json(&s).to_json();
        let back = stats_from_json(&JsonValue::parse(&json).expect("parse")).expect("decode");
        assert_eq!(back.cycles, 123);
        assert_eq!(back.cores[0].retired_uops, 77);
        assert_eq!(back.cores[0].chain_length_hist[5], 1);
        assert_eq!(back.mem.core_miss_latency.sum, 300);
        assert_eq!(back.mem.escalated_requests, 2);
        assert_eq!(back.emc.chains_executed, 9);
    }

    #[test]
    fn row_conflict_rate() {
        let m = MemStats {
            row_hits: 50,
            row_conflicts: 25,
            row_empties: 25,
            ..Default::default()
        };
        assert_eq!(m.row_conflict_rate(), 0.25);
        assert_eq!(m.dram_traffic(), 0);
    }
}
