//! Wire schemas for the `campaignd` experiment service
//! (`emc-campaignd-v1`).
//!
//! These are the request/response/status documents exchanged between
//! the `campaignd` daemon and its clients (the `campaign` CLI's
//! `submit` / `watch` / `svc-status` subcommands, `curl`, CI). They
//! live here — not in the service crate — because both sides of the
//! protocol need them and `emc-types` is the dependency root: the
//! daemon encodes what the CLI decodes and vice versa, through the same
//! hand-rolled [`JsonValue`] model the rest of the workspace uses (no
//! external JSON crate on either side).
//!
//! Every top-level document carries `"schema": "emc-campaignd-v1"`;
//! decoders reject mismatched schemas so a client talking to a future
//! incompatible daemon fails loudly instead of misparsing.

use crate::codec::{get_bool, get_f64, get_str, get_u64, u};
use crate::hist::Histogram;
use crate::json::JsonValue;

/// Schema tag stamped into (and required from) every protocol document.
pub const SVC_SCHEMA: &str = "emc-campaignd-v1";

/// Check a decoded document's schema tag.
fn check_schema(doc: &JsonValue) -> Result<(), String> {
    let schema = doc.get("schema").and_then(|v| v.as_str()).unwrap_or("");
    if schema != SVC_SCHEMA {
        return Err(format!("schema {schema:?}, expected {SVC_SCHEMA:?}"));
    }
    Ok(())
}

fn opt_u64(doc: &JsonValue, key: &str) -> Option<u64> {
    doc.get(key).and_then(|v| v.as_f64()).map(|n| n as u64)
}

// ---------------------------------------------------------------------
// Submission
// ---------------------------------------------------------------------

/// A job submission: one of the standard suites, optionally narrowed to
/// a single (prefetcher, EMC) grid cell and fanned out across seeds.
///
/// The daemon expands this into concrete `JobSpec`s (suite × repeat),
/// so the wire format stays plain strings and numbers — clients never
/// serialize a full `SystemConfig`. `repeat > 1` submits `repeat`
/// copies of the grid with seeds bumped `seed_bump .. seed_bump +
/// repeat - 1`, which is how load tests queue thousands of distinct
/// jobs from a one-line request.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Who is submitting (fair-queue identity; required, non-empty).
    pub tenant: String,
    /// Display name for the job ("" = derived from the suite).
    pub name: String,
    /// Suite: `quad`, `homog`, `mix8-1mc`, or `mix8-2mc`.
    pub suite: String,
    /// Per-core retired-uop budget (0 = daemon default).
    pub budget: u64,
    /// XORed into every config seed — distinct grids for load tests.
    pub seed_bump: u64,
    /// Number of seed-bumped copies of the grid to queue (min 1).
    pub repeat: u64,
    /// Narrow the 8-config grid to one prefetcher label (e.g. `GHB`).
    pub prefetcher: Option<String>,
    /// Narrow the 8-config grid to EMC on (`true`) or off (`false`).
    pub emc: Option<bool>,
}

impl SubmitRequest {
    /// A submission of `suite` by `tenant` with daemon defaults.
    pub fn new(tenant: impl Into<String>, suite: impl Into<String>) -> Self {
        SubmitRequest {
            tenant: tenant.into(),
            name: String::new(),
            suite: suite.into(),
            budget: 0,
            seed_bump: 0,
            repeat: 1,
            prefetcher: None,
            emc: None,
        }
    }

    /// Encode as a protocol document.
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("schema", SVC_SCHEMA.into()),
            ("tenant", self.tenant.as_str().into()),
            ("name", self.name.as_str().into()),
            ("suite", self.suite.as_str().into()),
            ("budget", u(self.budget)),
            ("seed_bump", u(self.seed_bump)),
            ("repeat", u(self.repeat)),
        ];
        if let Some(pf) = &self.prefetcher {
            pairs.push(("prefetcher", pf.as_str().into()));
        }
        if let Some(emc) = self.emc {
            pairs.push(("emc", JsonValue::Bool(emc)));
        }
        JsonValue::obj(pairs)
    }

    /// Decode a protocol document.
    ///
    /// # Errors
    ///
    /// Names the missing/mistyped field, the schema mismatch, or an
    /// empty tenant.
    pub fn from_json(doc: &JsonValue) -> Result<SubmitRequest, String> {
        check_schema(doc)?;
        let tenant = get_str(doc, "tenant")?.to_string();
        if tenant.is_empty() {
            return Err("tenant must be non-empty".into());
        }
        Ok(SubmitRequest {
            tenant,
            name: doc
                .get("name")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
            suite: get_str(doc, "suite")?.to_string(),
            budget: opt_u64(doc, "budget").unwrap_or(0),
            seed_bump: opt_u64(doc, "seed_bump").unwrap_or(0),
            repeat: opt_u64(doc, "repeat").unwrap_or(1).max(1),
            prefetcher: doc
                .get("prefetcher")
                .and_then(|v| v.as_str())
                .map(str::to_string),
            emc: doc.get("emc").and_then(|v| match v {
                JsonValue::Bool(b) => Some(*b),
                _ => None,
            }),
        })
    }
}

/// Acceptance of a submission (`POST /v1/jobs`, 200).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitAck {
    /// The new job's id (use with `/v1/jobs/<id>`).
    pub id: String,
    /// Tasks queued for this job.
    pub total: u64,
    /// Service-wide queued tasks after admission.
    pub queue_depth: u64,
}

impl SubmitAck {
    /// Encode as a protocol document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("schema", SVC_SCHEMA.into()),
            ("id", self.id.as_str().into()),
            ("total", u(self.total)),
            ("queue_depth", u(self.queue_depth)),
        ])
    }

    /// Decode a protocol document.
    ///
    /// # Errors
    ///
    /// Names the missing field or schema mismatch.
    pub fn from_json(doc: &JsonValue) -> Result<SubmitAck, String> {
        check_schema(doc)?;
        Ok(SubmitAck {
            id: get_str(doc, "id")?.to_string(),
            total: get_u64(doc, "total")?,
            queue_depth: get_u64(doc, "queue_depth")?,
        })
    }
}

/// A structured rejection (`429` queue-full, `503` draining, `400`
/// bad request, `404` unknown job).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Machine-readable reason: `queue-full`, `draining`,
    /// `bad-request`, `not-found`.
    pub error: String,
    /// Human-readable detail.
    pub detail: String,
    /// Queued tasks at rejection time.
    pub queue_depth: u64,
    /// Admission-control capacity (0 when not applicable).
    pub capacity: u64,
}

impl Rejection {
    /// A rejection with zero queue context (bad request / not found).
    pub fn of(error: impl Into<String>, detail: impl Into<String>) -> Self {
        Rejection {
            error: error.into(),
            detail: detail.into(),
            queue_depth: 0,
            capacity: 0,
        }
    }

    /// Encode as a protocol document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("schema", SVC_SCHEMA.into()),
            ("error", self.error.as_str().into()),
            ("detail", self.detail.as_str().into()),
            ("queue_depth", u(self.queue_depth)),
            ("capacity", u(self.capacity)),
        ])
    }

    /// Decode a protocol document.
    ///
    /// # Errors
    ///
    /// Names the missing field or schema mismatch.
    pub fn from_json(doc: &JsonValue) -> Result<Rejection, String> {
        check_schema(doc)?;
        Ok(Rejection {
            error: get_str(doc, "error")?.to_string(),
            detail: get_str(doc, "detail")?.to_string(),
            queue_depth: opt_u64(doc, "queue_depth").unwrap_or(0),
            capacity: opt_u64(doc, "capacity").unwrap_or(0),
        })
    }
}

// ---------------------------------------------------------------------
// Job status and progress
// ---------------------------------------------------------------------

/// Where a job is in its service lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted; no task has finished yet.
    Queued,
    /// At least one task finished, some remain.
    Running,
    /// Every task resolved (completed or failed).
    Done,
}

impl JobState {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<JobState> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            _ => None,
        }
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A job status snapshot (`GET /v1/jobs/<id>`).
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatusView {
    /// Job id.
    pub id: String,
    /// Submitting tenant.
    pub tenant: String,
    /// Display name.
    pub name: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Total tasks in the job.
    pub total: u64,
    /// Tasks resolved so far (hits + executed + failed).
    pub done: u64,
    /// Tasks resolved from the result cache.
    pub hits: u64,
    /// Tasks freshly simulated.
    pub executed: u64,
    /// Tasks that failed (wedged/cap-hit after retries).
    pub failed: u64,
    /// Remaining-time estimate, milliseconds (absent before the first
    /// completion and after the last).
    pub eta_ms: Option<u64>,
    /// Wall-clock since admission, milliseconds.
    pub wall_ms: u64,
}

impl JobStatusView {
    /// Encode as a protocol document.
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("schema", SVC_SCHEMA.into()),
            ("id", self.id.as_str().into()),
            ("tenant", self.tenant.as_str().into()),
            ("name", self.name.as_str().into()),
            ("state", self.state.as_str().into()),
            ("total", u(self.total)),
            ("done", u(self.done)),
            ("hits", u(self.hits)),
            ("executed", u(self.executed)),
            ("failed", u(self.failed)),
            ("wall_ms", u(self.wall_ms)),
        ];
        if let Some(eta) = self.eta_ms {
            pairs.push(("eta_ms", u(eta)));
        }
        JsonValue::obj(pairs)
    }

    /// Decode a protocol document.
    ///
    /// # Errors
    ///
    /// Names the missing field, bad state, or schema mismatch.
    pub fn from_json(doc: &JsonValue) -> Result<JobStatusView, String> {
        check_schema(doc)?;
        let state = get_str(doc, "state")?;
        Ok(JobStatusView {
            id: get_str(doc, "id")?.to_string(),
            tenant: get_str(doc, "tenant")?.to_string(),
            name: get_str(doc, "name")?.to_string(),
            state: JobState::parse(state).ok_or_else(|| format!("bad state {state:?}"))?,
            total: get_u64(doc, "total")?,
            done: get_u64(doc, "done")?,
            hits: get_u64(doc, "hits")?,
            executed: get_u64(doc, "executed")?,
            failed: get_u64(doc, "failed")?,
            eta_ms: opt_u64(doc, "eta_ms"),
            wall_ms: get_u64(doc, "wall_ms")?,
        })
    }
}

/// One per-task progress event within a job's ordered event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressEvent {
    /// Monotonic sequence number within the job (starts at 1).
    pub seq: u64,
    /// Label of the task that resolved.
    pub label: String,
    /// How it resolved ("cache-hit", "completed", "wedged ...").
    pub outcome: String,
    /// Job-level progress after this event: tasks done.
    pub done: u64,
    /// Tasks total.
    pub total: u64,
    /// Cache hits so far.
    pub hits: u64,
    /// Failures so far.
    pub failed: u64,
    /// Remaining-time estimate after this event, milliseconds.
    pub eta_ms: Option<u64>,
}

impl ProgressEvent {
    /// Encode as a protocol document.
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("seq", u(self.seq)),
            ("label", self.label.as_str().into()),
            ("outcome", self.outcome.as_str().into()),
            ("done", u(self.done)),
            ("total", u(self.total)),
            ("hits", u(self.hits)),
            ("failed", u(self.failed)),
        ];
        if let Some(eta) = self.eta_ms {
            pairs.push(("eta_ms", u(eta)));
        }
        JsonValue::obj(pairs)
    }

    /// Decode a protocol document.
    ///
    /// # Errors
    ///
    /// Names the missing field.
    pub fn from_json(doc: &JsonValue) -> Result<ProgressEvent, String> {
        Ok(ProgressEvent {
            seq: get_u64(doc, "seq")?,
            label: get_str(doc, "label")?.to_string(),
            outcome: get_str(doc, "outcome")?.to_string(),
            done: get_u64(doc, "done")?,
            total: get_u64(doc, "total")?,
            hits: get_u64(doc, "hits")?,
            failed: get_u64(doc, "failed")?,
            eta_ms: opt_u64(doc, "eta_ms"),
        })
    }
}

/// A long-poll batch of progress events
/// (`GET /v1/jobs/<id>/events?since=N`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventBatch {
    /// Job id.
    pub id: String,
    /// Pass as `since` on the next poll.
    pub next: u64,
    /// True once the job has fully resolved (stop polling).
    pub complete: bool,
    /// Events with `seq > since`, in sequence order.
    pub events: Vec<ProgressEvent>,
}

impl EventBatch {
    /// Encode as a protocol document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("schema", SVC_SCHEMA.into()),
            ("id", self.id.as_str().into()),
            ("next", u(self.next)),
            ("complete", JsonValue::Bool(self.complete)),
            (
                "events",
                JsonValue::Arr(self.events.iter().map(ProgressEvent::to_json).collect()),
            ),
        ])
    }

    /// Decode a protocol document.
    ///
    /// # Errors
    ///
    /// Names the missing field or schema mismatch.
    pub fn from_json(doc: &JsonValue) -> Result<EventBatch, String> {
        check_schema(doc)?;
        let events = doc
            .get("events")
            .and_then(|v| v.as_arr())
            .ok_or("missing events")?
            .iter()
            .map(ProgressEvent::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(EventBatch {
            id: get_str(doc, "id")?.to_string(),
            next: get_u64(doc, "next")?,
            complete: get_bool(doc, "complete")?,
            events,
        })
    }
}

// ---------------------------------------------------------------------
// Service statistics
// ---------------------------------------------------------------------

/// Five-number summary of a [`Histogram`] for stats documents (the
/// full bucket vector stays off the wire).
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Samples.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistSummary {
    /// Summarize a histogram.
    pub fn of(h: &Histogram) -> HistSummary {
        HistSummary {
            count: h.count,
            mean: h.mean(),
            p50: h.p50(),
            p95: h.p95(),
            p99: h.p99(),
            max: h.max,
        }
    }

    /// Encode as a protocol document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("count", u(self.count)),
            ("mean", self.mean.into()),
            ("p50", u(self.p50)),
            ("p95", u(self.p95)),
            ("p99", u(self.p99)),
            ("max", u(self.max)),
        ])
    }

    /// Decode a protocol document.
    ///
    /// # Errors
    ///
    /// Names the missing field.
    pub fn from_json(doc: &JsonValue) -> Result<HistSummary, String> {
        Ok(HistSummary {
            count: get_u64(doc, "count")?,
            mean: get_f64(doc, "mean")?,
            p50: get_u64(doc, "p50")?,
            p95: get_u64(doc, "p95")?,
            p99: get_u64(doc, "p99")?,
            max: get_u64(doc, "max")?,
        })
    }
}

/// Per-tenant fairness statistics within [`ServiceStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// Tenant name.
    pub tenant: String,
    /// Tasks waiting in the fair queue.
    pub queued: u64,
    /// Tasks currently on a worker.
    pub running: u64,
    /// Tasks resolved.
    pub done: u64,
    /// Tasks failed.
    pub failed: u64,
    /// Queue-wait distribution, milliseconds (admission → dispatch).
    pub wait_ms: HistSummary,
    /// Largest observed queue wait, milliseconds.
    pub max_wait_ms: u64,
    /// Tasks dispatched via aging escalation (starvation rescue).
    pub escalated: u64,
}

impl TenantStats {
    /// Encode as a protocol document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("tenant", self.tenant.as_str().into()),
            ("queued", u(self.queued)),
            ("running", u(self.running)),
            ("done", u(self.done)),
            ("failed", u(self.failed)),
            ("wait_ms", self.wait_ms.to_json()),
            ("max_wait_ms", u(self.max_wait_ms)),
            ("escalated", u(self.escalated)),
        ])
    }

    /// Decode a protocol document.
    ///
    /// # Errors
    ///
    /// Names the missing field.
    pub fn from_json(doc: &JsonValue) -> Result<TenantStats, String> {
        Ok(TenantStats {
            tenant: get_str(doc, "tenant")?.to_string(),
            queued: get_u64(doc, "queued")?,
            running: get_u64(doc, "running")?,
            done: get_u64(doc, "done")?,
            failed: get_u64(doc, "failed")?,
            wait_ms: HistSummary::from_json(doc.get("wait_ms").ok_or("missing wait_ms")?)?,
            max_wait_ms: get_u64(doc, "max_wait_ms")?,
            escalated: get_u64(doc, "escalated")?,
        })
    }
}

/// Service-level statistics (`GET /v1/stats`).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Resident worker threads.
    pub workers: u64,
    /// Tasks waiting in the fair queue right now.
    pub queue_depth: u64,
    /// Admission-control capacity (queued tasks).
    pub queue_cap: u64,
    /// True once `/v1/drain` was accepted.
    pub draining: bool,
    /// Jobs ever admitted (including resumed ones).
    pub jobs: u64,
    /// Jobs fully resolved.
    pub jobs_done: u64,
    /// Tasks resolved.
    pub tasks_done: u64,
    /// Tasks resolved from the result cache.
    pub hits: u64,
    /// Tasks freshly simulated.
    pub executed: u64,
    /// Tasks failed.
    pub failed: u64,
    /// `hits / tasks_done` (0 when nothing resolved yet).
    pub hit_rate: f64,
    /// Queue-wait distribution across all tenants, milliseconds.
    pub wait_ms: HistSummary,
    /// Per-task resolve-latency distribution, milliseconds.
    pub task_wall_ms: HistSummary,
    /// Per-job latency distribution (admission → completion), ms.
    pub job_wall_ms: HistSummary,
    /// Host throughput over executed tasks: simulated megacycles per
    /// second (PR-8 host-perf, aggregated).
    pub mcycles_per_sec: f64,
    /// Per-tenant fairness breakdown, sorted by tenant name.
    pub tenants: Vec<TenantStats>,
}

impl ServiceStats {
    /// Encode as a protocol document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("schema", SVC_SCHEMA.into()),
            ("uptime_ms", u(self.uptime_ms)),
            ("workers", u(self.workers)),
            ("queue_depth", u(self.queue_depth)),
            ("queue_cap", u(self.queue_cap)),
            ("draining", JsonValue::Bool(self.draining)),
            ("jobs", u(self.jobs)),
            ("jobs_done", u(self.jobs_done)),
            ("tasks_done", u(self.tasks_done)),
            ("hits", u(self.hits)),
            ("executed", u(self.executed)),
            ("failed", u(self.failed)),
            ("hit_rate", self.hit_rate.into()),
            ("wait_ms", self.wait_ms.to_json()),
            ("task_wall_ms", self.task_wall_ms.to_json()),
            ("job_wall_ms", self.job_wall_ms.to_json()),
            ("mcycles_per_sec", self.mcycles_per_sec.into()),
            (
                "tenants",
                JsonValue::Arr(self.tenants.iter().map(TenantStats::to_json).collect()),
            ),
        ])
    }

    /// Decode a protocol document.
    ///
    /// # Errors
    ///
    /// Names the missing field or schema mismatch.
    pub fn from_json(doc: &JsonValue) -> Result<ServiceStats, String> {
        check_schema(doc)?;
        let hist = |key: &str| -> Result<HistSummary, String> {
            HistSummary::from_json(doc.get(key).ok_or_else(|| format!("missing {key}"))?)
        };
        let tenants = doc
            .get("tenants")
            .and_then(|v| v.as_arr())
            .ok_or("missing tenants")?
            .iter()
            .map(TenantStats::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ServiceStats {
            uptime_ms: get_u64(doc, "uptime_ms")?,
            workers: get_u64(doc, "workers")?,
            queue_depth: get_u64(doc, "queue_depth")?,
            queue_cap: get_u64(doc, "queue_cap")?,
            draining: get_bool(doc, "draining")?,
            jobs: get_u64(doc, "jobs")?,
            jobs_done: get_u64(doc, "jobs_done")?,
            tasks_done: get_u64(doc, "tasks_done")?,
            hits: get_u64(doc, "hits")?,
            executed: get_u64(doc, "executed")?,
            failed: get_u64(doc, "failed")?,
            hit_rate: get_f64(doc, "hit_rate")?,
            wait_ms: hist("wait_ms")?,
            task_wall_ms: hist("task_wall_ms")?,
            job_wall_ms: hist("job_wall_ms")?,
            mcycles_per_sec: get_f64(doc, "mcycles_per_sec")?,
            tenants,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> HistSummary {
        let mut h = Histogram::new();
        for v in [10, 20, 40, 80, 160] {
            h.record(v);
        }
        HistSummary::of(&h)
    }

    fn round_trip(doc: JsonValue) -> JsonValue {
        JsonValue::parse(&doc.to_json()).expect("emitted JSON re-parses")
    }

    #[test]
    fn submit_request_round_trips_with_and_without_options() {
        let mut req = SubmitRequest::new("alice", "quad");
        req.budget = 2_000;
        req.repeat = 5;
        let back = SubmitRequest::from_json(&round_trip(req.to_json())).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.repeat, 5);

        let mut narrowed = SubmitRequest::new("bob", "homog");
        narrowed.prefetcher = Some("GHB".into());
        narrowed.emc = Some(true);
        narrowed.seed_bump = 7;
        let back = SubmitRequest::from_json(&round_trip(narrowed.to_json())).unwrap();
        assert_eq!(back, narrowed);
    }

    #[test]
    fn submit_request_rejects_bad_documents() {
        let wrong_schema = JsonValue::obj(vec![
            ("schema", "emc-campaignd-v0".into()),
            ("tenant", "a".into()),
            ("suite", "quad".into()),
        ]);
        assert!(SubmitRequest::from_json(&wrong_schema)
            .unwrap_err()
            .contains("schema"));

        let empty_tenant = JsonValue::obj(vec![
            ("schema", SVC_SCHEMA.into()),
            ("tenant", "".into()),
            ("suite", "quad".into()),
        ]);
        assert!(SubmitRequest::from_json(&empty_tenant)
            .unwrap_err()
            .contains("tenant"));

        // repeat defaults to 1 and can never decode to 0.
        let zero_repeat = JsonValue::obj(vec![
            ("schema", SVC_SCHEMA.into()),
            ("tenant", "a".into()),
            ("suite", "quad".into()),
            ("repeat", JsonValue::Num(0.0)),
        ]);
        assert_eq!(SubmitRequest::from_json(&zero_repeat).unwrap().repeat, 1);
    }

    #[test]
    fn ack_rejection_and_state_round_trip() {
        let ack = SubmitAck {
            id: "j42".into(),
            total: 80,
            queue_depth: 160,
        };
        assert_eq!(
            SubmitAck::from_json(&round_trip(ack.to_json())).unwrap(),
            ack
        );

        let rej = Rejection {
            error: "queue-full".into(),
            detail: "queue at capacity (4096)".into(),
            queue_depth: 4096,
            capacity: 4096,
        };
        assert_eq!(
            Rejection::from_json(&round_trip(rej.to_json())).unwrap(),
            rej
        );

        for state in [JobState::Queued, JobState::Running, JobState::Done] {
            assert_eq!(JobState::parse(state.as_str()), Some(state));
        }
        assert_eq!(JobState::parse("exploded"), None);
    }

    #[test]
    fn job_status_round_trips_with_optional_eta() {
        let mut status = JobStatusView {
            id: "j1".into(),
            tenant: "alice".into(),
            name: "quad".into(),
            state: JobState::Running,
            total: 80,
            done: 20,
            hits: 12,
            executed: 8,
            failed: 0,
            eta_ms: Some(4_500),
            wall_ms: 1_500,
        };
        let back = JobStatusView::from_json(&round_trip(status.to_json())).unwrap();
        assert_eq!(back, status);

        status.eta_ms = None;
        status.state = JobState::Done;
        let back = JobStatusView::from_json(&round_trip(status.to_json())).unwrap();
        assert_eq!(back.eta_ms, None);
        assert_eq!(back.state, JobState::Done);
    }

    #[test]
    fn event_batch_round_trips_in_sequence_order() {
        let events: Vec<ProgressEvent> = (1..=3)
            .map(|seq| ProgressEvent {
                seq,
                label: format!("H{seq}"),
                outcome: "completed".into(),
                done: seq,
                total: 3,
                hits: 0,
                failed: 0,
                eta_ms: (seq < 3).then_some(1_000 * (3 - seq)),
            })
            .collect();
        let batch = EventBatch {
            id: "j7".into(),
            next: 3,
            complete: true,
            events,
        };
        let back = EventBatch::from_json(&round_trip(batch.to_json())).unwrap();
        assert_eq!(back, batch);
        assert!(back.events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn service_stats_round_trip_preserves_tenant_breakdown() {
        let tenant = |name: &str, escalated: u64| TenantStats {
            tenant: name.into(),
            queued: 10,
            running: 2,
            done: 100,
            failed: 1,
            wait_ms: summary(),
            max_wait_ms: 160,
            escalated,
        };
        let stats = ServiceStats {
            uptime_ms: 60_000,
            workers: 4,
            queue_depth: 30,
            queue_cap: 4096,
            draining: false,
            jobs: 12,
            jobs_done: 9,
            tasks_done: 300,
            hits: 270,
            executed: 29,
            failed: 1,
            hit_rate: 0.9,
            wait_ms: summary(),
            task_wall_ms: summary(),
            job_wall_ms: summary(),
            mcycles_per_sec: 1.25,
            tenants: vec![tenant("alice", 0), tenant("bob", 3)],
        };
        let back = ServiceStats::from_json(&round_trip(stats.to_json())).unwrap();
        assert_eq!(back, stats);
        assert_eq!(back.tenants[1].escalated, 3);
    }

    #[test]
    fn hist_summary_matches_histogram_percentiles() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = HistSummary::of(&h);
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50, h.p50());
        assert_eq!(s.p95, h.p95());
        assert_eq!(s.max, 1000);
    }
}
