//! Address newtypes: byte addresses, cache-line addresses, page addresses.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of a cache line in bytes (Table 1: 64-byte lines).
pub const CACHE_LINE_BYTES: u64 = 64;

/// Size of a virtual-memory page in bytes (4 KB).
pub const PAGE_BYTES: u64 = 4096;

/// A byte address in the simulated (virtual = physical, identity-mapped)
/// address space.
///
/// The simulator identity-maps virtual to physical addresses; the TLB
/// machinery still models translation *timing* (EMC TLB misses halt chain
/// execution per §4.1.4 of the paper) while the functional image is indexed
/// by the same numeric address.
///
/// # Example
///
/// ```
/// use emc_types::Addr;
/// let a = Addr(0x1234);
/// assert_eq!(a.line().base().0, 0x1200);
/// assert_eq!(a.offset_in_line(), 0x34);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(pub u64);

/// A cache-line-aligned address, stored as `byte_address / 64`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(pub u64);

/// A page-aligned address, stored as `byte_address / 4096`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PageAddr(pub u64);

/// Fold a core id into a (per-core virtual) line address to form the
/// global physical line used by the shared LLC, the EMC data cache and
/// DRAM mapping.
///
/// The paper's workloads are multiprogrammed SPEC mixes: each core has a
/// private address space, so identical virtual addresses on different
/// cores must map to distinct physical lines (otherwise homogeneous mixes
/// would alias in the shared caches).
pub fn physical_line(core: usize, line: LineAddr) -> LineAddr {
    LineAddr(line.0 | ((core as u64 + 1) << 40))
}

impl Addr {
    /// The cache line containing this address.
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / CACHE_LINE_BYTES)
    }

    /// The page containing this address.
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 / PAGE_BYTES)
    }

    /// Byte offset of this address within its cache line.
    pub fn offset_in_line(self) -> u64 {
        self.0 % CACHE_LINE_BYTES
    }
}

impl LineAddr {
    /// First byte address of this line.
    pub fn base(self) -> Addr {
        Addr(self.0 * CACHE_LINE_BYTES)
    }

    /// The page containing this line.
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 * CACHE_LINE_BYTES / PAGE_BYTES)
    }
}

impl PageAddr {
    /// First byte address of this page.
    pub fn base(self) -> Addr {
        Addr(self.0 * PAGE_BYTES)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.base().0)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:#x}", self.base().0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_page_round_trip() {
        let a = Addr(0xdead_beef);
        assert_eq!(a.line().base().0, 0xdead_beef & !63);
        assert_eq!(a.page().base().0, 0xdead_beef & !4095);
        assert_eq!(a.line().page(), a.page());
    }

    #[test]
    fn offsets() {
        assert_eq!(Addr(63).offset_in_line(), 63);
        assert_eq!(Addr(64).offset_in_line(), 0);
        assert_eq!(Addr(64).line(), LineAddr(1));
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{:?}", Addr::default()).is_empty());
        assert_eq!(format!("{}", Addr(16)), "0x10");
        assert_eq!(format!("{}", LineAddr(1)), "L0x40");
        assert_eq!(format!("{}", PageAddr(1)), "P0x1000");
    }

    #[test]
    fn physical_lines_are_per_core_disjoint() {
        let l = LineAddr(0x1234);
        let a = physical_line(0, l);
        let b = physical_line(1, l);
        assert_ne!(a, b);
        assert_ne!(a, l, "physicalization moves even core 0");
        // Low bits (set index, row locality) are preserved.
        assert_eq!(a.0 & 0xffff_ffff, l.0);
    }

    #[test]
    fn line_page_relation_across_page_boundary() {
        // 64 lines per 4 KB page.
        let page0_last = Addr(4095);
        let page1_first = Addr(4096);
        assert_eq!(page0_last.page(), PageAddr(0));
        assert_eq!(page1_first.page(), PageAddr(1));
        assert_eq!(page0_last.line(), LineAddr(63));
        assert_eq!(page1_first.line(), LineAddr(64));
    }
}
