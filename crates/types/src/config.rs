//! System configuration mirroring Table 1 of the paper.
//!
//! All DRAM timings are expressed in *core* cycles at 3.2 GHz (the paper's
//! clock). DDR3-1600 with CAS 13.75 ns gives tCAS = tRCD = tRP ≈ 44 core
//! cycles; one 64-byte burst at an 800 MHz DDR bus takes 5 ns = 16 core
//! cycles.

use serde::{Deserialize, Serialize};

/// Which hardware prefetcher configuration is active (§5 of the paper:
/// stream always accompanies Markov because it strictly helps it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetcherKind {
    /// No prefetching (baseline).
    None,
    /// Global History Buffer G/DC delta-correlation prefetcher.
    Ghb,
    /// IBM POWER4-style stream prefetcher.
    Stream,
    /// Markov correlation prefetcher combined with the stream prefetcher.
    MarkovStream,
    /// PC-indexed stride prefetcher (extension; cited by the paper as the
    /// simplest prefetcher class but not part of its evaluation grid).
    Stride,
}

impl PrefetcherKind {
    /// The four configurations evaluated in the paper, in figure order
    /// (the stride extension is deliberately excluded).
    pub const ALL: [PrefetcherKind; 4] = [
        PrefetcherKind::None,
        PrefetcherKind::Ghb,
        PrefetcherKind::Stream,
        PrefetcherKind::MarkovStream,
    ];

    /// Short label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            PrefetcherKind::None => "No-PF",
            PrefetcherKind::Ghb => "GHB",
            PrefetcherKind::Stream => "Stream",
            PrefetcherKind::MarkovStream => "Markov+Stream",
            PrefetcherKind::Stride => "Stride",
        }
    }

    /// Inverse of [`label`](Self::label), used when decoding canonical
    /// config documents (see [`codec`](crate::codec)).
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "No-PF" => Some(PrefetcherKind::None),
            "GHB" => Some(PrefetcherKind::Ghb),
            "Stream" => Some(PrefetcherKind::Stream),
            "Markov+Stream" => Some(PrefetcherKind::MarkovStream),
            "Stride" => Some(PrefetcherKind::Stride),
            _ => None,
        }
    }
}

/// Core pipeline parameters (Table 1: 4-wide issue, 256-entry ROB,
/// 92-entry reservation station, hybrid branch predictor, 3.2 GHz).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Uops fetched/renamed per cycle.
    pub fetch_width: usize,
    /// Uops issued to execution per cycle.
    pub issue_width: usize,
    /// Uops retired per cycle.
    pub retire_width: usize,
    /// Reorder buffer entries.
    pub rob_entries: usize,
    /// Reservation station entries.
    pub rs_entries: usize,
    /// Load/store queue entries.
    pub lsq_entries: usize,
    /// Pipeline refill penalty after a branch misprediction (cycles).
    pub mispredict_penalty: u64,
    /// Branch predictor global-history table size (entries, power of two).
    pub bp_table_entries: usize,
    /// Runahead execution (Mutlu et al., HPCA 2003): on a full-window
    /// stall, checkpoint and pre-execute past the blocking miss to
    /// prefetch *independent* misses. The paper's §1/§2 contrast: runahead
    /// cannot touch dependent misses, which is exactly what the EMC adds.
    pub runahead: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            fetch_width: 4,
            issue_width: 4,
            retire_width: 4,
            rob_entries: 256,
            rs_entries: 92,
            lsq_entries: 64,
            mispredict_penalty: 14,
            bp_table_entries: 4096,
            runahead: false,
        }
    }
}

/// Parameters of one cache (L1 or one LLC slice).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Access latency in core cycles.
    pub latency: u64,
    /// Number of MSHR entries (outstanding misses).
    pub mshrs: usize,
}

impl CacheConfig {
    /// 32 KB, 8-way, 3-cycle L1 (Table 1).
    pub fn l1() -> Self {
        CacheConfig {
            bytes: 32 * 1024,
            ways: 8,
            latency: 3,
            mshrs: 16,
        }
    }

    /// 1 MB, 8-way, 18-cycle LLC slice (Table 1).
    pub fn llc_slice() -> Self {
        CacheConfig {
            bytes: 1024 * 1024,
            ways: 8,
            latency: 18,
            mshrs: 32,
        }
    }

    /// Number of sets given 64-byte lines.
    pub fn sets(&self) -> usize {
        (self.bytes / crate::addr::CACHE_LINE_BYTES) as usize / self.ways
    }
}

/// Ring interconnect parameters (Table 1: two bi-directional rings,
/// 8-byte control and 64-byte data, 1-cycle links).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingConfig {
    /// Latency of one ring link hop, in cycles.
    pub link_cycles: u64,
    /// Extra cycle to bypass from a core into its own LLC slice stop.
    pub stop_cycles: u64,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            link_cycles: 1,
            stop_cycles: 1,
        }
    }
}

/// DRAM device and channel parameters, in core cycles (3.2 GHz).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank (DDR3: 8).
    pub banks_per_rank: usize,
    /// Row-buffer size in bytes (Table 1: 8 KB).
    pub row_bytes: u64,
    /// Column access strobe latency (core cycles). 13.75 ns ≈ 44.
    pub t_cas: u64,
    /// Row-to-column delay (core cycles).
    pub t_rcd: u64,
    /// Row precharge time (core cycles).
    pub t_rp: u64,
    /// Minimum row-open time before precharge (core cycles). 35 ns ≈ 112.
    pub t_ras: u64,
    /// Data-bus occupancy of one 64-byte burst (core cycles). 5 ns ≈ 16.
    pub t_burst: u64,
    /// Memory-controller queue entries (Table 1: 128 quad / 256 eight).
    pub queue_entries: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 2,
            ranks_per_channel: 1,
            banks_per_rank: 8,
            row_bytes: 8 * 1024,
            t_cas: 44,
            t_rcd: 44,
            t_rp: 44,
            t_ras: 112,
            t_burst: 16,
            queue_entries: 128,
        }
    }
}

impl DramConfig {
    /// Total banks across the system.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }
}

/// Prefetcher parameters (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Stream prefetcher: concurrent streams tracked per core.
    pub stream_count: usize,
    /// Stream prefetcher: maximum prefetch distance.
    pub stream_distance: u64,
    /// Markov prefetcher: correlation-table entries (1 MB / entry size).
    pub markov_entries: usize,
    /// Markov prefetcher: next-address slots per entry.
    pub markov_fanout: usize,
    /// GHB: global history buffer entries.
    pub ghb_entries: usize,
    /// GHB: index-table entries.
    pub ghb_index_entries: usize,
    /// FDP: minimum dynamic degree.
    pub fdp_min_degree: usize,
    /// FDP: maximum dynamic degree (Table 1: 1..32).
    pub fdp_max_degree: usize,
    /// FDP: accuracy threshold above which degree is increased.
    pub fdp_high_accuracy: f64,
    /// FDP: accuracy threshold below which degree is decreased.
    pub fdp_low_accuracy: f64,
    /// FDP: interval (in prefetch fills) between feedback adjustments.
    pub fdp_interval: u64,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            stream_count: 32,
            stream_distance: 32,
            markov_entries: 32 * 1024,
            markov_fanout: 4,
            ghb_entries: 1024,
            ghb_index_entries: 512,
            fdp_min_degree: 1,
            fdp_max_degree: 32,
            fdp_high_accuracy: 0.75,
            fdp_low_accuracy: 0.40,
            fdp_interval: 256,
        }
    }
}

/// Enhanced Memory Controller parameters (Table 1 and §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmcConfig {
    /// Whether the EMC is present at all.
    pub enabled: bool,
    /// Issue contexts per EMC (2 quad-core; 4 total eight-core).
    pub contexts: usize,
    /// Uop-buffer entries per context (= max chain length).
    pub uop_buffer: usize,
    /// Physical registers per context.
    pub prf_entries: usize,
    /// Live-in vector entries per context.
    pub live_in_entries: usize,
    /// LSQ entries per context.
    pub lsq_entries: usize,
    /// Shared reservation-station entries.
    pub rs_entries: usize,
    /// Back-end issue width (2-wide).
    pub issue_width: usize,
    /// TLB entries per core.
    pub tlb_entries: usize,
    /// Data-cache capacity in bytes (4 KB).
    pub dcache_bytes: u64,
    /// Data-cache associativity (4-way).
    pub dcache_ways: usize,
    /// Data-cache access latency (2 cycles).
    pub dcache_latency: u64,
    /// Miss-predictor table entries per core (3-bit counters, PC-hashed).
    pub miss_pred_entries: usize,
    /// Miss-predictor counter threshold to bypass the LLC.
    pub miss_pred_threshold: u8,
    /// Dependent-miss 3-bit saturating counter: generation begins when
    /// either of the top 2 bits is set, i.e. counter >= this value.
    pub dep_counter_trigger: u8,
    /// How many outstanding misses in the stalled window are considered
    /// as chain sources (1 = strictly the ROB head, a literal reading of
    /// the paper; higher values find the pointer-chase chain when the
    /// head is a leaf payload miss — see DESIGN.md deviation 4).
    pub chain_candidates: usize,
    /// Graceful degradation: after this many *consecutive* chain
    /// failures (aborts/cancels with no completed chain in between) on
    /// one core, the EMC quiesces chain generation for that core for a
    /// backoff window instead of thrashing the abort path.
    #[serde(default = "default_quiesce_threshold")]
    pub quiesce_threshold: u32,
    /// Initial quiesce backoff window in cycles; doubles on every
    /// repeated quiesce (saturating at [`EmcConfig::quiesce_backoff_max`])
    /// and resets when a chain completes.
    #[serde(default = "default_quiesce_backoff")]
    pub quiesce_backoff: u64,
    /// Saturation point for the quiesce backoff window.
    #[serde(default = "default_quiesce_backoff_max")]
    pub quiesce_backoff_max: u64,
}

fn default_quiesce_threshold() -> u32 {
    8
}
fn default_quiesce_backoff() -> u64 {
    512
}
fn default_quiesce_backoff_max() -> u64 {
    16_384
}

impl Default for EmcConfig {
    fn default() -> Self {
        EmcConfig {
            enabled: true,
            contexts: 2,
            uop_buffer: 16,
            prf_entries: 16,
            live_in_entries: 16,
            lsq_entries: 8,
            rs_entries: 8,
            issue_width: 2,
            tlb_entries: 32,
            dcache_bytes: 4096,
            dcache_ways: 4,
            dcache_latency: 2,
            miss_pred_entries: 256,
            miss_pred_threshold: 4,
            dep_counter_trigger: 2,
            chain_candidates: 4,
            quiesce_threshold: default_quiesce_threshold(),
            quiesce_backoff: default_quiesce_backoff(),
            quiesce_backoff_max: default_quiesce_backoff_max(),
        }
    }
}

/// Deterministic fault-injection plan: every fault is *timing-only* —
/// it delays, re-issues, or aborts work that the existing retry and
/// chain-abort/re-execute paths then recover, so architectural state is
/// bit-identical to a fault-free run. All draws come from seeded
/// [`substream`](crate::rng::substream)s of [`SystemConfig::seed`], so
/// a faulty run is exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master switch; when false no fault RNG is even constructed and
    /// the simulation is cycle-identical to a build without this field.
    pub enabled: bool,
    /// Per-message probability that a ring hop is delayed (models a
    /// flit retry after a link-level CRC error).
    pub ring_delay_prob: f64,
    /// Extra cycles added to a delayed ring message.
    pub ring_delay_cycles: u64,
    /// Per-DRAM-issue probability that the access is re-issued (models
    /// an ECC correction + retransmit) with a latency penalty.
    pub dram_reissue_prob: f64,
    /// Extra cycles of service latency for a re-issued DRAM access.
    pub dram_reissue_penalty: u64,
    /// Per-cycle, per-busy-context probability that an EMC issue
    /// context is killed mid-chain; the chain aborts through the normal
    /// abort path and the home core re-executes the uops locally.
    pub emc_kill_prob: f64,
    /// Per-cycle, per-MC probability that a queue-full backpressure
    /// storm starts: the controller advertises a reduced effective
    /// queue capacity for a window, forcing enqueue rejections/retries.
    pub mc_storm_prob: f64,
    /// Length of a backpressure storm in cycles.
    pub mc_storm_cycles: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            enabled: false,
            ring_delay_prob: 0.0,
            ring_delay_cycles: 0,
            dram_reissue_prob: 0.0,
            dram_reissue_penalty: 0,
            emc_kill_prob: 0.0,
            mc_storm_prob: 0.0,
            mc_storm_cycles: 0,
        }
    }
}

impl FaultPlan {
    /// A moderate chaos preset: every fault class active at rates that
    /// stress the recovery paths without starving forward progress.
    pub fn chaos() -> Self {
        FaultPlan {
            enabled: true,
            ring_delay_prob: 0.02,
            ring_delay_cycles: 24,
            dram_reissue_prob: 0.01,
            dram_reissue_penalty: 100,
            emc_kill_prob: 0.001,
            mc_storm_prob: 0.0005,
            mc_storm_cycles: 200,
        }
    }

    /// True iff any fault class can actually fire.
    pub fn any_active(&self) -> bool {
        self.enabled
            && (self.ring_delay_prob > 0.0
                || self.dram_reissue_prob > 0.0
                || self.emc_kill_prob > 0.0
                || self.mc_storm_prob > 0.0)
    }

    /// Validate the plan.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range parameter.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("ring_delay_prob", self.ring_delay_prob),
            ("dram_reissue_prob", self.dram_reissue_prob),
            ("emc_kill_prob", self.emc_kill_prob),
            ("mc_storm_prob", self.mc_storm_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(format!(
                    "fault {name} must be a probability in [0, 1], got {p}"
                ));
            }
        }
        Ok(())
    }
}

fn default_true() -> bool {
    true
}

fn default_mc_escalation_age() -> u64 {
    8_192
}

fn default_emc_lease() -> u64 {
    32_768
}

fn default_ring_backlog_threshold() -> u64 {
    1_024
}

fn default_core_stall_age() -> u64 {
    250_000
}

fn default_probe_interval() -> u64 {
    10_000
}

/// Forward-progress (liveness) enforcement and diagnosis parameters.
///
/// Two mechanisms actively guarantee progress — memory-queue aging
/// (escalation past row-hit preference once a request has waited
/// `mc_escalation_age` cycles) and EMC context leases (a shipped chain
/// making no progress for `emc_lease` cycles is deterministically killed
/// and re-executed at the core). The remaining thresholds only classify
/// an already-stalled run for the wedge root-cause report; they never
/// change simulated behaviour.
///
/// Both mechanisms are timing-only and architecturally invisible: they
/// reorder or re-execute work through existing paths, never drop it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LivenessConfig {
    /// Master switch for aging and leases (probes always run).
    #[serde(default = "default_true")]
    pub enabled: bool,
    /// Memory-queue age (cycles) at which a request escalates ahead of
    /// row-hit preference and batch boundaries.
    #[serde(default = "default_mc_escalation_age")]
    pub mc_escalation_age: u64,
    /// Cycles an occupied EMC context may go without a progress event
    /// (ship arrival, source delivery, load completion, result drain)
    /// before its chain is killed and re-executed at the core.
    #[serde(default = "default_emc_lease")]
    pub emc_lease: u64,
    /// Ring link backlog (cycles of queued occupancy) the classifier
    /// treats as pathological backpressure.
    #[serde(default = "default_ring_backlog_threshold")]
    pub ring_backlog_threshold: u64,
    /// Cycles since last retirement beyond which the classifier deems a
    /// core deadlocked rather than slow.
    #[serde(default = "default_core_stall_age")]
    pub core_stall_age: u64,
    /// Cadence (cycles) of the watchdog's liveness probe sampling.
    #[serde(default = "default_probe_interval")]
    pub probe_interval: u64,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        LivenessConfig {
            enabled: default_true(),
            mc_escalation_age: default_mc_escalation_age(),
            emc_lease: default_emc_lease(),
            ring_backlog_threshold: default_ring_backlog_threshold(),
            core_stall_age: default_core_stall_age(),
            probe_interval: default_probe_interval(),
        }
    }
}

impl LivenessConfig {
    /// A disabled configuration: no aging, no leases. Probes and
    /// classification still run (they are read-only).
    pub fn disabled() -> Self {
        LivenessConfig {
            enabled: false,
            ..Self::default()
        }
    }

    /// Validate threshold sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistent parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled && (self.mc_escalation_age == 0 || self.emc_lease == 0) {
            return Err("liveness thresholds must be > 0 when enabled".into());
        }
        if self.probe_interval == 0 {
            return Err("liveness probe_interval must be > 0".into());
        }
        Ok(())
    }
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores (4 or 8 in the paper).
    pub cores: usize,
    /// Number of (enhanced) memory controllers; channels are split evenly.
    pub memory_controllers: usize,
    /// Core pipeline parameters.
    pub core: CoreConfig,
    /// L1 instruction/data cache parameters (modeled identically).
    pub l1: CacheConfig,
    /// One shared-LLC slice per core.
    pub llc_slice: CacheConfig,
    /// Ring interconnect.
    pub ring: RingConfig,
    /// DRAM system.
    pub dram: DramConfig,
    /// Active prefetcher configuration.
    pub prefetcher: PrefetcherKind,
    /// Prefetcher parameters.
    pub prefetch: PrefetchConfig,
    /// EMC parameters.
    pub emc: EmcConfig,
    /// RNG seed for every stochastic element of the simulation.
    pub seed: u64,
    /// Idealization for Figure 2's limit study: loads that are data-
    /// dependent on an in-flight LLC miss are served as LLC hits.
    pub ideal_dependent_hits: bool,
    /// Deterministic timing-fault injection (disabled by default).
    #[serde(default)]
    pub faults: FaultPlan,
    /// Forward-progress enforcement and diagnosis (enabled by default).
    #[serde(default)]
    pub liveness: LivenessConfig,
}

impl SystemConfig {
    /// The paper's quad-core system (Figure 7, Table 1): 4 cores, one MC
    /// with two DDR3 channels, 128-entry memory queue, 2 EMC contexts.
    pub fn quad_core() -> Self {
        SystemConfig {
            cores: 4,
            memory_controllers: 1,
            core: CoreConfig::default(),
            l1: CacheConfig::l1(),
            llc_slice: CacheConfig::llc_slice(),
            ring: RingConfig::default(),
            dram: DramConfig::default(),
            prefetcher: PrefetcherKind::None,
            prefetch: PrefetchConfig::default(),
            emc: EmcConfig::default(),
            seed: 0x00c0_ffee,
            ideal_dependent_hits: false,
            faults: FaultPlan::default(),
            liveness: LivenessConfig::default(),
        }
    }

    /// The paper's eight-core single-MC system (Figure 11a): 4 channels,
    /// 256-entry queue, one EMC with 4 contexts.
    pub fn eight_core_1mc() -> Self {
        let mut cfg = Self::quad_core();
        cfg.cores = 8;
        cfg.dram.channels = 4;
        cfg.dram.queue_entries = 256;
        cfg.emc.contexts = 4;
        cfg
    }

    /// The paper's eight-core dual-MC system (Figure 11b): two EMCs with
    /// 2 contexts each, 2 channels per MC.
    pub fn eight_core_2mc() -> Self {
        let mut cfg = Self::eight_core_1mc();
        cfg.memory_controllers = 2;
        cfg.emc.contexts = 2;
        cfg
    }

    /// Disable the EMC (baseline systems).
    pub fn without_emc(mut self) -> Self {
        self.emc.enabled = false;
        self
    }

    /// Select a prefetcher configuration.
    pub fn with_prefetcher(mut self, pf: PrefetcherKind) -> Self {
        self.prefetcher = pf;
        self
    }

    /// Enable a fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Set DRAM channels/ranks for the Figure 20 sensitivity sweep,
    /// scaling the memory queue commensurately as the paper does.
    pub fn with_dram_geometry(mut self, channels: usize, ranks: usize) -> Self {
        self.dram.channels = channels;
        self.dram.ranks_per_channel = ranks;
        self.dram.queue_entries = 64 * channels.max(1);
        self
    }

    /// Channels owned by memory controller `mc` (split evenly, remainder
    /// to the lower-numbered MCs).
    pub fn channels_of_mc(&self, mc: usize) -> std::ops::Range<usize> {
        let per = self.dram.channels / self.memory_controllers;
        let extra = self.dram.channels % self.memory_controllers;
        let start = mc * per + mc.min(extra);
        let len = per + usize::from(mc < extra);
        start..start + len
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistent parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("cores must be > 0".into());
        }
        if self.memory_controllers == 0 || self.memory_controllers > self.dram.channels {
            return Err("memory_controllers must be in 1..=channels".into());
        }
        if self.emc.uop_buffer == 0 || self.emc.prf_entries == 0 {
            return Err("EMC buffers must be non-empty".into());
        }
        if !self.l1.sets().is_power_of_two() || !self.llc_slice.sets().is_power_of_two() {
            return Err("cache set counts must be powers of two".into());
        }
        if self.core.rob_entries == 0 || self.core.rs_entries == 0 {
            return Err("core window must be non-empty".into());
        }
        self.faults.validate()?;
        self.liveness.validate()?;
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::quad_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_quad_core_parameters() {
        let c = SystemConfig::quad_core();
        c.validate().unwrap();
        assert_eq!(c.cores, 4);
        assert_eq!(c.core.rob_entries, 256);
        assert_eq!(c.core.rs_entries, 92);
        assert_eq!(c.core.issue_width, 4);
        assert_eq!(c.l1.bytes, 32 * 1024);
        assert_eq!(c.llc_slice.bytes, 1024 * 1024);
        assert_eq!(c.llc_slice.latency, 18);
        assert_eq!(c.dram.channels, 2);
        assert_eq!(c.dram.queue_entries, 128);
        assert_eq!(c.emc.contexts, 2);
        assert_eq!(c.emc.uop_buffer, 16);
        assert_eq!(c.emc.lsq_entries, 8);
        assert_eq!(c.emc.tlb_entries, 32);
        assert_eq!(c.emc.dcache_bytes, 4096);
        assert_eq!(c.emc.issue_width, 2);
    }

    #[test]
    fn eight_core_presets() {
        let one = SystemConfig::eight_core_1mc();
        one.validate().unwrap();
        assert_eq!(one.cores, 8);
        assert_eq!(one.dram.channels, 4);
        assert_eq!(one.dram.queue_entries, 256);
        assert_eq!(one.emc.contexts, 4);
        assert_eq!(one.memory_controllers, 1);

        let two = SystemConfig::eight_core_2mc();
        two.validate().unwrap();
        assert_eq!(two.memory_controllers, 2);
        assert_eq!(two.emc.contexts, 2);
        assert_eq!(two.channels_of_mc(0), 0..2);
        assert_eq!(two.channels_of_mc(1), 2..4);
    }

    #[test]
    fn channel_split_with_remainder() {
        let mut c = SystemConfig::quad_core();
        c.dram.channels = 3;
        c.memory_controllers = 2;
        assert_eq!(c.channels_of_mc(0), 0..2);
        assert_eq!(c.channels_of_mc(1), 2..3);
    }

    #[test]
    fn builders() {
        let c = SystemConfig::quad_core()
            .without_emc()
            .with_prefetcher(PrefetcherKind::Ghb)
            .with_dram_geometry(4, 4);
        assert!(!c.emc.enabled);
        assert_eq!(c.prefetcher, PrefetcherKind::Ghb);
        assert_eq!(c.dram.channels, 4);
        assert_eq!(c.dram.ranks_per_channel, 4);
        assert_eq!(c.dram.queue_entries, 256);
        assert_eq!(c.dram.total_banks(), 128);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = SystemConfig::quad_core();
        c.cores = 0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::quad_core();
        c.memory_controllers = 5;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::quad_core();
        c.l1.bytes = 3000; // not a power-of-two set count
        assert!(c.validate().is_err());

        let mut c = SystemConfig::quad_core();
        c.faults.ring_delay_prob = 1.5;
        let err = c.validate().unwrap_err();
        assert!(
            err.contains("ring_delay_prob"),
            "error names the field: {err}"
        );
    }

    #[test]
    fn fault_plan_defaults_are_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.enabled);
        assert!(!plan.any_active());
        plan.validate().unwrap();
        // A config carrying the default plan is valid and identical to
        // the preset.
        assert_eq!(SystemConfig::quad_core().faults, plan);
    }

    #[test]
    fn fault_plan_chaos_is_valid_and_active() {
        let plan = FaultPlan::chaos();
        plan.validate().unwrap();
        assert!(plan.any_active());
        let cfg = SystemConfig::quad_core().with_faults(plan);
        cfg.validate().unwrap();
        assert_eq!(cfg.faults, plan);
    }

    #[test]
    fn fault_plan_serde_round_trip() {
        use crate::codec::{config_from_json, config_to_json, fault_plan_to_json};
        use crate::json::JsonValue;
        let cfg = SystemConfig::quad_core().with_faults(FaultPlan::chaos());
        let json = config_to_json(&cfg).to_json();
        let back = config_from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, cfg);
        // Configs serialized before the fault layer existed (no
        // `faults` key) still deserialize, with faults disabled.
        let legacy = json.replace(
            &format!(",\"faults\":{}", fault_plan_to_json(&cfg.faults).to_json()),
            "",
        );
        assert!(!legacy.contains("faults"), "failed to strip faults key");
        let back = config_from_json(&JsonValue::parse(&legacy).unwrap()).unwrap();
        assert_eq!(back.faults, FaultPlan::default());
    }

    #[test]
    fn cache_geometry() {
        let l1 = CacheConfig::l1();
        assert_eq!(l1.sets(), 64);
        let llc = CacheConfig::llc_slice();
        assert_eq!(llc.sets(), 2048);
    }

    #[test]
    fn prefetcher_labels() {
        for pf in PrefetcherKind::ALL {
            assert!(!pf.label().is_empty());
        }
        assert_eq!(PrefetcherKind::MarkovStream.label(), "Markov+Stream");
    }

    #[test]
    fn ddr3_timings_in_core_cycles() {
        let d = DramConfig::default();
        // 13.75 ns at 3.2 GHz = 44 cycles.
        assert_eq!(d.t_cas, 44);
        assert_eq!(d.t_rcd, 44);
        assert_eq!(d.t_rp, 44);
        assert!(d.t_ras >= 2 * d.t_cas);
    }
}
