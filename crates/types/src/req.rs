//! Memory-system request types and per-request latency timelines.
//!
//! A [`MemReq`] is created when a load misses the private caches (or when a
//! prefetcher or the EMC issues a request) and flows through the ring, the
//! LLC, the memory-controller queue and DRAM. Its [`ReqTimeline`] records
//! when it crossed each boundary so the figure harnesses can attribute
//! latency exactly as the paper does (Figures 1, 18 and 19).

use crate::addr::LineAddr;
use crate::{CoreId, Cycle};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier for a memory request.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ReqId(pub u64);

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Who issued a memory request. Latency attribution and several figures
/// (15, 18, 21) distinguish core-issued, EMC-issued and prefetch requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Requester {
    /// A demand request issued by a core pipeline.
    Core(CoreId),
    /// A demand request issued by the EMC on behalf of `home_core`
    /// (the chain's owner), from the EMC at memory controller `mc`.
    Emc {
        /// Core whose dependence chain generated the request.
        home_core: CoreId,
        /// Which enhanced memory controller issued it (multi-MC systems).
        mc: usize,
    },
    /// A prefetch request trained by core `CoreId`'s miss stream.
    Prefetcher(CoreId),
}

impl Requester {
    /// The core whose execution this request serves (prefetches train on a
    /// particular core's stream; EMC requests belong to their home core).
    pub fn home_core(self) -> CoreId {
        match self {
            Requester::Core(c) | Requester::Prefetcher(c) => c,
            Requester::Emc { home_core, .. } => home_core,
        }
    }

    /// Whether this request was issued by the EMC.
    pub fn is_emc(self) -> bool {
        matches!(self, Requester::Emc { .. })
    }

    /// Whether this request is a prefetch.
    pub fn is_prefetch(self) -> bool {
        matches!(self, Requester::Prefetcher(_))
    }
}

/// The type of memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Demand read (load miss or instruction fetch miss).
    Read,
    /// Write-back of a dirty line evicted from the LLC.
    Write,
    /// Prefetch read (fills into the LLC per Table 1 / FDP).
    Prefetch,
}

/// Cycle stamps recorded as a request crosses each subsystem boundary.
///
/// All stamps are in core-clock cycles. `None` means the request has not
/// reached that boundary (or skipped it: EMC requests predicted to miss
/// bypass the LLC entirely, §4.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReqTimeline {
    /// Cycle the request was created by its requester.
    pub created: Cycle,
    /// Cycle it arrived at the LLC slice (after ring traversal), if it
    /// accessed the LLC.
    pub llc_arrive: Option<Cycle>,
    /// Cycle it entered the memory-controller queue.
    pub mc_enqueue: Option<Cycle>,
    /// Cycle the first DRAM command for it was issued.
    pub dram_issue: Option<Cycle>,
    /// Cycle its data returned from DRAM to the memory controller.
    pub dram_done: Option<Cycle>,
    /// Cycle the data became consumable by the requester (back at the core
    /// through the fill path, or at the EMC immediately on `dram_done`).
    pub delivered: Option<Cycle>,
    /// Whether the DRAM access hit the open row buffer (None until issued;
    /// also None for LLC hits that never touched DRAM).
    pub row_hit: Option<bool>,
}

impl ReqTimeline {
    /// Start a timeline at `created`.
    pub fn start(created: Cycle) -> Self {
        ReqTimeline {
            created,
            ..Default::default()
        }
    }

    /// Pure DRAM service latency (command issue to data return), if the
    /// request went to DRAM.
    pub fn dram_latency(&self) -> Option<Cycle> {
        Some(self.dram_done?.saturating_sub(self.dram_issue?))
    }

    /// Total latency from creation to delivery, if delivered.
    pub fn total_latency(&self) -> Option<Cycle> {
        Some(self.delivered?.saturating_sub(self.created))
    }

    /// On-chip delay: total latency minus pure DRAM service latency
    /// (the decomposition of Figure 1). For requests that never touched
    /// DRAM (LLC hits) this is the entire latency.
    pub fn on_chip_delay(&self) -> Option<Cycle> {
        let total = self.total_latency()?;
        Some(total.saturating_sub(self.dram_latency().unwrap_or(0)))
    }

    /// Queueing delay at the memory controller (enqueue to first DRAM
    /// command), if it reached DRAM.
    pub fn mc_queue_delay(&self) -> Option<Cycle> {
        Some(self.dram_issue?.saturating_sub(self.mc_enqueue?))
    }
}

/// A memory request flowing through the simulated memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemReq {
    /// Unique id.
    pub id: ReqId,
    /// The cache line being accessed.
    pub line: LineAddr,
    /// Access type.
    pub kind: AccessKind,
    /// Who issued it.
    pub requester: Requester,
    /// PC of the instruction that caused it (0 for write-backs), used by
    /// prefetcher training and the EMC miss predictor.
    pub pc: u64,
    /// Latency stamps.
    pub timeline: ReqTimeline,
}

impl MemReq {
    /// Create a demand read request.
    pub fn read(id: ReqId, line: LineAddr, requester: Requester, pc: u64, now: Cycle) -> Self {
        MemReq {
            id,
            line,
            kind: AccessKind::Read,
            requester,
            pc,
            timeline: ReqTimeline::start(now),
        }
    }

    /// Create a write-back request.
    pub fn writeback(id: ReqId, line: LineAddr, requester: Requester, now: Cycle) -> Self {
        MemReq {
            id,
            line,
            kind: AccessKind::Write,
            requester,
            pc: 0,
            timeline: ReqTimeline::start(now),
        }
    }

    /// Create a prefetch request.
    pub fn prefetch(id: ReqId, line: LineAddr, core: CoreId, now: Cycle) -> Self {
        MemReq {
            id,
            line,
            kind: AccessKind::Prefetch,
            requester: Requester::Prefetcher(core),
            pc: 0,
            timeline: ReqTimeline::start(now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_decomposition() {
        let mut t = ReqTimeline::start(100);
        t.mc_enqueue = Some(150);
        t.dram_issue = Some(180);
        t.dram_done = Some(250);
        t.delivered = Some(300);
        assert_eq!(t.dram_latency(), Some(70));
        assert_eq!(t.total_latency(), Some(200));
        assert_eq!(t.on_chip_delay(), Some(130));
        assert_eq!(t.mc_queue_delay(), Some(30));
    }

    #[test]
    fn llc_hit_has_no_dram_component() {
        let mut t = ReqTimeline::start(10);
        t.llc_arrive = Some(20);
        t.delivered = Some(40);
        assert_eq!(t.dram_latency(), None);
        assert_eq!(t.total_latency(), Some(30));
        assert_eq!(t.on_chip_delay(), Some(30));
    }

    #[test]
    fn requester_classification() {
        let c = Requester::Core(2);
        let e = Requester::Emc {
            home_core: 1,
            mc: 0,
        };
        let p = Requester::Prefetcher(3);
        assert_eq!(c.home_core(), 2);
        assert_eq!(e.home_core(), 1);
        assert_eq!(p.home_core(), 3);
        assert!(e.is_emc() && !c.is_emc() && !p.is_emc());
        assert!(p.is_prefetch() && !e.is_prefetch());
    }

    #[test]
    fn constructors_set_kind() {
        let r = MemReq::read(ReqId(1), LineAddr(5), Requester::Core(0), 0x40, 7);
        assert_eq!(r.kind, AccessKind::Read);
        assert_eq!(r.timeline.created, 7);
        let w = MemReq::writeback(ReqId(2), LineAddr(5), Requester::Core(0), 9);
        assert_eq!(w.kind, AccessKind::Write);
        let p = MemReq::prefetch(ReqId(3), LineAddr(6), 1, 11);
        assert_eq!(p.kind, AccessKind::Prefetch);
        assert!(p.requester.is_prefetch());
    }

    #[test]
    fn incomplete_timeline_is_none() {
        let t = ReqTimeline::start(5);
        assert_eq!(t.total_latency(), None);
        assert_eq!(t.dram_latency(), None);
        assert_eq!(t.mc_queue_delay(), None);
    }
}
