//! Common types for the EMC reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: the micro-op ISA ([`Uop`](uop), [`UopKind`]), static programs
//! ([`Program`]), physical/line/page addresses ([`Addr`], [`LineAddr`],
//! [`PageAddr`]), the paged functional memory image ([`MemoryImage`]),
//! memory-system requests ([`MemReq`]) with their latency timelines,
//! system configuration ([`SystemConfig`]) mirroring Table 1 of the paper,
//! and the statistics counters ([`Stats`]) that the figure harnesses read.
//!
//! # Example
//!
//! ```
//! use emc_types::{SystemConfig, UopKind};
//!
//! let cfg = SystemConfig::quad_core();
//! assert_eq!(cfg.cores, 4);
//! assert!(UopKind::Load.emc_allowed());
//! assert!(!UopKind::FpAdd.emc_allowed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod codec;
pub mod config;
pub mod hist;
pub mod json;
pub mod mem_image;
pub mod outcome;
pub mod program;
pub mod req;
pub mod rng;
pub mod sample;
pub mod stats;
pub mod svc;
pub mod trace;
pub mod uop;

pub use addr::{physical_line, Addr, LineAddr, PageAddr, CACHE_LINE_BYTES, PAGE_BYTES};
pub use config::{
    CacheConfig, CoreConfig, DramConfig, EmcConfig, FaultPlan, LivenessConfig, PrefetchConfig,
    PrefetcherKind, RingConfig, SystemConfig,
};
pub use hist::{Histogram, HISTOGRAM_BUCKETS};
pub use json::{JsonValue, ToJson};
pub use mem_image::MemoryImage;
pub use outcome::{
    LivenessSnapshot, RunOutcome, RunReport, WedgeClass, WedgeCoreState, WedgeEmcContext,
    WedgeReport,
};
pub use program::{Program, StaticUop};
pub use req::{AccessKind, MemReq, ReqId, ReqTimeline, Requester};
pub use rng::{seeded_rng, substream};
pub use sample::MetricSample;
pub use stats::{CoreStats, EmcStats, MemStats, PrefetchStats, RingStats, Stats};
pub use svc::{
    EventBatch, HistSummary, JobState, JobStatusView, ProgressEvent, Rejection, ServiceStats,
    SubmitAck, SubmitRequest, TenantStats, SVC_SCHEMA,
};
pub use trace::{MissJourney, TraceEvent, TraceSink, TraceTrack, DEFAULT_TRACE_CAP};
pub use uop::{BranchCond, Reg, UopKind, NUM_ARCH_REGS};

/// A simulation cycle count (core clock domain unless stated otherwise).
pub type Cycle = u64;

/// Identifier of a core in the simulated chip (0-based).
pub type CoreId = usize;
