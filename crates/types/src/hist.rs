//! Log2-bucketed latency histograms.
//!
//! The paper's latency claims are *distribution* claims (Figures 18–20
//! show the EMC shaving the tail of dependent-miss latency), so every
//! latency site in [`crate::stats`] records into a [`Histogram`] rather
//! than a bare count+sum pair. Buckets are powers of two: bucket 0 holds
//! the value 0 and bucket `i` (for `i >= 1`) holds `[2^(i-1), 2^i - 1]`
//! (the last bucket saturates at `u64::MAX`). That gives constant-size
//! state (65 buckets), O(1) recording, exact count/sum/min/max, and
//! percentile estimates whose error is bounded by the bucket width.

use serde::{Deserialize, Serialize};

/// Number of log2 buckets: one for zero plus one per bit of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// An accumulating latency histogram (log2 buckets, exact count/sum/
/// min/max, percentile estimates, mergeable).
///
/// The bucket vector is allocated lazily on the first
/// [`record`](Histogram::record), so a default (empty) histogram is as
/// cheap as the count+sum statistic it replaced.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Number of samples.
    pub count: u64,
    /// Sum of sample values.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts; empty until the first record.
    pub buckets: Vec<u64>,
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros(v)`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; HISTOGRAM_BUCKETS];
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Record one wall-clock duration sample that may come from an
    /// untrusted clock. Values at or above 2^63 (a clock anomaly: no
    /// real wait is 292 years in nanoseconds) are clamped to
    /// `2^63 - 1` before recording, so downstream `sum` arithmetic
    /// keeps headroom even when many anomalous samples merge, while
    /// `count` still advances by exactly one per call — a service
    /// wait-time histogram can never lose samples or panic because a
    /// host clock stepped backwards and a subtraction wrapped.
    pub fn saturating_record(&mut self, value: u64) {
        self.record(value.min((1u64 << 63) - 1));
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if self.buckets.is_empty() {
            self.buckets = vec![0; HISTOGRAM_BUCKETS];
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Mean value, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated value at percentile `p` in `[0, 100]`.
    ///
    /// Returns the inclusive upper bound of the bucket containing the
    /// `ceil(p/100 * count)`-th smallest sample, clamped to the observed
    /// `[min, max]` range — so `percentile(0)`/`percentile(100)` are
    /// exact and the estimate is monotone non-decreasing in `p`. Returns
    /// 0 with no samples.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        if p == 0.0 {
            // The generic path would return the first occupied bucket's
            // upper bound, which overshoots the exact, tracked minimum.
            return self.min;
        }
        let target = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th-percentile estimate (the tail the EMC targets).
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count, 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.p99(), 0);
        assert!(h.buckets.is_empty(), "no allocation before first record");
    }

    #[test]
    fn bucket_boundaries_at_zero_one_and_max() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.buckets[0], 1, "0 goes to bucket 0");
        assert_eq!(h.buckets[1], 1, "1 goes to bucket 1");
        assert_eq!(h.buckets[64], 1, "u64::MAX goes to the last bucket");
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
        // Sum saturates rather than wrapping.
        assert_eq!(h.sum, u64::MAX);
    }

    #[test]
    fn power_of_two_values_start_new_buckets() {
        for bit in 1..64u32 {
            let v = 1u64 << bit;
            assert_eq!(bucket_index(v), bit as usize + 1);
            assert_eq!(bucket_index(v - 1), bit as usize);
        }
    }

    #[test]
    fn mean_matches_exact_sum() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.sum, 60);
    }

    #[test]
    fn percentiles_bracket_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 1, "p0 is the min");
        assert_eq!(h.percentile(100.0), 1000, "p100 is the max");
        let p50 = h.p50();
        // 500 lives in bucket [256, 511]; the estimate is that bucket's
        // upper bound.
        assert!((500..=511).contains(&p50), "p50 was {p50}");
    }

    #[test]
    fn percentile_is_monotone_in_p() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 7, 100, 5000, 123_456, u64::MAX] {
            h.record(v);
        }
        let mut last = 0;
        for tenth in 0..=1000 {
            let p = tenth as f64 / 10.0;
            let v = h.percentile(p);
            assert!(v >= last, "percentile({p}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let mut h = Histogram::new();
        h.record(300);
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 300);
        }
        assert_eq!(h.min, 300);
        assert_eq!(h.max, 300);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[1, 2, 3]);
        let b = mk(&[100, 200]);
        let c = mk(&[0, u64::MAX]);
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // b + a == a + b
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn saturating_record_clamps_clock_anomalies_and_preserves_count() {
        let mut h = Histogram::new();
        // A wrapped `now - then` subtraction produces values like these;
        // none may panic or be dropped.
        for v in [u64::MAX, u64::MAX - 1, 1u64 << 63, (1u64 << 63) - 1] {
            h.saturating_record(v);
        }
        assert_eq!(h.count, 4, "every anomalous sample is counted");
        assert_eq!(h.max, (1 << 63) - 1, "clamped to 2^63 - 1");
        assert_eq!(h.min, (1 << 63) - 1);
        // All four land in bucket 63 ([2^62, 2^63 - 1]); the u64::MAX
        // bucket stays empty because the values were clamped.
        assert_eq!(h.buckets[63], 4);
        assert_eq!(h.buckets[64], 0);
        // Sane values pass through unchanged.
        h.saturating_record(42);
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 42);
        // Merging two anomaly-heavy histograms still cannot overflow
        // count/sum arithmetic (sum saturates, count adds exactly).
        let other = h.clone();
        h.merge(&other);
        assert_eq!(h.count, 10);
        assert!(h.percentile(99.0) < (1 << 63));
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut h = Histogram::new();
        h.record(42);
        let orig = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, orig, "merging in empty changes nothing");
        let mut e = Histogram::new();
        e.merge(&orig);
        assert_eq!(e, orig, "merging into empty copies");
        // In particular min must not become 0.
        assert_eq!(e.min, 42);
    }
}
