//! Typed run outcomes: every full-system run reports *how* it ended,
//! not just its statistics. A run that hits the cycle cap or wedges
//! (no core retires anything for a long window) can no longer be
//! mistaken for a completed measurement — harnesses must inspect the
//! [`RunOutcome`] (or call [`RunReport::expect_completed`], which fails
//! loudly with the full [`WedgeReport`] diagnosis).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::sample::MetricSample;
use crate::stats::Stats;
use crate::Cycle;

/// How a simulation run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// Every core reached its retired-uop budget (or finished its
    /// program). The statistics are a valid measurement.
    Completed,
    /// The cycle cap elapsed before every core reached its budget. The
    /// statistics cover a truncated window and must not be published as
    /// a completed measurement.
    CapHit,
    /// The forward-progress watchdog fired: no core retired a single
    /// uop for the whole watchdog window. The run was aborted and a
    /// [`WedgeReport`] captured the scheduler state at the wedge point.
    Wedged,
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Completed => f.write_str("completed"),
            RunOutcome::CapHit => f.write_str("cycle-cap hit"),
            RunOutcome::Wedged => f.write_str("wedged"),
        }
    }
}

/// Per-core state captured when the watchdog declares a wedge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WedgeCoreState {
    /// Core index.
    pub core: usize,
    /// Benchmark running on this core.
    pub bench: String,
    /// Uops retired so far (measurement window).
    pub retired_uops: u64,
    /// ROB occupancy at the wedge point.
    pub rob_len: usize,
    /// Whether the core's program had already run to completion.
    pub finished: bool,
    /// Number of uops in the chain this core has in flight at an EMC,
    /// if any.
    pub active_chain_uops: Option<usize>,
    /// Formatted description of the ROB head entry (kind, state,
    /// remote/llc-miss flags, address), if the ROB is non-empty.
    pub rob_head: Option<String>,
}

/// EMC issue-context occupancy captured at the wedge point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WedgeEmcContext {
    /// Which memory controller's EMC.
    pub mc: usize,
    /// Context slot index.
    pub ctx: usize,
    /// Home core of the chain occupying the slot.
    pub home_core: usize,
    /// Chain length in uops.
    pub chain_uops: usize,
    /// Whether the chain is still waiting for its source miss data.
    pub awaiting_source: bool,
}

/// Structured diagnosis of a wedged run: what every scheduler-visible
/// queue looked like when forward progress stopped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WedgeReport {
    /// Cycle at which the wedge was declared.
    pub cycle: Cycle,
    /// How many cycles passed with zero retirement before declaring it.
    pub stalled_for: Cycle,
    /// Per-core progress and ROB head state.
    pub cores: Vec<WedgeCoreState>,
    /// Memory-controller queue depths.
    pub mc_queue_depths: Vec<usize>,
    /// Memory-controller retry-queue depths (rejected enqueues).
    pub mc_retry_depths: Vec<usize>,
    /// Occupied EMC issue contexts.
    pub emc_contexts: Vec<WedgeEmcContext>,
    /// Cache lines with outstanding fills.
    pub outstanding_lines: usize,
    /// Events still queued in the scheduler.
    pub pending_events: usize,
    /// The last time-series samples captured before the wedge (oldest
    /// first), when the sampler was enabled: the queue-depth/occupancy
    /// history leading up to the stall, not just the final snapshot.
    #[serde(default)]
    pub recent_samples: Vec<MetricSample>,
}

impl fmt::Display for WedgeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "WEDGE at cycle {}: no core retired a uop for {} cycles",
            self.cycle, self.stalled_for
        )?;
        for c in &self.cores {
            write!(
                f,
                "  core {} ({}): retired={} rob_len={}{}{}",
                c.core,
                c.bench,
                c.retired_uops,
                c.rob_len,
                if c.finished { " finished" } else { "" },
                match c.active_chain_uops {
                    Some(n) => format!(" active_chain={n}uops"),
                    None => String::new(),
                },
            )?;
            match &c.rob_head {
                Some(h) => writeln!(f, " head[{h}]")?,
                None => writeln!(f)?,
            }
        }
        writeln!(
            f,
            "  mc queues: {:?} retry: {:?}",
            self.mc_queue_depths, self.mc_retry_depths
        )?;
        for e in &self.emc_contexts {
            writeln!(
                f,
                "  emc {} ctx {}: home_core={} chain={}uops awaiting_source={}",
                e.mc, e.ctx, e.home_core, e.chain_uops, e.awaiting_source
            )?;
        }
        write!(
            f,
            "  outstanding lines: {}  pending events: {}",
            self.outstanding_lines, self.pending_events
        )?;
        if !self.recent_samples.is_empty() {
            write!(f, "\n  queue history leading up to the wedge:")?;
            for s in &self.recent_samples {
                write!(f, "\n    {}", s.summary_line())?;
            }
        }
        Ok(())
    }
}

/// The result of a full-system run: final statistics plus a typed
/// outcome, and the wedge diagnosis when the watchdog fired.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// How the run terminated.
    pub outcome: RunOutcome,
    /// Statistics accumulated over the measurement window. For
    /// [`RunOutcome::CapHit`] and [`RunOutcome::Wedged`] these cover a
    /// truncated window.
    pub stats: Stats,
    /// Scheduler-state diagnosis, present iff `outcome` is `Wedged`.
    pub wedge: Option<WedgeReport>,
}

impl RunReport {
    /// True iff every core reached its budget.
    pub fn is_completed(&self) -> bool {
        self.outcome == RunOutcome::Completed
    }

    /// Unwrap the statistics of a completed run.
    ///
    /// # Panics
    ///
    /// Panics with the full diagnosis (including the [`WedgeReport`]
    /// for wedged runs, or per-core progress for cap-hit runs) if the
    /// run did not complete — a truncated run can never silently pass
    /// as a measurement.
    pub fn expect_completed(self) -> Stats {
        match self.outcome {
            RunOutcome::Completed => self.stats,
            RunOutcome::Wedged => {
                let report = self
                    .wedge
                    .map(|w| w.to_string())
                    .unwrap_or_else(|| "(no wedge report captured)".into());
                panic!("simulation wedged:\n{report}");
            }
            RunOutcome::CapHit => {
                let progress: Vec<u64> = self.stats.cores.iter().map(|c| c.retired_uops).collect();
                panic!(
                    "simulation hit the cycle cap after {} cycles before every core \
                     reached its budget; per-core retired uops: {:?}",
                    self.stats.cycles, progress
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_wedge() -> WedgeReport {
        WedgeReport {
            cycle: 123_456,
            stalled_for: 250_000,
            cores: vec![WedgeCoreState {
                core: 0,
                bench: "mcf".into(),
                retired_uops: 42,
                rob_len: 256,
                finished: false,
                active_chain_uops: Some(5),
                rob_head: Some("Load Issued remote=false llc_miss=true".into()),
            }],
            mc_queue_depths: vec![64],
            mc_retry_depths: vec![3],
            emc_contexts: vec![WedgeEmcContext {
                mc: 0,
                ctx: 1,
                home_core: 0,
                chain_uops: 5,
                awaiting_source: true,
            }],
            outstanding_lines: 17,
            pending_events: 4,
            recent_samples: vec![MetricSample {
                cycle: 120_000,
                mc_queue_depth: vec![64],
                mc_retry_depth: vec![3],
                banks_open: vec![2],
                emc_busy_contexts: vec![1],
                ring_busy_links: 0,
                outstanding_misses: 17,
                llc_occupancy: vec![512],
                rob_occupancy: vec![256],
            }],
        }
    }

    #[test]
    fn wedge_report_display_names_every_queue() {
        let s = sample_wedge().to_string();
        assert!(s.contains("WEDGE at cycle 123456"));
        assert!(s.contains("core 0 (mcf)"));
        assert!(s.contains("mc queues: [64] retry: [3]"));
        assert!(s.contains("emc 0 ctx 1"));
        assert!(s.contains("outstanding lines: 17"));
    }

    #[test]
    fn wedge_report_display_includes_sample_history() {
        let s = sample_wedge().to_string();
        assert!(s.contains("queue history leading up to the wedge"));
        assert!(s.contains("cycle 120000: mcq=[64]"));
        let mut bare = sample_wedge();
        bare.recent_samples.clear();
        assert!(!bare.to_string().contains("queue history"));
    }

    #[test]
    #[should_panic(expected = "simulation wedged")]
    fn expect_completed_panics_on_wedge_with_report() {
        let report = RunReport {
            outcome: RunOutcome::Wedged,
            stats: Stats::new(1),
            wedge: Some(sample_wedge()),
        };
        let _ = report.expect_completed();
    }

    #[test]
    #[should_panic(expected = "cycle cap")]
    fn expect_completed_panics_on_cap_hit() {
        let report = RunReport {
            outcome: RunOutcome::CapHit,
            stats: Stats::new(2),
            wedge: None,
        };
        let _ = report.expect_completed();
    }

    #[test]
    fn completed_run_unwraps() {
        let report = RunReport {
            outcome: RunOutcome::Completed,
            stats: Stats::new(2),
            wedge: None,
        };
        assert!(report.is_completed());
        assert_eq!(report.expect_completed().cores.len(), 2);
    }

    #[test]
    fn outcome_display() {
        assert_eq!(RunOutcome::Completed.to_string(), "completed");
        assert_eq!(RunOutcome::CapHit.to_string(), "cycle-cap hit");
        assert_eq!(RunOutcome::Wedged.to_string(), "wedged");
    }
}
