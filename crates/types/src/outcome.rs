//! Typed run outcomes: every full-system run reports *how* it ended,
//! not just its statistics. A run that hits the cycle cap or wedges
//! (no core retires anything for a long window) can no longer be
//! mistaken for a completed measurement — harnesses must inspect the
//! [`RunOutcome`] (or call [`RunReport::expect_completed`], which fails
//! loudly with the full [`WedgeReport`] diagnosis).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::config::LivenessConfig;
use crate::sample::MetricSample;
use crate::stats::Stats;
use crate::Cycle;

/// Root-cause classification of a run that failed to complete, derived
/// from the per-component liveness probes ([`LivenessSnapshot`]). Each
/// variant names the implicated components so a harness (or a human)
/// can act on the diagnosis instead of a bare "wedged".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WedgeClass {
    /// One or more memory controllers held a request past the
    /// escalation age: the scheduler starved it. Carries the implicated
    /// MC indices.
    McStarvation {
        /// Memory controllers with a starved request.
        mcs: Vec<usize>,
    },
    /// One or more EMC issue contexts were occupied without any
    /// progress event past the lease: a chain leaked its context.
    /// Carries `(mc, ctx)` pairs.
    EmcContextLeak {
        /// Occupied `(mc, ctx)` slots past their lease.
        contexts: Vec<(usize, usize)>,
    },
    /// A ring link's occupancy backlog exceeded the backpressure
    /// threshold: the interconnect, not DRAM, is the bottleneck.
    RingBackpressure {
        /// Worst link backlog observed, in cycles.
        backlog: Cycle,
    },
    /// Every unfinished core stopped retiring while no memory-system
    /// probe is pathological: the stall is in the cores themselves.
    CoreDeadlock {
        /// Cores that stopped retiring.
        cores: Vec<usize>,
    },
    /// Forward progress continues on at least one core and no probe is
    /// pathological — the run is slow, not stuck (the usual diagnosis
    /// for a cycle-cap hit).
    SlowButLive,
}

impl WedgeClass {
    /// Stable machine-readable label (used for exit codes and JSON).
    pub fn label(&self) -> &'static str {
        match self {
            WedgeClass::McStarvation { .. } => "mc-starvation",
            WedgeClass::EmcContextLeak { .. } => "emc-context-leak",
            WedgeClass::RingBackpressure { .. } => "ring-backpressure",
            WedgeClass::CoreDeadlock { .. } => "core-deadlock",
            WedgeClass::SlowButLive => "slow-but-live",
        }
    }

    /// Whether a retry (same seed, fresh run) can plausibly clear the
    /// condition. Starvation and backpressure are load-dependent and
    /// bounded by the enforcement mechanisms; a leaked context or a
    /// deadlocked core reproduces deterministically.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            WedgeClass::McStarvation { .. }
                | WedgeClass::RingBackpressure { .. }
                | WedgeClass::SlowButLive
        )
    }
}

impl fmt::Display for WedgeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WedgeClass::McStarvation { mcs } => write!(f, "mc-starvation (mcs {mcs:?})"),
            WedgeClass::EmcContextLeak { contexts } => {
                write!(f, "emc-context-leak (mc/ctx {contexts:?})")
            }
            WedgeClass::RingBackpressure { backlog } => {
                write!(f, "ring-backpressure (backlog {backlog} cycles)")
            }
            WedgeClass::CoreDeadlock { cores } => write!(f, "core-deadlock (cores {cores:?})"),
            WedgeClass::SlowButLive => f.write_str("slow-but-live"),
        }
    }
}

/// Point-in-time reading of every per-component liveness probe. The
/// simulator captures one whenever a run ends without completing (and
/// the watchdog samples them at `probe_interval`); the classifier turns
/// it into a [`WedgeClass`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LivenessSnapshot {
    /// Cycle at which the probes were read.
    pub cycle: Cycle,
    /// Oldest queued-request age per MC channel: `(mc, global channel,
    /// age in cycles)`, `0` for an empty queue.
    pub mc_oldest_age: Vec<(usize, usize, Cycle)>,
    /// Occupied EMC contexts: `(mc, ctx, cycles since the last progress
    /// event)` — ship arrival, source delivery, load completion or
    /// result drain.
    pub emc_ctx_age: Vec<(usize, usize, Cycle)>,
    /// Worst ring link backlog: queued occupancy beyond `cycle`, in
    /// cycles, across every link of both rings.
    pub ring_backlog: Cycle,
    /// Per-core cycles since the last retirement.
    pub core_retire_age: Vec<Cycle>,
    /// Per-core program-finished flags (a finished core legitimately
    /// stops retiring).
    pub cores_finished: Vec<bool>,
}

impl LivenessSnapshot {
    /// Classify a non-completed run by its probe readings, most
    /// *upstream* cause first: a starved MC queue also starves every
    /// EMC chain load queued behind it, so when both probes fire the
    /// starvation is the root cause and the pinned contexts are its
    /// symptom (the mix8-2MC post-mortem confirmed exactly this — MC
    /// aging alone unwedged a run whose contexts looked leaked). A
    /// context stalled while the MC queues drain normally really is a
    /// leak; both explain a stall better than "cores stopped", and only
    /// a run where some unfinished core still retires is merely slow.
    pub fn classify(&self, cfg: &LivenessConfig) -> WedgeClass {
        let mut starved: Vec<usize> = self
            .mc_oldest_age
            .iter()
            .filter(|&&(_, _, age)| age >= cfg.mc_escalation_age)
            .map(|&(mc, _, _)| mc)
            .collect();
        starved.dedup();
        if !starved.is_empty() {
            return WedgeClass::McStarvation { mcs: starved };
        }
        let leaked: Vec<(usize, usize)> = self
            .emc_ctx_age
            .iter()
            .filter(|&&(_, _, age)| age >= cfg.emc_lease)
            .map(|&(mc, ctx, _)| (mc, ctx))
            .collect();
        if !leaked.is_empty() {
            return WedgeClass::EmcContextLeak { contexts: leaked };
        }
        if self.ring_backlog >= cfg.ring_backlog_threshold {
            return WedgeClass::RingBackpressure {
                backlog: self.ring_backlog,
            };
        }
        let stalled: Vec<usize> = (0..self.core_retire_age.len())
            .filter(|&core| {
                let finished = self.cores_finished.get(core).copied().unwrap_or(false);
                !finished && self.core_retire_age[core] >= cfg.core_stall_age
            })
            .collect();
        let unfinished = self.cores_finished.iter().filter(|&&fin| !fin).count();
        if unfinished > 0 && stalled.len() == unfinished {
            return WedgeClass::CoreDeadlock { cores: stalled };
        }
        WedgeClass::SlowButLive
    }

    /// One probe reading per line, for `--liveness` dumps and wedge
    /// report displays.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("liveness probes at cycle {}:\n", self.cycle);
        for &(mc, ch, age) in &self.mc_oldest_age {
            let _ = writeln!(s, "  mc {mc} ch {ch}: oldest queued request age {age}");
        }
        for &(mc, ctx, age) in &self.emc_ctx_age {
            let _ = writeln!(s, "  emc {mc} ctx {ctx}: {age} cycles since progress");
        }
        let _ = writeln!(s, "  ring: worst link backlog {} cycles", self.ring_backlog);
        for (core, (&age, &finished)) in self
            .core_retire_age
            .iter()
            .zip(&self.cores_finished)
            .enumerate()
        {
            let _ = writeln!(
                s,
                "  core {core}: {age} cycles since retirement{}",
                if finished { " (finished)" } else { "" }
            );
        }
        s.pop();
        s
    }
}

/// How a simulation run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// Every core reached its retired-uop budget (or finished its
    /// program). The statistics are a valid measurement.
    Completed,
    /// The cycle cap elapsed before every core reached its budget. The
    /// statistics cover a truncated window and must not be published as
    /// a completed measurement.
    CapHit,
    /// The forward-progress watchdog fired: no core retired a single
    /// uop for the whole watchdog window. The run was aborted and a
    /// [`WedgeReport`] captured the scheduler state at the wedge point.
    Wedged,
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Completed => f.write_str("completed"),
            RunOutcome::CapHit => f.write_str("cycle-cap hit"),
            RunOutcome::Wedged => f.write_str("wedged"),
        }
    }
}

/// Per-core state captured when the watchdog declares a wedge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WedgeCoreState {
    /// Core index.
    pub core: usize,
    /// Benchmark running on this core.
    pub bench: String,
    /// Uops retired so far (measurement window).
    pub retired_uops: u64,
    /// ROB occupancy at the wedge point.
    pub rob_len: usize,
    /// Whether the core's program had already run to completion.
    pub finished: bool,
    /// Number of uops in the chain this core has in flight at an EMC,
    /// if any.
    pub active_chain_uops: Option<usize>,
    /// Formatted description of the ROB head entry (kind, state,
    /// remote/llc-miss flags, address), if the ROB is non-empty.
    pub rob_head: Option<String>,
}

/// EMC issue-context occupancy captured at the wedge point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WedgeEmcContext {
    /// Which memory controller's EMC.
    pub mc: usize,
    /// Context slot index.
    pub ctx: usize,
    /// Home core of the chain occupying the slot.
    pub home_core: usize,
    /// Chain length in uops.
    pub chain_uops: usize,
    /// Whether the chain is still waiting for its source miss data.
    pub awaiting_source: bool,
}

/// Structured diagnosis of a wedged run: what every scheduler-visible
/// queue looked like when forward progress stopped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WedgeReport {
    /// Cycle at which the wedge was declared.
    pub cycle: Cycle,
    /// How many cycles passed with zero retirement before declaring it.
    pub stalled_for: Cycle,
    /// Per-core progress and ROB head state.
    pub cores: Vec<WedgeCoreState>,
    /// Memory-controller queue depths.
    pub mc_queue_depths: Vec<usize>,
    /// Memory-controller retry-queue depths (rejected enqueues).
    pub mc_retry_depths: Vec<usize>,
    /// Occupied EMC issue contexts.
    pub emc_contexts: Vec<WedgeEmcContext>,
    /// Cache lines with outstanding fills.
    pub outstanding_lines: usize,
    /// Events still queued in the scheduler.
    pub pending_events: usize,
    /// The last time-series samples captured before the wedge (oldest
    /// first), when the sampler was enabled: the queue-depth/occupancy
    /// history leading up to the stall, not just the final snapshot.
    #[serde(default)]
    pub recent_samples: Vec<MetricSample>,
    /// Root-cause classification from the liveness probes.
    #[serde(default)]
    pub class: Option<WedgeClass>,
    /// The probe readings the classification was derived from.
    #[serde(default)]
    pub liveness: Option<LivenessSnapshot>,
}

impl fmt::Display for WedgeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "WEDGE at cycle {}: no core retired a uop for {} cycles",
            self.cycle, self.stalled_for
        )?;
        for c in &self.cores {
            write!(
                f,
                "  core {} ({}): retired={} rob_len={}{}{}",
                c.core,
                c.bench,
                c.retired_uops,
                c.rob_len,
                if c.finished { " finished" } else { "" },
                match c.active_chain_uops {
                    Some(n) => format!(" active_chain={n}uops"),
                    None => String::new(),
                },
            )?;
            match &c.rob_head {
                Some(h) => writeln!(f, " head[{h}]")?,
                None => writeln!(f)?,
            }
        }
        writeln!(
            f,
            "  mc queues: {:?} retry: {:?}",
            self.mc_queue_depths, self.mc_retry_depths
        )?;
        for e in &self.emc_contexts {
            writeln!(
                f,
                "  emc {} ctx {}: home_core={} chain={}uops awaiting_source={}",
                e.mc, e.ctx, e.home_core, e.chain_uops, e.awaiting_source
            )?;
        }
        write!(
            f,
            "  outstanding lines: {}  pending events: {}",
            self.outstanding_lines, self.pending_events
        )?;
        if let Some(class) = &self.class {
            write!(f, "\n  root cause: {class}")?;
        }
        if !self.recent_samples.is_empty() {
            write!(f, "\n  queue history leading up to the wedge:")?;
            for s in &self.recent_samples {
                write!(f, "\n    {}", s.summary_line())?;
            }
        }
        Ok(())
    }
}

/// The result of a full-system run: final statistics plus a typed
/// outcome, and the wedge diagnosis when the watchdog fired.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// How the run terminated.
    pub outcome: RunOutcome,
    /// Statistics accumulated over the measurement window. For
    /// [`RunOutcome::CapHit`] and [`RunOutcome::Wedged`] these cover a
    /// truncated window.
    pub stats: Stats,
    /// Scheduler-state diagnosis, present iff `outcome` is `Wedged`.
    pub wedge: Option<WedgeReport>,
    /// Root-cause classification, present for every non-completed
    /// outcome (for `Wedged` it mirrors the wedge report's class; for
    /// `CapHit` it distinguishes slow-but-live from a real pathology).
    #[serde(default)]
    pub class: Option<WedgeClass>,
    /// Liveness probe readings at termination, present for every
    /// non-completed outcome.
    #[serde(default)]
    pub liveness: Option<LivenessSnapshot>,
}

impl RunReport {
    /// True iff every core reached its budget.
    pub fn is_completed(&self) -> bool {
        self.outcome == RunOutcome::Completed
    }

    /// Unwrap the statistics of a completed run.
    ///
    /// # Panics
    ///
    /// Panics with the full diagnosis (including the [`WedgeReport`]
    /// for wedged runs, or per-core progress for cap-hit runs) if the
    /// run did not complete — a truncated run can never silently pass
    /// as a measurement.
    pub fn expect_completed(self) -> Stats {
        match self.outcome {
            RunOutcome::Completed => self.stats,
            RunOutcome::Wedged => {
                let report = self
                    .wedge
                    .map(|w| w.to_string())
                    .unwrap_or_else(|| "(no wedge report captured)".into());
                panic!("simulation wedged:\n{report}");
            }
            RunOutcome::CapHit => {
                let progress: Vec<u64> = self.stats.cores.iter().map(|c| c.retired_uops).collect();
                let class = self
                    .class
                    .map(|c| format!("; classified {c}"))
                    .unwrap_or_default();
                panic!(
                    "simulation hit the cycle cap after {} cycles before every core \
                     reached its budget; per-core retired uops: {:?}{}",
                    self.stats.cycles, progress, class
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_wedge() -> WedgeReport {
        WedgeReport {
            cycle: 123_456,
            stalled_for: 250_000,
            cores: vec![WedgeCoreState {
                core: 0,
                bench: "mcf".into(),
                retired_uops: 42,
                rob_len: 256,
                finished: false,
                active_chain_uops: Some(5),
                rob_head: Some("Load Issued remote=false llc_miss=true".into()),
            }],
            mc_queue_depths: vec![64],
            mc_retry_depths: vec![3],
            emc_contexts: vec![WedgeEmcContext {
                mc: 0,
                ctx: 1,
                home_core: 0,
                chain_uops: 5,
                awaiting_source: true,
            }],
            outstanding_lines: 17,
            pending_events: 4,
            class: Some(WedgeClass::EmcContextLeak {
                contexts: vec![(0, 1)],
            }),
            liveness: None,
            recent_samples: vec![MetricSample {
                cycle: 120_000,
                mc_queue_depth: vec![64],
                mc_retry_depth: vec![3],
                banks_open: vec![2],
                emc_busy_contexts: vec![1],
                ring_busy_links: 0,
                outstanding_misses: 17,
                llc_occupancy: vec![512],
                rob_occupancy: vec![256],
            }],
        }
    }

    #[test]
    fn wedge_report_display_names_every_queue() {
        let s = sample_wedge().to_string();
        assert!(s.contains("WEDGE at cycle 123456"));
        assert!(s.contains("core 0 (mcf)"));
        assert!(s.contains("mc queues: [64] retry: [3]"));
        assert!(s.contains("emc 0 ctx 1"));
        assert!(s.contains("outstanding lines: 17"));
    }

    #[test]
    fn wedge_report_display_includes_sample_history() {
        let s = sample_wedge().to_string();
        assert!(s.contains("queue history leading up to the wedge"));
        assert!(s.contains("cycle 120000: mcq=[64]"));
        let mut bare = sample_wedge();
        bare.recent_samples.clear();
        assert!(!bare.to_string().contains("queue history"));
    }

    #[test]
    #[should_panic(expected = "simulation wedged")]
    fn expect_completed_panics_on_wedge_with_report() {
        let report = RunReport {
            outcome: RunOutcome::Wedged,
            stats: Stats::new(1),
            wedge: Some(sample_wedge()),
            class: None,
            liveness: None,
        };
        let _ = report.expect_completed();
    }

    #[test]
    #[should_panic(expected = "classified slow-but-live")]
    fn expect_completed_panics_on_cap_hit() {
        let report = RunReport {
            outcome: RunOutcome::CapHit,
            stats: Stats::new(2),
            wedge: None,
            class: Some(WedgeClass::SlowButLive),
            liveness: None,
        };
        let _ = report.expect_completed();
    }

    #[test]
    fn completed_run_unwraps() {
        let report = RunReport {
            outcome: RunOutcome::Completed,
            stats: Stats::new(2),
            wedge: None,
            class: None,
            liveness: None,
        };
        assert!(report.is_completed());
        assert_eq!(report.expect_completed().cores.len(), 2);
    }

    fn quiet_snapshot() -> LivenessSnapshot {
        LivenessSnapshot {
            cycle: 1_000_000,
            mc_oldest_age: vec![(0, 0, 120), (0, 1, 0)],
            emc_ctx_age: vec![(0, 0, 500)],
            ring_backlog: 12,
            core_retire_age: vec![40, 900_000],
            cores_finished: vec![false, true],
        }
    }

    #[test]
    fn classifier_prefers_specific_causes() {
        let cfg = LivenessConfig::default();
        let mut snap = quiet_snapshot();
        assert_eq!(snap.classify(&cfg), WedgeClass::SlowButLive);

        // A stalled core while everything else is quiet: deadlock.
        snap.core_retire_age = vec![400_000, 0];
        assert_eq!(
            snap.classify(&cfg),
            WedgeClass::CoreDeadlock { cores: vec![0] }
        );

        // Ring backlog outranks the core diagnosis.
        snap.ring_backlog = 5_000;
        assert_eq!(
            snap.classify(&cfg),
            WedgeClass::RingBackpressure { backlog: 5_000 }
        );

        // A leaked EMC context outranks the ring: the contexts stalled
        // while the MC queues drained normally.
        snap.emc_ctx_age = vec![(0, 0, 500), (1, 1, 100_000)];
        assert_eq!(
            snap.classify(&cfg),
            WedgeClass::EmcContextLeak {
                contexts: vec![(1, 1)]
            }
        );

        // A starved MC queue is the most upstream cause of all: chain
        // loads queued behind it pin their contexts, so the starvation
        // explains the "leaked" contexts too.
        snap.mc_oldest_age = vec![(0, 0, 120), (1, 2, 50_000)];
        assert_eq!(
            snap.classify(&cfg),
            WedgeClass::McStarvation { mcs: vec![1] }
        );
    }

    #[test]
    fn finished_cores_do_not_count_as_deadlocked() {
        let cfg = LivenessConfig::default();
        let mut snap = quiet_snapshot();
        // Core 1 finished long ago; only core 0 matters, and it retires.
        snap.core_retire_age = vec![10, 900_000];
        assert_eq!(snap.classify(&cfg), WedgeClass::SlowButLive);
        // All cores finished: nothing can be deadlocked.
        snap.cores_finished = vec![true, true];
        snap.core_retire_age = vec![900_000, 900_000];
        assert_eq!(snap.classify(&cfg), WedgeClass::SlowButLive);
    }

    #[test]
    fn class_labels_and_transience() {
        let cases = [
            (
                WedgeClass::McStarvation { mcs: vec![0] },
                "mc-starvation",
                true,
            ),
            (
                WedgeClass::EmcContextLeak {
                    contexts: vec![(0, 0)],
                },
                "emc-context-leak",
                false,
            ),
            (
                WedgeClass::RingBackpressure { backlog: 9 },
                "ring-backpressure",
                true,
            ),
            (
                WedgeClass::CoreDeadlock { cores: vec![2] },
                "core-deadlock",
                false,
            ),
            (WedgeClass::SlowButLive, "slow-but-live", true),
        ];
        for (class, label, transient) in cases {
            assert_eq!(class.label(), label);
            assert_eq!(class.is_transient(), transient, "{label}");
        }
    }

    #[test]
    fn snapshot_summary_names_every_probe() {
        let s = quiet_snapshot().summary();
        assert!(s.contains("mc 0 ch 0: oldest queued request age 120"));
        assert!(s.contains("emc 0 ctx 0: 500 cycles since progress"));
        assert!(s.contains("ring: worst link backlog 12 cycles"));
        assert!(s.contains("core 1: 900000 cycles since retirement (finished)"));
    }

    #[test]
    fn wedge_report_display_includes_root_cause() {
        let s = sample_wedge().to_string();
        assert!(s.contains("root cause: emc-context-leak (mc/ctx [(0, 1)])"));
    }

    #[test]
    fn outcome_display() {
        assert_eq!(RunOutcome::Completed.to_string(), "completed");
        assert_eq!(RunOutcome::CapHit.to_string(), "cycle-cap hit");
        assert_eq!(RunOutcome::Wedged.to_string(), "wedged");
    }
}
