//! Static programs: sequences of micro-ops with register dependencies and
//! control flow, plus a sequential reference interpreter.
//!
//! Workload generators (the `emc-workloads` crate) produce a [`Program`]
//! and an initialized [`MemoryImage`]; the out-of-order core
//! model and the EMC execute the same uops, so architectural-state
//! equivalence between any two timing configurations is checkable against
//! the reference interpreter defined here.

use crate::mem_image::MemoryImage;
use crate::uop::{BranchCond, Reg, UopKind, NUM_ARCH_REGS};
use crate::Addr;
use serde::{Deserialize, Serialize};

/// One static micro-op in a [`Program`].
///
/// Operand conventions (see [`StaticUop::resolve_alu_operands`]):
/// - ALU ops: `dst = op(srcs[0], srcs[1] or imm)`.
/// - `Mov`: `dst = srcs[0]` if present, else `dst = imm`.
/// - `Load`: `dst = mem[srcs[0] + imm]` (8 bytes; `srcs[0]` optional).
/// - `Store`: `mem[srcs[0] + imm] = srcs[1]`.
/// - `Branch(cond)`: tests `srcs[0]`; jumps to `target` when taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticUop {
    /// Operation class.
    pub kind: UopKind,
    /// Destination architectural register, if the uop produces a value.
    pub dst: Option<Reg>,
    /// Up to two source architectural registers.
    pub srcs: [Option<Reg>; 2],
    /// Immediate operand (displacement for memory ops).
    pub imm: u64,
    /// Static branch target (index into [`Program::uops`]).
    pub target: Option<u32>,
}

impl StaticUop {
    /// An ALU uop `dst = kind(a, b)`.
    pub fn alu(kind: UopKind, dst: Reg, a: Reg, b: Option<Reg>, imm: u64) -> Self {
        StaticUop {
            kind,
            dst: Some(dst),
            srcs: [Some(a), b],
            imm,
            target: None,
        }
    }

    /// A register-immediate move `dst = imm`.
    pub fn mov_imm(dst: Reg, imm: u64) -> Self {
        StaticUop {
            kind: UopKind::Mov,
            dst: Some(dst),
            srcs: [None, None],
            imm,
            target: None,
        }
    }

    /// A register move `dst = src`.
    pub fn mov(dst: Reg, src: Reg) -> Self {
        StaticUop {
            kind: UopKind::Mov,
            dst: Some(dst),
            srcs: [Some(src), None],
            imm: 0,
            target: None,
        }
    }

    /// A load `dst = mem[base + disp]`.
    pub fn load(dst: Reg, base: Reg, disp: u64) -> Self {
        StaticUop {
            kind: UopKind::Load,
            dst: Some(dst),
            srcs: [Some(base), None],
            imm: disp,
            target: None,
        }
    }

    /// A store `mem[base + disp] = value`.
    pub fn store(base: Reg, value: Reg, disp: u64) -> Self {
        StaticUop {
            kind: UopKind::Store,
            dst: None,
            srcs: [Some(base), Some(value)],
            imm: disp,
            target: None,
        }
    }

    /// A conditional branch on `cond(reg)` to `target`.
    pub fn branch(cond: BranchCond, reg: Option<Reg>, target: u32) -> Self {
        StaticUop {
            kind: UopKind::Branch(cond),
            dst: None,
            srcs: [reg, None],
            imm: 0,
            target: Some(target),
        }
    }

    /// Resolve the two ALU inputs for this uop given a register-read
    /// closure. Only meaningful for non-memory, non-branch uops.
    pub fn resolve_alu_operands(&self, mut read: impl FnMut(Reg) -> u64) -> (u64, u64) {
        match self.kind {
            UopKind::Mov => {
                let a = match self.srcs[0] {
                    Some(r) => read(r),
                    None => self.imm,
                };
                (a, 0)
            }
            UopKind::Not | UopKind::SignExtend => (self.srcs[0].map(&mut read).unwrap_or(0), 0),
            _ => {
                let a = self.srcs[0].map(&mut read).unwrap_or(0);
                let b = match self.srcs[1] {
                    Some(r) => read(r),
                    None => self.imm,
                };
                (a, b)
            }
        }
    }

    /// Effective address of a memory uop given the base register value.
    pub fn effective_address(&self, base: u64) -> Addr {
        Addr(base.wrapping_add(self.imm))
    }

    /// Whether a branch with condition `cond` is taken for source value `v`.
    pub fn branch_taken(cond: BranchCond, v: u64) -> bool {
        match cond {
            BranchCond::Zero => v == 0,
            BranchCond::NotZero => v != 0,
            BranchCond::Always => true,
        }
    }
}

/// A static program: straight-line uops with branch edges.
///
/// Execution begins at uop 0 and terminates when control flow runs past the
/// last uop. The synthetic PC of uop `i` is `pc_base + 4*i` (used by branch
/// predictors and the EMC miss predictor, which hash on PC).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Program {
    /// The micro-ops, in static program order.
    pub uops: Vec<StaticUop>,
    /// Base synthetic PC (distinct per benchmark so predictor state does
    /// not alias across cores running different programs).
    pub pc_base: u64,
}

impl Program {
    /// Create a program from uops with the given PC base.
    pub fn new(uops: Vec<StaticUop>, pc_base: u64) -> Self {
        Program { uops, pc_base }
    }

    /// Synthetic PC of uop index `idx`.
    pub fn pc_of(&self, idx: usize) -> u64 {
        self.pc_base + 4 * idx as u64
    }

    /// Number of static uops.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the program has no uops.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Validate internal consistency: branch targets in range, register
    /// indices in range, stores have a value operand.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed uop.
    pub fn validate(&self) -> Result<(), String> {
        for (i, u) in self.uops.iter().enumerate() {
            if let Some(t) = u.target {
                if t as usize > self.uops.len() {
                    return Err(format!("uop {i}: branch target {t} out of range"));
                }
                if !u.kind.is_branch() {
                    return Err(format!("uop {i}: non-branch has a target"));
                }
            } else if u.kind.is_branch() {
                return Err(format!("uop {i}: branch lacks a target"));
            }
            for r in u.srcs.iter().flatten().chain(u.dst.iter()) {
                if r.idx() >= NUM_ARCH_REGS {
                    return Err(format!("uop {i}: register {r} out of range"));
                }
            }
            if u.kind == UopKind::Store && u.srcs[1].is_none() {
                return Err(format!("uop {i}: store lacks a value operand"));
            }
            if u.kind == UopKind::Load && u.dst.is_none() {
                return Err(format!("uop {i}: load lacks a destination"));
            }
        }
        Ok(())
    }
}

/// Final architectural state produced by [`run_reference`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    /// Final register values.
    pub regs: [u64; NUM_ARCH_REGS],
    /// Number of dynamic uops executed.
    pub dyn_uops: u64,
    /// Number of dynamic loads executed.
    pub loads: u64,
    /// Number of dynamic stores executed.
    pub stores: u64,
    /// Whether execution hit the dynamic-uop cap before terminating.
    pub capped: bool,
}

/// Sequentially execute `program` against `mem`, mutating it, and return
/// the final architectural state. This is the reference semantics that the
/// out-of-order core and the EMC must match.
///
/// `max_dyn_uops` bounds runaway programs; hitting the cap sets
/// [`ArchState::capped`].
///
/// # Example
///
/// ```
/// use emc_types::program::{run_reference, Program, StaticUop};
/// use emc_types::{MemoryImage, Reg, UopKind};
///
/// let p = Program::new(vec![
///     StaticUop::mov_imm(Reg(0), 7),
///     StaticUop::alu(UopKind::IntAdd, Reg(1), Reg(0), None, 35),
/// ], 0x1000);
/// let mut mem = MemoryImage::new();
/// let st = run_reference(&p, &mut mem, 100);
/// assert_eq!(st.regs[1], 42);
/// ```
pub fn run_reference(program: &Program, mem: &mut MemoryImage, max_dyn_uops: u64) -> ArchState {
    let mut regs = [0u64; NUM_ARCH_REGS];
    let mut pc = 0usize;
    let mut st = ArchState {
        regs,
        dyn_uops: 0,
        loads: 0,
        stores: 0,
        capped: false,
    };
    while pc < program.uops.len() {
        if st.dyn_uops >= max_dyn_uops {
            st.capped = true;
            break;
        }
        let u = &program.uops[pc];
        st.dyn_uops += 1;
        let mut next = pc + 1;
        match u.kind {
            UopKind::Load => {
                let base = u.srcs[0].map(|r| regs[r.idx()]).unwrap_or(0);
                let addr = u.effective_address(base);
                let v = mem.read_u64(addr);
                if let Some(d) = u.dst {
                    regs[d.idx()] = v;
                }
                st.loads += 1;
            }
            UopKind::Store => {
                let base = u.srcs[0].map(|r| regs[r.idx()]).unwrap_or(0);
                let addr = u.effective_address(base);
                let v = u.srcs[1].map(|r| regs[r.idx()]).unwrap_or(0);
                mem.write_u64(addr, v);
                st.stores += 1;
            }
            UopKind::Branch(cond) => {
                let v = u.srcs[0].map(|r| regs[r.idx()]).unwrap_or(0);
                if StaticUop::branch_taken(cond, v) {
                    next = u.target.expect("validated branch has target") as usize;
                }
            }
            UopKind::Nop => {}
            kind => {
                let (a, b) = u.resolve_alu_operands(|r| regs[r.idx()]);
                if let Some(d) = u.dst {
                    regs[d.idx()] = kind.alu(a, b);
                }
            }
        }
        pc = next;
    }
    st.regs = regs;
    st
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_loop(n: u64) -> Program {
        // r0 = n; loop: r0 -= 1; r1 += 2; brnz r0 -> loop
        Program::new(
            vec![
                StaticUop::mov_imm(Reg(0), n),
                StaticUop::alu(UopKind::IntSub, Reg(0), Reg(0), None, 1),
                StaticUop::alu(UopKind::IntAdd, Reg(1), Reg(1), None, 2),
                StaticUop::branch(BranchCond::NotZero, Some(Reg(0)), 1),
            ],
            0x4000,
        )
    }

    #[test]
    fn loop_executes_n_times() {
        let p = counting_loop(10);
        p.validate().unwrap();
        let mut mem = MemoryImage::new();
        let st = run_reference(&p, &mut mem, 10_000);
        assert_eq!(st.regs[0], 0);
        assert_eq!(st.regs[1], 20);
        assert!(!st.capped);
        assert_eq!(st.dyn_uops, 1 + 3 * 10);
    }

    #[test]
    fn cap_stops_infinite_loop() {
        let p = Program::new(vec![StaticUop::branch(BranchCond::Always, None, 0)], 0);
        let mut mem = MemoryImage::new();
        let st = run_reference(&p, &mut mem, 100);
        assert!(st.capped);
        assert_eq!(st.dyn_uops, 100);
    }

    #[test]
    fn load_store_round_trip() {
        let p = Program::new(
            vec![
                StaticUop::mov_imm(Reg(0), 0x1000),
                StaticUop::mov_imm(Reg(1), 0xdead),
                StaticUop::store(Reg(0), Reg(1), 8),
                StaticUop::load(Reg(2), Reg(0), 8),
            ],
            0,
        );
        p.validate().unwrap();
        let mut mem = MemoryImage::new();
        let st = run_reference(&p, &mut mem, 100);
        assert_eq!(st.regs[2], 0xdead);
        assert_eq!(st.loads, 1);
        assert_eq!(st.stores, 1);
    }

    #[test]
    fn pointer_chase_follows_links() {
        // mem[0x100] = 0x200, mem[0x200] = 0x300; two dependent loads.
        let mut mem = MemoryImage::new();
        mem.write_u64(Addr(0x100), 0x200);
        mem.write_u64(Addr(0x200), 0x300);
        let p = Program::new(
            vec![
                StaticUop::mov_imm(Reg(0), 0x100),
                StaticUop::load(Reg(1), Reg(0), 0),
                StaticUop::load(Reg(2), Reg(1), 0),
            ],
            0,
        );
        let st = run_reference(&p, &mut mem, 100);
        assert_eq!(st.regs[1], 0x200);
        assert_eq!(st.regs[2], 0x300);
    }

    #[test]
    fn validation_catches_bad_target() {
        let p = Program::new(vec![StaticUop::branch(BranchCond::Always, None, 99)], 0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_store() {
        let p = Program::new(
            vec![StaticUop {
                kind: UopKind::Store,
                dst: None,
                srcs: [Some(Reg(0)), None],
                imm: 0,
                target: None,
            }],
            0,
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn pc_of_is_distinct_per_uop() {
        let p = counting_loop(1);
        assert_eq!(p.pc_of(0), 0x4000);
        assert_eq!(p.pc_of(3), 0x400c);
    }

    #[test]
    fn mov_imm_and_mov_reg_resolution() {
        let u = StaticUop::mov_imm(Reg(0), 77);
        let (a, _) = u.resolve_alu_operands(|_| panic!("no reg read expected"));
        assert_eq!(a, 77);
        let u = StaticUop::mov(Reg(0), Reg(5));
        let (a, _) = u.resolve_alu_operands(|r| if r == Reg(5) { 123 } else { 0 });
        assert_eq!(a, 123);
    }
}
