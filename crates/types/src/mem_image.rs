//! Paged sparse functional memory image.
//!
//! Each simulated core owns one [`MemoryImage`] (the paper's workloads are
//! multiprogrammed SPEC mixes with disjoint address spaces). The image holds
//! the *values* that loads and stores actually read and write; all timing
//! comes from the cache/interconnect/DRAM models, which see only addresses.

use crate::addr::{Addr, PAGE_BYTES};
use std::collections::HashMap;

/// A sparse, demand-allocated byte-addressable memory. Unwritten memory
/// reads as zero.
///
/// # Example
///
/// ```
/// use emc_types::{Addr, MemoryImage};
///
/// let mut m = MemoryImage::new();
/// m.write_u64(Addr(0x1000), 42);
/// assert_eq!(m.read_u64(Addr(0x1000)), 42);
/// assert_eq!(m.read_u64(Addr(0x2000)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryImage {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES as usize]>>,
}

impl MemoryImage {
    /// Create an empty image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of demand-allocated pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        let page = addr.0 / PAGE_BYTES;
        let off = (addr.0 % PAGE_BYTES) as usize;
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Write one byte, allocating the page on demand.
    pub fn write_u8(&mut self, addr: Addr, v: u8) {
        let page = addr.0 / PAGE_BYTES;
        let off = (addr.0 % PAGE_BYTES) as usize;
        let p = self
            .pages
            .entry(page)
            .or_insert_with(|| Box::new([0u8; PAGE_BYTES as usize]));
        p[off] = v;
    }

    /// Read a little-endian u64 (handles page-straddling addresses).
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let page = addr.0 / PAGE_BYTES;
        let off = (addr.0 % PAGE_BYTES) as usize;
        if off + 8 <= PAGE_BYTES as usize {
            match self.pages.get(&page) {
                Some(p) => u64::from_le_bytes(p[off..off + 8].try_into().expect("8 bytes")),
                None => 0,
            }
        } else {
            let mut bytes = [0u8; 8];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = self.read_u8(Addr(addr.0 + i as u64));
            }
            u64::from_le_bytes(bytes)
        }
    }

    /// Write a little-endian u64 (handles page-straddling addresses).
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        let page = addr.0 / PAGE_BYTES;
        let off = (addr.0 % PAGE_BYTES) as usize;
        let bytes = v.to_le_bytes();
        if off + 8 <= PAGE_BYTES as usize {
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_BYTES as usize]));
            p[off..off + 8].copy_from_slice(&bytes);
        } else {
            for (i, b) in bytes.iter().enumerate() {
                self.write_u8(Addr(addr.0 + i as u64), *b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = MemoryImage::new();
        assert_eq!(m.read_u64(Addr(0)), 0);
        assert_eq!(m.read_u8(Addr(u64::MAX - 8)), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let mut m = MemoryImage::new();
        m.write_u64(Addr(16), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(Addr(16)), 0x0123_4567_89ab_cdef);
        // Little-endian byte order.
        assert_eq!(m.read_u8(Addr(16)), 0xef);
        assert_eq!(m.read_u8(Addr(23)), 0x01);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn page_straddling_u64() {
        let mut m = MemoryImage::new();
        let addr = Addr(PAGE_BYTES - 3);
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn overlapping_writes() {
        let mut m = MemoryImage::new();
        m.write_u64(Addr(0), u64::MAX);
        m.write_u8(Addr(3), 0);
        assert_eq!(m.read_u64(Addr(0)), 0xffff_ffff_00ff_ffff);
    }

    #[test]
    fn pages_are_independent() {
        let mut m = MemoryImage::new();
        m.write_u64(Addr(0), 1);
        m.write_u64(Addr(PAGE_BYTES * 10), 2);
        assert_eq!(m.read_u64(Addr(0)), 1);
        assert_eq!(m.read_u64(Addr(PAGE_BYTES * 10)), 2);
        assert_eq!(m.resident_pages(), 2);
    }
}
