//! The micro-op ISA.
//!
//! The simulator executes a RISC-like integer micro-op ISA that covers every
//! operation class the EMC is allowed to execute (Table 1 of the paper:
//! integer add/subtract/move/load/store; logical and/or/xor/not/shift/
//! sign-extend) plus floating-point and multiply placeholders that the core
//! can execute but the EMC must reject, and conditional branches.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of architectural integer registers in the simulated ISA.
///
/// Sixteen matches x86-64's general-purpose register count; the core renames
/// these onto its 256-entry physical register file (modeled via ROB slots)
/// and the chain-generation unit re-renames them onto the EMC's 16-entry
/// physical register file.
pub const NUM_ARCH_REGS: usize = 16;

/// An architectural register index (`0..NUM_ARCH_REGS`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Reg(pub u8);

impl Reg {
    /// Index as a usize for table lookups.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Condition tested by a branch micro-op against its first source register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchCond {
    /// Taken if the source register equals zero.
    Zero,
    /// Taken if the source register is non-zero.
    NotZero,
    /// Unconditionally taken (direct jump).
    Always,
}

/// The operation class of a micro-op.
///
/// # Example
///
/// ```
/// use emc_types::UopKind;
/// // The EMC back-end only has integer ALUs (paper §4.1.2).
/// assert!(UopKind::IntAdd.emc_allowed());
/// assert!(UopKind::Shl.emc_allowed());
/// assert!(!UopKind::IntMul.emc_allowed());
/// assert!(!UopKind::FpMul.emc_allowed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UopKind {
    /// Integer addition: `dst = src0 + src1/imm`.
    IntAdd,
    /// Integer subtraction: `dst = src0 - src1/imm`.
    IntSub,
    /// Integer multiply (core only, 3-cycle): `dst = src0 * src1/imm`.
    IntMul,
    /// Register/immediate move: `dst = src0` or `dst = imm`.
    Mov,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Bitwise not of `src0`.
    Not,
    /// Logical shift left by immediate (or `src1 & 63`).
    Shl,
    /// Logical shift right by immediate (or `src1 & 63`).
    Shr,
    /// Sign-extend the low 32 bits of `src0` to 64 bits.
    SignExtend,
    /// Memory load: `dst = mem[src0 + imm]` (8-byte).
    Load,
    /// Memory store: `mem[src0 + imm] = src1` (8-byte).
    Store,
    /// Conditional branch on `src0` with a static target.
    Branch(BranchCond),
    /// Floating-point add placeholder (core only, 4-cycle).
    FpAdd,
    /// Floating-point multiply placeholder (core only, 5-cycle).
    FpMul,
    /// No-op (pipeline filler).
    Nop,
}

impl UopKind {
    /// Whether the EMC back-end may execute this operation class
    /// (paper §4.1.2 and Table 1: integer and logical ops, loads, stores;
    /// branches travel with the chain so the EMC can check directions,
    /// §4.3).
    pub fn emc_allowed(self) -> bool {
        !matches!(
            self,
            UopKind::IntMul | UopKind::FpAdd | UopKind::FpMul | UopKind::Nop
        )
    }

    /// Whether this is a memory operation.
    pub fn is_mem(self) -> bool {
        matches!(self, UopKind::Load | UopKind::Store)
    }

    /// Whether this is a conditional or unconditional branch.
    pub fn is_branch(self) -> bool {
        matches!(self, UopKind::Branch(_))
    }

    /// Core execution latency in cycles once issued (result broadcast on
    /// the CDB `latency` cycles later). Loads add memory latency on top.
    pub fn exec_latency(self) -> u64 {
        match self {
            UopKind::IntMul => 3,
            UopKind::FpAdd => 4,
            UopKind::FpMul => 5,
            _ => 1,
        }
    }

    /// Evaluate the ALU function of this uop. `a` is the first source,
    /// `b` the second source or immediate. Memory ops and branches are
    /// handled by the pipeline, not here.
    ///
    /// # Panics
    ///
    /// Panics if called on `Load`, `Store`, or `Branch` — those have
    /// dedicated execution paths.
    pub fn alu(self, a: u64, b: u64) -> u64 {
        match self {
            UopKind::IntAdd => a.wrapping_add(b),
            UopKind::IntSub => a.wrapping_sub(b),
            UopKind::IntMul => a.wrapping_mul(b),
            UopKind::Mov => a,
            UopKind::And => a & b,
            UopKind::Or => a | b,
            UopKind::Xor => a ^ b,
            UopKind::Not => !a,
            UopKind::Shl => a.wrapping_shl((b & 63) as u32),
            UopKind::Shr => a.wrapping_shr((b & 63) as u32),
            UopKind::SignExtend => a as u32 as i32 as i64 as u64,
            UopKind::FpAdd => a.wrapping_add(b) ^ 0x5555,
            UopKind::FpMul => a.wrapping_mul(b | 1) ^ 0xaaaa,
            UopKind::Nop => 0,
            UopKind::Load | UopKind::Store | UopKind::Branch(_) => {
                panic!("alu() called on non-ALU uop {self:?}")
            }
        }
    }
}

impl fmt::Display for UopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UopKind::IntAdd => "add",
            UopKind::IntSub => "sub",
            UopKind::IntMul => "mul",
            UopKind::Mov => "mov",
            UopKind::And => "and",
            UopKind::Or => "or",
            UopKind::Xor => "xor",
            UopKind::Not => "not",
            UopKind::Shl => "shl",
            UopKind::Shr => "shr",
            UopKind::SignExtend => "sext",
            UopKind::Load => "ld",
            UopKind::Store => "st",
            UopKind::Branch(BranchCond::Zero) => "brz",
            UopKind::Branch(BranchCond::NotZero) => "brnz",
            UopKind::Branch(BranchCond::Always) => "jmp",
            UopKind::FpAdd => "fadd",
            UopKind::FpMul => "fmul",
            UopKind::Nop => "nop",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emc_allowed_matches_table1() {
        // Table 1: Integer add/subtract/move/load/store;
        // logical and/or/xor/not/shift/sign-extend.
        for k in [
            UopKind::IntAdd,
            UopKind::IntSub,
            UopKind::Mov,
            UopKind::Load,
            UopKind::Store,
            UopKind::And,
            UopKind::Or,
            UopKind::Xor,
            UopKind::Not,
            UopKind::Shl,
            UopKind::Shr,
            UopKind::SignExtend,
        ] {
            assert!(k.emc_allowed(), "{k} must be EMC-allowed");
        }
        for k in [
            UopKind::IntMul,
            UopKind::FpAdd,
            UopKind::FpMul,
            UopKind::Nop,
        ] {
            assert!(!k.emc_allowed(), "{k} must not be EMC-allowed");
        }
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(UopKind::IntAdd.alu(2, 3), 5);
        assert_eq!(UopKind::IntSub.alu(2, 3), u64::MAX);
        assert_eq!(UopKind::And.alu(0b1100, 0b1010), 0b1000);
        assert_eq!(UopKind::Or.alu(0b1100, 0b1010), 0b1110);
        assert_eq!(UopKind::Xor.alu(0b1100, 0b1010), 0b0110);
        assert_eq!(UopKind::Not.alu(0, 99), u64::MAX);
        assert_eq!(UopKind::Shl.alu(1, 4), 16);
        assert_eq!(UopKind::Shr.alu(16, 4), 1);
        assert_eq!(
            UopKind::Shl.alu(1, 64),
            1,
            "shift amount is masked to 6 bits"
        );
        assert_eq!(UopKind::SignExtend.alu(0xffff_ffff, 0), u64::MAX);
        assert_eq!(UopKind::SignExtend.alu(0x7fff_ffff, 0), 0x7fff_ffff);
    }

    #[test]
    #[should_panic(expected = "non-ALU")]
    fn alu_rejects_load() {
        UopKind::Load.alu(0, 0);
    }

    #[test]
    fn latencies() {
        assert_eq!(UopKind::IntAdd.exec_latency(), 1);
        assert_eq!(UopKind::IntMul.exec_latency(), 3);
        assert_eq!(UopKind::FpMul.exec_latency(), 5);
    }

    #[test]
    fn classification() {
        assert!(UopKind::Load.is_mem());
        assert!(UopKind::Store.is_mem());
        assert!(!UopKind::IntAdd.is_mem());
        assert!(UopKind::Branch(BranchCond::Zero).is_branch());
        assert!(!UopKind::Load.is_branch());
    }

    #[test]
    fn display_nonempty() {
        for k in [
            UopKind::IntAdd,
            UopKind::Branch(BranchCond::Always),
            UopKind::Nop,
        ] {
            assert!(!format!("{k}").is_empty());
            assert!(!format!("{k:?}").is_empty());
        }
        assert_eq!(format!("{}", Reg(3)), "r3");
    }
}
