//! Property-based tests for the log2 latency histogram.
//!
//! The histogram backs every latency claim the simulator makes, so its
//! algebra must be airtight: merging partial histograms (per-MC, per-
//! core) must equal recording into one, percentile estimates must be
//! monotone and bounded by the bucket width, and the exact aggregates
//! (count/sum/min/max) must never drift from the recorded samples.

use emc_types::Histogram;
use proptest::prelude::*;

fn hist_of(vals: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h
}

proptest! {
    /// Merging two histograms is exactly recording the concatenation —
    /// including the empty-side edge cases where `merge` takes
    /// shortcuts.
    #[test]
    fn merge_matches_concatenated_recording(
        a in prop::collection::vec(any::<u64>(), 0..200),
        b in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        prop_assert_eq!(merged, hist_of(&concat));
    }

    /// Merge order never matters: (a + b) + c == a + (b + c) and
    /// a + b == b + a.
    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(any::<u64>(), 0..100),
        b in prop::collection::vec(any::<u64>(), 0..100),
        c in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb;
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Exact aggregates match the samples: count, sum, min, max, and
    /// total bucket mass. (Values are bounded so the sum cannot
    /// saturate — saturation is covered by a unit test.)
    #[test]
    fn aggregates_are_exact(vals in prop::collection::vec(0u64..(1 << 32), 1..300)) {
        let h = hist_of(&vals);
        prop_assert_eq!(h.count, vals.len() as u64);
        prop_assert_eq!(h.sum, vals.iter().sum::<u64>());
        prop_assert_eq!(h.min, *vals.iter().min().unwrap());
        prop_assert_eq!(h.max, *vals.iter().max().unwrap());
        prop_assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }

    /// Percentile estimates are monotone in `p`, stay inside
    /// `[min, max]`, and are exact at the endpoints.
    #[test]
    fn percentile_is_monotone_and_bounded(
        vals in prop::collection::vec(any::<u64>(), 1..300),
    ) {
        let h = hist_of(&vals);
        prop_assert_eq!(h.percentile(0.0), h.min);
        prop_assert_eq!(h.percentile(100.0), h.max);
        let mut last = 0u64;
        for step in 0..=100u32 {
            let p = f64::from(step);
            let v = h.percentile(p);
            prop_assert!(v >= last, "percentile({}) = {} < {}", p, v, last);
            prop_assert!(v >= h.min && v <= h.max);
            last = v;
        }
    }

    /// The log2-bucket error bound: the estimate for percentile `p`
    /// never undershoots the true order statistic and never exceeds
    /// twice it (the width of its bucket).
    #[test]
    fn percentile_error_bounded_by_bucket_width(
        vals in prop::collection::vec(any::<u64>(), 1..300),
        step in 0u32..=100,
    ) {
        let h = hist_of(&vals);
        let p = f64::from(step);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize)
            .clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = h.percentile(p);
        prop_assert!(est >= truth, "estimate {} under true p{}={}", est, p, truth);
        if truth > 0 {
            prop_assert!(
                est <= truth.saturating_mul(2),
                "estimate {} beyond bucket bound for true p{}={}",
                est, p, truth
            );
        } else {
            prop_assert_eq!(est, 0);
        }
    }

    /// Serde round-trip preserves the histogram exactly. Skipped
    /// gracefully when the JSON backend is unavailable (offline stub
    /// builds), where serialization panics instead of serializing.
    #[test]
    fn serde_round_trip(vals in prop::collection::vec(any::<u64>(), 0..100)) {
        let h = hist_of(&vals);
        let href = &h;
        let ser = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serde_json::to_string(href)
        }));
        if let Ok(Ok(text)) = ser {
            let back: Histogram = serde_json::from_str(&text).unwrap();
            prop_assert_eq!(back, h);
        }
    }
}
