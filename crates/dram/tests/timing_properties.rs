//! Property-based tests: DRAM protocol legality under random command
//! streams.

use emc_dram::{map_line, Channel, Location, RowOutcome};
use emc_types::{DramConfig, LineAddr};
use proptest::prelude::*;

fn arb_loc(cfg: DramConfig) -> impl Strategy<Value = Location> {
    (0..cfg.ranks_per_channel, 0..cfg.banks_per_rank, 0..64u64).prop_map(
        move |(rank, bank, row)| Location {
            channel: 0,
            rank,
            bank,
            row,
        },
    )
}

proptest! {
    /// Data return times are causal and the data bus never double-books:
    /// burst windows across all commands are disjoint.
    #[test]
    fn bus_never_double_booked(cmds in prop::collection::vec((arb_loc(DramConfig::default()), 0u64..2000), 1..200)) {
        let cfg = DramConfig::default();
        let mut ch = Channel::new(&cfg);
        let mut now = 0u64;
        #[allow(clippy::type_complexity)]
        let mut bursts: Vec<(u64, u64)> = Vec::new();
        for (loc, gap) in cmds {
            now += gap;
            let issue = ch.issue(loc, false, now);
            // Causality: data cannot return before the minimum service time.
            prop_assert!(issue.data_at >= now + cfg.t_cas + cfg.t_burst);
            bursts.push((issue.data_at - cfg.t_burst, issue.data_at));
        }
        bursts.sort();
        for w in bursts.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "burst overlap: {:?}", w);
        }
    }

    /// Issuing the same row twice in a row is never a conflict, and
    /// issuing a different row to the same bank is never a hit.
    #[test]
    fn row_outcome_consistency(rows in prop::collection::vec(0u64..8, 2..100)) {
        let cfg = DramConfig::default();
        let mut ch = Channel::new(&cfg);
        let mut last: Option<u64> = None;
        let mut now = 0;
        for row in rows {
            let loc = Location { channel: 0, rank: 0, bank: 0, row };
            let i = ch.issue(loc, false, now);
            match last {
                None => prop_assert_eq!(i.outcome, RowOutcome::Empty),
                Some(r) if r == row => prop_assert_eq!(i.outcome, RowOutcome::Hit),
                Some(_) => prop_assert_eq!(i.outcome, RowOutcome::Conflict),
            }
            last = Some(row);
            now = i.data_at;
        }
    }

    /// The address mapping is a bijection between line addresses and
    /// (channel, location, column) tuples over any window.
    #[test]
    fn mapping_decodes_within_bounds(line in 0u64..1_000_000_000, ch in 1usize..=4, ranks in 1usize..=4) {
        let cfg = DramConfig { channels: ch, ranks_per_channel: ranks, ..Default::default() };
        let m = map_line(LineAddr(line), &cfg);
        prop_assert!(m.channel < cfg.channels);
        prop_assert!(m.rank < cfg.ranks_per_channel);
        prop_assert!(m.bank < cfg.banks_per_rank);
    }

    /// Monotonic issue times yield monotonically reasonable completions:
    /// a later-issued command to an idle bank never completes before an
    /// earlier command's issue time.
    #[test]
    fn completions_are_causal(gaps in prop::collection::vec(0u64..500, 1..100)) {
        let cfg = DramConfig::default();
        let mut ch = Channel::new(&cfg);
        let mut now = 0;
        for (bank, g) in gaps.into_iter().enumerate() {
            now += g;
            let loc = Location { channel: 0, rank: 0, bank: bank % 8, row: 3 };
            let i = ch.issue(loc, false, now);
            prop_assert!(i.data_at > now);
        }
    }
}
