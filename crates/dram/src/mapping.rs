//! Physical address → DRAM location mapping.
//!
//! Cache lines interleave across channels at line granularity (maximizing
//! channel-level parallelism, as in the paper's Haswell-like design), then
//! fill a row's worth of columns within one bank before moving to the next
//! bank, so sequential streams see row-buffer hits within each channel.

use emc_types::{DramConfig, LineAddr, CACHE_LINE_BYTES};

/// A fully decoded DRAM location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Channel index.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Bank within the rank.
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
}

/// Map a cache-line address to its DRAM location under `cfg`.
///
/// Bit layout (from least significant): channel, column, bank, rank, row.
///
/// # Example
///
/// ```
/// use emc_dram::map_line;
/// use emc_types::{DramConfig, LineAddr};
///
/// let cfg = DramConfig::default();
/// let a = map_line(LineAddr(0), &cfg);
/// let b = map_line(LineAddr(1), &cfg);
/// // Adjacent lines alternate channels.
/// assert_ne!(a.channel, b.channel);
/// ```
pub fn map_line(line: LineAddr, cfg: &DramConfig) -> Location {
    let channels = cfg.channels.max(1) as u64;
    let channel = (line.0 % channels) as usize;
    let within = line.0 / channels;
    let lines_per_row = cfg.row_bytes / CACHE_LINE_BYTES;
    let col_stripped = within / lines_per_row;
    let bank = (col_stripped % cfg.banks_per_rank as u64) as usize;
    let rank_stripped = col_stripped / cfg.banks_per_rank as u64;
    let rank = (rank_stripped % cfg.ranks_per_channel.max(1) as u64) as usize;
    let row = rank_stripped / cfg.ranks_per_channel.max(1) as u64;
    Location {
        channel,
        rank,
        bank,
        row,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_lines_share_row_within_channel() {
        let cfg = DramConfig::default();
        // Lines 0 and 2 are both on channel 0; 8 KB row = 128 lines, so
        // the first 128 channel-0 lines (global lines 0,2,..,254) share a
        // row and bank.
        let a = map_line(LineAddr(0), &cfg);
        let b = map_line(LineAddr(2), &cfg);
        assert_eq!(a.channel, b.channel);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row, b.row);
    }

    #[test]
    fn rows_advance_after_bank_sweep() {
        let cfg = DramConfig::default();
        let lines_per_row = cfg.row_bytes / CACHE_LINE_BYTES; // 128
        let chans = cfg.channels as u64;
        // First line of bank 1 on channel 0.
        let l = LineAddr(lines_per_row * chans);
        let m = map_line(l, &cfg);
        assert_eq!(m.channel, 0);
        assert_eq!(m.bank, 1);
        assert_eq!(m.row, 0);
        // After sweeping all 8 banks, the row increments (1 rank).
        let l2 = LineAddr(lines_per_row * chans * cfg.banks_per_rank as u64);
        let m2 = map_line(l2, &cfg);
        assert_eq!(m2.bank, 0);
        assert_eq!(m2.row, 1);
    }

    #[test]
    fn ranks_decoded_before_rows() {
        let cfg = DramConfig {
            ranks_per_channel: 4,
            ..Default::default()
        };
        let lines_per_row = cfg.row_bytes / CACHE_LINE_BYTES;
        let chans = cfg.channels as u64;
        let per_rank = lines_per_row * chans * cfg.banks_per_rank as u64;
        let m = map_line(LineAddr(per_rank), &cfg);
        assert_eq!(m.rank, 1);
        assert_eq!(m.row, 0);
        let m = map_line(LineAddr(per_rank * 4), &cfg);
        assert_eq!(m.rank, 0);
        assert_eq!(m.row, 1);
    }

    #[test]
    fn mapping_is_injective_over_a_window() {
        use std::collections::HashSet;
        let cfg = DramConfig::default();
        let mut seen = HashSet::new();
        for l in 0..100_000u64 {
            let m = map_line(LineAddr(l), &cfg);
            assert!(
                seen.insert((
                    m.channel,
                    m.rank,
                    m.bank,
                    m.row,
                    l / (cfg.channels as u64) % (cfg.row_bytes / CACHE_LINE_BYTES)
                )),
                "collision at line {l}"
            );
        }
    }

    #[test]
    fn single_channel_mapping() {
        let cfg = DramConfig {
            channels: 1,
            ..Default::default()
        };
        for l in 0..1000u64 {
            assert_eq!(map_line(LineAddr(l), &cfg).channel, 0);
        }
    }
}
