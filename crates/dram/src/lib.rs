//! DDR3 DRAM device timing model.
//!
//! Models the DRAM organization of Table 1 in the paper: multiple channels,
//! each with ranks of 8 banks, 8 KB row buffers, CAS 13.75 ns, an 800 MHz
//! data bus, bank conflicts and data-bus serialization. An open-page policy
//! keeps rows open until a conflicting activation, which is what makes the
//! row-buffer statistics of Figure 16 meaningful.
//!
//! The model is *command-level*: the memory controller (`emc-memctrl`)
//! decides *which* request to service and *when*; [`Channel::issue`] then
//! computes the precise data return time from the bank and bus state
//! machines.
//!
//! # Example
//!
//! ```
//! use emc_dram::{Channel, Location, RowOutcome};
//! use emc_types::DramConfig;
//!
//! let cfg = DramConfig::default();
//! let mut ch = Channel::new(&cfg);
//! let loc = Location { channel: 0, rank: 0, bank: 0, row: 7 };
//! let first = ch.issue(loc, false, 0);
//! assert_eq!(first.outcome, RowOutcome::Empty);
//! let second = ch.issue(loc, false, first.data_at);
//! assert_eq!(second.outcome, RowOutcome::Hit);
//! assert!(second.data_at > first.data_at);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mapping;

pub use mapping::{map_line, Location};

use emc_types::{Cycle, DramConfig};

/// The row-buffer outcome of a DRAM access (Figure 16 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// The addressed row was already open: column access only.
    Hit,
    /// The bank was precharged: activate + column access.
    Empty,
    /// A different row was open: precharge + activate + column access.
    Conflict,
}

/// Result of issuing one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Issue {
    /// Cycle the data burst completes (data available at the MC).
    pub data_at: Cycle,
    /// Row-buffer outcome.
    pub outcome: RowOutcome,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    /// Bank busy until this cycle (cannot accept another command).
    free_at: Cycle,
    /// Earliest cycle the open row may be precharged (tRAS).
    ras_done_at: Cycle,
}

/// One DDR3 channel: a set of banks sharing a command/data bus.
///
/// Banks operate independently (bank-level parallelism); the data bus
/// serializes 64-byte bursts.
#[derive(Debug, Clone)]
pub struct Channel {
    banks: Vec<Bank>,
    bus_free_at: Cycle,
    cfg: DramConfig,
}

impl Channel {
    /// Create a channel with `ranks_per_channel * banks_per_rank` banks.
    pub fn new(cfg: &DramConfig) -> Self {
        Channel {
            banks: vec![Bank::default(); cfg.ranks_per_channel * cfg.banks_per_rank],
            bus_free_at: 0,
            cfg: *cfg,
        }
    }

    /// Number of banks in this channel.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Flat bank index within this channel for a location.
    pub fn bank_index(&self, loc: Location) -> usize {
        loc.rank * self.cfg.banks_per_rank + loc.bank
    }

    /// Whether the bank addressed by `loc` can accept a command at `now`.
    /// The memory controller gates scheduling on this, which is what makes
    /// queueing delay (and hence the EMC's contention savings) real.
    pub fn can_issue(&self, loc: Location, now: Cycle) -> bool {
        let b = &self.banks[self.bank_index(loc)];
        // Don't run the bus arbitrarily far ahead: a command issued now
        // will want the bus around now + tRCD + tCAS at the latest.
        let bus_slack = self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas;
        b.free_at <= now && self.bus_free_at <= now + bus_slack
    }

    /// The row currently open in the bank addressed by `loc`, if any.
    /// The PAR-BS scheduler uses this for its row-hit-first rule.
    pub fn open_row(&self, loc: Location) -> Option<u64> {
        self.banks[self.bank_index(loc)].open_row
    }

    /// Issue an access (read or write) to `loc` at cycle `now`, advancing
    /// the bank and bus state machines, and return when the data burst
    /// completes plus the row-buffer outcome.
    ///
    /// Timing, with `start = max(now, bank_free)`:
    /// - row hit: `data = bus_slot(start + tCAS) + tBURST`
    /// - row empty: activate at `start`, data after `tRCD + tCAS + tBURST`
    /// - row conflict: precharge at `max(start, ras_done)`, then
    ///   `tRP + tRCD + tCAS + tBURST`
    pub fn issue(&mut self, loc: Location, _is_write: bool, now: Cycle) -> Issue {
        let idx = self.bank_index(loc);
        let cfg = self.cfg;
        let b = &mut self.banks[idx];
        let start = now.max(b.free_at);
        let (outcome, cas_start) = match b.open_row {
            Some(r) if r == loc.row => (RowOutcome::Hit, start),
            Some(_) => {
                let pre_start = start.max(b.ras_done_at);
                let act_start = pre_start + cfg.t_rp;
                b.ras_done_at = act_start + cfg.t_ras;
                b.open_row = Some(loc.row);
                (RowOutcome::Conflict, act_start + cfg.t_rcd)
            }
            None => {
                b.ras_done_at = start + cfg.t_ras;
                b.open_row = Some(loc.row);
                (RowOutcome::Empty, start + cfg.t_rcd)
            }
        };
        // Column access completes tCAS later, then the burst needs the
        // shared data bus.
        let data_start = (cas_start + cfg.t_cas).max(self.bus_free_at);
        self.bus_free_at = data_start + cfg.t_burst;
        // Column accesses pipeline: the bank can accept the next column
        // command one burst (tCCD = 4 bus clocks = t_burst) after this
        // one, so row-hit streams run at bus rate.
        b.free_at = cas_start + cfg.t_burst;
        Issue {
            data_at: data_start + cfg.t_burst,
            outcome,
        }
    }

    /// Earliest cycle the data bus is free (for diagnostics/tests).
    pub fn bus_free_at(&self) -> Cycle {
        self.bus_free_at
    }

    /// The open row in every bank, in bank-index order (`None` =
    /// precharged). The time-series sampler reads this as the channel's
    /// row-buffer state.
    pub fn open_rows(&self) -> impl Iterator<Item = Option<u64>> + '_ {
        self.banks.iter().map(|b| b.open_row)
    }

    /// Number of banks currently holding a row open.
    pub fn open_bank_count(&self) -> usize {
        self.banks.iter().filter(|b| b.open_row.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::default()
    }

    fn loc(bank: usize, row: u64) -> Location {
        Location {
            channel: 0,
            rank: 0,
            bank,
            row,
        }
    }

    #[test]
    fn first_access_is_row_empty() {
        let mut ch = Channel::new(&cfg());
        let i = ch.issue(loc(0, 5), false, 100);
        assert_eq!(i.outcome, RowOutcome::Empty);
        let c = cfg();
        assert_eq!(i.data_at, 100 + c.t_rcd + c.t_cas + c.t_burst);
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        let c = cfg();
        let mut ch = Channel::new(&c);
        let t0 = ch.issue(loc(0, 5), false, 0).data_at;
        let hit = ch.issue(loc(0, 5), false, t0);
        assert_eq!(hit.outcome, RowOutcome::Hit);
        let hit_lat = hit.data_at - t0;

        let mut ch2 = Channel::new(&c);
        let t0 = ch2.issue(loc(0, 5), false, 0).data_at;
        // Wait out tRAS so the conflict pays exactly tRP + tRCD extra.
        let later = t0 + c.t_ras;
        let conf = ch2.issue(loc(0, 9), false, later);
        assert_eq!(conf.outcome, RowOutcome::Conflict);
        let conf_lat = conf.data_at - later;
        assert!(
            conf_lat > hit_lat,
            "conflict {conf_lat} must exceed hit {hit_lat}"
        );
        assert_eq!(conf_lat - hit_lat, c.t_rp + c.t_rcd);
    }

    #[test]
    fn tras_delays_early_precharge() {
        let c = cfg();
        let mut ch = Channel::new(&c);
        ch.issue(loc(0, 1), false, 0);
        // Conflict immediately: the precharge must wait for tRAS (from the
        // activate at cycle 0).
        let i = ch.issue(loc(0, 2), false, 0);
        assert_eq!(i.outcome, RowOutcome::Conflict);
        assert!(i.data_at >= c.t_ras + c.t_rp + c.t_rcd + c.t_cas + c.t_burst);
    }

    #[test]
    fn different_banks_overlap_but_share_bus() {
        let c = cfg();
        let mut ch = Channel::new(&c);
        let a = ch.issue(loc(0, 1), false, 0);
        let b = ch.issue(loc(1, 1), false, 0);
        // Bank work overlaps: b is delayed only by the bus, one burst after a.
        assert_eq!(b.data_at, a.data_at + c.t_burst);
    }

    #[test]
    fn same_bank_serializes() {
        let c = cfg();
        let mut ch = Channel::new(&c);
        let a = ch.issue(loc(0, 1), false, 0);
        let b = ch.issue(loc(0, 1), false, 0);
        assert!(b.data_at >= a.data_at + c.t_burst);
        assert_eq!(b.outcome, RowOutcome::Hit);
    }

    #[test]
    fn can_issue_respects_bank_busy() {
        let c = cfg();
        let mut ch = Channel::new(&c);
        assert!(ch.can_issue(loc(0, 1), 0));
        let i = ch.issue(loc(0, 1), false, 0);
        assert!(!ch.can_issue(loc(0, 1), 1));
        assert!(ch.can_issue(loc(0, 1), i.data_at));
        // A different bank is still available immediately.
        assert!(ch.can_issue(loc(1, 1), 1));
    }

    #[test]
    fn open_row_tracking() {
        let mut ch = Channel::new(&cfg());
        assert_eq!(ch.open_row(loc(0, 3)), None);
        ch.issue(loc(0, 3), false, 0);
        assert_eq!(ch.open_row(loc(0, 3)), Some(3));
        ch.issue(loc(0, 8), false, 10_000);
        assert_eq!(ch.open_row(loc(0, 3)), Some(8));
    }

    #[test]
    fn open_rows_expose_per_bank_state() {
        let mut ch = Channel::new(&cfg());
        assert_eq!(ch.open_bank_count(), 0);
        ch.issue(loc(0, 3), false, 0);
        ch.issue(loc(1, 5), false, 0);
        assert_eq!(ch.open_bank_count(), 2);
        let rows: Vec<Option<u64>> = ch.open_rows().collect();
        assert_eq!(rows.len(), ch.bank_count());
        assert_eq!(rows[ch.bank_index(loc(0, 3))], Some(3));
        assert_eq!(rows[ch.bank_index(loc(1, 5))], Some(5));
        assert_eq!(rows.iter().filter(|r| r.is_some()).count(), 2);
    }

    #[test]
    fn bank_indexing_covers_ranks() {
        let mut c = cfg();
        c.ranks_per_channel = 2;
        let ch = Channel::new(&c);
        assert_eq!(ch.bank_count(), 16);
        assert_eq!(
            ch.bank_index(Location {
                channel: 0,
                rank: 1,
                bank: 3,
                row: 0
            }),
            11
        );
    }
}
