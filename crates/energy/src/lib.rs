//! Event-based chip and DRAM energy model in the spirit of McPAT and
//! CACTI (paper §5: "We model chip energy using McPAT and DRAM power
//! using CACTI. Shared structures dissipate static power until the
//! completion of the entire workload.").
//!
//! The paper's energy results (Figures 23–24) are *relative*: percentage
//! change in total chip+DRAM energy versus the no-EMC, no-prefetching
//! baseline. Those deltas depend on event counts (which our simulator
//! measures exactly) and on runtime (static energy), not on absolute
//! nanojoule calibration, so this model uses fixed per-event energies in
//! the published range for a 32 nm quad-core and DDR3 DRAM.
//!
//! The EMC is modeled as the paper prescribes (§5): a stripped-down core
//! with no front end, no rename, no floating-point pipe — 10.4% of a full
//! core's area, which we scale to its static power — plus explicit
//! chain-generation events at the home core (CDB tag broadcasts, RRT
//! reads/writes, ROB reads, ring transfers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use emc_types::{Stats, SystemConfig};
use serde::{Deserialize, Serialize};

/// Per-event dynamic energies (nanojoules) and static powers (watts).
///
/// Defaults are in the range published for 32 nm out-of-order cores
/// (McPAT) and DDR3 devices (CACTI/Micron power calculators).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Core clock in GHz (converts cycles to seconds).
    pub clock_ghz: f64,
    /// Dynamic energy per retired integer uop (fetch/rename/issue/commit).
    pub core_uop_nj: f64,
    /// Extra dynamic energy per floating-point uop.
    pub fp_extra_nj: f64,
    /// L1 access.
    pub l1_access_nj: f64,
    /// LLC slice access.
    pub llc_access_nj: f64,
    /// One ring-link hop of a message.
    pub ring_hop_nj: f64,
    /// DRAM row activation.
    pub dram_activate_nj: f64,
    /// DRAM 64-byte read/write burst (including I/O).
    pub dram_rw_nj: f64,
    /// DRAM precharge.
    pub dram_precharge_nj: f64,
    /// EMC uop execution (2-wide, no front end).
    pub emc_uop_nj: f64,
    /// EMC data-cache access.
    pub emc_dcache_nj: f64,
    /// Chain generation: per-uop cost at the home core (CDB broadcast +
    /// RRT lookup/write + ROB read, §5).
    pub chain_gen_uop_nj: f64,
    /// Static power per core (W).
    pub core_static_w: f64,
    /// Static power per MB of LLC (W).
    pub llc_static_w_per_mb: f64,
    /// Static power per DRAM channel (background/refresh, W).
    pub dram_static_w_per_channel: f64,
    /// EMC static power as a fraction of one core (10.4% area, §6.6).
    pub emc_static_fraction: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            clock_ghz: 3.2,
            core_uop_nj: 0.15,
            fp_extra_nj: 0.20,
            l1_access_nj: 0.05,
            llc_access_nj: 0.50,
            ring_hop_nj: 0.10,
            dram_activate_nj: 2.0,
            dram_rw_nj: 4.0,
            dram_precharge_nj: 1.0,
            emc_uop_nj: 0.05,
            emc_dcache_nj: 0.02,
            chain_gen_uop_nj: 0.03,
            core_static_w: 1.2,
            llc_static_w_per_mb: 0.30,
            dram_static_w_per_channel: 0.50,
            emc_static_fraction: 0.104,
        }
    }
}

/// Energy broken down by component, in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Core pipeline dynamic energy.
    pub core_dynamic_j: f64,
    /// L1 + LLC dynamic energy.
    pub cache_dynamic_j: f64,
    /// Ring interconnect dynamic energy.
    pub ring_dynamic_j: f64,
    /// DRAM dynamic energy (activates, bursts, precharges).
    pub dram_dynamic_j: f64,
    /// EMC execution + chain-generation dynamic energy.
    pub emc_dynamic_j: f64,
    /// Chip static energy (cores, LLC, EMC) over the run.
    pub chip_static_j: f64,
    /// DRAM background/refresh energy over the run.
    pub dram_static_j: f64,
}

impl EnergyBreakdown {
    /// Total chip + DRAM energy.
    pub fn total_j(&self) -> f64 {
        self.core_dynamic_j
            + self.cache_dynamic_j
            + self.ring_dynamic_j
            + self.dram_dynamic_j
            + self.emc_dynamic_j
            + self.chip_static_j
            + self.dram_static_j
    }

    /// Percentage difference of this breakdown's total versus `base`
    /// (the Figure 23/24 metric).
    pub fn percent_vs(&self, base: &EnergyBreakdown) -> f64 {
        100.0 * (self.total_j() - base.total_j()) / base.total_j()
    }
}

/// Estimate the energy of a simulation run from its statistics.
///
/// # Example
///
/// ```
/// use emc_energy::{estimate, EnergyParams};
/// use emc_types::{Stats, SystemConfig};
///
/// let mut stats = Stats::new(4);
/// stats.cycles = 1_000_000;
/// for c in &mut stats.cores {
///     c.retired_uops = 300_000;
///     c.cycles = 1_000_000;
/// }
/// let e = estimate(&stats, &SystemConfig::quad_core(), &EnergyParams::default());
/// assert!(e.total_j() > 0.0);
/// assert!(e.chip_static_j > e.core_dynamic_j, "mostly-idle run is static-dominated");
/// ```
pub fn estimate(stats: &Stats, cfg: &SystemConfig, p: &EnergyParams) -> EnergyBreakdown {
    let nj = 1e-9;
    let seconds = stats.cycles as f64 / (p.clock_ghz * 1e9);

    let mut core_dynamic = 0.0;
    let mut cache_dynamic = 0.0;
    let mut chain_gen_uops = 0u64;
    for c in &stats.cores {
        core_dynamic += c.retired_uops as f64 * p.core_uop_nj * nj;
        // FP fraction is not tracked per-uop in stats; approximate from
        // the non-load/store/branch remainder at a fixed 15% FP share of
        // compute (the workloads' FP profiles dominate this number).
        let compute = c
            .retired_uops
            .saturating_sub(c.retired_loads + c.retired_stores + c.retired_branches);
        core_dynamic += compute as f64 * 0.15 * p.fp_extra_nj * nj;
        cache_dynamic += c.l1d_accesses as f64 * p.l1_access_nj * nj;
        cache_dynamic += c.llc_accesses as f64 * p.llc_access_nj * nj;
        chain_gen_uops += c.chain_uops_sent;
    }
    let ring_dynamic = stats.ring.total_hops as f64 * p.ring_hop_nj * nj;

    let dram_dynamic = (stats.mem.activates as f64 * p.dram_activate_nj
        + stats.mem.dram_traffic() as f64 * p.dram_rw_nj
        + stats.mem.precharges as f64 * p.dram_precharge_nj)
        * nj;

    let emc_dynamic = (stats.emc.uops_executed as f64 * p.emc_uop_nj
        + stats.emc.dcache_accesses as f64 * p.emc_dcache_nj
        + chain_gen_uops as f64 * p.chain_gen_uop_nj)
        * nj;

    let llc_mb = cfg.cores as f64 * cfg.llc_slice.bytes as f64 / (1024.0 * 1024.0);
    let mut chip_static_w = cfg.cores as f64 * p.core_static_w + llc_mb * p.llc_static_w_per_mb;
    if cfg.emc.enabled {
        chip_static_w += cfg.memory_controllers as f64 * p.emc_static_fraction * p.core_static_w;
    }
    let dram_static_w = cfg.dram.channels as f64 * p.dram_static_w_per_channel;

    EnergyBreakdown {
        core_dynamic_j: core_dynamic,
        cache_dynamic_j: cache_dynamic,
        ring_dynamic_j: ring_dynamic,
        dram_dynamic_j: dram_dynamic,
        emc_dynamic_j: emc_dynamic,
        chip_static_j: chip_static_w * seconds,
        dram_static_j: dram_static_w * seconds,
    }
}

/// Estimate with default parameters.
pub fn estimate_default(stats: &Stats, cfg: &SystemConfig) -> EnergyBreakdown {
    estimate(stats, cfg, &EnergyParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_stats(cycles: u64) -> Stats {
        let mut s = Stats::new(4);
        s.cycles = cycles;
        for c in &mut s.cores {
            c.cycles = cycles;
            c.retired_uops = cycles / 2;
            c.retired_loads = cycles / 10;
            c.l1d_accesses = cycles / 10;
            c.llc_accesses = cycles / 100;
        }
        s.mem.dram_reads = cycles / 200;
        s.mem.activates = cycles / 400;
        s.mem.precharges = cycles / 500;
        s.ring.total_hops = cycles / 50;
        s
    }

    #[test]
    fn longer_runs_cost_more_static_energy() {
        let cfg = SystemConfig::quad_core();
        let p = EnergyParams::default();
        let short = estimate(&base_stats(1_000_000), &cfg, &p);
        let long = estimate(&base_stats(2_000_000), &cfg, &p);
        assert!(long.chip_static_j > short.chip_static_j * 1.9);
        assert!(long.total_j() > short.total_j());
    }

    #[test]
    fn more_dram_traffic_costs_more() {
        let cfg = SystemConfig::quad_core();
        let p = EnergyParams::default();
        let mut a = base_stats(1_000_000);
        let mut b = base_stats(1_000_000);
        b.mem.dram_reads += 100_000;
        b.mem.activates += 50_000;
        let ea = estimate(&a, &cfg, &p);
        let eb = estimate(&b, &cfg, &p);
        assert!(eb.dram_dynamic_j > ea.dram_dynamic_j);
        assert!(eb.percent_vs(&ea) > 0.0);
        a.mem.dram_prefetches += 100_000; // prefetch traffic costs too
        let ea2 = estimate(&a, &cfg, &p);
        assert!(ea2.dram_dynamic_j > ea.dram_dynamic_j);
    }

    #[test]
    fn emc_adds_static_power_only_when_enabled() {
        let p = EnergyParams::default();
        let s = base_stats(1_000_000);
        let with = estimate(&s, &SystemConfig::quad_core(), &p);
        let without = estimate(&s, &SystemConfig::quad_core().without_emc(), &p);
        assert!(with.chip_static_j > without.chip_static_j);
        // ~10.4% of one core out of 4 cores + LLC: small.
        let ratio = with.chip_static_j / without.chip_static_j;
        assert!(ratio < 1.05, "EMC static overhead must be small: {ratio}");
    }

    #[test]
    fn performance_improvement_reduces_total_energy() {
        // Same work finished in fewer cycles → less static energy, same
        // dynamic energy → lower total (the paper's main energy effect).
        let cfg = SystemConfig::quad_core();
        let p = EnergyParams::default();
        let slow = estimate(&base_stats(2_000_000), &cfg, &p);
        let mut fast_stats = base_stats(2_000_000);
        fast_stats.cycles = 1_600_000;
        let fast = estimate(&fast_stats, &cfg, &p);
        assert!(fast.percent_vs(&slow) < 0.0);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let cfg = SystemConfig::quad_core();
        let e = estimate(&base_stats(500_000), &cfg, &EnergyParams::default());
        let sum = e.core_dynamic_j
            + e.cache_dynamic_j
            + e.ring_dynamic_j
            + e.dram_dynamic_j
            + e.emc_dynamic_j
            + e.chip_static_j
            + e.dram_static_j;
        assert!((sum - e.total_j()).abs() < 1e-12);
    }

    #[test]
    fn emc_dynamic_counts_chain_generation() {
        let cfg = SystemConfig::quad_core();
        let p = EnergyParams::default();
        let mut s = base_stats(1_000_000);
        let e0 = estimate(&s, &cfg, &p);
        s.emc.uops_executed = 50_000;
        s.emc.dcache_accesses = 20_000;
        s.cores[0].chain_uops_sent = 40_000;
        let e1 = estimate(&s, &cfg, &p);
        assert!(e1.emc_dynamic_j > e0.emc_dynamic_j);
    }
}
