//! Property-based tests for the cache building blocks.

use emc_cache::{MshrOutcome, Mshrs, SetAssocCache};
use emc_types::{CacheConfig, LineAddr};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Occupancy never exceeds capacity and a line is present iff it was
    /// filled after its last invalidation/eviction (tracked by an oracle).
    #[test]
    fn cache_matches_reference_set(ops in prop::collection::vec((0u64..64, prop::bool::ANY), 1..500)) {
        let cfg = CacheConfig { bytes: 1024, ways: 4, latency: 1, mshrs: 4 }; // 4 sets x 4 ways
        let mut c = SetAssocCache::new(&cfg);
        let mut oracle: HashSet<u64> = HashSet::new();
        let capacity = 16;
        for (line, is_fill) in ops {
            let l = LineAddr(line);
            if is_fill {
                if let Some(ev) = c.fill(l, false, false) {
                    oracle.remove(&ev.line.0);
                }
                oracle.insert(line);
            } else {
                let hit = c.access(l, false).is_some();
                prop_assert_eq!(hit, oracle.contains(&line),
                    "hit/miss mismatch for line {}", line);
            }
            prop_assert!(c.occupancy() <= capacity);
            prop_assert_eq!(c.occupancy(), oracle.len());
        }
    }

    /// Every filled line is immediately hittable, and its set never holds
    /// two copies (fills are idempotent).
    #[test]
    fn fill_is_idempotent(lines in prop::collection::vec(0u64..32, 1..200)) {
        let cfg = CacheConfig { bytes: 512, ways: 2, latency: 1, mshrs: 4 };
        let mut c = SetAssocCache::new(&cfg);
        for line in lines {
            c.fill(LineAddr(line), false, false);
            c.fill(LineAddr(line), false, false);
            prop_assert!(c.access(LineAddr(line), false).is_some());
            let copies = c.resident_lines().filter(|l| l.0 == line).count();
            prop_assert_eq!(copies, 1);
        }
    }

    /// MSHRs: the file never tracks more lines than its capacity, and
    /// completing returns exactly the waiters that were merged.
    #[test]
    fn mshr_waiter_conservation(reqs in prop::collection::vec((0u64..8, 0u64..1000), 1..200)) {
        let mut m = Mshrs::new(4);
        let mut oracle: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        for (line, waiter) in reqs {
            match m.alloc(LineAddr(line), waiter) {
                MshrOutcome::Full => {
                    prop_assert!(!oracle.contains_key(&line));
                    prop_assert!(oracle.len() >= 4);
                }
                MshrOutcome::NewMiss => {
                    prop_assert!(!oracle.contains_key(&line));
                    oracle.entry(line).or_default().push(waiter);
                }
                MshrOutcome::Merged => {
                    prop_assert!(oracle.contains_key(&line));
                    oracle.entry(line).or_default().push(waiter);
                }
            }
            prop_assert!(m.len() <= 4);
        }
        for (line, waiters) in oracle {
            prop_assert_eq!(m.complete(LineAddr(line)), waiters);
        }
        prop_assert!(m.is_empty());
    }

    /// Dirty bit survives until eviction and is reported exactly once.
    #[test]
    fn dirty_lines_report_on_eviction(writes in prop::collection::vec(0u64..16, 1..100)) {
        let cfg = CacheConfig { bytes: 256, ways: 2, latency: 1, mshrs: 4 }; // 2 sets x 2 ways
        let mut c = SetAssocCache::new(&cfg);
        let mut dirty: HashSet<u64> = HashSet::new();
        for line in writes {
            let l = LineAddr(line);
            if c.access(l, true).is_none() {
                if let Some(ev) = c.fill(l, true, false) {
                    // The model's view of dirty must match ours.
                    prop_assert_eq!(ev.flags.dirty, dirty.remove(&ev.line.0));
                }
            }
            dirty.insert(line);
        }
    }
}
