//! Cache-hierarchy building blocks: set-associative caches with LRU
//! replacement and per-line metadata, miss-status holding registers
//! (MSHRs), and the circular TLBs used by the EMC (§4.1.3–4.1.4 of the
//! paper).
//!
//! The full hierarchy (per-core L1s, one shared-LLC slice per core, the
//! EMC's 4 KB data cache) is assembled by `emc-sim` from these parts. The
//! LLC is inclusive and its per-line [`LineFlags::emc_resident`] bit is the
//! paper's one-bit directory extension for keeping the EMC data cache
//! coherent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mshr;
pub mod setassoc;
pub mod tlb;

pub use mshr::{MshrOutcome, Mshrs};
pub use setassoc::{Eviction, HitInfo, LineFlags, SetAssocCache};
pub use tlb::CircularTlb;
