//! The EMC's per-core circular TLB (paper §4.1.4).
//!
//! "Virtual memory translation at the EMC occurs through a small 32 entry
//! TLB for each core. The TLBs act as a circular buffer and cache the page
//! table entries of the last pages accessed by the EMC for each core."
//!
//! The corresponding core-side bookkeeping (a bit per PTE tracking whether
//! the translation is resident at the EMC, used both to skip re-sending
//! PTEs and to invalidate EMC entries on TLB shootdowns) is modeled by the
//! owner of this structure querying [`CircularTlb::contains`].

use emc_types::PageAddr;

/// A fixed-capacity circular-buffer TLB with FIFO replacement.
///
/// # Example
///
/// ```
/// use emc_cache::CircularTlb;
/// use emc_types::PageAddr;
///
/// let mut tlb = CircularTlb::new(2);
/// tlb.insert(PageAddr(1));
/// tlb.insert(PageAddr(2));
/// tlb.insert(PageAddr(3)); // evicts page 1 (FIFO)
/// assert!(!tlb.contains(PageAddr(1)));
/// assert!(tlb.contains(PageAddr(3)));
/// ```
#[derive(Debug, Clone)]
pub struct CircularTlb {
    slots: Vec<Option<PageAddr>>,
    head: usize,
}

impl CircularTlb {
    /// Create a TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        CircularTlb {
            slots: vec![None; capacity],
            head: 0,
        }
    }

    /// Whether `page`'s translation is resident.
    pub fn contains(&self, page: PageAddr) -> bool {
        self.slots.contains(&Some(page))
    }

    /// Insert `page`, overwriting the oldest slot (no-op if already
    /// present).
    pub fn insert(&mut self, page: PageAddr) {
        if self.contains(page) {
            return;
        }
        self.slots[self.head] = Some(page);
        self.head = (self.head + 1) % self.slots.len();
    }

    /// Invalidate `page` (TLB shootdown path). Returns whether it was
    /// present.
    pub fn invalidate(&mut self, page: PageAddr) -> bool {
        for s in &mut self.slots {
            if *s == Some(page) {
                *s = None;
                return true;
            }
        }
        false
    }

    /// Invalidate everything (full shootdown / context switch).
    pub fn clear(&mut self) {
        self.slots.fill(None);
        self.head = 0;
    }

    /// Number of resident translations.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether the TLB holds no translations.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_replacement() {
        let mut t = CircularTlb::new(3);
        for p in 1..=3 {
            t.insert(PageAddr(p));
        }
        assert_eq!(t.len(), 3);
        t.insert(PageAddr(4));
        assert!(!t.contains(PageAddr(1)), "oldest evicted");
        assert!(t.contains(PageAddr(2)));
        assert!(t.contains(PageAddr(4)));
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut t = CircularTlb::new(2);
        t.insert(PageAddr(1));
        t.insert(PageAddr(1));
        t.insert(PageAddr(2));
        // If the duplicate had consumed a slot, page 1 would be gone.
        assert!(t.contains(PageAddr(1)));
        assert!(t.contains(PageAddr(2)));
    }

    #[test]
    fn shootdown_invalidation() {
        let mut t = CircularTlb::new(4);
        t.insert(PageAddr(9));
        assert!(t.invalidate(PageAddr(9)));
        assert!(!t.contains(PageAddr(9)));
        assert!(!t.invalidate(PageAddr(9)), "second invalidate is a miss");
    }

    #[test]
    fn clear_empties() {
        let mut t = CircularTlb::new(2);
        t.insert(PageAddr(1));
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        CircularTlb::new(0);
    }
}
