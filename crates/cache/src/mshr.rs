//! Miss-status holding registers: track outstanding misses and merge
//! secondary misses to the same line.

use emc_types::LineAddr;
use std::collections::HashMap;

/// Result of requesting an MSHR for a missing line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// First miss to this line: a new request must be sent downstream.
    NewMiss,
    /// An earlier miss to the same line is already outstanding; this
    /// waiter was merged onto it.
    Merged,
    /// No MSHR available: the requester must stall and retry.
    Full,
}

/// An MSHR file. Waiters are opaque `u64` tokens chosen by the caller
/// (e.g. ROB indices or EMC load-queue slots).
///
/// # Example
///
/// ```
/// use emc_cache::{MshrOutcome, Mshrs};
/// use emc_types::LineAddr;
///
/// let mut m = Mshrs::new(2);
/// assert_eq!(m.alloc(LineAddr(1), 100), MshrOutcome::NewMiss);
/// assert_eq!(m.alloc(LineAddr(1), 101), MshrOutcome::Merged);
/// assert_eq!(m.complete(LineAddr(1)), vec![100, 101]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Mshrs {
    entries: HashMap<LineAddr, Vec<u64>>,
    capacity: usize,
}

impl Mshrs {
    /// Create an MSHR file with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Mshrs {
            entries: HashMap::new(),
            capacity,
        }
    }

    /// Number of distinct outstanding lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a miss to `line` is already outstanding.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Try to allocate (or merge into) an MSHR for `line` with `waiter`.
    pub fn alloc(&mut self, line: LineAddr, waiter: u64) -> MshrOutcome {
        if let Some(ws) = self.entries.get_mut(&line) {
            ws.push(waiter);
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.insert(line, vec![waiter]);
        MshrOutcome::NewMiss
    }

    /// Register an outstanding line with no waiter (e.g. a prefetch),
    /// respecting capacity.
    pub fn alloc_no_waiter(&mut self, line: LineAddr) -> MshrOutcome {
        if self.entries.contains_key(&line) {
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.insert(line, Vec::new());
        MshrOutcome::NewMiss
    }

    /// Complete the miss to `line`, returning its waiters in arrival
    /// order. Returns an empty vector if the line was not outstanding.
    pub fn complete(&mut self, line: LineAddr) -> Vec<u64> {
        self.entries.remove(&line).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_complete_order() {
        let mut m = Mshrs::new(4);
        assert_eq!(m.alloc(LineAddr(7), 1), MshrOutcome::NewMiss);
        assert_eq!(m.alloc(LineAddr(7), 2), MshrOutcome::Merged);
        assert_eq!(m.alloc(LineAddr(7), 3), MshrOutcome::Merged);
        assert_eq!(m.len(), 1);
        assert_eq!(m.complete(LineAddr(7)), vec![1, 2, 3]);
        assert!(m.is_empty());
    }

    #[test]
    fn capacity_blocks_new_lines_but_not_merges() {
        let mut m = Mshrs::new(1);
        assert_eq!(m.alloc(LineAddr(1), 10), MshrOutcome::NewMiss);
        assert_eq!(m.alloc(LineAddr(2), 11), MshrOutcome::Full);
        assert_eq!(m.alloc(LineAddr(1), 12), MshrOutcome::Merged);
    }

    #[test]
    fn complete_unknown_line_is_empty() {
        let mut m = Mshrs::new(1);
        assert!(m.complete(LineAddr(9)).is_empty());
    }

    #[test]
    fn no_waiter_allocation() {
        let mut m = Mshrs::new(2);
        assert_eq!(m.alloc_no_waiter(LineAddr(5)), MshrOutcome::NewMiss);
        assert_eq!(m.alloc_no_waiter(LineAddr(5)), MshrOutcome::Merged);
        assert!(m.contains(LineAddr(5)));
        assert_eq!(m.complete(LineAddr(5)), Vec::<u64>::new());
    }
}
