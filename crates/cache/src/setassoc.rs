//! Set-associative cache with LRU replacement and per-line metadata.

use emc_types::{CacheConfig, LineAddr};

/// Per-line metadata bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineFlags {
    /// Line has been written and must be written back on eviction.
    pub dirty: bool,
    /// Line was filled by a prefetch and has not yet been demanded
    /// (used for FDP accuracy tracking and Figures 3/21).
    pub prefetched: bool,
    /// Directory bit: a copy of this line lives in the EMC data cache
    /// (paper §4.1.3). Only meaningful in the inclusive LLC.
    pub emc_resident: bool,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u64,
    last_used: u64,
    flags: LineFlags,
}

/// Information about a cache hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitInfo {
    /// The hit consumed a prefetched line for the first time (the
    /// prefetch was *useful*).
    pub first_use_of_prefetch: bool,
    /// Flags after the access.
    pub flags: LineFlags,
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Address of the victim line.
    pub line: LineAddr,
    /// Victim metadata at eviction time (dirty ⇒ write back;
    /// prefetched ⇒ the prefetch was useless; emc_resident ⇒ the EMC
    /// data cache must be invalidated to preserve inclusion).
    pub flags: LineFlags,
}

/// A set-associative, LRU, write-back cache directory (tags + metadata;
/// data values live in the functional [`MemoryImage`]).
///
/// [`MemoryImage`]: emc_types::MemoryImage
///
/// # Example
///
/// ```
/// use emc_cache::SetAssocCache;
/// use emc_types::{CacheConfig, LineAddr};
///
/// let mut c = SetAssocCache::new(&CacheConfig::l1());
/// assert!(c.access(LineAddr(1), false).is_none()); // cold miss
/// c.fill(LineAddr(1), false, false);
/// assert!(c.access(LineAddr(1), false).is_some()); // hit
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    entries: Vec<Option<Entry>>,
    tick: u64,
    /// Access latency in cycles (exposed for the timing model).
    pub latency: u64,
}

impl SetAssocCache {
    /// Build a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets or ways.
    pub fn new(cfg: &CacheConfig) -> Self {
        assert!(cfg.ways > 0, "degenerate cache geometry: zero ways");
        let sets = cfg.sets();
        assert!(sets > 0, "degenerate cache geometry: zero sets");
        SetAssocCache {
            sets,
            ways: cfg.ways,
            entries: vec![None; sets * cfg.ways],
            tick: 0,
            latency: cfg.latency,
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 as usize) & (self.sets - 1)
    }

    fn slot_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    fn find(&self, line: LineAddr) -> Option<usize> {
        let set = self.set_of(line);
        let tag = line.0;
        self.slot_range(set)
            .find(|&i| self.entries[i].is_some_and(|e| e.tag == tag))
    }

    /// Probe without updating replacement state. Returns current flags on
    /// a hit.
    pub fn probe(&self, line: LineAddr) -> Option<LineFlags> {
        self.find(line)
            .map(|i| self.entries[i].expect("found").flags)
    }

    /// Demand access. On a hit, updates LRU, applies `is_write` to the
    /// dirty bit, clears the prefetched bit, and returns [`HitInfo`].
    /// Returns `None` on a miss (the caller allocates an MSHR and fills
    /// later).
    pub fn access(&mut self, line: LineAddr, is_write: bool) -> Option<HitInfo> {
        self.tick += 1;
        let idx = self.find(line)?;
        let e = self.entries[idx].as_mut().expect("found");
        e.last_used = self.tick;
        let first_use_of_prefetch = e.flags.prefetched;
        e.flags.prefetched = false;
        e.flags.dirty |= is_write;
        Some(HitInfo {
            first_use_of_prefetch,
            flags: e.flags,
        })
    }

    /// Fill `line` into the cache (end of a miss or a prefetch fill),
    /// evicting the LRU way of its set if necessary. Filling a line that
    /// is already present just updates its flags.
    pub fn fill(&mut self, line: LineAddr, dirty: bool, prefetched: bool) -> Option<Eviction> {
        self.tick += 1;
        if let Some(idx) = self.find(line) {
            let e = self.entries[idx].as_mut().expect("found");
            e.last_used = self.tick;
            e.flags.dirty |= dirty;
            // A demand fill of a previously prefetched line consumes it.
            e.flags.prefetched &= prefetched;
            return None;
        }
        let set = self.set_of(line);
        let range = self.slot_range(set);
        // Prefer an invalid way; otherwise evict true-LRU.
        let mut victim = range.start;
        let mut best = u64::MAX;
        for i in range {
            match &self.entries[i] {
                None => {
                    victim = i;
                    break;
                }
                Some(e) if e.last_used < best => {
                    victim = i;
                    best = e.last_used;
                }
                _ => {}
            }
        }
        let evicted = self.entries[victim].map(|e| Eviction {
            line: LineAddr(e.tag),
            flags: e.flags,
        });
        self.entries[victim] = Some(Entry {
            tag: line.0,
            last_used: self.tick,
            flags: LineFlags {
                dirty,
                prefetched,
                emc_resident: false,
            },
        });
        evicted
    }

    /// Fill `line` at the LRU position of its set: the line becomes the
    /// set's next victim unless demanded first (FDP's low-accuracy
    /// insertion policy for prefetches).
    pub fn fill_lru(&mut self, line: LineAddr, dirty: bool, prefetched: bool) -> Option<Eviction> {
        let ev = self.fill(line, dirty, prefetched);
        if let Some(idx) = self.find(line) {
            self.entries[idx].as_mut().expect("just filled").last_used = 0;
        }
        ev
    }

    /// Invalidate `line` if present, returning its flags (caller handles
    /// any required write-back).
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineFlags> {
        let idx = self.find(line)?;
        let e = self.entries[idx].take().expect("found");
        Some(e.flags)
    }

    /// Set or clear the EMC-resident directory bit of `line`.
    /// Returns false if the line is not present.
    pub fn set_emc_resident(&mut self, line: LineAddr, resident: bool) -> bool {
        match self.find(line) {
            Some(idx) => {
                self.entries[idx]
                    .as_mut()
                    .expect("found")
                    .flags
                    .emc_resident = resident;
                true
            }
            None => false,
        }
    }

    /// Number of valid lines (for tests/diagnostics).
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Total line capacity (`sets * ways`). Together with
    /// [`occupancy`](Self::occupancy) this gives the fill fraction the
    /// time-series sampler reports per LLC slice.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Occupancy as parts-per-thousand of capacity (integer-friendly for
    /// the metrics sampler; 1000 = completely full).
    pub fn occupancy_permille(&self) -> u32 {
        (self.occupancy() * 1000 / self.capacity()) as u32
    }

    /// Iterate over all resident line addresses (diagnostics; order is
    /// unspecified).
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.entries.iter().flatten().map(|e| LineAddr(e.tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emc_types::CacheConfig;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways of 64B lines = 256 B.
        SetAssocCache::new(&CacheConfig {
            bytes: 256,
            ways: 2,
            latency: 1,
            mshrs: 4,
        })
    }

    #[test]
    fn occupancy_fraction_tracks_fills() {
        let mut c = tiny();
        assert_eq!(c.capacity(), 4);
        assert_eq!(c.occupancy_permille(), 0);
        c.fill(LineAddr(0), false, false);
        c.fill(LineAddr(1), false, false);
        assert_eq!(c.occupancy(), 2);
        assert_eq!(c.occupancy_permille(), 500);
        c.fill(LineAddr(2), false, false);
        c.fill(LineAddr(3), false, false);
        assert_eq!(c.occupancy_permille(), 1000);
        // Evictions replace in place: still full.
        c.fill(LineAddr(4), false, false);
        assert_eq!(c.occupancy_permille(), 1000);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(c.access(LineAddr(0), false).is_none());
        assert!(c.fill(LineAddr(0), false, false).is_none());
        let hit = c.access(LineAddr(0), false).unwrap();
        assert!(!hit.first_use_of_prefetch);
        assert!(!hit.flags.dirty);
    }

    #[test]
    fn write_sets_dirty_and_eviction_reports_it() {
        let mut c = tiny();
        c.fill(LineAddr(0), false, false);
        c.access(LineAddr(0), true).unwrap();
        // Lines 0,2,4 map to set 0 (2 sets). Fill two more to evict line 0.
        c.fill(LineAddr(2), false, false);
        let ev = c.fill(LineAddr(4), false, false).expect("eviction");
        assert_eq!(ev.line, LineAddr(0));
        assert!(ev.flags.dirty);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        c.fill(LineAddr(0), false, false);
        c.fill(LineAddr(2), false, false);
        // Touch 0 so 2 becomes LRU.
        c.access(LineAddr(0), false).unwrap();
        let ev = c.fill(LineAddr(4), false, false).expect("eviction");
        assert_eq!(ev.line, LineAddr(2));
        assert!(c.probe(LineAddr(0)).is_some());
    }

    #[test]
    fn prefetch_first_use_detected_once() {
        let mut c = tiny();
        c.fill(LineAddr(0), false, true);
        assert!(c.probe(LineAddr(0)).unwrap().prefetched);
        let h1 = c.access(LineAddr(0), false).unwrap();
        assert!(h1.first_use_of_prefetch);
        let h2 = c.access(LineAddr(0), false).unwrap();
        assert!(!h2.first_use_of_prefetch, "flag cleared after first use");
    }

    #[test]
    fn useless_prefetch_reported_on_eviction() {
        let mut c = tiny();
        c.fill(LineAddr(0), false, true);
        c.fill(LineAddr(2), false, false);
        let ev = c.fill(LineAddr(4), false, false).expect("eviction");
        assert_eq!(ev.line, LineAddr(0));
        assert!(ev.flags.prefetched, "evicted unused prefetch");
    }

    #[test]
    fn emc_resident_bit_round_trip() {
        let mut c = tiny();
        assert!(!c.set_emc_resident(LineAddr(0), true), "absent line");
        c.fill(LineAddr(0), false, false);
        assert!(c.set_emc_resident(LineAddr(0), true));
        assert!(c.probe(LineAddr(0)).unwrap().emc_resident);
        // Eviction carries the bit so the sim can invalidate the EMC copy.
        c.fill(LineAddr(2), false, false);
        c.access(LineAddr(2), false).unwrap();
        let ev = c.fill(LineAddr(4), false, false).expect("eviction");
        assert_eq!(ev.line, LineAddr(0));
        assert!(ev.flags.emc_resident);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(LineAddr(0), true, false);
        let f = c.invalidate(LineAddr(0)).unwrap();
        assert!(f.dirty);
        assert!(c.probe(LineAddr(0)).is_none());
        assert!(c.invalidate(LineAddr(0)).is_none());
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn sets_isolate_addresses() {
        let mut c = tiny();
        // Lines 0 and 1 map to different sets; filling one set never
        // evicts the other.
        c.fill(LineAddr(0), false, false);
        c.fill(LineAddr(1), false, false);
        c.fill(LineAddr(2), false, false);
        c.fill(LineAddr(4), false, false);
        assert!(c.probe(LineAddr(1)).is_some());
    }

    #[test]
    fn refill_merges_flags() {
        let mut c = tiny();
        c.fill(LineAddr(0), false, true);
        assert!(c.fill(LineAddr(0), true, false).is_none());
        let f = c.probe(LineAddr(0)).unwrap();
        assert!(f.dirty);
        assert!(!f.prefetched, "demand fill consumes the prefetch flag");
    }

    #[test]
    fn fill_lru_makes_line_next_victim() {
        let mut c = tiny();
        c.fill(LineAddr(0), false, false);
        c.access(LineAddr(0), false).unwrap();
        // LRU-inserted prefetch into the same set: it must be evicted
        // before the demand-resident line 0.
        c.fill_lru(LineAddr(2), false, true);
        let ev = c.fill(LineAddr(4), false, false).expect("eviction");
        assert_eq!(ev.line, LineAddr(2), "LRU-inserted line evicted first");
        assert!(c.probe(LineAddr(0)).is_some());
    }

    #[test]
    fn fill_lru_promoted_by_demand_hit() {
        let mut c = tiny();
        c.fill_lru(LineAddr(0), false, true);
        c.fill(LineAddr(2), false, false);
        // A demand access promotes the LRU-inserted line to MRU.
        assert!(c.access(LineAddr(0), false).unwrap().first_use_of_prefetch);
        let ev = c.fill(LineAddr(4), false, false).expect("eviction");
        assert_eq!(ev.line, LineAddr(2), "promoted line survives");
    }

    #[test]
    fn geometry_matches_config() {
        let c = SetAssocCache::new(&CacheConfig::llc_slice());
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.latency, 18);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_way_cache_rejected() {
        SetAssocCache::new(&CacheConfig {
            bytes: 0,
            ways: 0,
            latency: 1,
            mshrs: 1,
        });
    }
}
