//! The Enhanced Memory Controller (EMC) — the paper's core contribution.
//!
//! This crate implements both halves of the mechanism from
//! *"Accelerating Dependent Cache Misses with an Enhanced Memory
//! Controller"* (ISCA 2016):
//!
//! 1. **Chain generation at the core** ([`chain::generate_chain`],
//!    Algorithm 1): on a full-window stall whose head is an LLC-miss
//!    load, and when the per-core [`DepMissCounter`] predicts a dependent
//!    miss, the core performs a pseudo-wakeup dataflow walk over its ROB,
//!    renaming the EMC-eligible dependents of the miss through a Register
//!    Remapping Table onto the EMC's 16-register file and capturing ready
//!    values in a live-in vector.
//! 2. **Remote execution at the memory controller** ([`engine::Emc`],
//!    §4.1/§4.3): per-chain issue contexts, a 2-wide out-of-order
//!    back-end, a 4 KB data cache fed by DRAM fills and kept coherent via
//!    LLC directory bits, per-core circular TLBs, a PC-hashed LLC
//!    hit/miss predictor that lets dependent misses skip the LLC and go
//!    straight to DRAM, branch-direction checking, and spill-store
//!    support with in-chain forwarding.
//!
//! The system simulator (`emc-sim`) wires these to the cores, ring, LLC
//! and DRAM; this crate is pure mechanism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod engine;
pub mod predictor;

pub use chain::{generate_chain, Chain, ChainSrc, ChainUop, GeneratedChain};
pub use engine::{AbortReason, ChainResult, Emc, EmcEvent, FinishedChain, LoadRoute};
pub use predictor::{DepMissCounter, MissPredictor};
