//! The EMC execution engine (paper §4.1, Figure 8).
//!
//! Two (quad-core) or four (eight-core) issue contexts each hold one
//! dependence chain: a 16-entry uop buffer, a 16-entry physical register
//! file and a live-in vector. A shared 2-wide back-end issues ready uops
//! out of order; loads check the per-context store buffer (LSQ), then the
//! 4 KB EMC data cache, then either the LLC or — when the PC-hashed miss
//! predictor says the LLC would miss — DRAM directly. Branches are checked
//! against the fetch-time predicted direction and abort the chain on a
//! mismatch; TLB misses abort the chain (the home core re-executes it).
//!
//! The engine is driven by the system simulator: it emits [`EmcEvent`]s
//! (load requests with their chosen route, chain completion/abort) and
//! receives load data via [`Emc::complete_load`].

use crate::chain::{Chain, ChainSrc, ChainUop};
use crate::predictor::MissPredictor;
use emc_cache::{CircularTlb, SetAssocCache};
use emc_types::{
    physical_line, Addr, CacheConfig, CoreId, Cycle, EmcConfig, EmcStats, LineAddr, PageAddr,
    UopKind,
};

/// EMC TLB translation granularity: 2 MB superpages.
///
/// SPEC-class workloads run with large pages on real systems; tracking
/// 4 KB pages at the EMC would abort nearly every pointer-chase chain
/// (the dependent load almost always leaves the source's 4 KB page),
/// which contradicts the paper's reported EMC coverage. With 2 MB
/// entries a 32-entry TLB covers a 64 MB footprint — misses still occur
/// and still abort chains (§4.1.4), just at a realistic rate.
pub const EMC_TLB_PAGE_BITS: u32 = 21;

fn tlb_page(addr: Addr) -> PageAddr {
    PageAddr(addr.0 >> EMC_TLB_PAGE_BITS)
}

/// Why a chain was aborted (the home core re-executes it locally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// A load's page translation was absent from the EMC TLB (§4.1.4).
    TlbMiss,
    /// The chain contained a mispredicted branch (§4.3).
    BranchMispredict,
    /// The simulator detected a memory-disambiguation conflict with an
    /// older store at the home core (§4.3).
    Disambiguation,
    /// The fault-injection layer killed the context mid-chain (timing-only
    /// fault; the home core re-executes the chain exactly as for a TLB
    /// miss, so architectural state is unaffected).
    Injected,
    /// The context's forward-progress lease expired: the chain made no
    /// progress (no source delivery, load completion, or result drain)
    /// for the configured lease window, so the simulator reclaimed the
    /// context and the home core re-executes the chain locally.
    LeaseExpired,
}

/// Where an EMC load was routed (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadRoute {
    /// Hit in the 4 KB EMC data cache (2-cycle access).
    DcacheHit,
    /// Predicted LLC hit: query the LLC over the on-chip path.
    Llc,
    /// Predicted LLC miss: issue directly to DRAM, skipping the LLC.
    DirectDram,
}

/// Events emitted by [`Emc::tick`] for the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmcEvent {
    /// A load issued; the simulator must supply data via
    /// [`Emc::complete_load`] after modeling `route`'s latency.
    Load {
        /// Issue context.
        ctx: usize,
        /// Index of the load within the chain.
        uop: usize,
        /// Chain's home core (whose memory image holds the data).
        home_core: CoreId,
        /// Virtual byte address.
        vaddr: Addr,
        /// Load PC (for predictor training by the sim).
        pc: u64,
        /// Route chosen by the EMC.
        route: LoadRoute,
    },
    /// Results of uops completed this cycle in `ctx`, to be shipped back
    /// to the home core as one data-ring message (live-outs stream back
    /// incrementally; a multi-indirection chain must not hold its early
    /// results hostage to its last miss).
    Results {
        /// Issue context.
        ctx: usize,
    },
    /// Every uop of the chain in `ctx` completed; collect it with
    /// [`Emc::take_finished`].
    ChainDone {
        /// Issue context.
        ctx: usize,
    },
    /// The chain in `ctx` aborted; collect it with [`Emc::take_finished`]
    /// and re-execute at the core.
    ChainAborted {
        /// Issue context.
        ctx: usize,
        /// Why.
        reason: AbortReason,
    },
}

/// Result of one chain uop, for retirement at the home core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainResult {
    /// Home-core ROB id.
    pub rob: emc_cpu::RobId,
    /// Destination value (branch direction for branches).
    pub value: u64,
    /// For stores: (address, data) to commit at retirement.
    pub store: Option<(Addr, u64)>,
}

/// A finished (completed or aborted) chain handed back to the simulator.
#[derive(Debug, Clone)]
pub struct FinishedChain {
    /// The original chain (for ROB ids and accounting).
    pub chain: Chain,
    /// Results completed but not yet drained (normally empty: results
    /// stream back incrementally via [`EmcEvent::Results`]).
    pub results: Vec<ChainResult>,
    /// Abort reason, if aborted.
    pub aborted: Option<AbortReason>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UopState {
    Waiting,
    Issued,
    Done,
}

#[derive(Debug)]
struct Context {
    chain: Chain,
    prf: Vec<u64>,
    prf_ready: Vec<bool>,
    states: Vec<UopState>,
    outbox: Vec<ChainResult>,
    store_buffer: Vec<(Addr, u64)>,
    source_delivered: bool,
    /// The chain is still in flight on the data ring until this cycle
    /// (the context is reserved at generation time; execution may not
    /// begin before the uops physically arrive).
    active_at: Cycle,
    aborted: Option<AbortReason>,
    announced: bool,
}

impl Context {
    fn new(chain: Chain, prf_entries: usize, active_at: Cycle) -> Self {
        let n = chain.uops.len();
        Context {
            chain,
            prf: vec![0; prf_entries],
            prf_ready: vec![false; prf_entries],
            states: vec![UopState::Waiting; n],
            outbox: Vec::new(),
            store_buffer: Vec::new(),
            source_delivered: false,
            active_at,
            aborted: None,
            announced: false,
        }
    }

    fn src_value(&self, s: ChainSrc) -> Option<u64> {
        match s {
            ChainSrc::Epr(e) => self.prf_ready[e as usize].then(|| self.prf[e as usize]),
            ChainSrc::LiveIn(i) => Some(self.chain.live_ins[i as usize]),
        }
    }

    fn uop_ready(&self, i: usize) -> bool {
        self.states[i] == UopState::Waiting
            && self.chain.uops[i]
                .srcs
                .iter()
                .flatten()
                .all(|&s| self.src_value(s).is_some())
    }

    /// Resolve the two ALU inputs per the ISA operand conventions.
    fn operands(&self, u: &ChainUop) -> (u64, u64) {
        let s0 = u.srcs[0].and_then(|s| self.src_value(s));
        let s1 = u.srcs[1].and_then(|s| self.src_value(s));
        match u.kind {
            UopKind::Mov => (s0.unwrap_or(u.imm), 0),
            UopKind::Not | UopKind::SignExtend => (s0.unwrap_or(0), 0),
            _ => (s0.unwrap_or(0), s1.unwrap_or(u.imm)),
        }
    }

    fn all_done(&self) -> bool {
        self.states.iter().all(|&s| s == UopState::Done)
    }
}

/// The enhanced memory controller's compute engine.
pub struct Emc {
    cfg: EmcConfig,
    contexts: Vec<Option<Context>>,
    dcache: SetAssocCache,
    tlbs: Vec<CircularTlb>,
    miss_pred: Vec<MissPredictor>,
    /// Execution statistics (Figures 15, 17, 21, 22 inputs).
    pub stats: EmcStats,
}

impl Emc {
    /// Build an EMC for `cores` home cores.
    pub fn new(cfg: &EmcConfig, cores: usize) -> Self {
        let dcache_cfg = CacheConfig {
            bytes: cfg.dcache_bytes,
            ways: cfg.dcache_ways,
            latency: cfg.dcache_latency,
            mshrs: 8,
        };
        Emc {
            cfg: *cfg,
            contexts: (0..cfg.contexts).map(|_| None).collect(),
            dcache: SetAssocCache::new(&dcache_cfg),
            tlbs: (0..cores)
                .map(|_| CircularTlb::new(cfg.tlb_entries))
                .collect(),
            miss_pred: (0..cores)
                .map(|_| MissPredictor::new(cfg.miss_pred_entries, cfg.miss_pred_threshold))
                .collect(),
            stats: EmcStats::default(),
        }
    }

    /// Whether any issue context is free.
    pub fn has_free_context(&self) -> bool {
        self.contexts.iter().any(|c| c.is_none())
    }

    /// Number of issue contexts currently occupied by a chain. The
    /// time-series sampler reads this each epoch as EMC occupancy.
    pub fn busy_contexts(&self) -> usize {
        self.contexts.iter().filter(|c| c.is_some()).count()
    }

    /// Total number of issue contexts (occupied or free).
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// The chain currently occupying `ctx`, if any (the simulator uses
    /// this to map load events back to home-core ROB ids).
    pub fn context_chain(&self, ctx: usize) -> Option<&Chain> {
        self.contexts.get(ctx)?.as_ref().map(|c| &c.chain)
    }

    /// Accept a chain into a free context, reserved immediately; the
    /// chain's uops are still in flight on the ring until `active_at`,
    /// before which no uop issues. The source miss's PTE is installed in
    /// the home core's EMC TLB if absent (it travels with the chain,
    /// §4.1.4).
    ///
    /// # Errors
    ///
    /// Returns the chain back if every context is busy (the caller drops
    /// it; the core simply executes normally).
    pub fn start_chain(&mut self, chain: Chain, active_at: Cycle) -> Result<usize, Chain> {
        let Some(slot) = self.contexts.iter().position(|c| c.is_none()) else {
            self.stats.chains_rejected_busy += 1;
            return Err(chain);
        };
        self.tlbs[chain.home_core].insert(tlb_page(chain.source_addr));
        self.contexts[slot] = Some(Context::new(chain, self.cfg.prf_entries, active_at));
        Ok(slot)
    }

    /// Deliver the source miss's data (the DRAM fill reached the memory
    /// controller): execution of the chain can begin next tick.
    pub fn deliver_source(&mut self, ctx: usize, value: u64) {
        if let Some(c) = self.contexts[ctx].as_mut() {
            let epr = c.chain.source_epr as usize;
            c.prf[epr] = value;
            c.prf_ready[epr] = true;
            c.source_delivered = true;
        }
    }

    /// Supply data for a load previously emitted as [`EmcEvent::Load`].
    pub fn complete_load(&mut self, ctx: usize, uop: usize, value: u64) {
        let Some(c) = self.contexts[ctx].as_mut() else {
            return;
        };
        if c.states[uop] != UopState::Issued {
            return;
        }
        let u = c.chain.uops[uop];
        c.states[uop] = UopState::Done;
        if let Some(d) = u.dst {
            c.prf[d as usize] = value;
            c.prf_ready[d as usize] = true;
        }
        c.outbox.push(ChainResult {
            rob: u.rob,
            value,
            store: None,
        });
    }

    /// Abort a chain from the outside (memory-disambiguation conflict
    /// detected by the simulator, §4.3).
    pub fn force_abort(&mut self, ctx: usize, reason: AbortReason) {
        if let Some(c) = self.contexts[ctx].as_mut() {
            if c.aborted.is_none() {
                c.aborted = Some(reason);
            }
        }
    }

    /// Collect a finished context announced via [`EmcEvent::ChainDone`] /
    /// [`EmcEvent::ChainAborted`], freeing it.
    ///
    /// # Panics
    ///
    /// Panics if the context is empty.
    pub fn take_finished(&mut self, ctx: usize) -> FinishedChain {
        let c = self.contexts[ctx].take().expect("context not empty");
        FinishedChain {
            chain: c.chain,
            results: c.outbox,
            aborted: c.aborted,
        }
    }

    /// Drain the results completed in `ctx` since the last drain (called
    /// by the simulator on [`EmcEvent::Results`]).
    pub fn drain_results(&mut self, ctx: usize) -> Vec<ChainResult> {
        self.contexts[ctx]
            .as_mut()
            .map(|c| std::mem::take(&mut c.outbox))
            .unwrap_or_default()
    }

    /// A line arrived from DRAM at this memory controller: fill the EMC
    /// data cache (§4.1.3 — it "holds the most recent lines that have
    /// been transmitted from DRAM to the chip"). Returns the evicted
    /// line, whose LLC directory bit the simulator must clear.
    pub fn on_dram_fill(&mut self, phys_line: LineAddr) -> Option<LineAddr> {
        self.dcache.fill(phys_line, false, false).map(|ev| ev.line)
    }

    /// Coherence: invalidate a line (LLC eviction of a line whose
    /// directory bit is set, or a conflicting store).
    pub fn invalidate_line(&mut self, phys_line: LineAddr) {
        self.dcache.invalidate(phys_line);
    }

    /// Train the per-core LLC miss predictor with an observed outcome.
    pub fn train_miss_predictor(&mut self, core: CoreId, pc: u64, was_miss: bool) {
        self.miss_pred[core].train(pc, was_miss);
    }

    /// TLB shootdown (§4.1.4): the OS invalidated a translation; the
    /// core's PTE bit says a copy lives at the EMC, so it must be
    /// invalidated here too. Returns whether an entry was present.
    pub fn tlb_shootdown(&mut self, core: CoreId, addr: Addr) -> bool {
        self.tlbs[core].invalidate(tlb_page(addr))
    }

    /// Whether the EMC TLB currently holds `addr`'s translation for
    /// `core` (the core-side PTE bit of §4.1.4).
    pub fn tlb_resident(&self, core: CoreId, addr: Addr) -> bool {
        self.tlbs[core].contains(tlb_page(addr))
    }

    /// Advance one EMC cycle: issue up to `issue_width` ready uops across
    /// all contexts (oldest context first) and announce finished chains.
    pub fn tick(&mut self, _now: Cycle) -> Vec<EmcEvent> {
        let mut events = Vec::new();
        let mut issued = 0;
        for ctx in 0..self.contexts.len() {
            if issued >= self.cfg.issue_width {
                break;
            }
            let Some(c) = self.contexts[ctx].as_ref() else {
                continue;
            };
            if !c.source_delivered || c.aborted.is_some() || _now < c.active_at {
                continue;
            }
            let ready: Vec<usize> = (0..c.chain.uops.len())
                .filter(|&i| c.uop_ready(i))
                .take(self.cfg.issue_width - issued)
                .collect();
            for i in ready {
                issued += 1;
                self.issue_uop(ctx, i, &mut events);
                if self.contexts[ctx]
                    .as_ref()
                    .is_none_or(|c| c.aborted.is_some())
                {
                    break;
                }
            }
        }
        // Stream back results completed this cycle, then announce
        // terminal states.
        for ctx in 0..self.contexts.len() {
            let Some(c) = self.contexts[ctx].as_mut() else {
                continue;
            };
            if !c.outbox.is_empty() && c.aborted.is_none() {
                events.push(EmcEvent::Results { ctx });
            }
            if c.announced {
                continue;
            }
            if let Some(reason) = c.aborted {
                c.announced = true;
                events.push(EmcEvent::ChainAborted { ctx, reason });
            } else if c.all_done() {
                c.announced = true;
                self.stats.chains_executed += 1;
                events.push(EmcEvent::ChainDone { ctx });
            }
        }
        events
    }

    fn issue_uop(&mut self, ctx: usize, i: usize, events: &mut Vec<EmcEvent>) {
        let c = self.contexts[ctx].as_mut().expect("context exists");
        let u = c.chain.uops[i];
        self.stats.uops_executed += 1;
        match u.kind {
            UopKind::Branch(cond) => {
                let v = u.srcs[0].and_then(|s| c.src_value(s)).unwrap_or(0);
                let taken = emc_types::StaticUop::branch_taken(cond, v);
                c.states[i] = UopState::Done;
                if taken != u.predicted_taken {
                    // The core must re-execute the branch locally to
                    // redirect fetch: no result is returned.
                    self.stats.branch_mispredicts_detected += 1;
                    c.aborted = Some(AbortReason::BranchMispredict);
                } else {
                    c.outbox.push(ChainResult {
                        rob: u.rob,
                        value: u64::from(taken),
                        store: None,
                    });
                }
            }
            UopKind::Store => {
                let (base, value) = {
                    let b = u.srcs[0].and_then(|s| c.src_value(s)).unwrap_or(0);
                    let v = u.srcs[1].and_then(|s| c.src_value(s)).unwrap_or(0);
                    (b, v)
                };
                let addr = Addr(base.wrapping_add(u.imm));
                c.store_buffer.push((addr, value));
                c.states[i] = UopState::Done;
                c.outbox.push(ChainResult {
                    rob: u.rob,
                    value,
                    store: Some((addr, value)),
                });
                self.stats.stores_executed += 1;
            }
            UopKind::Load => {
                let base = u.srcs[0].and_then(|s| c.src_value(s)).unwrap_or(0);
                let addr = Addr(base.wrapping_add(u.imm));
                let home = c.chain.home_core;
                self.stats.loads_executed += 1;
                // 1. Virtual address translation (§4.1.4).
                let page = tlb_page(addr);
                if !self.tlbs[home].contains(page) {
                    self.stats.tlb_misses += 1;
                    // Model the core sending the PTE along with the
                    // re-execution notification, so the next chain to
                    // this page succeeds.
                    self.tlbs[home].insert(page);
                    c.states[i] = UopState::Done;
                    c.aborted = Some(AbortReason::TlbMiss);
                    return;
                }
                self.stats.tlb_hits += 1;
                // 2. In-chain store forwarding (register fills).
                if let Some(&(_, v)) = c.store_buffer.iter().rev().find(|&&(a, _)| a == addr) {
                    c.states[i] = UopState::Done;
                    if let Some(d) = u.dst {
                        c.prf[d as usize] = v;
                        c.prf_ready[d as usize] = true;
                    }
                    c.outbox.push(ChainResult {
                        rob: u.rob,
                        value: v,
                        store: None,
                    });
                    return;
                }
                // 3. EMC data cache.
                let pline = physical_line(home, addr.line());
                self.stats.dcache_accesses += 1;
                let route = if self.dcache.access(pline, false).is_some() {
                    self.stats.dcache_hits += 1;
                    LoadRoute::DcacheHit
                } else if self.miss_pred[home].predict_miss(u.pc) {
                    // 4. Predicted LLC miss: straight to DRAM.
                    self.stats.direct_to_dram += 1;
                    LoadRoute::DirectDram
                } else {
                    self.stats.llc_lookups += 1;
                    LoadRoute::Llc
                };
                c.states[i] = UopState::Issued;
                events.push(EmcEvent::Load {
                    ctx,
                    uop: i,
                    home_core: home,
                    vaddr: addr,
                    pc: u.pc,
                    route,
                });
            }
            kind => {
                let (a, b) = c.operands(&u);
                let value = kind.alu(a, b);
                c.states[i] = UopState::Done;
                if let Some(d) = u.dst {
                    c.prf[d as usize] = value;
                    c.prf_ready[d as usize] = true;
                }
                c.outbox.push(ChainResult {
                    rob: u.rob,
                    value,
                    store: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{ChainSrc, ChainUop};
    use emc_types::BranchCond;

    fn cfg() -> EmcConfig {
        EmcConfig::default()
    }

    /// Chain: E0 = source; add E1 = E0 + 8; ld E2 <- [E1].
    fn simple_chain() -> Chain {
        Chain {
            home_core: 0,
            source_rob: 10,
            source_epr: 0,
            source_addr: Addr(0x100),
            uops: vec![
                ChainUop {
                    rob: 11,
                    kind: UopKind::IntAdd,
                    srcs: [Some(ChainSrc::Epr(0)), None],
                    dst: Some(1),
                    imm: 8,
                    pc: 0x44,
                    predicted_taken: false,
                },
                ChainUop {
                    rob: 12,
                    kind: UopKind::Load,
                    srcs: [Some(ChainSrc::Epr(1)), None],
                    dst: Some(2),
                    imm: 0,
                    pc: 0x48,
                    predicted_taken: false,
                },
            ],
            live_ins: vec![],
            imm_live_ins: 1,
        }
    }

    fn drive_until_event(emc: &mut Emc, pred: impl Fn(&EmcEvent) -> bool, max: u64) -> EmcEvent {
        for now in 0..max {
            for ev in emc.tick(now) {
                if pred(&ev) {
                    return ev;
                }
            }
        }
        panic!("event not produced within {max} ticks");
    }

    /// Drive until the chain in `ctx` completes, draining streamed
    /// results along the way.
    fn drive_collect(emc: &mut Emc, ctx: usize, max: u64) -> Vec<ChainResult> {
        let mut results = Vec::new();
        for now in 0..max {
            for ev in emc.tick(now) {
                match ev {
                    EmcEvent::Results { ctx: c } if c == ctx => {
                        results.extend(emc.drain_results(ctx));
                    }
                    EmcEvent::ChainDone { ctx: c } if c == ctx => {
                        results.extend(emc.take_finished(ctx).results);
                        return results;
                    }
                    _ => {}
                }
            }
        }
        panic!("chain did not complete within {max} ticks");
    }

    #[test]
    fn chain_executes_after_source_delivery() {
        let mut emc = Emc::new(&cfg(), 4);
        let ctx = emc.start_chain(simple_chain(), 0).unwrap();
        // No source data yet: nothing happens.
        assert!(emc.tick(0).is_empty());
        emc.deliver_source(ctx, 0x4000);
        let ev = drive_until_event(&mut emc, |e| matches!(e, EmcEvent::Load { .. }), 10);
        let EmcEvent::Load {
            vaddr, route, uop, ..
        } = ev
        else {
            unreachable!()
        };
        assert_eq!(vaddr, Addr(0x4008), "address = source value + 8");
        assert_eq!(route, LoadRoute::Llc, "cold predictor assumes LLC hit");
        let mut results = emc.drain_results(ctx); // the ADD's result
        emc.complete_load(ctx, uop, 777);
        results.extend(emc.drain_results(ctx));
        let _ = drive_until_event(&mut emc, |e| matches!(e, EmcEvent::ChainDone { .. }), 10);
        results.extend(emc.take_finished(ctx).results);
        results.sort_by_key(|r| r.rob);
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0],
            ChainResult {
                rob: 11,
                value: 0x4008,
                store: None
            }
        );
        assert_eq!(
            results[1],
            ChainResult {
                rob: 12,
                value: 777,
                store: None
            }
        );
        assert!(emc.has_free_context());
        assert_eq!(emc.stats.chains_executed, 1);
        assert_eq!(emc.stats.loads_executed, 1);
    }

    #[test]
    fn miss_predictor_routes_direct_to_dram() {
        let mut emc = Emc::new(&cfg(), 4);
        for _ in 0..8 {
            emc.train_miss_predictor(0, 0x48, true);
        }
        let ctx = emc.start_chain(simple_chain(), 0).unwrap();
        emc.deliver_source(ctx, 0x4000);
        let ev = drive_until_event(&mut emc, |e| matches!(e, EmcEvent::Load { .. }), 10);
        let EmcEvent::Load { route, .. } = ev else {
            unreachable!()
        };
        assert_eq!(route, LoadRoute::DirectDram);
        assert_eq!(emc.stats.direct_to_dram, 1);
    }

    #[test]
    fn dcache_hit_routes_locally() {
        let mut emc = Emc::new(&cfg(), 4);
        // The line containing 0x4008 arrived from DRAM earlier.
        emc.on_dram_fill(physical_line(0, Addr(0x4008).line()));
        let ctx = emc.start_chain(simple_chain(), 0).unwrap();
        emc.deliver_source(ctx, 0x4000);
        let ev = drive_until_event(&mut emc, |e| matches!(e, EmcEvent::Load { .. }), 10);
        let EmcEvent::Load { route, .. } = ev else {
            unreachable!()
        };
        assert_eq!(route, LoadRoute::DcacheHit);
        assert_eq!(emc.stats.dcache_hit_rate(), 1.0);
    }

    #[test]
    fn coherence_invalidation_blocks_dcache_hit() {
        let mut emc = Emc::new(&cfg(), 4);
        let pline = physical_line(0, Addr(0x4008).line());
        emc.on_dram_fill(pline);
        emc.invalidate_line(pline);
        let ctx = emc.start_chain(simple_chain(), 0).unwrap();
        emc.deliver_source(ctx, 0x4000);
        let ev = drive_until_event(&mut emc, |e| matches!(e, EmcEvent::Load { .. }), 10);
        let EmcEvent::Load { route, .. } = ev else {
            unreachable!()
        };
        assert_ne!(route, LoadRoute::DcacheHit);
    }

    #[test]
    fn tlb_miss_aborts_chain() {
        let mut emc = Emc::new(&cfg(), 4);
        let mut chain = simple_chain();
        // Dependent load lands on a far page; source page (0x100) is
        // installed by start_chain but 0x4008's page is not.
        chain.source_addr = Addr(0x100);
        let ctx = emc.start_chain(chain, 0).unwrap();
        emc.deliver_source(ctx, 0x4_0000_0000);
        let ev = drive_until_event(&mut emc, |e| matches!(e, EmcEvent::ChainAborted { .. }), 10);
        let EmcEvent::ChainAborted { reason, .. } = ev else {
            unreachable!()
        };
        assert_eq!(reason, AbortReason::TlbMiss);
        assert_eq!(emc.stats.tlb_misses, 1);
        let fin = emc.take_finished(ctx);
        assert_eq!(fin.aborted, Some(AbortReason::TlbMiss));
        // The ADD executed before the load's TLB miss; its residual
        // result is discarded by the abort path (the core re-executes
        // the whole chain, §4.1.4).
        assert!(fin.results.len() <= 1);
    }

    #[test]
    fn branch_mispredict_detected_and_aborts() {
        let mut emc = Emc::new(&cfg(), 4);
        let chain = Chain {
            home_core: 1,
            source_rob: 20,
            source_epr: 0,
            source_addr: Addr(0x100),
            uops: vec![ChainUop {
                rob: 21,
                kind: UopKind::Branch(BranchCond::Zero),
                srcs: [Some(ChainSrc::Epr(0)), None],
                dst: None,
                imm: 0,
                pc: 0x80,
                predicted_taken: false, // predicted not-taken
            }],
            live_ins: vec![],
            imm_live_ins: 0,
        };
        let ctx = emc.start_chain(chain, 0).unwrap();
        emc.deliver_source(ctx, 0); // value 0 → brz taken → mispredict
        let ev = drive_until_event(&mut emc, |e| matches!(e, EmcEvent::ChainAborted { .. }), 10);
        let EmcEvent::ChainAborted { reason, .. } = ev else {
            unreachable!()
        };
        assert_eq!(reason, AbortReason::BranchMispredict);
        assert_eq!(emc.stats.branch_mispredicts_detected, 1);
    }

    #[test]
    fn correctly_predicted_branch_passes() {
        let mut emc = Emc::new(&cfg(), 4);
        let chain = Chain {
            home_core: 0,
            source_rob: 20,
            source_epr: 0,
            source_addr: Addr(0x100),
            uops: vec![ChainUop {
                rob: 21,
                kind: UopKind::Branch(BranchCond::NotZero),
                srcs: [Some(ChainSrc::Epr(0)), None],
                dst: None,
                imm: 0,
                pc: 0x80,
                predicted_taken: true,
            }],
            live_ins: vec![],
            imm_live_ins: 0,
        };
        let ctx = emc.start_chain(chain, 0).unwrap();
        emc.deliver_source(ctx, 5);
        let results = drive_collect(&mut emc, ctx, 10);
        assert_eq!(results[0].value, 1);
    }

    #[test]
    fn store_forwarding_within_chain() {
        // st [E0 + 0x10] = E0 ; ld E1 <- [E0 + 0x10]: the fill must
        // forward from the chain LSQ without a memory request.
        let mut emc = Emc::new(&cfg(), 4);
        let chain = Chain {
            home_core: 0,
            source_rob: 30,
            source_epr: 0,
            source_addr: Addr(0x100),
            uops: vec![
                ChainUop {
                    rob: 31,
                    kind: UopKind::Store,
                    srcs: [Some(ChainSrc::Epr(0)), Some(ChainSrc::Epr(0))],
                    dst: None,
                    imm: 0x10,
                    pc: 0x90,
                    predicted_taken: false,
                },
                ChainUop {
                    rob: 32,
                    kind: UopKind::Load,
                    srcs: [Some(ChainSrc::Epr(0)), None],
                    dst: Some(1),
                    imm: 0x10,
                    pc: 0x94,
                    predicted_taken: false,
                },
            ],
            live_ins: vec![],
            imm_live_ins: 0,
        };
        let ctx = emc.start_chain(chain, 0).unwrap();
        emc.deliver_source(ctx, 0x2000);
        let mut saw_load_event = false;
        let mut results = Vec::new();
        for now in 0..10 {
            for ev in emc.tick(now) {
                match ev {
                    EmcEvent::Load { .. } => saw_load_event = true,
                    EmcEvent::Results { ctx: c } if c == ctx => {
                        results.extend(emc.drain_results(ctx));
                    }
                    EmcEvent::ChainDone { .. } => {
                        results.extend(emc.take_finished(ctx).results);
                        assert!(!saw_load_event, "fill must forward, not issue");
                        results.sort_by_key(|r| r.rob);
                        assert_eq!(results[0].store, Some((Addr(0x2010), 0x2000)));
                        assert_eq!(results[1].value, 0x2000);
                        assert_eq!(emc.stats.stores_executed, 1);
                        return;
                    }
                    _ => {}
                }
            }
        }
        panic!("chain did not finish");
    }

    #[test]
    fn contexts_fill_and_reject() {
        let mut emc = Emc::new(&cfg(), 4);
        assert_eq!(emc.busy_contexts(), 0);
        assert!(emc.start_chain(simple_chain(), 0).is_ok());
        assert_eq!(emc.busy_contexts(), 1);
        assert!(emc.start_chain(simple_chain(), 0).is_ok());
        assert!(!emc.has_free_context(), "default EMC has 2 contexts");
        assert_eq!(emc.busy_contexts(), emc.context_count());
        assert!(emc.start_chain(simple_chain(), 0).is_err());
        assert_eq!(emc.stats.chains_rejected_busy, 1);
    }

    #[test]
    fn issue_width_throttles_alu_throughput() {
        // A chain of 6 independent ALU uops (all read E0): with a 2-wide
        // back-end they need 3 ticks.
        let mut emc = Emc::new(&cfg(), 4);
        let uops: Vec<ChainUop> = (0..6)
            .map(|k| ChainUop {
                rob: 40 + k as u64,
                kind: UopKind::IntAdd,
                srcs: [Some(ChainSrc::Epr(0)), None],
                dst: Some(1 + k as u8),
                imm: k as u64,
                pc: 0x100 + 4 * k as u64,
                predicted_taken: false,
            })
            .collect();
        let chain = Chain {
            home_core: 0,
            source_rob: 39,
            source_epr: 0,
            source_addr: Addr(0x100),
            uops,
            live_ins: vec![],
            imm_live_ins: 6,
        };
        let ctx = emc.start_chain(chain, 0).unwrap();
        emc.deliver_source(ctx, 100);
        let mut done_tick = None;
        for now in 0..10 {
            for ev in emc.tick(now) {
                if matches!(ev, EmcEvent::ChainDone { .. }) {
                    done_tick = Some(now);
                }
            }
            if done_tick.is_some() {
                break;
            }
        }
        assert_eq!(done_tick, Some(2), "6 uops / 2-wide = 3 ticks (0,1,2)");
    }

    #[test]
    fn tlb_shootdown_invalidate_and_reinstall() {
        let mut emc = Emc::new(&cfg(), 4);
        let ctx = emc.start_chain(simple_chain(), 0).unwrap();
        assert!(
            emc.tlb_resident(0, Addr(0x100)),
            "PTE installed with the chain"
        );
        // Shootdown removes it; chains touching that page now abort.
        assert!(emc.tlb_shootdown(0, Addr(0x100)));
        assert!(!emc.tlb_resident(0, Addr(0x100)));
        assert!(
            !emc.tlb_shootdown(0, Addr(0x100)),
            "second shootdown is a miss"
        );
        // The running chain's next load now TLB-misses and aborts — the
        // §4.1.4 behavior the shootdown machinery must preserve.
        emc.deliver_source(ctx, 0x4000);
        let ev = drive_until_event(&mut emc, |e| matches!(e, EmcEvent::ChainAborted { .. }), 10);
        let EmcEvent::ChainAborted { reason, .. } = ev else {
            unreachable!()
        };
        assert_eq!(reason, AbortReason::TlbMiss);
        emc.take_finished(ctx);
        // A later chain reinstalls the PTE (it ships with the chain).
        let _ctx2 = emc.start_chain(simple_chain(), 0).unwrap();
        assert!(emc.tlb_resident(0, Addr(0x100)));
        // Shootdowns are per-core: core 1's TLB is unaffected.
        assert!(!emc.tlb_shootdown(1, Addr(0x100)));
    }

    #[test]
    fn force_abort_for_disambiguation() {
        let mut emc = Emc::new(&cfg(), 4);
        let ctx = emc.start_chain(simple_chain(), 0).unwrap();
        emc.deliver_source(ctx, 0x4000);
        emc.force_abort(ctx, AbortReason::Disambiguation);
        let ev = drive_until_event(&mut emc, |e| matches!(e, EmcEvent::ChainAborted { .. }), 10);
        let EmcEvent::ChainAborted { reason, .. } = ev else {
            unreachable!()
        };
        assert_eq!(reason, AbortReason::Disambiguation);
    }
}
