//! Dependence-chain generation (paper §4.2, Algorithm 1, Figure 9).
//!
//! When the home core hits a full-window stall on an LLC-miss load and the
//! dependent-miss counter predicts a dependent miss is likely, the core
//! walks its ROB with a *pseudo-wakeup* dataflow pass: the source miss's
//! destination tag is broadcast on the (modeled) CDB, waking dependents;
//! each woken uop that the EMC can execute is renamed through the Register
//! Remapping Table (RRT) onto the EMC's 16-entry physical register file,
//! its ready source values are shifted into the live-in vector, and its
//! own destination tag is broadcast in turn — until the chain reaches 16
//! uops or the dataflow frontier is exhausted.

use emc_cpu::{Core, EntryState, RobId};
use emc_types::{Addr, CoreId, EmcConfig, UopKind};
use std::collections::HashMap;

/// A chain operand after RRT renaming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainSrc {
    /// An EMC physical register (written by an earlier chain uop or by
    /// the arriving source-miss data).
    Epr(u8),
    /// An index into the chain's live-in vector (value captured at
    /// generation time).
    LiveIn(u8),
}

/// One renamed micro-op of a dependence chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainUop {
    /// The home-core ROB entry this uop retires through.
    pub rob: RobId,
    /// Operation class (always [`UopKind::emc_allowed`]).
    pub kind: UopKind,
    /// Renamed sources (None = no register operand in that slot; the
    /// immediate is used per the ISA's operand conventions).
    pub srcs: [Option<ChainSrc>; 2],
    /// Destination EMC physical register.
    pub dst: Option<u8>,
    /// Immediate / memory displacement.
    pub imm: u64,
    /// PC (EMC miss-predictor index for loads).
    pub pc: u64,
    /// Fetch-time predicted direction (branches; the EMC checks this,
    /// §4.3).
    pub predicted_taken: bool,
}

/// A complete dependence chain ready to ship to the EMC.
#[derive(Debug, Clone)]
pub struct Chain {
    /// The core whose window this chain came from.
    pub home_core: CoreId,
    /// The source miss (its data arrival starts execution).
    pub source_rob: RobId,
    /// EPR that receives the source miss's data.
    pub source_epr: u8,
    /// Virtual address of the source miss (TLB/PTE handling).
    pub source_addr: Addr,
    /// The renamed uops, in dataflow (wakeup) order.
    pub uops: Vec<ChainUop>,
    /// Live-in register values, indexed by [`ChainSrc::LiveIn`].
    pub live_ins: Vec<u64>,
    /// Immediates shifted into the live-in vector (counted for the §6.5
    /// transfer-overhead statistics; values ride inline in the uops).
    pub imm_live_ins: u64,
}

impl Chain {
    /// Total live-in slots consumed (register values + immediates),
    /// matching the paper's "6.4 live-ins on average" metric.
    pub fn live_in_count(&self) -> u64 {
        self.live_ins.len() as u64 + self.imm_live_ins
    }

    /// Number of live-out registers (destination EPRs returned to the
    /// core).
    pub fn live_out_count(&self) -> u64 {
        self.uops.iter().filter(|u| u.dst.is_some()).count() as u64
    }

    /// Transfer size in bytes: 6 bytes per uop (Table 1) plus 8 per
    /// live-in value.
    pub fn transfer_bytes(&self) -> u64 {
        6 * self.uops.len() as u64 + 8 * self.live_in_count()
    }

    /// Render the chain as a Figure-9-style text table: each uop with its
    /// renamed EMC registers and live-in operands.
    ///
    /// # Example
    ///
    /// ```
    /// # use emc_core::{Chain, ChainSrc, ChainUop};
    /// # use emc_types::{Addr, UopKind};
    /// let chain = Chain {
    ///     home_core: 0, source_rob: 1, source_epr: 0,
    ///     source_addr: Addr(0x100),
    ///     uops: vec![ChainUop {
    ///         rob: 2, kind: UopKind::IntAdd,
    ///         srcs: [Some(ChainSrc::Epr(0)), None],
    ///         dst: Some(1), imm: 0x18, pc: 0x40, predicted_taken: false,
    ///     }],
    ///     live_ins: vec![], imm_live_ins: 1,
    /// };
    /// let text = chain.render();
    /// assert!(text.contains("E1 <- add E0"));
    /// ```
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "chain from core {} (source rob {} -> E{}, addr {}):",
            self.home_core, self.source_rob, self.source_epr, self.source_addr
        );
        for u in &self.uops {
            let dst = match u.dst {
                Some(d) => format!("E{d}"),
                None => "--".to_string(),
            };
            let mut srcs = Vec::new();
            for s in u.srcs.iter().flatten() {
                srcs.push(match s {
                    ChainSrc::Epr(e) => format!("E{e}"),
                    ChainSrc::LiveIn(i) => format!("L{i}={:#x}", self.live_ins[*i as usize]),
                });
            }
            if srcs.len() < 2 && !matches!(u.kind, UopKind::Branch(_)) {
                srcs.push(format!("{:#x}", u.imm));
            }
            let _ = writeln!(
                out,
                "  [rob {:>4}] {} <- {} {}",
                u.rob,
                dst,
                u.kind,
                srcs.join(", ")
            );
        }
        let _ = writeln!(
            out,
            "  ({} uops, {} live-ins, {} live-outs, {} B transfer)",
            self.uops.len(),
            self.live_in_count(),
            self.live_out_count(),
            self.transfer_bytes()
        );
        out
    }
}

/// Result of a chain-generation walk.
#[derive(Debug, Clone)]
pub struct GeneratedChain {
    /// The chain to ship.
    pub chain: Chain,
    /// Cycles the pseudo-wakeup walk occupied the core (one broadcast per
    /// cycle, Figure 9).
    pub gen_cycles: u64,
}

/// Run Algorithm 1 against `core`'s ROB starting from the stalled source
/// miss. Returns `None` when no EMC-eligible dependent uops exist.
///
/// The walk:
/// 1. allocates an EPR for the source load's destination and broadcasts
///    its tag;
/// 2. each broadcast wakes the waiters recorded in the ROB (the same
///    wakeup metadata the real issue logic uses);
/// 3. a woken uop joins the chain iff the EMC can execute it, every
///    source is ready (→ live-in) or already renamed in the RRT, the
///    16-uop / 16-EPR / live-in-vector / LSQ limits hold, and — for
///    stores — a matching fill exists in the window (register spill,
///    §4.3);
/// 4. the new uop's destination is renamed and broadcast.
pub fn generate_chain(
    core: &Core,
    home_core: CoreId,
    source: RobId,
    cfg: &EmcConfig,
) -> Option<GeneratedChain> {
    let src_entry = core.entry(source)?;
    if src_entry.uop.kind != UopKind::Load || src_entry.state == EntryState::Done {
        return None;
    }
    let source_addr = src_entry.addr?;

    // RRT: home-core producer (ROB id) -> EMC physical register.
    let mut rrt: HashMap<RobId, u8> = HashMap::new();
    let mut next_epr: u8 = 0;
    let alloc_epr = |rrt: &mut HashMap<RobId, u8>, rob: RobId, next: &mut u8| -> Option<u8> {
        if *next as usize >= cfg.prf_entries {
            return None;
        }
        let e = *next;
        *next += 1;
        rrt.insert(rob, e);
        Some(e)
    };

    let source_epr = alloc_epr(&mut rrt, source, &mut next_epr)?;
    let mut chain = Chain {
        home_core,
        source_rob: source,
        source_epr,
        source_addr,
        uops: Vec::new(),
        live_ins: Vec::new(),
        imm_live_ins: 0,
    };
    let mut gen_cycles: u64 = 1; // the source broadcast
    let mut mem_ops: usize = 0;

    // Broadcast frontier, in wakeup order.
    let mut frontier: Vec<RobId> = vec![source];
    let mut fi = 0;
    while fi < frontier.len() && chain.uops.len() < cfg.uop_buffer {
        let producer = frontier[fi];
        fi += 1;
        let Some(p) = core.entry(producer) else {
            continue;
        };
        // Waiters of this producer, oldest first for determinism.
        let mut consumers: Vec<RobId> = p.waiters.iter().map(|&(c, _)| c).collect();
        consumers.sort_unstable();
        consumers.dedup();
        for cid in consumers {
            if chain.uops.len() >= cfg.uop_buffer {
                break;
            }
            if rrt.contains_key(&cid) {
                continue;
            }
            let Some(c) = core.entry(cid) else { continue };
            if c.state != EntryState::Waiting || c.remote {
                continue;
            }
            let kind = c.uop.kind;
            if !kind.emc_allowed() {
                continue;
            }
            if kind.is_mem() && mem_ops >= cfg.lsq_entries {
                continue;
            }
            if kind == UopKind::Store && !is_register_spill(core, cid) {
                continue;
            }
            // All sources must be ready (live-in) or renamed in the RRT.
            let mut ok = true;
            for (i, src) in c.uop.srcs.iter().enumerate() {
                if src.is_none() {
                    continue;
                }
                let s = &c.srcs[i];
                let in_rrt = s.producer.is_some_and(|pid| rrt.contains_key(&pid));
                if !in_rrt && !s.ready() {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            // Live-in capacity check: register values AND immediates are
            // shifted into the 16-entry live-in vector (Figure 9).
            let new_live_ins = c
                .uop
                .srcs
                .iter()
                .enumerate()
                .filter(|(i, src)| {
                    src.is_some()
                        && !c.srcs[*i]
                            .producer
                            .is_some_and(|pid| rrt.contains_key(&pid))
                })
                .count();
            let uses_imm = usize::from(c.uop.srcs[1].is_none() && !kind.is_branch());
            let occupied = chain.live_ins.len() + chain.imm_live_ins as usize;
            if occupied + new_live_ins + uses_imm > cfg.live_in_entries {
                continue;
            }
            // Rename sources.
            let mut srcs: [Option<ChainSrc>; 2] = [None, None];
            for (i, src) in c.uop.srcs.iter().enumerate() {
                if src.is_none() {
                    continue;
                }
                let s = &c.srcs[i];
                if let Some(epr) = s.producer.and_then(|pid| rrt.get(&pid)).copied() {
                    srcs[i] = Some(ChainSrc::Epr(epr));
                } else {
                    let idx = chain.live_ins.len() as u8;
                    chain.live_ins.push(s.value.expect("checked ready"));
                    srcs[i] = Some(ChainSrc::LiveIn(idx));
                }
            }
            // Immediates are shifted into the live-in vector (Figure 9).
            if c.uop.srcs[1].is_none() && !matches!(kind, UopKind::Branch(_)) {
                chain.imm_live_ins += 1;
            }
            // Rename destination.
            let dst = match c.uop.dst {
                Some(_) => match alloc_epr(&mut rrt, cid, &mut next_epr) {
                    Some(e) => Some(e),
                    None => continue, // out of EPRs: cannot include this uop
                },
                None => None,
            };
            if kind.is_mem() {
                mem_ops += 1;
            }
            chain.uops.push(ChainUop {
                rob: cid,
                kind,
                srcs,
                dst,
                imm: c.uop.imm,
                pc: c.pc,
                predicted_taken: c.predicted_taken,
            });
            gen_cycles += 1;
            // Broadcast the new destination tag.
            if dst.is_some() {
                frontier.push(cid);
            }
        }
    }

    if chain.uops.is_empty() {
        return None;
    }
    Some(GeneratedChain { chain, gen_cycles })
}

/// §4.3: "A store is included in the dependence chain only if it is a
/// register spill. This is determined by searching the home core LSQ for
/// a corresponding load with the same address (fill)". We search the
/// window for a younger load with the same base register operand (same
/// producer or same committed register) and displacement.
fn is_register_spill(core: &Core, store_id: RobId) -> bool {
    let Some(store) = core.entry(store_id) else {
        return false;
    };
    core.rob_iter().any(|e| {
        e.id > store_id
            && e.uop.kind == UopKind::Load
            && e.uop.imm == store.uop.imm
            && e.uop.srcs[0] == store.uop.srcs[0]
            && e.srcs[0].producer == store.srcs[0].producer
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emc_cpu::CoreEvent;
    use emc_types::program::{Program, StaticUop};
    use emc_types::{CoreConfig, MemoryImage, Reg};
    use std::sync::Arc;

    /// Build a core stalled on a source miss with a dependent chain
    /// behind it: ld r1<-[r0]; add r2=r1+8; ld r3<-[r2]; filler.
    fn stalled_core(extra: Vec<StaticUop>) -> (Core, RobId) {
        let mut mem = MemoryImage::new();
        mem.write_u64(Addr(0x100), 0x4000);
        let mut uops = vec![
            StaticUop::mov_imm(Reg(0), 0x100),
            StaticUop::load(Reg(1), Reg(0), 0),
            StaticUop::alu(UopKind::IntAdd, Reg(2), Reg(1), None, 8),
            StaticUop::load(Reg(3), Reg(2), 0),
        ];
        uops.extend(extra);
        for _ in 0..300 {
            uops.push(StaticUop::alu(UopKind::IntAdd, Reg(4), Reg(4), None, 1));
        }
        let p = Program::new(uops, 0x7000);
        let mut core = Core::new(&CoreConfig::default(), Arc::new(p), mem);
        let mut events = Vec::new();
        let mut src = None;
        for now in 0..600 {
            core.tick(now, &mut events);
            for ev in events.drain(..) {
                if let CoreEvent::LoadIssued { rob, .. } = ev {
                    if src.is_none() {
                        src = Some(rob);
                        core.mark_llc_miss(rob);
                    }
                    // Dependent load never issues (its operand waits).
                }
            }
        }
        (core, src.expect("source miss issued"))
    }

    #[test]
    fn basic_chain_includes_dependents() {
        let (core, src) = stalled_core(vec![]);
        let g = generate_chain(&core, 0, src, &EmcConfig::default()).expect("chain");
        // ADD + dependent LD.
        assert_eq!(g.chain.uops.len(), 2);
        assert_eq!(g.chain.uops[0].kind, UopKind::IntAdd);
        assert_eq!(g.chain.uops[1].kind, UopKind::Load);
        assert_eq!(g.chain.source_epr, 0);
        // ADD reads E0 (the source's data) and writes E1; LD reads E1.
        assert_eq!(g.chain.uops[0].srcs[0], Some(ChainSrc::Epr(0)));
        assert_eq!(g.chain.uops[0].dst, Some(1));
        assert_eq!(g.chain.uops[1].srcs[0], Some(ChainSrc::Epr(1)));
        assert!(g.gen_cycles >= 3, "source + 2 broadcasts");
        // The immediate 8 counts as a live-in (Figure 9's 0x18).
        assert!(g.chain.live_in_count() >= 1);
    }

    #[test]
    fn fp_uops_are_excluded() {
        // fmul between the loads: the chain must skip it AND anything
        // reachable only through it.
        let (core, src) = stalled_core(vec![StaticUop::alu(
            UopKind::FpMul,
            Reg(5),
            Reg(1),
            None,
            0,
        )]);
        let g = generate_chain(&core, 0, src, &EmcConfig::default()).expect("chain");
        assert!(g.chain.uops.iter().all(|u| u.kind.emc_allowed()));
        assert!(g.chain.uops.iter().all(|u| u.kind != UopKind::FpMul));
    }

    #[test]
    fn chain_capped_at_uop_buffer() {
        // A long serial dependent chain: 30 adds after the load.
        let mut extra = Vec::new();
        for _ in 0..30 {
            extra.push(StaticUop::alu(UopKind::IntAdd, Reg(2), Reg(2), None, 1));
        }
        let (core, src) = stalled_core(extra);
        let cfg = EmcConfig::default();
        let g = generate_chain(&core, 0, src, &cfg).expect("chain");
        assert!(g.chain.uops.len() <= cfg.uop_buffer);
        // EPR allocation never exceeds the PRF.
        for u in &g.chain.uops {
            if let Some(d) = u.dst {
                assert!((d as usize) < cfg.prf_entries);
            }
        }
    }

    #[test]
    fn non_spill_store_excluded_spill_included() {
        // Store to [r1+0] with no matching fill: excluded.
        let (core, src) = stalled_core(vec![StaticUop::store(Reg(1), Reg(0), 0x40)]);
        let g = generate_chain(&core, 0, src, &EmcConfig::default()).expect("chain");
        assert!(g.chain.uops.iter().all(|u| u.kind != UopKind::Store));

        // Spill/fill pair on the dependent value: included.
        let (core, src) = stalled_core(vec![
            StaticUop::store(Reg(1), Reg(3), 0x40),
            StaticUop::load(Reg(5), Reg(1), 0x40),
        ]);
        let g = generate_chain(&core, 0, src, &EmcConfig::default()).expect("chain");
        assert!(
            g.chain.uops.iter().any(|u| u.kind == UopKind::Store),
            "spill store should join the chain: {:?}",
            g.chain.uops
        );
    }

    #[test]
    fn no_dependents_yields_none() {
        // A load with no consumers: nothing to accelerate.
        let mut mem = MemoryImage::new();
        mem.write_u64(Addr(0x100), 7);
        let mut uops = vec![
            StaticUop::mov_imm(Reg(0), 0x100),
            StaticUop::load(Reg(1), Reg(0), 0),
        ];
        for _ in 0..300 {
            uops.push(StaticUop::alu(UopKind::IntAdd, Reg(4), Reg(4), None, 1));
        }
        let p = Program::new(uops, 0);
        let mut core = Core::new(&CoreConfig::default(), Arc::new(p), mem);
        let mut events = Vec::new();
        let mut src = None;
        for now in 0..300 {
            core.tick(now, &mut events);
            for ev in events.drain(..) {
                if let CoreEvent::LoadIssued { rob, .. } = ev {
                    src.get_or_insert(rob);
                    core.mark_llc_miss(rob);
                }
            }
        }
        assert!(generate_chain(&core, 0, src.unwrap(), &EmcConfig::default()).is_none());
    }

    #[test]
    fn live_ins_capture_ready_values() {
        // add r5 = r1 + r6 where r6 = 99 is committed: 99 must ride in
        // the live-in vector.
        let (core, src) = stalled_core(vec![StaticUop::alu(
            UopKind::IntAdd,
            Reg(7),
            Reg(1),
            Some(Reg(0)),
            0,
        )]);
        let g = generate_chain(&core, 0, src, &EmcConfig::default()).expect("chain");
        let with_livein = g
            .chain
            .uops
            .iter()
            .find(|u| {
                u.srcs
                    .iter()
                    .any(|s| matches!(s, Some(ChainSrc::LiveIn(_))))
            })
            .expect("some uop uses a live-in");
        let li = with_livein
            .srcs
            .iter()
            .find_map(|s| match s {
                Some(ChainSrc::LiveIn(i)) => Some(*i),
                _ => None,
            })
            .unwrap();
        assert_eq!(g.chain.live_ins[li as usize], 0x100, "r0's committed value");
    }

    #[test]
    fn transfer_accounting() {
        let (core, src) = stalled_core(vec![]);
        let g = generate_chain(&core, 0, src, &EmcConfig::default()).expect("chain");
        assert_eq!(g.chain.live_out_count(), 2);
        assert!(g.chain.transfer_bytes() >= 6 * g.chain.uops.len() as u64);
    }
}
