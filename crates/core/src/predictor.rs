//! The EMC's two small predictors.
//!
//! - [`DepMissCounter`]: the per-core 3-bit saturating counter that gates
//!   chain generation (§4.2): incremented when an LLC miss has a
//!   dependent cache miss, decremented otherwise; generation begins when
//!   either of the top two bits is set.
//! - [`MissPredictor`]: the per-core array of PC-hashed 3-bit counters
//!   (§4.3, after Qureshi & Loh \[47\]) that lets the EMC send a load
//!   straight to DRAM instead of querying the LLC.

/// Per-core 3-bit dependent-miss confidence counter.
///
/// # Example
///
/// ```
/// use emc_core::DepMissCounter;
///
/// let mut c = DepMissCounter::new(2);
/// assert!(!c.should_generate());
/// c.on_llc_miss(true);
/// c.on_llc_miss(true);
/// assert!(c.should_generate());
/// ```
#[derive(Debug, Clone)]
pub struct DepMissCounter {
    value: u8,
    trigger: u8,
}

impl DepMissCounter {
    /// Create a counter that triggers at `trigger` (the paper's "either
    /// of the top 2 bits set" = 2 for a 3-bit counter).
    pub fn new(trigger: u8) -> Self {
        DepMissCounter { value: 0, trigger }
    }

    /// Train on an LLC miss: did it have a dependent cache miss?
    pub fn on_llc_miss(&mut self, had_dependent: bool) {
        if had_dependent {
            self.value = (self.value + 1).min(7);
        } else {
            self.value = self.value.saturating_sub(1);
        }
    }

    /// Whether chain generation should begin at a full-window stall.
    pub fn should_generate(&self) -> bool {
        self.value >= self.trigger
    }

    /// Raw counter value (diagnostics).
    pub fn value(&self) -> u8 {
        self.value
    }
}

/// PC-hashed 3-bit LLC hit/miss predictor (one per core at the EMC).
#[derive(Debug, Clone)]
pub struct MissPredictor {
    counters: Vec<u8>,
    threshold: u8,
}

impl MissPredictor {
    /// Create a predictor with `entries` 3-bit counters and the given
    /// bypass threshold.
    pub fn new(entries: usize, threshold: u8) -> Self {
        MissPredictor {
            counters: vec![0; entries.next_power_of_two().max(16)],
            threshold,
        }
    }

    fn idx(&self, pc: u64) -> usize {
        // Simple multiplicative hash of the PC.
        let h = pc.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32;
        (h as usize) & (self.counters.len() - 1)
    }

    /// Predict whether the load at `pc` will miss the LLC (if so, the
    /// EMC issues it directly to DRAM).
    pub fn predict_miss(&self, pc: u64) -> bool {
        self.counters[self.idx(pc)] >= self.threshold
    }

    /// Train with the actual outcome: miss increments, hit decrements.
    pub fn train(&mut self, pc: u64, was_miss: bool) {
        let i = self.idx(pc);
        if was_miss {
            self.counters[i] = (self.counters[i] + 1).min(7);
        } else {
            self.counters[i] = self.counters[i].saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dep_counter_saturates_both_ends() {
        let mut c = DepMissCounter::new(2);
        for _ in 0..20 {
            c.on_llc_miss(true);
        }
        assert_eq!(c.value(), 7);
        for _ in 0..20 {
            c.on_llc_miss(false);
        }
        assert_eq!(c.value(), 0);
        assert!(!c.should_generate());
    }

    #[test]
    fn dep_counter_hysteresis() {
        let mut c = DepMissCounter::new(2);
        c.on_llc_miss(true);
        assert!(!c.should_generate(), "one hit is not enough");
        c.on_llc_miss(true);
        assert!(c.should_generate());
        c.on_llc_miss(false);
        c.on_llc_miss(false);
        assert!(!c.should_generate());
    }

    #[test]
    fn miss_predictor_learns_per_pc() {
        let mut mp = MissPredictor::new(256, 4);
        for _ in 0..8 {
            mp.train(0x100, true);
            mp.train(0x204, false);
        }
        assert!(mp.predict_miss(0x100));
        assert!(!mp.predict_miss(0x204));
    }

    #[test]
    fn miss_predictor_counter_saturates() {
        let mut mp = MissPredictor::new(64, 4);
        for _ in 0..100 {
            mp.train(0x40, true);
        }
        // 7 hits (decrements) needed to fall below threshold 4.
        for _ in 0..3 {
            mp.train(0x40, false);
        }
        assert!(mp.predict_miss(0x40));
        for _ in 0..4 {
            mp.train(0x40, false);
        }
        assert!(!mp.predict_miss(0x40));
    }

    #[test]
    fn cold_predictor_predicts_hit() {
        let mp = MissPredictor::new(64, 4);
        assert!(!mp.predict_miss(0xdead));
    }
}
