//! Property-based tests for dependence-chain generation: for random
//! dependence structures stalled behind a source miss, every generated
//! chain must satisfy the paper's hardware constraints.

use emc_core::{generate_chain, ChainSrc};
use emc_cpu::{Core, CoreEvent};
use emc_types::program::{Program, StaticUop};
use emc_types::{Addr, CoreConfig, EmcConfig, MemoryImage, Reg, UopKind};
use proptest::prelude::*;
use std::sync::Arc;

/// Build a core stalled on a source miss followed by a random mix of
/// dependent/independent uops, then fillers to fill the window.
fn stalled_core(body: Vec<StaticUop>) -> Option<(Core, u64)> {
    let mut mem = MemoryImage::new();
    mem.write_u64(Addr(0x100), 0x9000);
    let mut uops = vec![
        StaticUop::mov_imm(Reg(0), 0x100),
        StaticUop::load(Reg(1), Reg(0), 0),
    ];
    uops.extend(body);
    for _ in 0..300 {
        uops.push(StaticUop::alu(UopKind::IntAdd, Reg(15), Reg(15), None, 1));
    }
    let p = Program::new(uops, 0x5000);
    p.validate().ok()?;
    let mut core = Core::new(&CoreConfig::default(), Arc::new(p), mem);
    let mut events = Vec::new();
    let mut src = None;
    for now in 0..400 {
        core.tick(now, &mut events);
        for ev in events.drain(..) {
            if let CoreEvent::LoadIssued { rob, .. } = ev {
                if src.is_none() {
                    src = Some(rob);
                    core.mark_llc_miss(rob);
                }
            }
        }
    }
    src.map(|s| (core, s))
}

fn arb_body_uop() -> impl Strategy<Value = StaticUop> {
    let reg = 1u8..8; // r0 reserved as base, r15 as filler
    prop_oneof![
        (reg.clone(), reg.clone(), 0u64..64, 0usize..6).prop_map(|(d, a, imm, k)| {
            let kind = [
                UopKind::IntAdd,
                UopKind::Xor,
                UopKind::Or,
                UopKind::And,
                UopKind::Shl,
                UopKind::IntMul, // not EMC-allowed: must be filtered
            ][k];
            StaticUop::alu(kind, Reg(d), Reg(a), None, imm)
        }),
        (reg.clone(), reg.clone()).prop_map(|(d, a)| StaticUop::load(Reg(d), Reg(a), 8)),
        (reg.clone(), reg.clone())
            .prop_map(|(d, a)| { StaticUop::alu(UopKind::FpAdd, Reg(d), Reg(a), None, 0) }),
        (reg.clone(), reg.clone()).prop_map(|(b, v)| StaticUop::store(Reg(b), Reg(v), 16)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_chains_respect_hardware_limits(
        body in prop::collection::vec(arb_body_uop(), 1..40),
    ) {
        let Some((core, src)) = stalled_core(body) else { return Ok(()) };
        let cfg = EmcConfig::default();
        let Some(g) = generate_chain(&core, 0, src, &cfg) else { return Ok(()) };
        let chain = &g.chain;

        // 1. Buffer limit.
        prop_assert!(chain.uops.len() <= cfg.uop_buffer);
        // 2. Only EMC-executable operation classes.
        for u in &chain.uops {
            prop_assert!(u.kind.emc_allowed(), "{:?} not allowed", u.kind);
        }
        // 3. Register file limit and closed dataflow: every EPR source is
        //    the source miss's register or a destination written by an
        //    EARLIER chain uop.
        let mut defined = vec![false; cfg.prf_entries];
        defined[chain.source_epr as usize] = true;
        let mut mem_ops = 0;
        for u in &chain.uops {
            for s in u.srcs.iter().flatten() {
                match s {
                    ChainSrc::Epr(e) => {
                        prop_assert!((*e as usize) < cfg.prf_entries);
                        prop_assert!(defined[*e as usize],
                            "EPR {e} read before any definition");
                    }
                    ChainSrc::LiveIn(i) => {
                        prop_assert!((*i as usize) < chain.live_ins.len());
                    }
                }
            }
            if let Some(d) = u.dst {
                prop_assert!((d as usize) < cfg.prf_entries);
                defined[d as usize] = true;
            }
            if u.kind.is_mem() {
                mem_ops += 1;
            }
        }
        // 4. LSQ limit.
        prop_assert!(mem_ops <= cfg.lsq_entries);
        // 5. Live-in vector limit (register values + immediates).
        prop_assert!(chain.live_in_count() <= cfg.live_in_entries as u64);
        // 6. Generation latency grows with the walk.
        prop_assert!(g.gen_cycles > chain.uops.len() as u64);
        // 7. All chain uops are real ROB entries, younger than the source.
        for u in &chain.uops {
            prop_assert!(u.rob > src);
            prop_assert!(core.entry(u.rob).is_some());
        }
    }

    /// The chain's uops always form a set reachable from the source miss
    /// through register dataflow: marking them remote never strands an
    /// independent uop.
    #[test]
    fn chain_members_depend_on_the_source(
        body in prop::collection::vec(arb_body_uop(), 1..30),
    ) {
        let Some((core, src)) = stalled_core(body) else { return Ok(()) };
        let cfg = EmcConfig::default();
        let Some(g) = generate_chain(&core, 0, src, &cfg) else { return Ok(()) };
        // Transitive dependence check via producer links in the ROB.
        let in_chain: std::collections::HashSet<u64> =
            g.chain.uops.iter().map(|u| u.rob).collect();
        for u in &g.chain.uops {
            let e = core.entry(u.rob).expect("in ROB");
            let depends = e.srcs.iter().any(|s| {
                s.producer.is_some_and(|p| p == src || in_chain.contains(&p))
            });
            prop_assert!(depends, "uop {} is not dependent on the chain", u.rob);
        }
    }
}
