//! The out-of-order core pipeline: fetch with branch prediction, rename,
//! a ROB-based instruction window with reservation-station and LSQ
//! capacity limits, oldest-first issue, store-to-load forwarding,
//! speculative wrong-path execution with flush-on-mispredict, and in-order
//! retirement (Table 1: 4-wide, 256-entry ROB, 92-entry RS).
//!
//! The core is *execution-driven*: uop results are computed when they
//! issue, so dependent-load addresses are real data values from the
//! workload's memory image. Timing for loads comes from the owning
//! simulator, which drains [`CoreEvent`]s and later calls
//! [`Core::complete_load`].
//!
//! Everything the EMC's chain-generation unit needs — the ROB contents,
//! per-entry wakeup (waiter) lists that implement the paper's
//! pseudo-wakeup dataflow walk, source-operand readiness and values — is
//! exposed read-only here and consumed by the `emc-core` crate.

use crate::bpred::{HybridPredictor, PredictInfo};
use emc_types::program::{Program, StaticUop};
use emc_types::{Addr, CoreConfig, CoreStats, Cycle, MemoryImage, Reg, UopKind, NUM_ARCH_REGS};
use std::collections::{BTreeSet, BinaryHeap, VecDeque};
use std::sync::Arc;

/// Identifier of a dynamic uop: unique, monotonically increasing, never
/// reused within a run.
pub type RobId = u64;

/// A source operand as captured at rename.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrcOp {
    /// The value, once available.
    pub value: Option<u64>,
    /// The in-flight producer at rename time (None = committed register
    /// or immediate-only).
    pub producer: Option<RobId>,
    /// Whether the value derives from an in-flight LLC miss.
    pub taint: bool,
    /// Dependence-chain depth (ALU ops since the source miss).
    pub depth: u16,
    /// Runahead INV bit: the value descends from the runahead-entry miss
    /// and is architecturally meaningless.
    pub inv: bool,
}

impl SrcOp {
    fn absent() -> Self {
        SrcOp {
            value: Some(0),
            producer: None,
            taint: false,
            depth: 0,
            inv: false,
        }
    }

    /// Whether the operand's value is available.
    pub fn ready(&self) -> bool {
        self.value.is_some()
    }
}

/// Execution state of a ROB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Dispatched, waiting for operands or issue bandwidth.
    Waiting,
    /// Issued to an execution unit (or the memory system).
    Issued,
    /// Completed; result (if any) is valid.
    Done,
}

/// One reorder-buffer entry.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Dynamic uop id.
    pub id: RobId,
    /// Index of the static uop in the program.
    pub prog_idx: usize,
    /// The static uop.
    pub uop: StaticUop,
    /// Synthetic PC.
    pub pc: u64,
    /// Execution state.
    pub state: EntryState,
    /// Captured source operands.
    pub srcs: [SrcOp; 2],
    /// Result value (valid when `Done` and the uop has a destination).
    pub result: u64,
    /// Resolved memory address (mem ops, once issued).
    pub addr: Option<Addr>,
    /// Store data (stores, once issued).
    pub store_value: Option<u64>,
    /// Shipped to the EMC: the core must not issue it locally.
    pub remote: bool,
    /// This load went past the LLC to memory (set by the owning sim).
    pub llc_miss: bool,
    /// Output taint: this value derives from an in-flight LLC miss.
    pub tainted: bool,
    /// Output chain depth (ALU ops since the source miss).
    pub chain_depth: u16,
    /// Consumers waiting for this entry's result: (consumer id, src slot).
    pub waiters: Vec<(RobId, u8)>,
    /// Branch-prediction checkpoint (branches only).
    pub bp: Option<PredictInfo>,
    /// Predicted direction at fetch (branches only).
    pub predicted_taken: bool,
    /// Whether this load's value was forwarded from an older store.
    pub forwarded: bool,
    /// Whether this load currently holds an in-flight memory slot.
    mem_pending: bool,
    /// Runahead INV bit (result is meaningless, §2's runahead contrast).
    pub inv: bool,
}

/// Events emitted by the core for the owning simulator to act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreEvent {
    /// A load left the pipeline toward the cache hierarchy.
    LoadIssued {
        /// The load's ROB id (echoed back via [`Core::complete_load`]).
        rob: RobId,
        /// The load's byte address.
        addr: Addr,
        /// PC for prefetcher training / miss prediction.
        pc: u64,
    },
    /// A store retired and its data was committed to the memory image;
    /// the simulator should mark caches dirty.
    StoreRetired {
        /// The store's byte address.
        addr: Addr,
    },
}

/// The out-of-order core.
pub struct Core {
    cfg: CoreConfig,
    program: Arc<Program>,
    /// The core's private functional memory image.
    pub mem: MemoryImage,
    /// Pipeline statistics.
    pub stats: CoreStats,

    // --- front end ---
    bpred: HybridPredictor,
    fetch_idx: usize,
    fetch_resume_at: Cycle,
    program_done: bool,

    // --- window ---
    rob: VecDeque<RobEntry>,
    next_id: RobId,
    rename: [Option<RobId>; NUM_ARCH_REGS],
    committed: [u64; NUM_ARCH_REGS],
    ready: BTreeSet<RobId>,
    completing: BinaryHeap<std::cmp::Reverse<(Cycle, RobId)>>,
    unresolved_stores: BTreeSet<RobId>,
    store_ids: VecDeque<RobId>,
    waiting_count: usize,
    mem_inflight: usize,

    finished_at: Option<Cycle>,

    // --- observability ---
    stall_since: Option<Cycle>,
    finished_stall: Option<(Cycle, Cycle)>,

    // --- runahead execution (optional baseline, HPCA 2003) ---
    runahead: Option<Runahead>,
    committed_inv: [bool; NUM_ARCH_REGS],
}

/// Checkpoint taken when entering runahead mode.
#[derive(Debug, Clone)]
struct Runahead {
    /// The blocking miss whose return ends the episode.
    source_rob: RobId,
    /// Program index to resume fetch from.
    resume_idx: usize,
    /// Architectural registers at entry (the head was the oldest
    /// un-retired uop, so the committed file is precise here).
    checkpoint: [u64; NUM_ARCH_REGS],
}

impl Core {
    /// Create a core executing `program` against `mem`.
    pub fn new(cfg: &CoreConfig, program: Arc<Program>, mem: MemoryImage) -> Self {
        Core {
            cfg: *cfg,
            bpred: HybridPredictor::new(cfg.bp_table_entries),
            program,
            mem,
            stats: CoreStats::default(),
            fetch_idx: 0,
            fetch_resume_at: 0,
            program_done: false,
            rob: VecDeque::new(),
            next_id: 0,
            rename: [None; NUM_ARCH_REGS],
            committed: [0; NUM_ARCH_REGS],
            ready: BTreeSet::new(),
            completing: BinaryHeap::new(),
            unresolved_stores: BTreeSet::new(),
            store_ids: VecDeque::new(),
            waiting_count: 0,
            mem_inflight: 0,
            finished_at: None,
            stall_since: None,
            finished_stall: None,
            runahead: None,
            committed_inv: [false; NUM_ARCH_REGS],
        }
    }

    /// The cycle the program finished (fetch past the end and ROB empty).
    pub fn finished_at(&self) -> Option<Cycle> {
        self.finished_at
    }

    /// Committed architectural register values.
    pub fn committed_regs(&self) -> &[u64; NUM_ARCH_REGS] {
        &self.committed
    }

    /// Look up an in-flight entry by id. ROB ids are strictly increasing
    /// front-to-back but may have gaps after a mispredict flush (squashed
    /// ids are never reused), so lookup is a binary search.
    pub fn entry(&self, id: RobId) -> Option<&RobEntry> {
        let idx = self.rob.binary_search_by_key(&id, |e| e.id).ok()?;
        self.rob.get(idx)
    }

    fn entry_mut(&mut self, id: RobId) -> Option<&mut RobEntry> {
        let idx = self.rob.binary_search_by_key(&id, |e| e.id).ok()?;
        self.rob.get_mut(idx)
    }

    /// Iterate the ROB from oldest to youngest.
    pub fn rob_iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.rob.iter()
    }

    /// Diagnostics: ids currently in the ready (issueable) set.
    #[doc(hidden)]
    pub fn debug_ready(&self) -> Vec<RobId> {
        self.ready.iter().copied().collect()
    }

    /// Diagnostics: (waiting_count, fetch_resume_at, program_done).
    #[doc(hidden)]
    pub fn debug_state(&self) -> (usize, Cycle, bool) {
        (self.waiting_count, self.fetch_resume_at, self.program_done)
    }

    /// Current ROB occupancy.
    pub fn rob_len(&self) -> usize {
        self.rob.len()
    }

    /// The window is completely full.
    pub fn rob_full(&self) -> bool {
        self.rob.len() >= self.cfg.rob_entries
    }

    /// If the core is in a full-window stall whose head is an outstanding
    /// LLC-miss load, return the head's id (the EMC trigger, §4.2).
    ///
    /// "Full window" means dispatch is blocked by any window resource —
    /// ROB, reservation stations, or LSQ — while an LLC miss blocks
    /// retirement. Dependence-heavy code (mcf-style chains) fills the
    /// 92-entry RS with waiting uops long before the 256-entry ROB.
    pub fn full_window_stall(&self) -> Option<RobId> {
        let blocked = self.rob_full()
            || self.waiting_count >= self.cfg.rs_entries
            || self.mem_ops_in_rob() >= self.cfg.lsq_entries;
        if !blocked {
            return None;
        }
        let head = self.rob.front()?;
        (head.uop.kind == UopKind::Load && head.llc_miss && head.state != EntryState::Done)
            .then_some(head.id)
    }

    /// The `(start, end)` of a full-window stall episode that ended this
    /// cycle, if any — consumed by the tracing layer to emit one span
    /// per episode. At most one episode can end per tick, so a one-slot
    /// mailbox is lossless when polled every cycle.
    pub fn take_finished_stall(&mut self) -> Option<(Cycle, Cycle)> {
        self.finished_stall.take()
    }

    /// Whether the core is currently in a runahead episode.
    pub fn in_runahead(&self) -> bool {
        self.runahead.is_some()
    }

    /// Enter runahead mode at the blocking head miss `source`: checkpoint
    /// the architectural state, invalidate the miss's destination, and
    /// keep (pseudo-)executing to prefetch independent misses.
    fn enter_runahead(&mut self, source: RobId, now: Cycle) {
        debug_assert!(self.runahead.is_none());
        let Some(e) = self.entry(source) else { return };
        let resume_idx = e.prog_idx;
        self.runahead = Some(Runahead {
            source_rob: source,
            resume_idx,
            checkpoint: self.committed,
        });
        self.stats.runahead_entries += 1;
        // Pseudo-complete the blocking load with an INV result so the
        // window can drain past it.
        if let Some(e) = self.entry_mut(source) {
            if e.state == EntryState::Issued {
                e.inv = true;
                e.result = 0;
                self.finish_entry(source, now);
            }
        }
    }

    /// The blocking miss returned: throw away all runahead state and
    /// resume from the checkpoint. In-flight runahead memory requests
    /// keep filling the caches (the prefetch benefit).
    fn exit_runahead(&mut self, now: Cycle) {
        let ra = self.runahead.take().expect("in runahead");
        self.rob.clear();
        self.ready.clear();
        self.completing.clear();
        self.unresolved_stores.clear();
        self.store_ids.clear();
        self.waiting_count = 0;
        self.mem_inflight = 0;
        self.rename = [None; NUM_ARCH_REGS];
        self.committed = ra.checkpoint;
        self.committed_inv = [false; NUM_ARCH_REGS];
        self.fetch_idx = ra.resume_idx;
        self.program_done = false;
        self.fetch_resume_at = now + self.cfg.mispredict_penalty;
    }

    /// Mark a load that merged onto an already-outstanding miss: it
    /// experiences the miss latency (and carries miss taint for
    /// dependence tracking) but is not a distinct LLC miss for MPKI or
    /// dependent-miss statistics.
    pub fn mark_llc_miss_merged(&mut self, id: RobId) {
        if let Some(e) = self.entry_mut(id) {
            e.llc_miss = true;
        }
    }

    /// Mark a load as having missed the LLC (called by the simulator as
    /// soon as the miss is known, always before completion).
    pub fn mark_llc_miss(&mut self, id: RobId) {
        let mut record: Option<(bool, u16)> = None;
        if let Some(e) = self.entry_mut(id) {
            e.llc_miss = true;
            let src_taint = e.srcs.iter().any(|s| s.taint);
            if src_taint {
                let depth = e
                    .srcs
                    .iter()
                    .filter(|s| s.taint)
                    .map(|s| s.depth)
                    .max()
                    .unwrap_or(0);
                record = Some((true, depth));
            }
        }
        if let Some((_, depth)) = record {
            self.stats.dependent_llc_misses += 1;
            self.stats.dep_chain_pairs += 1;
            self.stats.dep_chain_uop_sum += depth as u64;
        }
    }

    /// Record that this load's (would-be dependent) miss was covered by a
    /// prefetched line (Figure 3 / 21 accounting, called by the sim).
    pub fn note_dependent_covered_by_prefetch(&mut self, id: RobId) {
        if let Some(e) = self.entry(id) {
            if e.srcs.iter().any(|s| s.taint) {
                self.stats.dependent_misses_prefetched += 1;
            }
        }
    }

    /// Whether this load is data-dependent on an in-flight LLC miss.
    pub fn load_is_dependent(&self, id: RobId) -> bool {
        self.entry(id)
            .is_some_and(|e| e.srcs.iter().any(|s| s.taint))
    }

    /// Complete an outstanding load issued to the memory system. Ignored
    /// if the load was flushed (the memory request outlives the squash).
    pub fn complete_load(&mut self, id: RobId, now: Cycle) {
        if self.runahead.as_ref().is_some_and(|ra| ra.source_rob == id) {
            self.exit_runahead(now);
            return;
        }
        let released = {
            let Some(e) = self.entry_mut(id) else { return };
            if e.uop.kind != UopKind::Load {
                return;
            }
            let released = e.mem_pending;
            e.mem_pending = false;
            if e.state != EntryState::Issued {
                // Already completed (e.g. remotely by the EMC); just
                // release the slot.
                if released {
                    self.mem_inflight = self.mem_inflight.saturating_sub(1);
                }
                return;
            }
            released
        };
        if released {
            self.mem_inflight = self.mem_inflight.saturating_sub(1);
        }
        self.finish_entry(id, now);
    }

    // ------------------------------------------------------------------
    // Remote (EMC) execution interface
    // ------------------------------------------------------------------

    /// Mark chain entries as executing remotely at the EMC: the local
    /// scheduler will not issue them.
    pub fn mark_remote(&mut self, ids: &[RobId]) {
        for &id in ids {
            self.ready.remove(&id);
            if let Some(e) = self.entry_mut(id) {
                e.remote = true;
            }
        }
    }

    /// Abort remote execution (EMC TLB miss, branch misprediction inside
    /// the chain, disambiguation conflict): entries return to normal
    /// scheduling and re-execute locally.
    pub fn unmark_remote(&mut self, ids: &[RobId]) {
        for &id in ids {
            let ready = {
                let Some(e) = self.entry_mut(id) else {
                    continue;
                };
                if !e.remote {
                    continue;
                }
                e.remote = false;
                e.state == EntryState::Waiting && e.srcs.iter().all(|s| s.ready())
            };
            if ready {
                self.ready.insert(id);
            }
        }
    }

    /// Complete a chain uop executed at the EMC: the returned physical
    /// register value is broadcast on the core's CDB (§4.3: "Physical
    /// register tags are broadcast on the home core CDB"). For stores,
    /// pass the EMC-computed address and data so retirement can commit
    /// them in program order.
    pub fn complete_remote(
        &mut self,
        id: RobId,
        result: u64,
        store: Option<(Addr, u64)>,
        now: Cycle,
    ) {
        {
            let Some(e) = self.entry(id) else { return };
            if e.state == EntryState::Done {
                return;
            }
            // Note: the entry may have been unmarked by a racing chain
            // abort and even begun local execution; the remote value is
            // functionally identical, so completing it early is safe.
            if e.state == EntryState::Waiting {
                self.waiting_count = self.waiting_count.saturating_sub(1);
            }
        }
        // It may sit in the ready set after an abort re-enabled it.
        self.ready.remove(&id);
        let e = self.entry_mut(id).expect("checked above");
        e.state = EntryState::Issued;
        e.result = result;
        if e.uop.kind == UopKind::Load {
            e.addr = Some(Addr(result)); // informational; value is `result`
        }
        if let Some((addr, value)) = store {
            e.addr = Some(addr);
            e.store_value = Some(value);
            self.unresolved_stores.remove(&id);
        }
        self.finish_entry(id, now);
    }

    // ------------------------------------------------------------------
    // Pipeline
    // ------------------------------------------------------------------

    /// Advance one cycle. Emits memory-system events into `events`.
    pub fn tick(&mut self, now: Cycle, events: &mut Vec<CoreEvent>) {
        if self.finished_at.is_some() {
            return;
        }
        self.stats.cycles = now;
        let stall_head = self.full_window_stall();
        if stall_head.is_some() {
            self.stats.full_window_stall_cycles += 1;
            // Episode tracking: one histogram sample (and one trace
            // span, via take_finished_stall) per contiguous stall.
            if self.stall_since.is_none() {
                self.stall_since = Some(now);
            }
        } else if let Some(start) = self.stall_since.take() {
            self.stats.stall_episodes.record(now - start);
            self.finished_stall = Some((start, now));
        }
        if self.cfg.runahead && self.runahead.is_none() {
            if let Some(h) = stall_head {
                self.enter_runahead(h, now);
            }
        }
        self.retire(now, events);
        self.drain_completions(now);
        self.issue(now, events);
        self.dispatch(now);
        if self.program_done
            && self.rob.is_empty()
            && self.finished_at.is_none()
            && self.runahead.is_none()
        {
            self.finished_at = Some(now);
        }
    }

    fn retire(&mut self, now: Cycle, events: &mut Vec<CoreEvent>) {
        for _ in 0..self.cfg.retire_width {
            let in_runahead = self.runahead.is_some();
            // Runahead never waits at a miss: an issued-but-incomplete
            // load at the head pseudo-completes with an INV result.
            if in_runahead {
                let pseudo = self
                    .rob
                    .front()
                    .filter(|h| {
                        h.uop.kind == UopKind::Load
                            && h.state == EntryState::Issued
                            && h.mem_pending
                    })
                    .map(|h| h.id);
                if let Some(id) = pseudo {
                    if let Some(e) = self.entry_mut(id) {
                        e.inv = true;
                        e.result = 0;
                    }
                    self.finish_entry(id, now);
                }
            }
            let Some(head) = self.rob.front() else { break };
            if head.state != EntryState::Done {
                break;
            }
            let e = self.rob.pop_front().expect("head exists");
            if in_runahead {
                // Pseudo-retirement: advance register state (restored at
                // exit), never touch memory, count separately.
                self.stats.runahead_uops += 1;
                if e.uop.kind == UopKind::Store {
                    self.store_ids.pop_front();
                }
                if let Some(dst) = e.uop.dst {
                    self.committed[dst.idx()] = e.result;
                    self.committed_inv[dst.idx()] = e.inv;
                    if self.rename[dst.idx()] == Some(e.id) {
                        self.rename[dst.idx()] = None;
                    }
                }
                continue;
            }
            self.stats.retired_uops += 1;
            match e.uop.kind {
                UopKind::Load => self.stats.retired_loads += 1,
                UopKind::Store => {
                    self.stats.retired_stores += 1;
                    let addr = e.addr.expect("retired store has address");
                    let value = e.store_value.expect("retired store has data");
                    self.mem.write_u64(addr, value);
                    self.store_ids.pop_front();
                    events.push(CoreEvent::StoreRetired { addr });
                }
                UopKind::Branch(_) => self.stats.retired_branches += 1,
                _ => {}
            }
            if let Some(dst) = e.uop.dst {
                self.committed[dst.idx()] = e.result;
                self.committed_inv[dst.idx()] = false;
                if self.rename[dst.idx()] == Some(e.id) {
                    self.rename[dst.idx()] = None;
                }
            }
            let _ = now;
        }
    }

    fn drain_completions(&mut self, now: Cycle) {
        while let Some(&std::cmp::Reverse((t, id))) = self.completing.peek() {
            if t > now {
                break;
            }
            self.completing.pop();
            // Entry may have been flushed; finish_entry checks state.
            if self
                .entry(id)
                .is_some_and(|e| e.state == EntryState::Issued && e.uop.kind != UopKind::Load)
            {
                self.finish_entry(id, now);
            }
        }
    }

    /// Transition an Issued entry to Done and wake its consumers.
    fn finish_entry(&mut self, id: RobId, _now: Cycle) {
        let (result, taint, depth, inv, waiters) = {
            let Some(e) = self.entry_mut(id) else { return };
            debug_assert_eq!(e.state, EntryState::Issued);
            e.state = EntryState::Done;
            match e.uop.kind {
                UopKind::Load => {
                    e.tainted = e.llc_miss;
                    e.chain_depth = 0;
                    // e.inv stays as set (runahead INV loads).
                }
                UopKind::Store | UopKind::Branch(_) => {
                    e.tainted = false;
                    e.chain_depth = 0;
                }
                _ => {
                    // ALU: taint/depth were computed at issue.
                }
            }
            (
                e.result,
                e.tainted,
                e.chain_depth,
                e.inv,
                std::mem::take(&mut e.waiters),
            )
        };
        let now = _now;
        for (consumer, slot) in waiters {
            let mut now_ready = false;
            let mut store_data_arrived = false;
            if let Some(c) = self.entry_mut(consumer) {
                let s = &mut c.srcs[slot as usize];
                if s.producer == Some(id) && s.value.is_none() {
                    s.value = Some(result);
                    s.taint = taint;
                    s.depth = depth;
                    s.inv = inv;
                    if c.state == EntryState::Waiting && !c.remote {
                        now_ready = if c.uop.kind == UopKind::Store {
                            c.srcs[0].ready()
                        } else {
                            c.srcs.iter().all(|s| s.ready())
                        };
                    } else if c.uop.kind == UopKind::Store
                        && c.state == EntryState::Issued
                        && slot == 1
                        && c.store_value.is_none()
                    {
                        // Split store: address already resolved, data
                        // just arrived.
                        c.store_value = Some(result);
                        store_data_arrived = true;
                    }
                }
            }
            if now_ready {
                self.ready.insert(consumer);
            }
            if store_data_arrived {
                self.completing.push(std::cmp::Reverse((now + 1, consumer)));
            }
        }
    }

    fn issue(&mut self, now: Cycle, events: &mut Vec<CoreEvent>) {
        let mut issued = 0;
        let mut skipped: Vec<RobId> = Vec::new();
        while issued < self.cfg.issue_width {
            let Some(&id) = self.ready.iter().next() else {
                break;
            };
            self.ready.remove(&id);
            let Some(e) = self.entry(id) else { continue };
            debug_assert_eq!(e.state, EntryState::Waiting);
            let kind = e.uop.kind;
            if kind == UopKind::Load {
                // Memory ordering: wait for all older stores' addresses.
                if self.unresolved_stores.range(..id).next().is_some() {
                    skipped.push(id);
                    continue;
                }
            }
            issued += 1;
            self.waiting_count -= 1;
            match kind {
                UopKind::Load => self.issue_load(id, now, events),
                UopKind::Store => self.issue_store(id, now),
                UopKind::Branch(_) => self.issue_branch(id, now),
                _ => self.issue_alu(id, now),
            }
        }
        // Blocked loads stay ready for next cycle.
        for id in skipped {
            self.ready.insert(id);
        }
    }

    fn issue_alu(&mut self, id: RobId, now: Cycle) {
        let e = self.entry_mut(id).expect("issuing entry exists");
        e.state = EntryState::Issued;
        let a = e.srcs[0].value.expect("ready");
        let b = e.srcs[1].value.expect("ready");
        let (ra, rb) = resolve_operands(&e.uop, a, b);
        e.result = e.uop.kind.alu(ra, rb);
        e.tainted = e.srcs.iter().any(|s| s.taint);
        e.inv = e.srcs.iter().any(|s| s.inv);
        e.chain_depth = e
            .srcs
            .iter()
            .filter(|s| s.taint)
            .map(|s| s.depth)
            .max()
            .unwrap_or(0)
            .saturating_add(1);
        let done = now + e.uop.kind.exec_latency();
        self.completing.push(std::cmp::Reverse((done, id)));
    }

    fn issue_store(&mut self, id: RobId, now: Cycle) {
        let data_ready = {
            let e = self.entry_mut(id).expect("issuing entry exists");
            e.state = EntryState::Issued;
            let base = e.srcs[0].value.expect("address operand ready");
            let addr = e.uop.effective_address(base);
            e.addr = Some(addr);
            e.inv = e.srcs.iter().any(|s| s.inv);
            if let Some(v) = e.srcs[1].value {
                e.store_value = Some(v);
                true
            } else {
                false
            }
        };
        // The address is resolved: younger loads may now disambiguate.
        self.unresolved_stores.remove(&id);
        if data_ready {
            self.completing.push(std::cmp::Reverse((now + 1, id)));
        }
        // Otherwise the store completes when its data operand arrives
        // (see finish_entry's wakeup path).
    }

    fn issue_branch(&mut self, id: RobId, now: Cycle) {
        let (taken, predicted, bp, pc, target, next_idx) = {
            let e = self.entry_mut(id).expect("issuing entry exists");
            e.state = EntryState::Issued;
            let v = e.srcs[0].value.expect("ready");
            let cond = match e.uop.kind {
                UopKind::Branch(c) => c,
                _ => unreachable!("issue_branch on non-branch"),
            };
            let taken = if e.srcs[0].inv {
                // Runahead: a branch on an INV value cannot be resolved;
                // follow the prediction.
                e.predicted_taken
            } else {
                StaticUop::branch_taken(cond, v)
            };
            e.result = u64::from(taken);
            (
                taken,
                e.predicted_taken,
                e.bp.expect("branch has checkpoint"),
                e.pc,
                e.uop.target.expect("branch has target") as usize,
                e.prog_idx + 1,
            )
        };
        self.bpred.resolve(pc, bp, taken);
        if taken != predicted {
            self.stats.branch_mispredicts += 1;
            self.flush_younger_than(id);
            self.fetch_idx = if taken { target } else { next_idx };
            self.program_done = false;
            self.fetch_resume_at = now + self.cfg.mispredict_penalty;
        }
        self.completing.push(std::cmp::Reverse((now + 1, id)));
    }

    fn issue_load(&mut self, id: RobId, now: Cycle, events: &mut Vec<CoreEvent>) {
        // Store-to-load forwarding: youngest older store to the same
        // address wins.
        let (addr, pc) = {
            let e = self.entry(id).expect("issuing entry exists");
            let base = e.srcs[0].value.expect("ready");
            (e.uop.effective_address(base), e.pc)
        };
        let mut forwarded: Option<u64> = None;
        for &sid in self.store_ids.iter().rev() {
            if sid >= id {
                continue;
            }
            if let Some(s) = self.entry(sid) {
                if s.addr == Some(addr) {
                    match s.store_value {
                        Some(v) => forwarded = Some(v),
                        None => {
                            // Matching older store whose data is not yet
                            // known: the load must wait.
                            self.ready.insert(id);
                            let e = self.entry_mut(id).expect("exists");
                            e.state = EntryState::Waiting;
                            self.waiting_count += 1;
                            return;
                        }
                    }
                    break;
                }
            }
        }
        // Runahead: a load whose address descends from the INV miss has
        // no meaningful address — drop it (no memory request).
        if self.entry(id).is_some_and(|e| e.srcs[0].inv) {
            let e = self.entry_mut(id).expect("exists");
            e.state = EntryState::Issued;
            e.addr = Some(addr);
            e.inv = true;
            e.result = 0;
            self.finish_entry(id, now);
            return;
        }
        let mem_value = self.mem.read_u64(addr);
        let e = self.entry_mut(id).expect("issuing entry exists");
        e.state = EntryState::Issued;
        e.addr = Some(addr);
        match forwarded {
            Some(v) => {
                e.result = v;
                e.forwarded = true;
                self.finish_forwarded(id, now);
            }
            None => {
                e.result = mem_value;
                e.mem_pending = true;
                self.mem_inflight += 1;
                if self.runahead.is_some() {
                    self.stats.runahead_requests += 1;
                }
                events.push(CoreEvent::LoadIssued { rob: id, addr, pc });
            }
        }
    }

    /// Forwarded loads complete within the issue cycle (LSQ bypass).
    fn finish_forwarded(&mut self, id: RobId, now: Cycle) {
        self.finish_entry(id, now);
    }

    fn flush_younger_than(&mut self, id: RobId) {
        while let Some(back) = self.rob.back() {
            if back.id <= id {
                break;
            }
            let e = self.rob.pop_back().expect("back exists");
            self.ready.remove(&e.id);
            self.unresolved_stores.remove(&e.id);
            if e.uop.kind == UopKind::Store && self.store_ids.back() == Some(&e.id) {
                self.store_ids.pop_back();
            }
            if e.state == EntryState::Waiting {
                self.waiting_count -= 1;
            }
            if e.mem_pending {
                self.mem_inflight = self.mem_inflight.saturating_sub(1);
            }
        }
        // Rebuild the rename table from the surviving window.
        self.rename = [None; NUM_ARCH_REGS];
        let ids: Vec<(RobId, Option<Reg>)> = self.rob.iter().map(|e| (e.id, e.uop.dst)).collect();
        for (eid, dst) in ids {
            if let Some(d) = dst {
                self.rename[d.idx()] = Some(eid);
            }
        }
    }

    fn dispatch(&mut self, now: Cycle) {
        if now < self.fetch_resume_at || self.program_done {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_idx >= self.program.uops.len() {
                self.program_done = true;
                break;
            }
            if self.rob.len() >= self.cfg.rob_entries || self.waiting_count >= self.cfg.rs_entries {
                break;
            }
            let uop = self.program.uops[self.fetch_idx];
            if uop.kind.is_mem() && self.mem_ops_in_rob() >= self.cfg.lsq_entries {
                break;
            }
            let prog_idx = self.fetch_idx;
            let pc = self.program.pc_of(prog_idx);
            let id = self.next_id;
            self.next_id += 1;

            // Branch prediction steers fetch.
            let (bp, predicted_taken) = if uop.kind.is_branch() {
                let info = self.bpred.predict(pc);
                let taken = match uop.kind {
                    UopKind::Branch(emc_types::BranchCond::Always) => true,
                    _ => info.taken,
                };
                self.fetch_idx = if taken {
                    uop.target.expect("branch has target") as usize
                } else {
                    prog_idx + 1
                };
                (Some(info), taken)
            } else {
                self.fetch_idx = prog_idx + 1;
                (None, false)
            };

            // Rename: capture operands.
            let mut srcs = [SrcOp::absent(), SrcOp::absent()];
            let mut waits: Vec<(RobId, u8)> = Vec::new();
            for (i, src) in uop.srcs.iter().enumerate() {
                let Some(r) = src else { continue };
                match self.rename[r.idx()] {
                    None => {
                        srcs[i] = SrcOp {
                            value: Some(self.committed[r.idx()]),
                            producer: None,
                            taint: false,
                            depth: 0,
                            inv: self.committed_inv[r.idx()],
                        };
                    }
                    Some(pid) => {
                        let p = self.entry(pid).expect("renamed producer in ROB");
                        if p.state == EntryState::Done {
                            srcs[i] = SrcOp {
                                value: Some(p.result),
                                producer: Some(pid),
                                taint: p.tainted,
                                depth: p.chain_depth,
                                inv: p.inv,
                            };
                        } else {
                            srcs[i] = SrcOp {
                                value: None,
                                producer: Some(pid),
                                taint: false,
                                depth: 0,
                                inv: false,
                            };
                            waits.push((pid, i as u8));
                        }
                    }
                }
            }
            for (pid, slot) in waits {
                if let Some(p) = self.entry_mut(pid) {
                    p.waiters.push((id, slot));
                }
            }
            if let Some(d) = uop.dst {
                self.rename[d.idx()] = Some(id);
            }
            let is_store = uop.kind == UopKind::Store;
            let entry = RobEntry {
                id,
                prog_idx,
                uop,
                pc,
                state: EntryState::Waiting,
                srcs,
                result: 0,
                addr: None,
                store_value: None,
                remote: false,
                llc_miss: false,
                tainted: false,
                chain_depth: 0,
                waiters: Vec::new(),
                bp,
                predicted_taken,
                forwarded: false,
                mem_pending: false,
                inv: false,
            };
            let all_ready = if entry.uop.kind == UopKind::Store {
                // Stores issue (resolve their address) as soon as the
                // address operand is ready; data may arrive later
                // (split store-address / store-data uops).
                entry.srcs[0].ready()
            } else {
                entry.srcs.iter().all(|s| s.ready())
            };
            self.rob.push_back(entry);
            self.waiting_count += 1;
            if is_store {
                self.store_ids.push_back(id);
                self.unresolved_stores.insert(id);
            }
            if all_ready {
                self.ready.insert(id);
            }
        }
    }

    fn mem_ops_in_rob(&self) -> usize {
        self.mem_inflight + self.store_ids.len()
    }
}

/// Resolve ALU operand selection (Mov immediate special case) given the
/// two captured source values.
fn resolve_operands(uop: &StaticUop, a: u64, b: u64) -> (u64, u64) {
    match uop.kind {
        UopKind::Mov => {
            if uop.srcs[0].is_some() {
                (a, 0)
            } else {
                (uop.imm, 0)
            }
        }
        UopKind::Not | UopKind::SignExtend => (a, 0),
        _ => {
            if uop.srcs[1].is_some() {
                (a, b)
            } else {
                (a, uop.imm)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emc_types::program::{run_reference, Program};
    use emc_types::BranchCond;

    /// Drive a core to completion with a fixed memory latency, answering
    /// loads after `mem_lat` cycles.
    fn run_core(program: Program, mem: MemoryImage, mem_lat: u64, max_cycles: u64) -> Core {
        let mut core = Core::new(&CoreConfig::default(), Arc::new(program), mem);
        let mut events = Vec::new();
        let mut pending: Vec<(Cycle, RobId)> = Vec::new();
        for now in 0..max_cycles {
            core.tick(now, &mut events);
            for ev in events.drain(..) {
                if let CoreEvent::LoadIssued { rob, .. } = ev {
                    pending.push((now + mem_lat, rob));
                }
            }
            pending.retain(|&(t, rob)| {
                if t <= now {
                    core.complete_load(rob, now);
                    false
                } else {
                    true
                }
            });
            if core.finished_at().is_some() {
                break;
            }
        }
        core
    }

    fn check_against_reference(program: Program, mem: MemoryImage, mem_lat: u64) -> Core {
        let mut ref_mem = mem.clone();
        let expect = run_reference(&program, &mut ref_mem, 10_000_000);
        assert!(!expect.capped);
        let core = run_core(program, mem, mem_lat, 10_000_000);
        assert!(core.finished_at().is_some(), "core did not finish");
        assert_eq!(
            core.committed_regs(),
            &expect.regs,
            "architectural mismatch"
        );
        core
    }

    #[test]
    fn straight_line_alu() {
        let p = Program::new(
            vec![
                StaticUop::mov_imm(Reg(0), 7),
                StaticUop::alu(UopKind::IntAdd, Reg(1), Reg(0), None, 35),
                StaticUop::alu(UopKind::Shl, Reg(2), Reg(1), None, 1),
            ],
            0x1000,
        );
        let core = check_against_reference(p, MemoryImage::new(), 10);
        assert_eq!(core.committed_regs()[2], 84);
        assert_eq!(core.stats.retired_uops, 3);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let p = Program::new(
            vec![
                StaticUop::mov_imm(Reg(0), 0x2000),
                StaticUop::mov_imm(Reg(1), 99),
                StaticUop::store(Reg(0), Reg(1), 0),
                StaticUop::load(Reg(2), Reg(0), 0),
                StaticUop::alu(UopKind::IntAdd, Reg(3), Reg(2), None, 1),
            ],
            0x1000,
        );
        let core = check_against_reference(p, MemoryImage::new(), 50);
        assert_eq!(core.committed_regs()[3], 100);
        assert_eq!(core.stats.retired_stores, 1);
        assert_eq!(core.stats.retired_loads, 1);
        assert_eq!(core.mem.read_u64(Addr(0x2000)), 99);
    }

    #[test]
    fn store_forwarding_supplies_value() {
        let p = Program::new(
            vec![
                StaticUop::mov_imm(Reg(0), 0x3000),
                StaticUop::mov_imm(Reg(1), 42),
                StaticUop::store(Reg(0), Reg(1), 8),
                StaticUop::load(Reg(2), Reg(0), 8),
            ],
            0,
        );
        // Forwarded loads never go to memory: finish even with absurd
        // memory latency.
        let core = run_core(p, MemoryImage::new(), 1_000_000, 100_000);
        assert!(core.finished_at().is_some());
        assert_eq!(core.committed_regs()[2], 42);
    }

    #[test]
    fn loop_with_predictable_branch() {
        let p = Program::new(
            vec![
                StaticUop::mov_imm(Reg(0), 100),
                StaticUop::alu(UopKind::IntSub, Reg(0), Reg(0), None, 1),
                StaticUop::alu(UopKind::IntAdd, Reg(1), Reg(1), None, 2),
                StaticUop::branch(BranchCond::NotZero, Some(Reg(0)), 1),
            ],
            0x4000,
        );
        let core = check_against_reference(p, MemoryImage::new(), 10);
        assert_eq!(core.committed_regs()[1], 200);
        assert!(
            core.stats.branch_mispredicts <= 5,
            "loop branch should be learned: {} mispredicts",
            core.stats.branch_mispredicts
        );
    }

    #[test]
    fn pointer_chase_matches_reference() {
        let mut mem = MemoryImage::new();
        // A 4-node cycle.
        let nodes = [0x1000u64, 0x5000, 0x9000, 0xd000];
        for i in 0..4 {
            mem.write_u64(Addr(nodes[i]), nodes[(i + 1) % 4]);
            mem.write_u64(Addr(nodes[i] + 8), 0x1_0000 + i as u64 * 64);
        }
        let p = Program::new(
            vec![
                StaticUop::mov_imm(Reg(0), 0x1000),
                StaticUop::mov_imm(Reg(15), 12),
                // loop:
                StaticUop::load(Reg(1), Reg(0), 0),
                StaticUop::load(Reg(2), Reg(0), 8),
                StaticUop::alu(UopKind::IntAdd, Reg(3), Reg(2), None, 0x18),
                StaticUop::load(Reg(4), Reg(3), 0),
                StaticUop::mov(Reg(0), Reg(1)),
                StaticUop::alu(UopKind::IntSub, Reg(15), Reg(15), None, 1),
                StaticUop::branch(BranchCond::NotZero, Some(Reg(15)), 2),
            ],
            0x8000,
        );
        let core = check_against_reference(p, mem, 200);
        assert_eq!(
            core.committed_regs()[0],
            0x1000,
            "12 steps returns to start"
        );
    }

    #[test]
    fn wrong_path_execution_is_squashed() {
        // Branch on a loaded value: predicted not-taken path writes r2;
        // actual taken path skips it. Final r2 must be 0.
        let mut mem = MemoryImage::new();
        mem.write_u64(Addr(0x100), 0); // brz taken
        let p = Program::new(
            vec![
                StaticUop::mov_imm(Reg(0), 0x100),
                StaticUop::load(Reg(1), Reg(0), 0),
                StaticUop::branch(BranchCond::Zero, Some(Reg(1)), 4),
                StaticUop::alu(UopKind::IntAdd, Reg(2), Reg(2), None, 77),
                StaticUop::alu(UopKind::IntAdd, Reg(3), Reg(3), None, 1),
            ],
            0x2000,
        );
        let core = check_against_reference(p, mem.clone(), 100);
        assert_eq!(core.committed_regs()[2], 0, "wrong-path write must squash");
        assert_eq!(core.committed_regs()[3], 1);
    }

    #[test]
    fn full_window_stall_detected_on_miss_at_head() {
        // A load at the head with a huge latency plus enough filler to
        // fill the 256-entry ROB.
        let mut uops = vec![
            StaticUop::mov_imm(Reg(0), 0x100),
            StaticUop::load(Reg(1), Reg(0), 0),
        ];
        for _ in 0..300 {
            uops.push(StaticUop::alu(UopKind::IntAdd, Reg(2), Reg(2), None, 1));
        }
        let p = Program::new(uops, 0);
        let mut core = Core::new(&CoreConfig::default(), Arc::new(p), MemoryImage::new());
        let mut events = Vec::new();
        let mut load_id = None;
        for now in 0..2000 {
            core.tick(now, &mut events);
            for ev in events.drain(..) {
                if let CoreEvent::LoadIssued { rob, .. } = ev {
                    load_id = Some(rob);
                    core.mark_llc_miss(rob);
                }
            }
        }
        assert!(core.rob_full());
        assert_eq!(core.full_window_stall(), load_id);
        assert!(core.stats.full_window_stall_cycles > 0);
        // Resolving the load releases the stall.
        core.complete_load(load_id.unwrap(), 2000);
        let mut events = Vec::new();
        core.tick(2001, &mut events);
        assert!(core.full_window_stall().is_none());
    }

    #[test]
    fn stall_episodes_recorded_once_per_contiguous_stall() {
        let mut uops = vec![
            StaticUop::mov_imm(Reg(0), 0x100),
            StaticUop::load(Reg(1), Reg(0), 0),
        ];
        for _ in 0..300 {
            uops.push(StaticUop::alu(UopKind::IntAdd, Reg(2), Reg(2), None, 1));
        }
        let p = Program::new(uops, 0);
        let mut core = Core::new(&CoreConfig::default(), Arc::new(p), MemoryImage::new());
        let mut events = Vec::new();
        let mut load_id = None;
        for now in 0..2000 {
            core.tick(now, &mut events);
            for ev in events.drain(..) {
                if let CoreEvent::LoadIssued { rob, .. } = ev {
                    load_id = Some(rob);
                    core.mark_llc_miss(rob);
                }
            }
            assert_eq!(
                core.take_finished_stall(),
                None,
                "no episode ends while the stall persists"
            );
        }
        assert_eq!(core.stats.stall_episodes.count, 0, "episode still open");
        core.complete_load(load_id.unwrap(), 2000);
        for now in 2000..2100 {
            core.tick(now, &mut events);
            events.clear();
        }
        assert_eq!(
            core.stats.stall_episodes.count, 1,
            "one contiguous stall = one histogram sample"
        );
        let (start, end) = core
            .take_finished_stall()
            .expect("the finished episode is handed to the tracer once");
        assert!(end > start);
        assert_eq!(core.stats.stall_episodes.max, end - start);
        assert_eq!(
            core.stats.stall_episodes.sum, core.stats.full_window_stall_cycles,
            "episode cycles and per-cycle counter agree"
        );
        assert_eq!(core.take_finished_stall(), None, "mailbox is consumed");
    }

    #[test]
    fn dependent_miss_tracking() {
        // ld r1 <- [r0]; add r2 = r1 + 8; ld r3 <- [r2]: if both loads
        // miss, the second is a dependent miss at depth 1.
        let mut mem = MemoryImage::new();
        mem.write_u64(Addr(0x100), 0x4000);
        let p = Program::new(
            vec![
                StaticUop::mov_imm(Reg(0), 0x100),
                StaticUop::load(Reg(1), Reg(0), 0),
                StaticUop::alu(UopKind::IntAdd, Reg(2), Reg(1), None, 8),
                StaticUop::load(Reg(3), Reg(2), 0),
            ],
            0,
        );
        let mut core = Core::new(&CoreConfig::default(), Arc::new(p), mem);
        let mut events = Vec::new();
        let mut pending: Vec<(Cycle, RobId)> = Vec::new();
        for now in 0..5000 {
            core.tick(now, &mut events);
            for ev in events.drain(..) {
                if let CoreEvent::LoadIssued { rob, .. } = ev {
                    core.mark_llc_miss(rob); // everything misses
                    pending.push((now + 200, rob));
                }
            }
            pending.retain(|&(t, rob)| {
                if t <= now {
                    core.complete_load(rob, now);
                    false
                } else {
                    true
                }
            });
            if core.finished_at().is_some() {
                break;
            }
        }
        assert!(core.finished_at().is_some());
        assert_eq!(core.stats.dependent_llc_misses, 1);
        assert_eq!(
            core.stats.dep_chain_uop_sum, 1,
            "one ALU op (the ADD) between the loads"
        );
    }

    #[test]
    fn remote_execution_completes_chain() {
        // The dependent chain executes "at the EMC": mark entries remote,
        // then complete them with the correct values.
        let mut mem = MemoryImage::new();
        mem.write_u64(Addr(0x100), 0x4000);
        mem.write_u64(Addr(0x4008), 1234);
        let p = Program::new(
            vec![
                StaticUop::mov_imm(Reg(0), 0x100),
                StaticUop::load(Reg(1), Reg(0), 0),
                StaticUop::alu(UopKind::IntAdd, Reg(2), Reg(1), None, 8),
                StaticUop::load(Reg(3), Reg(2), 0),
            ],
            0,
        );
        let mut core = Core::new(&CoreConfig::default(), Arc::new(p), mem);
        let mut events = Vec::new();
        let mut source = None;
        for now in 0..10 {
            core.tick(now, &mut events);
            for ev in events.drain(..) {
                if let CoreEvent::LoadIssued { rob, .. } = ev {
                    source = Some(rob);
                    core.mark_llc_miss(rob);
                }
            }
        }
        let src = source.expect("source load issued");
        // Entries 2 (ADD) and 3 (dependent load) go remote.
        core.mark_remote(&[src + 1, src + 2]);
        // Source data arrives; EMC executes the chain and returns values.
        core.complete_load(src, 10);
        core.complete_remote(src + 1, 0x4008, None, 11);
        core.complete_remote(src + 2, 1234, None, 12);
        let mut events = Vec::new();
        for now in 13..30 {
            core.tick(now, &mut events);
        }
        assert!(core.finished_at().is_some());
        assert_eq!(core.committed_regs()[3], 1234);
    }

    #[test]
    fn remote_abort_falls_back_to_local_execution() {
        let mut mem = MemoryImage::new();
        mem.write_u64(Addr(0x100), 0x4000);
        mem.write_u64(Addr(0x4008), 777);
        let p = Program::new(
            vec![
                StaticUop::mov_imm(Reg(0), 0x100),
                StaticUop::load(Reg(1), Reg(0), 0),
                StaticUop::alu(UopKind::IntAdd, Reg(2), Reg(1), None, 8),
                StaticUop::load(Reg(3), Reg(2), 0),
            ],
            0,
        );
        let mut core = Core::new(&CoreConfig::default(), Arc::new(p), mem);
        let mut events = Vec::new();
        let mut pending: Vec<(Cycle, RobId)> = Vec::new();
        let mut source = None;
        let mut marked = false;
        for now in 0..5000 {
            core.tick(now, &mut events);
            for ev in events.drain(..) {
                if let CoreEvent::LoadIssued { rob, .. } = ev {
                    if source.is_none() {
                        source = Some(rob);
                        core.mark_remote(&[rob + 1, rob + 2]);
                        marked = true;
                    }
                    pending.push((now + 100, rob));
                }
            }
            if marked && now == 300 {
                // EMC aborts (e.g. TLB miss): chain re-executes locally.
                let s = source.unwrap();
                core.unmark_remote(&[s + 1, s + 2]);
            }
            pending.retain(|&(t, rob)| {
                if t <= now {
                    core.complete_load(rob, now);
                    false
                } else {
                    true
                }
            });
            if core.finished_at().is_some() {
                break;
            }
        }
        assert!(core.finished_at().is_some());
        assert_eq!(core.committed_regs()[3], 777);
    }

    #[test]
    fn rs_capacity_limits_window() {
        // With a 4-entry RS, no more than 4 unissued uops may be in
        // flight even though the ROB is large.
        let cfg = CoreConfig {
            rs_entries: 4,
            ..CoreConfig::default()
        };
        // A long chain of dependent adds behind a slow load keeps
        // everything unissued.
        let mut uops = vec![
            StaticUop::mov_imm(Reg(0), 0x100),
            StaticUop::load(Reg(1), Reg(0), 0),
        ];
        for _ in 0..50 {
            uops.push(StaticUop::alu(UopKind::IntAdd, Reg(1), Reg(1), None, 1));
        }
        let p = Program::new(uops, 0);
        let mut core = Core::new(&cfg, Arc::new(p), MemoryImage::new());
        let mut events = Vec::new();
        for now in 0..100 {
            core.tick(now, &mut events);
            events.clear();
        }
        assert!(core.rob_len() <= 4 + 2, "RS limit must throttle dispatch");
    }
}
