//! Hybrid branch predictor (Table 1: "hybrid branch predictor").
//!
//! A classic McFarling-style combination: a gshare component (global
//! history XOR PC), a bimodal component (PC-indexed), and a chooser table
//! that learns which component to trust per branch. Global history is
//! updated speculatively at predict time and repaired from a checkpoint on
//! misprediction, exactly as a real front end would.

/// Prediction metadata carried in the ROB entry so the predictor can be
/// trained (and its history repaired) at resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictInfo {
    /// Predicted direction.
    pub taken: bool,
    /// Global history *before* this prediction (checkpoint).
    pub history: u64,
}

/// Two-bit saturating counter helpers.
fn bump(c: &mut u8, up: bool) {
    if up {
        *c = (*c + 1).min(3);
    } else {
        *c = c.saturating_sub(1);
    }
}

fn strong(c: u8) -> bool {
    c >= 2
}

/// The hybrid predictor.
///
/// # Example
///
/// ```
/// use emc_cpu::bpred::HybridPredictor;
///
/// let mut bp = HybridPredictor::new(1024);
/// // A branch that is always taken trains to "taken".
/// for _ in 0..8 {
///     let p = bp.predict(0x40);
///     bp.resolve(0x40, p, true);
/// }
/// assert!(bp.predict(0x40).taken);
/// ```
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    gshare: Vec<u8>,
    bimodal: Vec<u8>,
    chooser: Vec<u8>,
    history: u64,
    mask: u64,
}

impl HybridPredictor {
    /// Create a predictor with `entries` slots per table (rounded up to a
    /// power of two).
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(16);
        HybridPredictor {
            gshare: vec![1; n],
            bimodal: vec![1; n],
            chooser: vec![2; n], // slight initial bias toward gshare
            history: 0,
            mask: n as u64 - 1,
        }
    }

    fn gshare_idx(&self, pc: u64, history: u64) -> usize {
        (((pc >> 2) ^ history) & self.mask) as usize
    }

    fn pc_idx(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Predict the direction of the branch at `pc`, speculatively updating
    /// global history.
    pub fn predict(&mut self, pc: u64) -> PredictInfo {
        let checkpoint = self.history;
        let g = strong(self.gshare[self.gshare_idx(pc, checkpoint)]);
        let b = strong(self.bimodal[self.pc_idx(pc)]);
        let use_gshare = strong(self.chooser[self.pc_idx(pc)]);
        let taken = if use_gshare { g } else { b };
        self.history = (self.history << 1) | u64::from(taken);
        PredictInfo {
            taken,
            history: checkpoint,
        }
    }

    /// Train on the resolved outcome. On a misprediction, repairs global
    /// history from the checkpoint and re-applies the correct direction.
    pub fn resolve(&mut self, pc: u64, info: PredictInfo, taken: bool) {
        let gi = self.gshare_idx(pc, info.history);
        let pi = self.pc_idx(pc);
        let g_correct = strong(self.gshare[gi]) == taken;
        let b_correct = strong(self.bimodal[pi]) == taken;
        bump(&mut self.gshare[gi], taken);
        bump(&mut self.bimodal[pi], taken);
        if g_correct != b_correct {
            bump(&mut self.chooser[pi], g_correct);
        }
        if info.taken != taken {
            // Squash the wrong speculative history and insert the truth.
            self.history = (info.history << 1) | u64::from(taken);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut bp = HybridPredictor::new(256);
        let mut wrong = 0;
        for _ in 0..50 {
            let p = bp.predict(0x100);
            if !p.taken {
                wrong += 1;
            }
            bp.resolve(0x100, p, true);
        }
        assert!(wrong <= 3, "{wrong} mispredicts on an always-taken branch");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut bp = HybridPredictor::new(1024);
        let mut wrong = 0;
        let mut taken = false;
        for i in 0..200 {
            taken = !taken;
            let p = bp.predict(0x200);
            if i > 50 && p.taken != taken {
                wrong += 1;
            }
            bp.resolve(0x200, p, taken);
        }
        assert!(wrong < 15, "gshare should capture T/N/T/N: {wrong} wrong");
    }

    #[test]
    fn distinct_pcs_do_not_interfere_in_bimodal() {
        let mut bp = HybridPredictor::new(1024);
        for _ in 0..30 {
            let p1 = bp.predict(0x400);
            bp.resolve(0x400, p1, true);
            let p2 = bp.predict(0x800);
            bp.resolve(0x800, p2, false);
        }
        assert!(bp.predict(0x400).taken);
        assert!(!bp.predict(0x800).taken);
    }

    #[test]
    fn history_repaired_on_mispredict() {
        let mut bp = HybridPredictor::new(64);
        let p = bp.predict(0x10);
        let h_before = p.history;
        // Resolve opposite to the prediction: history must become
        // checkpoint<<1 | actual.
        bp.resolve(0x10, p, !p.taken);
        assert_eq!(bp.history, (h_before << 1) | u64::from(!p.taken));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let bp = HybridPredictor::new(1000);
        assert_eq!(bp.mask + 1, 1024);
    }
}
