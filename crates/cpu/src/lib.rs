//! Out-of-order core model for the EMC reproduction.
//!
//! Implements the paper's Table 1 core: 4-wide issue, 256-entry ROB,
//! 92-entry reservation station, hybrid branch predictor, load/store
//! queue with store-to-load forwarding, speculative wrong-path execution,
//! and in-order retirement. The core executes real uop semantics over the
//! workload's memory image; memory *timing* comes from the owning
//! simulator through the [`CoreEvent`] / [`Core::complete_load`]
//! interface.
//!
//! The `emc-core` crate builds the paper's dependence-chain generation on
//! top of the read-only ROB view ([`Core::rob_iter`], [`RobEntry`]): the
//! per-entry waiter lists are exactly the wakeup metadata the paper's
//! pseudo-wakeup dataflow walk broadcasts on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bpred;
pub mod core;

pub use crate::core::{Core, CoreEvent, EntryState, RobEntry, RobId, SrcOp};
pub use bpred::{HybridPredictor, PredictInfo};
