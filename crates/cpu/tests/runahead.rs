//! Runahead execution tests: the HPCA 2003 baseline the paper contrasts
//! with (§1/§2 — runahead prefetches *independent* misses; dependent
//! misses are discarded as INV).

use emc_cpu::{Core, CoreEvent};
use emc_types::program::{run_reference, Program, StaticUop};
use emc_types::{Addr, BranchCond, CoreConfig, MemoryImage, Reg, UopKind};
use std::sync::Arc;

fn ra_cfg() -> CoreConfig {
    CoreConfig {
        runahead: true,
        ..CoreConfig::default()
    }
}

/// A loop of independent misses (xorshift addresses) — runahead's best
/// case: while the head miss blocks, future loads are prefetchable.
fn independent_miss_loop(iters: u64) -> Program {
    Program::new(
        vec![
            StaticUop::mov_imm(Reg(15), iters),
            StaticUop::mov_imm(Reg(9), 0x1234_5677),
            // loop:
            StaticUop::alu(UopKind::Shl, Reg(2), Reg(9), None, 13),
            StaticUop::alu(UopKind::Xor, Reg(9), Reg(9), Some(Reg(2)), 0),
            StaticUop::alu(UopKind::Shr, Reg(2), Reg(9), None, 7),
            StaticUop::alu(UopKind::Xor, Reg(9), Reg(9), Some(Reg(2)), 0),
            StaticUop::alu(UopKind::And, Reg(3), Reg(9), None, 0xff_fff8),
            StaticUop::load(Reg(4), Reg(3), 0),
            StaticUop::alu(UopKind::IntAdd, Reg(5), Reg(5), Some(Reg(4)), 0),
            StaticUop::alu(UopKind::IntSub, Reg(15), Reg(15), None, 1),
            StaticUop::branch(BranchCond::NotZero, Some(Reg(15)), 2),
        ],
        0x3000,
    )
}

/// A serial pointer chase — runahead's worst case: every future load's
/// address is INV.
fn chase_loop(mem: &mut MemoryImage, nodes: u64, iters: u64) -> Program {
    for i in 0..nodes {
        mem.write_u64(Addr(0x10_0000 + i * 64), 0x10_0000 + ((i + 1) % nodes) * 64);
    }
    Program::new(
        vec![
            StaticUop::mov_imm(Reg(15), iters),
            StaticUop::mov_imm(Reg(0), 0x10_0000),
            // loop:
            StaticUop::load(Reg(0), Reg(0), 0),
            StaticUop::alu(UopKind::IntSub, Reg(15), Reg(15), None, 1),
            StaticUop::branch(BranchCond::NotZero, Some(Reg(15)), 2),
        ],
        0x3100,
    )
}

/// Drive a core with a fixed memory latency; every address seen gets
/// cached so repeats are "hits" (latency 5). Returns (core, cycles).
fn drive(cfg: &CoreConfig, p: Program, mem: MemoryImage, miss_lat: u64, max: u64) -> (Core, u64) {
    let mut core = Core::new(cfg, Arc::new(p), mem);
    let mut events = Vec::new();
    let mut pending: Vec<(u64, u64)> = Vec::new();
    let mut cached: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut finished = 0;
    for now in 0..max {
        core.tick(now, &mut events);
        for ev in events.drain(..) {
            if let CoreEvent::LoadIssued { rob, addr, .. } = ev {
                let line = addr.0 / 64;
                let lat = if cached.contains(&line) {
                    5
                } else {
                    core.mark_llc_miss(rob);
                    miss_lat
                };
                cached.insert(line);
                pending.push((now + lat, rob));
            }
        }
        pending.retain(|&(t, rob)| {
            if t <= now {
                core.complete_load(rob, now);
                false
            } else {
                true
            }
        });
        if let Some(f) = core.finished_at() {
            finished = f;
            break;
        }
    }
    (core, finished)
}

#[test]
fn runahead_speeds_up_independent_misses() {
    let p = independent_miss_loop(120);
    let (_base, t0) = drive(
        &CoreConfig::default(),
        p.clone(),
        MemoryImage::new(),
        300,
        3_000_000,
    );
    let (ra, t1) = drive(&ra_cfg(), p, MemoryImage::new(), 300, 3_000_000);
    assert!(t0 > 0 && t1 > 0, "both runs finish");
    assert!(ra.stats.runahead_entries > 0, "runahead must engage");
    assert!(ra.stats.runahead_requests > 0, "runahead must prefetch");
    assert!(
        t1 < t0,
        "runahead must speed up independent misses: {t0} -> {t1}"
    );
}

#[test]
fn runahead_cannot_help_dependent_misses() {
    let mut mem = MemoryImage::new();
    let p = chase_loop(&mut mem, 512, 200);
    let (_, t0) = drive(
        &CoreConfig::default(),
        p.clone(),
        mem.clone(),
        300,
        5_000_000,
    );
    let (_ra, t1) = drive(&ra_cfg(), p, mem, 300, 5_000_000);
    assert!(t0 > 0 && t1 > 0);
    // The chase's future loads are all INV during runahead: almost no
    // useful prefetches, so no meaningful speedup (the paper's §1 gap).
    let speedup = t0 as f64 / t1 as f64;
    assert!(
        speedup < 1.05,
        "runahead must not accelerate a serial chase: speedup {speedup:.3}"
    );
}

#[test]
fn runahead_is_architecturally_transparent() {
    // Same program with and without runahead: identical final registers
    // and retired counts (runahead work is all discarded).
    let mut mem = MemoryImage::new();
    let p = chase_loop(&mut mem, 64, 100);
    let mut ref_mem = mem.clone();
    let expect = run_reference(&p, &mut ref_mem, 10_000_000);
    for cfg in [CoreConfig::default(), ra_cfg()] {
        let (core, _) = drive(&cfg, p.clone(), mem.clone(), 250, 5_000_000);
        assert_eq!(core.committed_regs(), &expect.regs);
        assert_eq!(core.stats.retired_uops, expect.dyn_uops);
    }
}

#[test]
fn runahead_does_not_count_speculative_uops_as_retired() {
    let p = independent_miss_loop(60);
    let (ra, _) = drive(&ra_cfg(), p.clone(), MemoryImage::new(), 300, 3_000_000);
    let mut ref_mem = MemoryImage::new();
    let expect = run_reference(&p, &mut ref_mem, 10_000_000);
    assert_eq!(
        ra.stats.retired_uops, expect.dyn_uops,
        "IPC must not be inflated"
    );
    assert!(
        ra.stats.runahead_uops > 0,
        "speculative uops counted separately"
    );
}

#[test]
fn runahead_stores_never_touch_memory() {
    // st [r8], r9 inside the runahead window must not corrupt memory.
    let mut uops = vec![
        StaticUop::mov_imm(Reg(0), 0x10_0000),
        StaticUop::load(Reg(1), Reg(0), 0), // blocking miss
        StaticUop::mov_imm(Reg(8), 0x20_0000),
        StaticUop::mov_imm(Reg(9), 0xdead),
        StaticUop::store(Reg(8), Reg(9), 0),
    ];
    for _ in 0..300 {
        uops.push(StaticUop::alu(UopKind::IntAdd, Reg(5), Reg(5), None, 1));
    }
    let p = Program::new(uops, 0x3300);
    let mut core = Core::new(&ra_cfg(), Arc::new(p), MemoryImage::new());
    let mut events = Vec::new();
    let mut blocking = None;
    for now in 0..1200 {
        core.tick(now, &mut events);
        for ev in events.drain(..) {
            if let CoreEvent::LoadIssued { rob, .. } = ev {
                blocking.get_or_insert(rob);
                core.mark_llc_miss(rob);
            }
        }
        // Never complete the load: stay in runahead.
    }
    assert!(core.in_runahead());
    assert_eq!(
        core.mem.read_u64(Addr(0x20_0000)),
        0,
        "runahead store must not commit"
    );
    // Exit cleanly and re-execute: the store commits this time.
    core.complete_load(blocking.unwrap(), 1200);
    assert!(!core.in_runahead());
}
