//! Architectural-state equivalence: the out-of-order core (with wrong-path
//! speculation, store forwarding, flushes and variable memory latency)
//! must compute exactly what the sequential reference interpreter
//! computes.

use emc_cpu::{Core, CoreEvent};
use emc_types::program::{run_reference, Program, StaticUop};
use emc_types::{BranchCond, CoreConfig, MemoryImage, Reg, UopKind};
use proptest::prelude::*;
use std::sync::Arc;

/// Run the core to completion with a deterministic pseudo-random memory
/// latency schedule derived from `lat_seed`.
fn run_core(program: &Program, mem: &MemoryImage, lat_seed: u64, max_cycles: u64) -> Option<Core> {
    let mut core = Core::new(
        &CoreConfig::default(),
        Arc::new(program.clone()),
        mem.clone(),
    );
    let mut events = Vec::new();
    let mut pending: Vec<(u64, u64)> = Vec::new();
    let mut state = lat_seed | 1;
    for now in 0..max_cycles {
        core.tick(now, &mut events);
        for ev in events.drain(..) {
            if let CoreEvent::LoadIssued { rob, .. } = ev {
                // xorshift latency in [5, 260): misses and hits mixed.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let lat = 5 + (state % 256);
                // Mark roughly half the loads as LLC misses to exercise
                // taint tracking.
                if state & 1 == 0 {
                    core.mark_llc_miss(rob);
                }
                pending.push((now + lat, rob));
            }
        }
        pending.retain(|&(t, rob)| {
            if t <= now {
                core.complete_load(rob, now);
                false
            } else {
                true
            }
        });
        if core.finished_at().is_some() {
            return Some(core);
        }
    }
    None
}

fn arb_uop(max_target: u32) -> impl Strategy<Value = StaticUop> {
    let reg = 0u8..16;
    prop_oneof![
        // ALU reg-imm
        (reg.clone(), reg.clone(), 0u64..1024, 0usize..7).prop_map(|(d, a, imm, k)| {
            let kind = [
                UopKind::IntAdd,
                UopKind::IntSub,
                UopKind::And,
                UopKind::Or,
                UopKind::Xor,
                UopKind::Shl,
                UopKind::Shr,
            ][k];
            StaticUop::alu(kind, Reg(d), Reg(a), None, imm % 64)
        }),
        // ALU reg-reg
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| {
            StaticUop::alu(UopKind::IntAdd, Reg(d), Reg(a), Some(Reg(b)), 0)
        }),
        // mov imm
        (reg.clone(), any::<u64>())
            .prop_map(|(d, imm)| StaticUop::mov_imm(Reg(d), imm % (1 << 20))),
        // load (address masked into a small window by construction: the
        // base register values stay small because immediates are small)
        (reg.clone(), reg.clone(), 0u64..512)
            .prop_map(|(d, b, off)| { StaticUop::load(Reg(d), Reg(b), off * 8) }),
        // store
        (reg.clone(), reg.clone(), 0u64..512)
            .prop_map(|(b, v, off)| { StaticUop::store(Reg(b), Reg(v), off * 8) }),
        // forward conditional branch
        (reg.clone(), any::<bool>()).prop_map(move |(r, z)| {
            StaticUop::branch(
                if z {
                    BranchCond::Zero
                } else {
                    BranchCond::NotZero
                },
                Some(Reg(r)),
                max_target,
            )
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random straight-line-with-forward-branches programs: the OoO core
    /// and the reference interpreter agree on every register and on the
    /// load/store/uop counts that survive speculation.
    #[test]
    fn ooo_matches_reference(
        mut program_uops in prop::collection::vec(arb_uop(0), 1usize..60),
        seed in any::<u64>(),
        lat_seed in any::<u64>(),
    ) {
        // Retarget branches to valid strictly-forward targets (guarantees
        // termination regardless of data values).
        let len = program_uops.len();
        let mut s = seed | 1;
        for (i, u) in program_uops.iter_mut().enumerate() {
            if u.kind.is_branch() {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                let lo = i as u32 + 1;
                let hi = len as u32;
                u.target = Some(lo + (s as u32 % (hi - lo + 1)).min(hi - lo));
            }
        }
        let program = Program::new(program_uops, 0x9000);
        prop_assume!(program.validate().is_ok());

        let mem = MemoryImage::new();
        let mut ref_mem = mem.clone();
        let expect = run_reference(&program, &mut ref_mem, 1_000_000);
        prop_assert!(!expect.capped);

        let core = run_core(&program, &mem, lat_seed, 2_000_000).expect("core finished");
        prop_assert_eq!(core.committed_regs(), &expect.regs);
        prop_assert_eq!(core.stats.retired_uops, expect.dyn_uops);
        prop_assert_eq!(core.stats.retired_loads, expect.loads);
        prop_assert_eq!(core.stats.retired_stores, expect.stores);
    }
}

#[test]
fn workload_programs_match_reference() {
    use emc_workloads::{build, Benchmark};
    for bench in [
        Benchmark::Mcf,
        Benchmark::Libquantum,
        Benchmark::Omnetpp,
        Benchmark::Lbm,
        Benchmark::Gcc,
        Benchmark::Povray,
    ] {
        let w = build(bench, 42, 40);
        let mut ref_mem = w.memory.clone();
        let expect = run_reference(&w.program, &mut ref_mem, 10_000_000);
        assert!(!expect.capped, "{bench}");
        let core = run_core(&w.program, &w.memory, 0xabcd, 20_000_000)
            .unwrap_or_else(|| panic!("{bench}: core did not finish"));
        assert_eq!(
            core.committed_regs(),
            &expect.regs,
            "{bench} register mismatch"
        );
        assert_eq!(
            core.stats.retired_uops, expect.dyn_uops,
            "{bench} uop count"
        );
        // Memory effects must match too: compare the pages the reference
        // run touched.
        for page in 0..16u64 {
            let a = emc_types::Addr(emc_workloads::SPILL_BASE + page * 8);
            assert_eq!(
                core.mem.read_u64(a),
                ref_mem.read_u64(a),
                "{bench} mem at {a}"
            );
        }
    }
}
