//! Bi-directional ring interconnect model.
//!
//! Table 1 of the paper: "2 Bi-directional rings: control (8 bytes) / data
//! (64 bytes). 1 cycle core to LLC slice bypass. 1 cycle ring links." Each
//! core shares a ring stop with its LLC slice; the memory controller(s)
//! occupy additional stops (Figures 7 and 11).
//!
//! Messages pick the shorter direction and occupy each link they traverse,
//! so ring contention — a component of the on-chip delay the EMC avoids —
//! is modeled, not assumed. The EMC's traffic overhead statistics (§6.5)
//! fall out of the [`RingStats`] counters updated on every send.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use emc_types::{Cycle, FaultPlan, RingConfig, RingStats};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Which of the two rings a message travels on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RingKind {
    /// 8-byte control ring (requests, snoops, acks).
    Control,
    /// 64-byte data ring (cache lines, uop chains, live-in/out registers).
    Data,
}

/// Ring-stop topology: cores first, then one stop per memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of cores (each owns one stop, shared with its LLC slice).
    pub cores: usize,
    /// Number of memory-controller stops.
    pub mcs: usize,
}

impl Topology {
    /// Total ring stops.
    pub fn stops(&self) -> usize {
        self.cores + self.mcs
    }

    /// Stop index of core `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn core_stop(&self, c: usize) -> usize {
        assert!(c < self.cores, "core {c} out of range");
        c
    }

    /// Stop index of memory controller `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn mc_stop(&self, m: usize) -> usize {
        assert!(m < self.mcs, "MC {m} out of range");
        self.cores + m
    }

    /// Stop index of the LLC slice co-located with core `c`.
    pub fn llc_stop(&self, c: usize) -> usize {
        self.core_stop(c)
    }

    /// Home LLC slice of a line: static line-interleaving across slices
    /// (address-hashed sliced LLC, as in ring-based Intel designs).
    pub fn llc_slice_of(&self, line: emc_types::LineAddr) -> usize {
        (line.0 % self.cores as u64) as usize
    }
}

/// The pair of bi-directional rings.
///
/// # Example
///
/// ```
/// use emc_ring::{Ring, RingKind, Topology};
/// use emc_types::{RingConfig, RingStats};
///
/// let topo = Topology { cores: 4, mcs: 1 };
/// let mut ring = Ring::new(topo, RingConfig::default());
/// let mut stats = RingStats::default();
/// // Core 0 sends a request to the MC stop.
/// let arrive = ring.send(RingKind::Control, 0, topo.mc_stop(0), 100, false, &mut stats);
/// assert!(arrive > 100);
/// assert_eq!(stats.control_msgs, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Ring {
    topo: Topology,
    cfg: RingConfig,
    // free_at[kind][direction][link]; link i connects stop i -> i+1 (cw).
    free_at: [[Vec<Cycle>; 2]; 2],
    // Injected-delay fault state: (probability, extra cycles, rng).
    faults: Option<(f64, u64, SmallRng)>,
}

impl Ring {
    /// Build the rings for a topology.
    pub fn new(topo: Topology, cfg: RingConfig) -> Self {
        let links = vec![0; topo.stops()];
        Ring {
            topo,
            cfg,
            free_at: [[links.clone(), links.clone()], [links.clone(), links]],
            faults: None,
        }
    }

    /// Arm deterministic fault injection: with probability
    /// `plan.ring_delay_prob`, each message is delayed by
    /// `plan.ring_delay_cycles` extra cycles (modeling a link-level
    /// retry). `seed` should be a [`substream`](emc_types::rng::substream)
    /// of the system seed so faulty runs are reproducible.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan, seed: u64) {
        if plan.enabled && plan.ring_delay_prob > 0.0 {
            self.faults = Some((
                plan.ring_delay_prob,
                plan.ring_delay_cycles,
                SmallRng::seed_from_u64(seed),
            ));
        } else {
            self.faults = None;
        }
    }

    /// The topology this ring was built for.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Number of links (across both rings and both directions) still
    /// occupied by in-flight messages at cycle `now` — the sampler's
    /// ring-utilization metric. The maximum is `4 * stops()`.
    pub fn busy_links(&self, now: Cycle) -> usize {
        self.free_at
            .iter()
            .flat_map(|dirs| dirs.iter())
            .flat_map(|links| links.iter())
            .filter(|&&free| free > now)
            .count()
    }

    /// Liveness probe: the worst link backlog across both rings and
    /// directions — how far beyond `now` the busiest link is already
    /// committed, in cycles (`0` when every link is free). A backlog
    /// that keeps growing means senders are queueing faster than links
    /// drain: interconnect backpressure, not DRAM latency.
    pub fn max_backlog(&self, now: Cycle) -> Cycle {
        self.free_at
            .iter()
            .flat_map(|dirs| dirs.iter())
            .flat_map(|links| links.iter())
            .map(|&free| free.saturating_sub(now))
            .max()
            .unwrap_or(0)
    }

    /// Hop distance and direction (0 = clockwise) of the shorter path.
    fn route(&self, from: usize, to: usize) -> (usize, usize) {
        let n = self.topo.stops();
        let cw = (to + n - from) % n;
        let ccw = (from + n - to) % n;
        if cw <= ccw {
            (cw, 0)
        } else {
            (ccw, 1)
        }
    }

    /// Send a message at cycle `now` from stop `from` to stop `to`,
    /// returning its arrival cycle. Links are occupied store-and-forward,
    /// so concurrent traffic on the same links queues up. `emc` attributes
    /// the message to the EMC for the §6.5 overhead statistics.
    pub fn send(
        &mut self,
        kind: RingKind,
        from: usize,
        to: usize,
        now: Cycle,
        emc: bool,
        stats: &mut RingStats,
    ) -> Cycle {
        match kind {
            RingKind::Control => {
                stats.control_msgs += 1;
                if emc {
                    stats.emc_control_msgs += 1;
                }
            }
            RingKind::Data => {
                stats.data_msgs += 1;
                if emc {
                    stats.emc_data_msgs += 1;
                }
            }
        }
        // Injected link-retry fault: the message re-traverses after a
        // CRC-style error, costing extra cycles but always delivering —
        // a pure timing perturbation.
        let injected = self.faults.as_mut().map_or(0, |(prob, delay, rng)| {
            if rng.gen_bool(*prob) {
                stats.injected_delays += 1;
                *delay
            } else {
                0
            }
        });
        if from == to {
            // Same-stop bypass (core to its own LLC slice).
            return now + self.cfg.stop_cycles + injected;
        }
        let (hops, dir) = self.route(from, to);
        stats.total_hops += hops as u64;
        let ki = match kind {
            RingKind::Control => 0,
            RingKind::Data => 1,
        };
        let n = self.topo.stops();
        let mut t = now;
        let mut stop = from;
        for _ in 0..hops {
            let link = if dir == 0 { stop } else { (stop + n - 1) % n };
            let free = &mut self.free_at[ki][dir][link];
            t = t.max(*free) + self.cfg.link_cycles;
            *free = t;
            stop = if dir == 0 {
                (stop + 1) % n
            } else {
                (stop + n - 1) % n
            };
        }
        t + self.cfg.stop_cycles + injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad() -> (Ring, RingStats) {
        let topo = Topology { cores: 4, mcs: 1 };
        (Ring::new(topo, RingConfig::default()), RingStats::default())
    }

    #[test]
    fn same_stop_bypass_is_one_cycle() {
        let (mut r, mut s) = quad();
        let t = r.send(RingKind::Control, 2, 2, 10, false, &mut s);
        assert_eq!(t, 11);
        assert_eq!(s.total_hops, 0);
    }

    #[test]
    fn shorter_direction_chosen() {
        let (mut r, mut s) = quad();
        // 5 stops: 0 -> 4 is 1 hop counter-clockwise, 4 clockwise.
        let t = r.send(RingKind::Control, 0, 4, 0, false, &mut s);
        assert_eq!(s.total_hops, 1);
        assert_eq!(t, 2); // 1 link + 1 stop cycle
    }

    #[test]
    fn distance_scales_latency() {
        let (mut r, mut s) = quad();
        let near = r.send(RingKind::Data, 0, 1, 0, false, &mut s);
        let far = r.send(RingKind::Data, 0, 2, 100, false, &mut s);
        assert!(
            far - 100 > near,
            "2 hops beat 1 hop: {near} vs {}",
            far - 100
        );
    }

    #[test]
    fn contention_queues_messages() {
        let (mut r, mut s) = quad();
        let a = r.send(RingKind::Data, 0, 2, 0, false, &mut s);
        let b = r.send(RingKind::Data, 0, 2, 0, false, &mut s);
        assert!(b > a, "second message must queue behind the first");
    }

    #[test]
    fn rings_are_independent() {
        let (mut r, mut s) = quad();
        let a = r.send(RingKind::Data, 0, 2, 0, false, &mut s);
        // Control ring sees no contention from the data message.
        let c = r.send(RingKind::Control, 0, 2, 0, false, &mut s);
        assert_eq!(a, c, "control and data rings have separate links");
    }

    #[test]
    fn directions_are_independent() {
        let (mut r, mut s) = quad();
        let a = r.send(RingKind::Data, 0, 1, 0, false, &mut s);
        let b = r.send(RingKind::Data, 1, 0, 0, false, &mut s);
        assert_eq!(a, b, "cw and ccw links are separate");
    }

    #[test]
    fn emc_attribution() {
        let (mut r, mut s) = quad();
        r.send(RingKind::Data, 0, 4, 0, true, &mut s);
        r.send(RingKind::Data, 0, 4, 0, false, &mut s);
        r.send(RingKind::Control, 1, 4, 0, true, &mut s);
        assert_eq!(s.data_msgs, 2);
        assert_eq!(s.emc_data_msgs, 1);
        assert_eq!(s.control_msgs, 1);
        assert_eq!(s.emc_control_msgs, 1);
    }

    #[test]
    fn busy_links_tracks_in_flight_messages() {
        let (mut r, mut s) = quad();
        assert_eq!(r.busy_links(0), 0, "idle ring has no busy links");
        let arrive = r.send(RingKind::Data, 0, 2, 0, false, &mut s);
        assert!(r.busy_links(0) > 0, "links occupied while in flight");
        assert_eq!(
            r.busy_links(arrive),
            0,
            "links free once the message arrives"
        );
    }

    #[test]
    fn topology_stops() {
        let t = Topology { cores: 8, mcs: 2 };
        assert_eq!(t.stops(), 10);
        assert_eq!(t.core_stop(7), 7);
        assert_eq!(t.mc_stop(0), 8);
        assert_eq!(t.mc_stop(1), 9);
        assert_eq!(t.llc_stop(3), 3);
    }

    #[test]
    fn llc_slice_hashing_covers_all_slices() {
        let t = Topology { cores: 4, mcs: 1 };
        let mut seen = [false; 4];
        for l in 0..16u64 {
            seen[t.llc_slice_of(emc_types::LineAddr(l))] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_stop_panics() {
        Topology { cores: 4, mcs: 1 }.core_stop(4);
    }

    #[test]
    fn fault_delays_are_additive_and_counted() {
        let (mut clean, mut s0) = quad();
        let (mut faulty, mut s1) = quad();
        let plan = FaultPlan {
            enabled: true,
            ring_delay_prob: 1.0, // every message delayed
            ring_delay_cycles: 7,
            ..FaultPlan::default()
        };
        faulty.set_fault_plan(&plan, 42);
        for (from, to) in [(0usize, 2usize), (3, 3), (1, 4)] {
            let a = clean.send(RingKind::Data, from, to, 0, false, &mut s0);
            let b = faulty.send(RingKind::Data, from, to, 0, false, &mut s1);
            assert_eq!(b, a + 7, "{from}->{to}: delay must be exactly the penalty");
        }
        assert_eq!(s1.injected_delays, 3);
        assert_eq!(s0.injected_delays, 0);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let plan = FaultPlan {
            enabled: true,
            ring_delay_prob: 0.3,
            ring_delay_cycles: 11,
            ..FaultPlan::default()
        };
        let run = || {
            let (mut r, mut s) = quad();
            r.set_fault_plan(&plan, 7);
            let times: Vec<Cycle> = (0..100)
                .map(|i| {
                    r.send(
                        RingKind::Control,
                        i % 5,
                        (i + 2) % 5,
                        i as u64 * 10,
                        false,
                        &mut s,
                    )
                })
                .collect();
            (times, s.injected_delays)
        };
        let (t0, d0) = run();
        let (t1, d1) = run();
        assert_eq!(t0, t1);
        assert_eq!(d0, d1);
        assert!(d0 > 0, "with p=0.3 over 100 sends some faults must fire");
        assert!(d0 < 100, "and not all of them");
    }

    #[test]
    fn disabled_plan_leaves_timing_untouched() {
        let (mut clean, mut s0) = quad();
        let (mut armed, mut s1) = quad();
        // enabled=false ⇒ set_fault_plan is a no-op even with prob set.
        let plan = FaultPlan {
            ring_delay_prob: 1.0,
            ring_delay_cycles: 50,
            ..FaultPlan::default()
        };
        armed.set_fault_plan(&plan, 1);
        for i in 0..20u64 {
            let a = clean.send(RingKind::Data, 0, 2, i * 3, false, &mut s0);
            let b = armed.send(RingKind::Data, 0, 2, i * 3, false, &mut s1);
            assert_eq!(a, b);
        }
        assert_eq!(s1.injected_delays, 0);
    }
}
