//! Property-based tests for the ring interconnect.

use emc_ring::{Ring, RingKind, Topology};
use emc_types::{RingConfig, RingStats};
use proptest::prelude::*;

proptest! {
    /// Arrival is causal and bounded: at least one cycle, at most the
    /// whole ring's diameter plus the queueing of previously sent
    /// messages.
    #[test]
    fn latency_bounds(
        sends in prop::collection::vec((0usize..10, 0usize..10, 0u64..100), 1..100),
    ) {
        let topo = Topology { cores: 8, mcs: 2 };
        let mut ring = Ring::new(topo, RingConfig::default());
        let mut stats = RingStats::default();
        let mut now = 0;
        for (from, to, gap) in sends {
            now += gap;
            let t = ring.send(RingKind::Data, from, to, now, false, &mut stats);
            prop_assert!(t > now, "arrival must be in the future");
            // Worst case: half the ring in hops, each queued behind every
            // earlier message on the worst link.
            let diameter = topo.stops() as u64 / 2 + 1;
            prop_assert!(
                t <= now + diameter * (1 + stats.data_msgs),
                "arrival {} unreasonable at cycle {}", t, now
            );
        }
    }

    /// Hop counts are symmetric: a->b costs the same hops as b->a on an
    /// idle ring.
    #[test]
    fn symmetric_distances(a in 0usize..10, b in 0usize..10) {
        let topo = Topology { cores: 8, mcs: 2 };
        let cfg = RingConfig::default();
        let mut r1 = Ring::new(topo, cfg);
        let mut r2 = Ring::new(topo, cfg);
        let mut s1 = RingStats::default();
        let mut s2 = RingStats::default();
        let t1 = r1.send(RingKind::Control, a, b, 0, false, &mut s1);
        let t2 = r2.send(RingKind::Control, b, a, 0, false, &mut s2);
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(s1.total_hops, s2.total_hops);
    }
}
