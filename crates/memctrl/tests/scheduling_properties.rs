//! Property-based tests for the PAR-BS memory controller: conservation
//! (everything enqueued completes exactly once), causality, and
//! starvation-freedom under adversarial request streams.

use emc_memctrl::MemoryController;
use emc_types::{DramConfig, LineAddr, MemReq, MemStats, ReqId, Requester};
use proptest::prelude::*;
use std::collections::HashSet;

fn one_channel() -> DramConfig {
    DramConfig {
        channels: 1,
        ..DramConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every accepted request completes exactly once, with a data time
    /// after its enqueue time.
    #[test]
    fn conservation_and_causality(
        reqs in prop::collection::vec((0u64..512, 0u64..20, prop::bool::ANY, 0usize..4), 1..120),
    ) {
        let cfg = one_channel();
        let mut mc = MemoryController::new(&cfg, vec![0]);
        let mut stats = MemStats::default();
        let mut accepted: HashSet<u64> = HashSet::new();
        let mut completed: HashSet<u64> = HashSet::new();
        let mut now = 0u64;
        let mut id = 0u64;
        for (line, gap, is_write, core) in reqs {
            now += gap;
            // Drain due completions while time advances.
            for t in (now - gap)..=now {
                for c in mc.tick(t, &mut stats) {
                    prop_assert!(completed.insert(c.req.id.0), "double completion");
                    prop_assert!(c.req.timeline.dram_done.unwrap() >= c.req.timeline.mc_enqueue.unwrap());
                }
            }
            id += 1;
            let req = if is_write {
                MemReq::writeback(ReqId(id), LineAddr(line), Requester::Core(core), now)
            } else {
                MemReq::read(ReqId(id), LineAddr(line), Requester::Core(core), 0x40, now)
            };
            if mc.enqueue(req, now).is_ok() {
                accepted.insert(id);
            }
        }
        // Drain to empty.
        for t in now..now + 2_000_000 {
            for c in mc.tick(t, &mut stats) {
                prop_assert!(completed.insert(c.req.id.0), "double completion");
            }
            if mc.is_idle() {
                break;
            }
        }
        prop_assert!(mc.is_idle(), "controller failed to drain");
        prop_assert_eq!(&accepted, &completed, "lost or spurious completions");
    }

    /// A single old request from a quiet core is never starved behind a
    /// flood from another core, regardless of the flood's layout
    /// (PAR-BS batching property).
    #[test]
    fn no_starvation_under_flood(flood_lines in prop::collection::vec(0u64..64, 20..60)) {
        let cfg = one_channel();
        let mut mc = MemoryController::new(&cfg, vec![0]);
        let mut stats = MemStats::default();
        // The victim request arrives first.
        mc.enqueue(MemReq::read(ReqId(1), LineAddr(1000), Requester::Core(1), 0, 0), 0).unwrap();
        for (i, l) in flood_lines.iter().enumerate() {
            let _ = mc.enqueue(
                MemReq::read(ReqId(100 + i as u64), LineAddr(*l), Requester::Core(0), 0, 0),
                0,
            );
        }
        let mut victim_done_at = None;
        let mut total = 0;
        for t in 0..1_000_000u64 {
            for c in mc.tick(t, &mut stats) {
                total += 1;
                if c.req.id == ReqId(1) {
                    victim_done_at = Some((t, total));
                }
            }
            if mc.is_idle() {
                break;
            }
        }
        let (_, position) = victim_done_at.expect("victim serviced");
        // The victim is in the first batch: it cannot finish later than
        // MARKING_CAP requests per competing (core, bank) pair + itself.
        prop_assert!(
            position <= 8 * emc_memctrl::MARKING_CAP + 1,
            "victim serviced at position {position}"
        );
    }
}
