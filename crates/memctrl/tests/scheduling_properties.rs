//! Property-based tests for the PAR-BS memory controller: conservation
//! (everything enqueued completes exactly once), causality, and
//! starvation-freedom under adversarial request streams.

use emc_memctrl::MemoryController;
use emc_types::{DramConfig, LineAddr, MemReq, MemStats, ReqId, Requester};
use proptest::prelude::*;
use std::collections::HashSet;

fn one_channel() -> DramConfig {
    DramConfig {
        channels: 1,
        ..DramConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every accepted request completes exactly once, with a data time
    /// after its enqueue time.
    #[test]
    fn conservation_and_causality(
        reqs in prop::collection::vec((0u64..512, 0u64..20, prop::bool::ANY, 0usize..4), 1..120),
    ) {
        let cfg = one_channel();
        let mut mc = MemoryController::new(&cfg, vec![0]);
        let mut stats = MemStats::default();
        let mut accepted: HashSet<u64> = HashSet::new();
        let mut completed: HashSet<u64> = HashSet::new();
        let mut now = 0u64;
        let mut id = 0u64;
        for (line, gap, is_write, core) in reqs {
            now += gap;
            // Drain due completions while time advances.
            for t in (now - gap)..=now {
                for c in mc.tick(t, &mut stats) {
                    prop_assert!(completed.insert(c.req.id.0), "double completion");
                    prop_assert!(c.req.timeline.dram_done.unwrap() >= c.req.timeline.mc_enqueue.unwrap());
                }
            }
            id += 1;
            let req = if is_write {
                MemReq::writeback(ReqId(id), LineAddr(line), Requester::Core(core), now)
            } else {
                MemReq::read(ReqId(id), LineAddr(line), Requester::Core(core), 0x40, now)
            };
            if mc.enqueue(req, now).is_ok() {
                accepted.insert(id);
            }
        }
        // Drain to empty.
        for t in now..now + 2_000_000 {
            for c in mc.tick(t, &mut stats) {
                prop_assert!(completed.insert(c.req.id.0), "double completion");
            }
            if mc.is_idle() {
                break;
            }
        }
        prop_assert!(mc.is_idle(), "controller failed to drain");
        prop_assert_eq!(&accepted, &completed, "lost or spurious completions");
    }

    /// A single old request from a quiet core is never starved behind a
    /// flood from another core, regardless of the flood's layout
    /// (PAR-BS batching property).
    #[test]
    fn no_starvation_under_flood(flood_lines in prop::collection::vec(0u64..64, 20..60)) {
        let cfg = one_channel();
        let mut mc = MemoryController::new(&cfg, vec![0]);
        let mut stats = MemStats::default();
        // The victim request arrives first.
        mc.enqueue(MemReq::read(ReqId(1), LineAddr(1000), Requester::Core(1), 0, 0), 0).unwrap();
        for (i, l) in flood_lines.iter().enumerate() {
            let _ = mc.enqueue(
                MemReq::read(ReqId(100 + i as u64), LineAddr(*l), Requester::Core(0), 0, 0),
                0,
            );
        }
        let mut victim_done_at = None;
        let mut total = 0;
        for t in 0..1_000_000u64 {
            for c in mc.tick(t, &mut stats) {
                total += 1;
                if c.req.id == ReqId(1) {
                    victim_done_at = Some((t, total));
                }
            }
            if mc.is_idle() {
                break;
            }
        }
        let (_, position) = victim_done_at.expect("victim serviced");
        // The victim is in the first batch: it cannot finish later than
        // MARKING_CAP requests per competing (core, bank) pair + itself.
        prop_assert!(
            position <= 8 * emc_memctrl::MARKING_CAP + 1,
            "victim serviced at position {position}"
        );
    }

    /// Adversarial single-bank hog: one core keeps an open-row stream to
    /// a single line alive for the whole run while victims arrive at
    /// arbitrary times and addresses. With aging armed, no request —
    /// victim or hog — is ever issued older than the escalation
    /// threshold plus one batch-drain window.
    #[test]
    fn hog_cannot_age_requests_past_escalation_bound(
        victims in prop::collection::vec((0u64..20_000, 0u64..4096), 1..8),
    ) {
        const THRESHOLD: u64 = 500;
        // One escalated batch drain: every queued entry (≤ 8 hog + 8
        // victims + in-flight slack) serviced at worst-case row-conflict
        // cadence (~t_ras + t_rp + t_rcd + t_cas + t_burst < 300).
        const DRAIN: u64 = 20 * 300;
        let cfg = one_channel();
        let mut mc = MemoryController::new(&cfg, vec![0]);
        mc.set_escalation_threshold(Some(THRESHOLD));
        let mut stats = MemStats::default();
        let mut victims = victims.clone();
        victims.sort_unstable();
        let mut next_victim = 0usize;
        let mut hog_outstanding = 0usize;
        let mut id = 1_000u64;
        for now in 0..40_000u64 {
            // Keep the hog's open-row stream saturated.
            if hog_outstanding < 8 {
                id += 1;
                if mc
                    .enqueue(MemReq::read(ReqId(id), LineAddr(0), Requester::Core(0), 0, now), now)
                    .is_ok()
                {
                    hog_outstanding += 1;
                }
            }
            while next_victim < victims.len() && victims[next_victim].0 <= now {
                let (_, line) = victims[next_victim];
                next_victim += 1;
                id += 1;
                let _ = mc.enqueue(
                    MemReq::read(ReqId(id), LineAddr(line), Requester::Core(1), 0, now),
                    now,
                );
            }
            for c in mc.tick(now, &mut stats) {
                if c.req.requester == Requester::Core(0) {
                    hog_outstanding -= 1;
                }
                let enq = c.req.timeline.mc_enqueue.unwrap();
                let issue = c.req.timeline.dram_issue.unwrap();
                prop_assert!(
                    issue - enq <= THRESHOLD + DRAIN,
                    "request {} issued {} cycles after enqueue (bound {})",
                    c.req.id.0, issue - enq, THRESHOLD + DRAIN
                );
            }
        }
    }

    /// The controller is a pure function of its request stream: replaying
    /// the same interleaving through two fresh instances (aging armed)
    /// yields bit-identical completion order and timing. This is what
    /// makes liveness escalation seed-stable.
    #[test]
    fn same_stream_yields_identical_completion_order(
        reqs in prop::collection::vec((0u64..512, 0u64..10, 0usize..4), 1..80),
    ) {
        let run = |reqs: &[(u64, u64, usize)]| -> Vec<(u64, u64, u64)> {
            let cfg = one_channel();
            let mut mc = MemoryController::new(&cfg, vec![0]);
            mc.set_escalation_threshold(Some(200));
            let mut stats = MemStats::default();
            let mut log = Vec::new();
            let mut now = 0u64;
            for (i, &(line, gap, core)) in reqs.iter().enumerate() {
                now += gap;
                for t in (now - gap)..=now {
                    for c in mc.tick(t, &mut stats) {
                        log.push((c.req.id.0, c.req.timeline.dram_issue.unwrap(), c.req.timeline.dram_done.unwrap()));
                    }
                }
                let _ = mc.enqueue(
                    MemReq::read(ReqId(i as u64), LineAddr(line), Requester::Core(core), 0, now),
                    now,
                );
            }
            for t in now..now + 1_000_000 {
                for c in mc.tick(t, &mut stats) {
                    log.push((c.req.id.0, c.req.timeline.dram_issue.unwrap(), c.req.timeline.dram_done.unwrap()));
                }
                if mc.is_idle() {
                    break;
                }
            }
            log
        };
        prop_assert_eq!(run(&reqs), run(&reqs), "completion order diverged across replays");
    }
}

/// Deterministic adversary that forces the aging path itself to fire: a
/// saturating same-row hog with a tiny escalation threshold. The victim
/// must both escalate (counter increments) and still meet the age bound.
#[test]
fn escalation_fires_and_bounds_victim_age() {
    let cfg = one_channel();
    let mut mc = MemoryController::new(&cfg, vec![0]);
    mc.set_escalation_threshold(Some(50));
    let mut stats = MemStats::default();
    let mut hog_outstanding = 0usize;
    let mut id = 0u64;
    let mut victim_issue_age = None;
    for now in 0..20_000u64 {
        if hog_outstanding < 8 {
            id += 1;
            if mc
                .enqueue(
                    MemReq::read(ReqId(id), LineAddr(0), Requester::Core(0), 0, now),
                    now,
                )
                .is_ok()
            {
                hog_outstanding += 1;
            }
        }
        if now == 100 {
            mc.enqueue(
                MemReq::read(ReqId(999_999), LineAddr(4096), Requester::Core(1), 0, now),
                now,
            )
            .unwrap();
        }
        for c in mc.tick(now, &mut stats) {
            if c.req.id == ReqId(999_999) {
                victim_issue_age =
                    Some(c.req.timeline.dram_issue.unwrap() - c.req.timeline.mc_enqueue.unwrap());
            } else {
                hog_outstanding -= 1;
            }
        }
    }
    let age = victim_issue_age.expect("victim serviced");
    assert!(
        age <= 50 + 6_000,
        "victim issued {age} cycles after enqueue"
    );
    assert!(
        stats.escalated_requests >= 1,
        "aging never fired under a saturating hog (escalated_requests = {})",
        stats.escalated_requests
    );
}
