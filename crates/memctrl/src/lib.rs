//! Memory controller with parallelism-aware batch scheduling (PAR-BS).
//!
//! Implements the paper's baseline scheduler (Table 1: "Batch Scheduling
//! \[42\]", Mutlu & Moscibroda, ISCA 2008). Requests are grouped into
//! batches: when no marked requests remain, the scheduler marks up to
//! `MARKING_CAP` oldest requests per (core, bank) pair. Marked requests are
//! serviced before unmarked ones; within a priority class the scheduler is
//! row-hit-first, then oldest-first (FR-FCFS order), which preserves both
//! the fairness of batching and the bank-level parallelism the paper's
//! DRAM contention analysis depends on.
//!
//! The controller owns one or more DDR3 [`Channel`]s. The EMC enqueues its
//! requests directly here — skipping the ring and the LLC — which is
//! exactly the latency advantage quantified in Figures 18 and 19.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use emc_dram::{map_line, Channel, Location, RowOutcome};
use emc_types::{AccessKind, Cycle, DramConfig, FaultPlan, MemReq, MemStats};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::collections::BinaryHeap;

/// PAR-BS marking cap: maximum marked requests per (core, bank) per batch.
pub const MARKING_CAP: usize = 5;

/// One queued request together with its decoded DRAM location.
#[derive(Debug, Clone)]
struct QueueEntry {
    req: MemReq,
    loc: Location,
    marked: bool,
    /// Anti-starvation escalation: set once the request's queue age
    /// crosses the controller's escalation threshold. Escalated requests
    /// outrank every PAR-BS priority class, including row hits.
    escalated: bool,
    seq: u64,
}

/// A serviced request, returned by [`MemoryController::tick`] once its
/// DRAM data burst has completed. The embedded request's timeline carries
/// `dram_issue`, `dram_done` and `row_hit` stamps.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The serviced request.
    pub req: MemReq,
}

#[derive(Debug, Clone)]
struct InFlight {
    data_at: Cycle,
    seq: u64,
    req: MemReq,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.data_at == other.data_at && self.seq == other.seq
    }
}

impl Eq for InFlight {}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on completion time (BinaryHeap is a max-heap).
        other
            .data_at
            .cmp(&self.data_at)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Injected-fault state for one controller (ECC re-issues and
/// backpressure storms), armed by [`MemoryController::set_fault_plan`].
#[derive(Debug)]
struct McFaults {
    reissue_prob: f64,
    reissue_penalty: u64,
    storm_prob: f64,
    storm_cycles: u64,
    rng: SmallRng,
}

/// A (possibly enhanced) memory controller servicing a set of channels.
#[derive(Debug)]
pub struct MemoryController {
    cfg: DramConfig,
    /// Global channel indices owned by this MC.
    owned_channels: Vec<usize>,
    channels: Vec<Channel>,
    queue: Vec<QueueEntry>,
    in_flight: BinaryHeap<InFlight>,
    next_seq: u64,
    queue_entries: usize,
    /// Queue age (cycles since `mc_enqueue`) beyond which a request is
    /// escalated ahead of row-hit preference. `None` disables aging.
    escalation_threshold: Option<Cycle>,
    faults: Option<McFaults>,
    /// End cycle of the current backpressure storm (0 = none).
    storm_until: Cycle,
    /// Whether the last `tick` observed an active storm; enqueues
    /// between ticks see this flag.
    storm_active: bool,
}

impl MemoryController {
    /// Create a controller owning the global channels in `owned_channels`.
    ///
    /// # Panics
    ///
    /// Panics if `owned_channels` is empty.
    pub fn new(cfg: &DramConfig, owned_channels: Vec<usize>) -> Self {
        assert!(
            !owned_channels.is_empty(),
            "an MC must own at least one channel"
        );
        let channels = owned_channels.iter().map(|_| Channel::new(cfg)).collect();
        MemoryController {
            cfg: *cfg,
            owned_channels,
            channels,
            queue: Vec::new(),
            in_flight: BinaryHeap::new(),
            next_seq: 0,
            queue_entries: cfg.queue_entries,
            escalation_threshold: None,
            faults: None,
            storm_until: 0,
            storm_active: false,
        }
    }

    /// Arm deterministic fault injection for this controller: DRAM
    /// accesses are re-issued with a latency penalty (ECC-style) with
    /// probability `plan.dram_reissue_prob` per issue, and queue-full
    /// backpressure storms start with probability `plan.mc_storm_prob`
    /// per cycle, shrinking the advertised queue capacity for
    /// `plan.mc_storm_cycles`. Both are pure timing perturbations: the
    /// data always arrives and rejected enqueues retry through the
    /// existing back-pressure path. `seed` should be a
    /// [`substream`](emc_types::rng::substream) of the system seed.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan, seed: u64) {
        if plan.enabled && (plan.dram_reissue_prob > 0.0 || plan.mc_storm_prob > 0.0) {
            self.faults = Some(McFaults {
                reissue_prob: plan.dram_reissue_prob,
                reissue_penalty: plan.dram_reissue_penalty,
                storm_prob: plan.mc_storm_prob,
                storm_cycles: plan.mc_storm_cycles,
                rng: SmallRng::seed_from_u64(seed),
            });
        } else {
            self.faults = None;
            self.storm_until = 0;
            self.storm_active = false;
        }
    }

    /// Arm (or disarm) request aging: once a queued request has waited
    /// `threshold` cycles it is escalated ahead of row-hit preference and
    /// batch boundaries, bounding worst-case queueing delay. Escalation
    /// is deterministic (pure function of queue ages) and timing-only:
    /// it never drops or reorders data, only the service order.
    pub fn set_escalation_threshold(&mut self, threshold: Option<Cycle>) {
        self.escalation_threshold = threshold;
    }

    /// Liveness probe: for each owned channel, the age in cycles of the
    /// oldest queued request (`0` for an empty channel queue), as
    /// `(global_channel, oldest_age)` pairs.
    pub fn oldest_queue_ages(&self, now: Cycle) -> Vec<(usize, Cycle)> {
        self.owned_channels
            .iter()
            .map(|&global| {
                let oldest = self
                    .queue
                    .iter()
                    .filter(|e| e.loc.channel == global)
                    .filter_map(|e| e.req.timeline.mc_enqueue)
                    .min()
                    .map(|enq| now.saturating_sub(enq))
                    .unwrap_or(0);
                (global, oldest)
            })
            .collect()
    }

    /// Whether this MC services the given global channel index.
    pub fn owns_channel(&self, ch: usize) -> bool {
        self.owned_channels.contains(&ch)
    }

    /// Decode the DRAM location of a line under this MC's config.
    pub fn locate(&self, line: emc_types::LineAddr) -> Location {
        map_line(line, &self.cfg)
    }

    /// The channels this MC owns, as `(global_channel, &Channel)` pairs,
    /// for observability (per-bank row-buffer state sampling and DRAM
    /// bank trace tracks).
    pub fn channels(&self) -> impl Iterator<Item = (usize, &Channel)> + '_ {
        self.owned_channels
            .iter()
            .copied()
            .zip(self.channels.iter())
    }

    /// DRAM banks holding a row open, summed over owned channels.
    pub fn open_bank_count(&self) -> usize {
        self.channels.iter().map(|c| c.open_bank_count()).sum()
    }

    /// Number of requests waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Queue capacity (Table 1: 128 quad-core, 256 eight-core).
    pub fn capacity(&self) -> usize {
        self.queue_entries
    }

    /// Whether the queue is full (new requests must be retried later, a
    /// real source of back-pressure in contended systems). During an
    /// injected backpressure storm the advertised capacity shrinks to a
    /// quarter, forcing the retry path to absorb the burst.
    pub fn is_full(&self) -> bool {
        let cap = if self.storm_active {
            (self.queue_entries / 4).max(1)
        } else {
            self.queue_entries
        };
        self.queue.len() >= cap
    }

    /// Enqueue a request at cycle `now`, stamping `mc_enqueue`.
    ///
    /// # Errors
    ///
    /// Returns the request back if the queue is full (the caller retries;
    /// boxing would add allocator traffic on the hot path).
    #[allow(clippy::result_large_err)]
    pub fn enqueue(&mut self, mut req: MemReq, now: Cycle) -> Result<(), MemReq> {
        if self.is_full() {
            return Err(req);
        }
        req.timeline.mc_enqueue = Some(now);
        let loc = map_line(req.line, &self.cfg);
        debug_assert!(self.owns_channel(loc.channel), "request routed to wrong MC");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(QueueEntry {
            req,
            loc,
            marked: false,
            escalated: false,
            seq,
        });
        Ok(())
    }

    /// Form a new PAR-BS batch if no marked requests remain: mark up to
    /// [`MARKING_CAP`] oldest demand requests per (core, bank).
    fn form_batch(&mut self) {
        if self.queue.iter().any(|e| e.marked) {
            return;
        }
        // Oldest-first marking.
        let mut order: Vec<usize> = (0..self.queue.len()).collect();
        order.sort_by_key(|&i| self.queue[i].seq);
        let mut counts: std::collections::HashMap<(usize, usize, usize), usize> =
            std::collections::HashMap::new();
        for i in order {
            let e = &self.queue[i];
            // Writes are drained opportunistically outside batches.
            if e.req.kind == AccessKind::Write {
                continue;
            }
            let key = (e.req.requester.home_core(), e.loc.channel, e.loc.bank);
            let c = counts.entry(key).or_insert(0);
            if *c < MARKING_CAP {
                *c += 1;
                self.queue[i].marked = true;
            }
        }
    }

    /// Escalate requests whose queue age crossed the aging threshold.
    /// The scan is a pure function of `(queue ages, now)`, so it is
    /// seed-stable and independent of scheduler history.
    fn escalate_aged(&mut self, now: Cycle, stats: &mut MemStats) {
        let Some(threshold) = self.escalation_threshold else {
            return;
        };
        for e in &mut self.queue {
            if e.escalated {
                continue;
            }
            let enqueued = e.req.timeline.mc_enqueue.unwrap_or(now);
            if now.saturating_sub(enqueued) >= threshold {
                e.escalated = true;
                stats.escalated_requests += 1;
            }
        }
    }

    /// Pick the best issueable request for local channel `ci`, by PAR-BS
    /// priority: escalated > non-escalated; marked > unmarked; demand >
    /// prefetch > write; row-hit > row-miss; oldest first. Escalated
    /// requests ignore row-hit preference so an open-row stream cannot
    /// keep starving them.
    fn pick(&self, ci: usize) -> Option<usize> {
        /// PAR-BS priority key: (escalated, marked, kind rank, row hit,
        /// inverted seq). Higher compares greater.
        type Priority = (bool, bool, u8, bool, u64);
        let global = self.owned_channels[ci];
        let ch = &self.channels[ci];
        let mut best: Option<(usize, Priority)> = None;
        for (i, e) in self.queue.iter().enumerate() {
            if e.loc.channel != global {
                continue;
            }
            let kind_rank = match e.req.kind {
                AccessKind::Read => 2u8,
                AccessKind::Prefetch => 1,
                AccessKind::Write => 0,
            };
            let row_hit = ch.open_row(e.loc) == Some(e.loc.row);
            // Higher tuple = higher priority; seq inverted for oldest-first.
            let key = (
                e.escalated,
                e.marked,
                kind_rank,
                row_hit && !e.escalated,
                u64::MAX - e.seq,
            );
            if best.is_none_or(|(_, bk)| key > bk) {
                best = Some((i, key));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Advance the controller by one cycle: form batches, issue at most one
    /// request per owned channel whose bank is ready, and return every
    /// request whose data burst completed by `now`.
    pub fn tick(&mut self, now: Cycle, stats: &mut MemStats) -> Vec<Completion> {
        if let Some(f) = &mut self.faults {
            if f.storm_prob > 0.0 && now >= self.storm_until && f.rng.gen_bool(f.storm_prob) {
                self.storm_until = now + f.storm_cycles;
                stats.backpressure_storms += 1;
            }
            self.storm_active = now < self.storm_until;
        }
        self.escalate_aged(now, stats);
        self.form_batch();
        for ci in 0..self.channels.len() {
            let Some(qi) = self.pick(ci) else { continue };
            let loc = self.queue[qi].loc;
            if !self.channels[ci].can_issue(loc, now) {
                continue;
            }
            let mut entry = self.queue.swap_remove(qi);
            let is_write = entry.req.kind == AccessKind::Write;
            let issue = self.channels[ci].issue(loc, is_write, now);
            // Injected ECC fault: the burst is detected corrupt and
            // re-issued, so the same data arrives a penalty later.
            let mut data_at = issue.data_at;
            if let Some(f) = &mut self.faults {
                if f.reissue_prob > 0.0 && f.rng.gen_bool(f.reissue_prob) {
                    data_at += f.reissue_penalty;
                    stats.ecc_reissues += 1;
                }
            }
            entry.req.timeline.dram_issue = Some(now);
            entry.req.timeline.dram_done = Some(data_at);
            entry.req.timeline.row_hit = Some(issue.outcome == RowOutcome::Hit);
            match issue.outcome {
                RowOutcome::Hit => stats.row_hits += 1,
                RowOutcome::Empty => {
                    stats.row_empties += 1;
                    stats.activates += 1;
                }
                RowOutcome::Conflict => {
                    stats.row_conflicts += 1;
                    stats.activates += 1;
                    stats.precharges += 1;
                }
            }
            match entry.req.kind {
                AccessKind::Read => stats.dram_reads += 1,
                AccessKind::Write => stats.dram_writes += 1,
                AccessKind::Prefetch => stats.dram_prefetches += 1,
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.in_flight.push(InFlight {
                data_at,
                seq,
                req: entry.req,
            });
        }
        let mut out = Vec::new();
        while let Some(top) = self.in_flight.peek() {
            if top.data_at > now {
                break;
            }
            let top = self.in_flight.pop().expect("peeked");
            out.push(Completion { req: top.req });
        }
        out
    }

    /// Earliest cycle at which the controller has pending work that will
    /// complete or could issue — used by the simulator to skip idle cycles.
    pub fn next_event(&self) -> Option<Cycle> {
        self.in_flight.peek().map(|f| f.data_at)
    }

    /// Whether the controller has any queued or in-flight work.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_flight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emc_types::{LineAddr, ReqId, Requester};

    fn read(id: u64, line: u64, core: usize, now: Cycle) -> MemReq {
        MemReq::read(ReqId(id), LineAddr(line), Requester::Core(core), 0x40, now)
    }

    fn drain(mc: &mut MemoryController, stats: &mut MemStats, until: Cycle) -> Vec<Completion> {
        let mut all = Vec::new();
        for t in 0..until {
            all.extend(mc.tick(t, stats));
        }
        all
    }

    /// One channel for deterministic single-channel tests.
    fn one_channel_cfg() -> DramConfig {
        DramConfig {
            channels: 1,
            ..DramConfig::default()
        }
    }

    #[test]
    fn channel_observability_tracks_open_banks() {
        let cfg = one_channel_cfg();
        let mut mc = MemoryController::new(&cfg, vec![0]);
        let mut stats = MemStats::default();
        assert_eq!(mc.open_bank_count(), 0);
        let pairs: Vec<usize> = mc.channels().map(|(g, _)| g).collect();
        assert_eq!(pairs, vec![0], "owned global channel indices");
        mc.enqueue(read(1, 0, 0, 0), 0).unwrap();
        drain(&mut mc, &mut stats, 500);
        assert_eq!(mc.open_bank_count(), 1, "the serviced bank holds its row");
        let per_channel: usize = mc.channels().map(|(_, c)| c.open_bank_count()).sum();
        assert_eq!(per_channel, mc.open_bank_count());
    }

    #[test]
    fn single_request_round_trip() {
        let cfg = one_channel_cfg();
        let mut mc = MemoryController::new(&cfg, vec![0]);
        let mut stats = MemStats::default();
        mc.enqueue(read(1, 0, 0, 0), 0).unwrap();
        let done = drain(&mut mc, &mut stats, 500);
        assert_eq!(done.len(), 1);
        let t = done[0].req.timeline;
        assert_eq!(t.mc_enqueue, Some(0));
        assert_eq!(t.dram_issue, Some(0));
        assert_eq!(t.dram_done, Some(cfg.t_rcd + cfg.t_cas + cfg.t_burst));
        assert_eq!(t.row_hit, Some(false));
        assert_eq!(stats.dram_reads, 1);
        assert_eq!(stats.row_empties, 1);
        assert!(mc.is_idle());
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut cfg = one_channel_cfg();
        cfg.queue_entries = 2;
        let mut mc = MemoryController::new(&cfg, vec![0]);
        assert!(mc.enqueue(read(1, 0, 0, 0), 0).is_ok());
        assert!(mc.enqueue(read(2, 1, 0, 0), 0).is_ok());
        let rejected = mc.enqueue(read(3, 2, 0, 0), 0);
        assert!(rejected.is_err());
        assert_eq!(rejected.unwrap_err().id, ReqId(3));
    }

    #[test]
    fn row_hits_preferred_within_batch() {
        let cfg = one_channel_cfg();
        let lines_per_row = cfg.row_bytes / 64;
        let mut mc = MemoryController::new(&cfg, vec![0]);
        let mut stats = MemStats::default();
        // Open row 0 with request A.
        mc.enqueue(read(1, 0, 0, 0), 0).unwrap();
        let mut done = drain(&mut mc, &mut stats, 200);
        assert_eq!(done.len(), 1);
        // Now enqueue a conflicting row (older) and a row-hit (younger) for
        // the same core: row-hit-first should service the younger first.
        mc.enqueue(read(2, lines_per_row * 8, 0, 200), 200).unwrap(); // bank 0, row 1 (conflict)
        mc.enqueue(read(3, 1, 0, 201), 201).unwrap(); // bank 0, row 0 (hit)
        done = drain(&mut mc, &mut stats, 1000);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].req.id, ReqId(3), "row hit serviced first");
        assert_eq!(done[0].req.timeline.row_hit, Some(true));
        assert_eq!(done[1].req.id, ReqId(2));
    }

    #[test]
    fn marking_cap_bounds_a_hog() {
        // Core 0 floods the queue; core 1 has one old-ish request. After
        // batch formation, core 0 gets at most MARKING_CAP marked requests
        // per bank, so core 1's request is marked too and is serviced
        // within the first batch rather than starving.
        let cfg = one_channel_cfg();
        let mut mc = MemoryController::new(&cfg, vec![0]);
        let mut stats = MemStats::default();
        let lines_per_row = cfg.row_bytes / 64;
        // 10 requests from core 0 all to bank 0, alternating rows (no free
        // row hits), enqueued first.
        for i in 0..10 {
            mc.enqueue(read(i, (i % 2) * lines_per_row * 8, 0, 0), 0)
                .unwrap();
        }
        // One request from core 1 to the same bank, yet another row.
        mc.enqueue(read(100, 2 * lines_per_row * 8 + 2, 1, 0), 0)
            .unwrap();
        let done = drain(&mut mc, &mut stats, 5000);
        assert_eq!(done.len(), 11);
        let pos = done.iter().position(|c| c.req.id == ReqId(100)).unwrap();
        assert!(
            pos <= MARKING_CAP + 1,
            "core 1's request finished at position {pos}, starved by the hog"
        );
    }

    #[test]
    fn writes_yield_to_reads() {
        let cfg = one_channel_cfg();
        let mut mc = MemoryController::new(&cfg, vec![0]);
        let mut stats = MemStats::default();
        let wb = MemReq::writeback(ReqId(1), LineAddr(0), Requester::Core(0), 0);
        mc.enqueue(wb, 0).unwrap();
        mc.enqueue(read(2, 64, 0, 0), 0).unwrap();
        let done = drain(&mut mc, &mut stats, 1000);
        assert_eq!(done[0].req.id, ReqId(2), "read before write");
        assert_eq!(stats.dram_writes, 1);
    }

    #[test]
    fn channels_split_across_mcs() {
        let cfg = DramConfig::default(); // 2 channels
        let mc0 = MemoryController::new(&cfg, vec![0]);
        let mc1 = MemoryController::new(&cfg, vec![1]);
        assert!(mc0.owns_channel(0) && !mc0.owns_channel(1));
        assert!(mc1.owns_channel(1) && !mc1.owns_channel(0));
    }

    #[test]
    fn two_channels_service_in_parallel() {
        let cfg = DramConfig::default(); // 2 channels, line-interleaved
        let mut mc = MemoryController::new(&cfg, vec![0, 1]);
        let mut stats = MemStats::default();
        mc.enqueue(read(1, 0, 0, 0), 0).unwrap(); // channel 0
        mc.enqueue(read(2, 1, 0, 0), 0).unwrap(); // channel 1
        let done = drain(&mut mc, &mut stats, 300);
        assert_eq!(done.len(), 2);
        // Both complete at the same cycle: true channel parallelism.
        assert_eq!(
            done[0].req.timeline.dram_done,
            done[1].req.timeline.dram_done
        );
    }

    #[test]
    fn next_event_reports_inflight() {
        let cfg = one_channel_cfg();
        let mut mc = MemoryController::new(&cfg, vec![0]);
        let mut stats = MemStats::default();
        assert_eq!(mc.next_event(), None);
        mc.enqueue(read(1, 0, 0, 0), 0).unwrap();
        mc.tick(0, &mut stats);
        assert_eq!(mc.next_event(), Some(cfg.t_rcd + cfg.t_cas + cfg.t_burst));
    }

    #[test]
    fn ecc_reissue_delays_completion_but_still_delivers() {
        let cfg = one_channel_cfg();
        let mut mc = MemoryController::new(&cfg, vec![0]);
        let plan = FaultPlan {
            enabled: true,
            dram_reissue_prob: 1.0, // every access re-issued
            dram_reissue_penalty: 100,
            ..FaultPlan::default()
        };
        mc.set_fault_plan(&plan, 3);
        let mut stats = MemStats::default();
        mc.enqueue(read(1, 0, 0, 0), 0).unwrap();
        let done = drain(&mut mc, &mut stats, 500);
        assert_eq!(done.len(), 1, "faulted access must still complete");
        let nominal = cfg.t_rcd + cfg.t_cas + cfg.t_burst;
        assert_eq!(done[0].req.timeline.dram_done, Some(nominal + 100));
        assert_eq!(stats.ecc_reissues, 1);
        assert!(mc.is_idle());
    }

    #[test]
    fn backpressure_storm_shrinks_capacity_then_recovers() {
        let mut cfg = one_channel_cfg();
        cfg.queue_entries = 16;
        let mut mc = MemoryController::new(&cfg, vec![0]);
        let plan = FaultPlan {
            enabled: true,
            mc_storm_prob: 1.0, // a storm starts immediately
            mc_storm_cycles: 50,
            ..FaultPlan::default()
        };
        mc.set_fault_plan(&plan, 9);
        let mut stats = MemStats::default();
        // Before any tick no storm has been observed yet.
        assert!(!mc.is_full());
        mc.tick(0, &mut stats);
        assert!(stats.backpressure_storms >= 1);
        // Storm active: effective capacity is 16/4 = 4.
        for i in 0..4 {
            assert!(
                mc.enqueue(read(i, i, 0, 1), 1).is_ok(),
                "req {i} within storm capacity"
            );
        }
        assert!(
            mc.enqueue(read(9, 9, 0, 1), 1).is_err(),
            "storm rejects the 5th"
        );
        // Full nominal capacity never shrinks for already-queued work,
        // and normal capacity returns once storms stop re-arming: run
        // far past the storm window with injections disabled.
        mc.set_fault_plan(&FaultPlan::default(), 0);
        mc.tick(60, &mut stats);
        assert!(!mc.is_full(), "capacity restored after the storm");
    }

    #[test]
    fn fault_free_plan_leaves_controller_untouched() {
        let cfg = one_channel_cfg();
        let mk = |armed: bool| {
            let mut mc = MemoryController::new(&cfg, vec![0]);
            if armed {
                mc.set_fault_plan(&FaultPlan::default(), 5);
            }
            let mut stats = MemStats::default();
            for i in 0..8 {
                mc.enqueue(read(i, i * 3, (i % 2) as usize, 0), 0).unwrap();
            }
            let done = drain(&mut mc, &mut stats, 2_000);
            (
                done.iter()
                    .map(|c| (c.req.id, c.req.timeline.dram_done))
                    .collect::<Vec<_>>(),
                stats.ecc_reissues,
                stats.backpressure_storms,
            )
        };
        let (clean, r0, s0) = mk(false);
        let (armed, r1, s1) = mk(true);
        assert_eq!(clean, armed);
        assert_eq!((r0, s0), (0, 0));
        assert_eq!((r1, s1), (0, 0));
    }
}
