//! Standard job suites: the paper's evaluation grids as [`JobSpec`]
//! lists.
//!
//! These are the job lists behind both the `campaign` CLI and the
//! `figures` harness, so a `campaign run quad` pre-populates exactly the
//! cache entries `figures fig12` will look up.

use emc_types::{PrefetcherKind, SystemConfig};
use emc_workloads::{Benchmark, QUAD_MIXES};

use crate::spec::JobSpec;

/// The eight (prefetcher × EMC) configurations of Figures 12–14.
pub fn config_grid(base: SystemConfig) -> Vec<SystemConfig> {
    let mut v = Vec::new();
    for pf in PrefetcherKind::ALL {
        for emc in [false, true] {
            let mut c = base.clone().with_prefetcher(pf);
            c.emc.enabled = emc;
            v.push(c);
        }
    }
    v
}

/// H1–H10 × the 8-config grid on the quad-core system (80 jobs): the
/// input to Figures 12, 15–19 and 21–23.
pub fn quad_jobs(budget: u64) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for (name, mix) in QUAD_MIXES {
        for cfg in config_grid(SystemConfig::quad_core()) {
            jobs.push(JobSpec::mix(name, mix, cfg, budget));
        }
    }
    jobs
}

/// High-intensity homogeneous workloads × the 8-config grid (64 jobs):
/// the input to Figures 13 and 24.
pub fn homog_jobs(budget: u64) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for b in Benchmark::HIGH_INTENSITY {
        for cfg in config_grid(SystemConfig::quad_core()) {
            jobs.push(JobSpec::homog(b, cfg, budget));
        }
    }
    jobs
}

/// H1–H10 (doubled to eight cores) × the 8-config grid on `base`
/// (80 jobs): the input to Figure 14, for
/// [`SystemConfig::eight_core_1mc`] or [`SystemConfig::eight_core_2mc`].
pub fn mix8_jobs(base: SystemConfig, budget: u64) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for (name, mix) in QUAD_MIXES {
        for cfg in config_grid(base.clone()) {
            jobs.push(JobSpec::mix8(name, mix, cfg, budget));
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn grid_has_eight_distinct_configs() {
        let g = config_grid(SystemConfig::quad_core());
        assert_eq!(g.len(), 8);
        assert_eq!(g.iter().filter(|c| c.emc.enabled).count(), 4);
        let labels: HashSet<_> = g.iter().map(|c| c.prefetcher.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn suites_have_expected_sizes_and_unique_keys() {
        for (jobs, n) in [
            (quad_jobs(1000), 80),
            (homog_jobs(1000), 64),
            (mix8_jobs(SystemConfig::eight_core_1mc(), 1000), 80),
        ] {
            assert_eq!(jobs.len(), n);
            let keys: HashSet<_> = jobs.iter().map(|j| j.key().0).collect();
            assert_eq!(keys.len(), n, "every job in a suite is distinct");
        }
    }

    #[test]
    fn mc_count_separates_mix8_suites() {
        let a = mix8_jobs(SystemConfig::eight_core_1mc(), 1000);
        let b = mix8_jobs(SystemConfig::eight_core_2mc(), 1000);
        assert_ne!(a[0].key(), b[0].key());
    }
}
