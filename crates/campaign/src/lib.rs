//! Deterministic experiment orchestration for the EMC simulator.
//!
//! The figure grid (Figs. 1–24 + ablations) re-simulates the same
//! baseline configurations over and over, and a serial `figures all`
//! run that wedges or is interrupted throws away everything it already
//! computed. This crate turns ad-hoc figure runs into declarative,
//! cached, resumable **campaigns**:
//!
//! - [`JobSpec`] — one workload mix × [`SystemConfig`] × budget, hashed
//!   (with a code-version fingerprint) into a content-addressed
//!   [`JobKey`]. Two specs share a key exactly when they would produce
//!   byte-identical results.
//! - [`ResultCache`] — completed [`RunResult`]s stored once under
//!   `results/cache/<shard>/<key>.json`; every re-run or cross-figure
//!   duplicate is a cache hit with byte-identical output. Writes are
//!   atomic (temp file + rename); corrupt entries degrade to misses.
//! - [`Manifest`] — per-job status journaled after every job, so an
//!   interrupted campaign resumes without re-running completed work.
//! - [`Campaign`] / [`CampaignOptions`] — the engine: a work-stealing
//!   executor ([`parallel_map`]) across all cores, bounded retries for
//!   wedged runs, immediate structured failure for cap hits, and live
//!   progress lines (done/total, hit rate, ETA).
//! - [`CampaignReport`] — per-job provenance (hit / executed / skipped /
//!   deferred) plus campaign-level aggregation via `Histogram::merge`.
//!
//! The `campaign` binary exposes the same engine on the command line;
//! the `emc-bench` figure harnesses are thin layers over this crate.

pub mod cache;
pub mod client;
pub mod codec;
pub mod engine;
pub mod exec;
pub mod hash;
pub mod manifest;
pub mod spec;
pub mod suite;

pub use cache::{ResultCache, CACHE_SCHEMA, DEFAULT_CACHE_DIR};
pub use client::{Client, ClientError};
pub use codec::{
    histogram_from_json, histogram_to_json, run_result_from_json, run_result_to_json,
    stats_from_json, stats_to_json,
};
pub use engine::{
    eta, hist_summary_json, retry_decision, Campaign, CampaignOptions, CampaignReport, Executor,
    JobRecord, JobSource, RetryDecision, CAP_EXTENSION_FACTOR, REPORT_SCHEMA,
};
pub use exec::{default_workers, parallel_map};
pub use hash::{digest128, digest128_hex};
pub use manifest::{JobStatus, Manifest, ManifestEntry, MANIFEST_SCHEMA};
pub use spec::{
    benchmark_by_name, code_fingerprint, config_json, JobKey, JobSpec, RunResult, CACHE_EPOCH,
};
pub use suite::{config_grid, homog_jobs, mix8_jobs, quad_jobs};
