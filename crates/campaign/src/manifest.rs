//! Campaign manifests: per-job status that survives interrupts.
//!
//! A manifest records, for every job in a named campaign, its content
//! key and how its last attempt ended. The engine updates the manifest
//! after each job (atomic temp-file + rename, like the cache), so a
//! `figures all` killed at job 37 of 80 can restart, see 36 `done`
//! entries whose results are already in the cache, and only execute the
//! remainder. The campaign id is a digest of the ordered job keys: if
//! the job list changes (new budget, new grid, new code fingerprint),
//! the id changes and the stale manifest is discarded rather than
//! trusted.

use std::fs;
use std::path::{Path, PathBuf};

use emc_types::JsonValue;

use crate::hash::digest128_hex;
use crate::spec::JobKey;

/// Schema tag stamped into every manifest file.
pub const MANIFEST_SCHEMA: &str = "emc-campaign-manifest-v1";

/// How far one job has progressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Not yet attempted (or attempted in a run that died mid-job).
    Pending,
    /// Completed; its result is in the cache.
    Done,
    /// Attempted and failed (wedge retries exhausted, or cap hit).
    Failed,
}

impl JobStatus {
    fn as_str(self) -> &'static str {
        match self {
            JobStatus::Pending => "pending",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }

    fn parse(s: &str) -> Option<JobStatus> {
        match s {
            "pending" => Some(JobStatus::Pending),
            "done" => Some(JobStatus::Done),
            "failed" => Some(JobStatus::Failed),
            _ => None,
        }
    }
}

/// One job's manifest row.
#[derive(Debug, Clone)]
pub struct ManifestEntry {
    /// Content-addressed key (ties the row to a cache entry).
    pub key: JobKey,
    /// Display label at the time the campaign was defined.
    pub label: String,
    /// Last known status.
    pub status: JobStatus,
    /// Execution attempts so far (cache hits don't count).
    pub attempts: u32,
    /// Short outcome note ("completed", "cache-hit", "wedged at ...").
    pub outcome: String,
    /// Host wall-clock of the last *execution*, milliseconds. Zero for
    /// rows that never executed; preserved across cache-hit re-runs so
    /// the measurement survives warm replays.
    pub wall_ms: u64,
    /// Simulated cycles of the last execution (with [`Self::wall_ms`],
    /// gives host cycles/sec per job). Zero when never executed.
    pub sim_cycles: u64,
}

impl ManifestEntry {
    /// Host throughput of the recorded execution, simulated cycles per
    /// second (0 when the row carries no measurement).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_ms == 0 {
            return 0.0;
        }
        self.sim_cycles as f64 / (self.wall_ms as f64 / 1e3)
    }
}

/// The persisted state of one named campaign.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Campaign name (also the file stem).
    pub name: String,
    /// Digest of the ordered job keys — identifies the job *list*.
    pub id: String,
    /// One row per job, in campaign order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// The id of a job list: order-sensitive digest over the keys.
    pub fn id_of(keys: &[JobKey]) -> String {
        let joined: String = keys.iter().map(|k| k.0.as_str()).collect();
        digest128_hex(joined.as_bytes())
    }

    /// A fresh manifest with every job pending.
    pub fn fresh(name: &str, jobs: &[(JobKey, String)]) -> Manifest {
        Manifest {
            name: name.to_string(),
            id: Manifest::id_of(&jobs.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>()),
            entries: jobs
                .iter()
                .map(|(key, label)| ManifestEntry {
                    key: key.clone(),
                    label: label.clone(),
                    status: JobStatus::Pending,
                    attempts: 0,
                    outcome: String::new(),
                    wall_ms: 0,
                    sim_cycles: 0,
                })
                .collect(),
        }
    }

    /// Where a campaign named `name` keeps its manifest, under the cache
    /// root.
    pub fn path_for(cache_root: &Path, name: &str) -> PathBuf {
        cache_root.join("manifests").join(format!("{name}.json"))
    }

    /// Load the manifest for `name` if one exists and is well-formed.
    /// Corrupt manifests are discarded (the cache still deduplicates any
    /// completed work, so losing a manifest costs lookups, not runs).
    pub fn load(cache_root: &Path, name: &str) -> Option<Manifest> {
        let path = Manifest::path_for(cache_root, name);
        let text = fs::read_to_string(&path).ok()?;
        match Manifest::from_json_text(&text) {
            Ok(m) => Some(m),
            Err(e) => {
                eprintln!(
                    "# manifest: corrupt {} ({e}); starting fresh",
                    path.display()
                );
                None
            }
        }
    }

    /// Persist atomically under the cache root.
    pub fn save(&self, cache_root: &Path) -> Result<PathBuf, String> {
        let path = Manifest::path_for(cache_root, &self.name);
        let dir = path.parent().expect("manifest path has a parent");
        fs::create_dir_all(dir)
            .map_err(|e| format!("manifest: cannot create {}: {e}", dir.display()))?;
        let mut text = self.to_json().to_json();
        text.push('\n');
        let tmp = dir.join(format!(".{}.tmp", self.name));
        fs::write(&tmp, &text).map_err(|e| format!("manifest: write {}: {e}", tmp.display()))?;
        fs::rename(&tmp, &path).map_err(|e| {
            format!(
                "manifest: rename {} -> {}: {e}",
                tmp.display(),
                path.display()
            )
        })?;
        Ok(path)
    }

    /// Number of entries already `Done`.
    pub fn done_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.status == JobStatus::Done)
            .count()
    }

    /// The manifest as a JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("schema", MANIFEST_SCHEMA.into()),
            ("name", self.name.as_str().into()),
            ("id", self.id.as_str().into()),
            ("total", (self.entries.len() as u64).into()),
            ("done", (self.done_count() as u64).into()),
            (
                "jobs",
                JsonValue::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            JsonValue::obj(vec![
                                ("key", e.key.0.as_str().into()),
                                ("label", e.label.as_str().into()),
                                ("status", e.status.as_str().into()),
                                ("attempts", (e.attempts as u64).into()),
                                ("outcome", e.outcome.as_str().into()),
                                ("wall_ms", e.wall_ms.into()),
                                ("sim_cycles", e.sim_cycles.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a manifest document (inverse of [`Manifest::to_json`]).
    pub fn from_json_text(text: &str) -> Result<Manifest, String> {
        let doc = JsonValue::parse(text)?;
        let schema = doc.get("schema").and_then(|v| v.as_str()).unwrap_or("");
        if schema != MANIFEST_SCHEMA {
            return Err(format!("schema {schema:?}, expected {MANIFEST_SCHEMA:?}"));
        }
        let name = doc
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or("missing name")?
            .to_string();
        let id = doc
            .get("id")
            .and_then(|v| v.as_str())
            .ok_or("missing id")?
            .to_string();
        let jobs = doc
            .get("jobs")
            .and_then(|v| v.as_arr())
            .ok_or("missing jobs")?;
        let entries = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                let field = |k: &str| {
                    j.get(k)
                        .and_then(|v| v.as_str())
                        .ok_or_else(|| format!("jobs[{i}]: missing {k}"))
                };
                Ok(ManifestEntry {
                    key: JobKey(field("key")?.to_string()),
                    label: field("label")?.to_string(),
                    status: JobStatus::parse(field("status")?)
                        .ok_or_else(|| format!("jobs[{i}]: bad status"))?,
                    attempts: j.get("attempts").and_then(|v| v.as_f64()).unwrap_or(0.0) as u32,
                    outcome: field("outcome")?.to_string(),
                    // Absent in pre-host-perf manifests: default to "no
                    // measurement" rather than rejecting the file.
                    wall_ms: j.get("wall_ms").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64,
                    sim_cycles: j.get("sim_cycles").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Manifest { name, id, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmproot(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("emc-manifest-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn keys(n: usize) -> Vec<(JobKey, String)> {
        (0..n)
            .map(|i| (JobKey(format!("{i:032x}")), format!("job{i}")))
            .collect()
    }

    #[test]
    fn fresh_save_load_round_trips() {
        let root = tmproot("roundtrip");
        let mut m = Manifest::fresh("smoke", &keys(3));
        m.entries[1].status = JobStatus::Done;
        m.entries[1].attempts = 1;
        m.entries[1].outcome = "completed".into();
        m.entries[1].wall_ms = 250;
        m.entries[1].sim_cycles = 500_000;
        m.save(&root).unwrap();

        let back = Manifest::load(&root, "smoke").expect("load saved manifest");
        assert_eq!(back.id, m.id);
        assert_eq!(back.entries.len(), 3);
        assert_eq!(back.entries[1].status, JobStatus::Done);
        assert_eq!(back.entries[1].attempts, 1);
        assert_eq!(back.entries[1].wall_ms, 250);
        assert_eq!(back.entries[1].sim_cycles, 500_000);
        assert!((back.entries[1].cycles_per_sec() - 2_000_000.0).abs() < 1e-6);
        assert_eq!(back.entries[0].cycles_per_sec(), 0.0, "no measurement");
        assert_eq!(back.done_count(), 1);
        assert_eq!(back.entries[0].status, JobStatus::Pending);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn pre_host_perf_manifests_still_parse() {
        // A v1 file written before wall_ms/sim_cycles existed: the
        // fields default to zero instead of failing the load.
        let text = format!(
            "{{\"schema\":\"{MANIFEST_SCHEMA}\",\"name\":\"old\",\"id\":\"abc\",\
             \"total\":1,\"done\":1,\"jobs\":[{{\"key\":\"{:032x}\",\"label\":\"j0\",\
             \"status\":\"done\",\"attempts\":2,\"outcome\":\"completed\"}}]}}",
            7
        );
        let m = Manifest::from_json_text(&text).expect("old manifest parses");
        assert_eq!(m.entries[0].attempts, 2);
        assert_eq!(m.entries[0].wall_ms, 0);
        assert_eq!(m.entries[0].sim_cycles, 0);
    }

    #[test]
    fn id_depends_on_job_list_and_order() {
        let a = Manifest::fresh("a", &keys(3));
        let b = Manifest::fresh("a", &keys(4));
        assert_ne!(a.id, b.id, "different job lists");
        let mut rev = keys(3);
        rev.reverse();
        let c = Manifest::fresh("a", &rev);
        assert_ne!(a.id, c.id, "order matters: rows map to jobs by index");
    }

    #[test]
    fn corrupt_manifest_is_discarded() {
        let root = tmproot("corrupt");
        let m = Manifest::fresh("smoke", &keys(2));
        let path = m.save(&root).unwrap();
        fs::write(&path, "{broken").unwrap();
        assert!(Manifest::load(&root, "smoke").is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_manifest_is_none() {
        assert!(Manifest::load(Path::new("/nonexistent-emc"), "nope").is_none());
    }
}
