//! Declarative job specifications and their content-addressed keys.
//!
//! A [`JobSpec`] is everything needed to reproduce one simulation run:
//! the per-core workload list, the full [`SystemConfig`], and the
//! retired-uop budget (the seed lives inside the config). Its
//! [`key`](JobSpec::key) hashes a *canonical* encoding of all of that
//! plus a code-version fingerprint, so two specs collide exactly when
//! they would produce byte-identical results — which is what lets the
//! result cache deduplicate the same baseline run across figures.
//!
//! The canonical encoding ([`emc_types::codec::config_to_json`])
//! destructures every config struct without a `..` rest pattern: adding
//! a field to [`SystemConfig`] (or any nested config) breaks compilation
//! there until the encoder includes it, so the fingerprint can never
//! silently go stale.

use emc_energy::{estimate_default, EnergyBreakdown};
use emc_sim::{eight_core_mix, run_mix};
use emc_types::{JsonValue, RunReport, Stats, SystemConfig};
use emc_workloads::Benchmark;

pub(crate) use emc_types::codec::u;

use crate::hash::digest128_hex;

/// Bump when a change anywhere in the simulator alters results without
/// touching any [`SystemConfig`] field — stale cache entries are then
/// unreachable because every key embeds this value.
pub const CACHE_EPOCH: u32 = 2;

/// The code-version fingerprint mixed into every job key. CI (or any
/// caller wanting exact provenance) can set `EMC_CODE_FINGERPRINT` at
/// *compile* time to a git SHA; otherwise the crate version plus
/// [`CACHE_EPOCH`] stand in.
pub fn code_fingerprint() -> String {
    match option_env!("EMC_CODE_FINGERPRINT") {
        Some(sha) => format!("emc-campaign-e{CACHE_EPOCH}+{sha}"),
        None => format!("emc-campaign-e{CACHE_EPOCH}+v{}", env!("CARGO_PKG_VERSION")),
    }
}

/// One simulated configuration of one workload — the unit the campaign
/// engine schedules, caches, and retries. Mirrors what the bench
/// harness's former `run_one_mix` / `run_one_homog` / `run_one_mix8`
/// trio each rebuilt by hand.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Display label ("H4", "mcfx4", "contexts=2", ...). Not part of
    /// the content key: relabeling a job must still hit the cache.
    pub label: String,
    /// Benchmark per core (`benches.len() == cfg.cores`).
    pub benches: Vec<Benchmark>,
    /// Full system configuration (includes the seed).
    pub cfg: SystemConfig,
    /// Per-core retired-uop budget — the *resolved* value, never an
    /// environment-variable name, so the key is environment-independent.
    pub budget: u64,
}

impl JobSpec {
    /// A heterogeneous quad-core mix (the former `run_one_mix`).
    pub fn mix(name: &str, mix: [Benchmark; 4], cfg: SystemConfig, budget: u64) -> Self {
        JobSpec {
            label: name.to_string(),
            benches: mix.to_vec(),
            cfg,
            budget,
        }
    }

    /// A homogeneous workload: `cfg.cores` copies of `bench` (the former
    /// `run_one_homog`).
    pub fn homog(bench: Benchmark, cfg: SystemConfig, budget: u64) -> Self {
        JobSpec {
            label: format!("{}x{}", bench.name(), cfg.cores),
            benches: vec![bench; cfg.cores],
            cfg,
            budget,
        }
    }

    /// An eight-core mix: two copies of a quad mix (the former
    /// `run_one_mix8`, §5 of the paper).
    pub fn mix8(name: &str, mix: [Benchmark; 4], cfg: SystemConfig, budget: u64) -> Self {
        JobSpec {
            label: name.to_string(),
            benches: eight_core_mix(mix),
            cfg,
            budget,
        }
    }

    /// Replace the display label (ablation harnesses name jobs after the
    /// swept parameter, not the workload).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The content-addressed cache key: a 128-bit digest of the
    /// canonical spec encoding (workloads, every config field, budget)
    /// plus the [`code_fingerprint`].
    pub fn key(&self) -> JobKey {
        JobKey(digest128_hex(self.canonical_json().to_json().as_bytes()))
    }

    /// Canonical JSON encoding of everything that identifies this job.
    /// Insertion-ordered and exhaustive (see module docs), so equal
    /// specs encode byte-identically.
    pub fn canonical_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("fingerprint", code_fingerprint().into()),
            (
                "benches",
                JsonValue::Arr(self.benches.iter().map(|b| b.name().into()).collect()),
            ),
            ("budget", u(self.budget)),
            ("config", config_json(&self.cfg)),
        ])
    }

    /// Execute the job (half-budget warmup then measurement, exactly as
    /// the figure harnesses always did) and report how the run ended.
    pub fn execute(&self) -> RunReport {
        run_mix(self.cfg.clone(), &self.benches, self.budget)
    }

    /// [`execute`](Self::execute) with an explicit cycle cap — the
    /// engine's one extended re-run for cap hits classified
    /// slow-but-live.
    pub fn execute_capped(&self, cycle_cap: u64) -> RunReport {
        emc_sim::run_mix_capped(
            self.cfg.clone(),
            &self.benches,
            self.budget,
            Some(cycle_cap),
        )
    }

    /// The default cycle cap [`execute`](Self::execute) runs under.
    pub fn default_cycle_cap(&self) -> u64 {
        emc_sim::cycle_cap(self.budget)
    }

    /// Package completed statistics as a [`RunResult`] for this spec.
    pub fn to_result(&self, stats: Stats) -> RunResult {
        let energy = estimate_default(&stats, &self.cfg);
        let ipcs = stats.cores.iter().map(|c| c.ipc()).collect();
        RunResult {
            workload: self.label.clone(),
            prefetcher: self.cfg.prefetcher.label().to_string(),
            emc: self.cfg.emc.enabled,
            stats,
            energy,
            ipcs,
        }
    }

    /// Execute and unwrap a completed run (panics with the full wedge /
    /// cap diagnosis otherwise) — the single code path behind every
    /// uncached figure run.
    pub fn run_now(&self) -> RunResult {
        self.to_result(self.execute().expect_completed())
    }
}

/// A job's content-addressed identity: 32 lowercase hex characters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobKey(pub String);

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// One simulated configuration's measured outcome (moved here from
/// `emc-bench` so figures and campaigns share a single result type).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload label ("H4", "mcf x4", ...).
    pub workload: String,
    /// Prefetcher configuration.
    pub prefetcher: String,
    /// Whether the EMC was enabled.
    pub emc: bool,
    /// Full statistics.
    pub stats: Stats,
    /// Energy estimate.
    pub energy: EnergyBreakdown,
    /// Per-core IPCs (for weighted speedup against a baseline run).
    pub ipcs: Vec<f64>,
}

/// Canonical encoding of a [`SystemConfig`] — a thin alias for
/// [`emc_types::codec::config_to_json`], the single exhaustive encoder
/// shared with the simulator's exporters. Every field of every nested
/// struct (including the liveness layer) enters the document, so it can
/// never silently fall out of the cache key.
pub fn config_json(cfg: &SystemConfig) -> JsonValue {
    emc_types::codec::config_to_json(cfg)
}

/// Look up a [`Benchmark`] by its printed name (inverse of
/// [`Benchmark::name`]), used when decoding cached spec echoes.
pub fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    Benchmark::all().into_iter().find(|b| b.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::mix(
            "H1",
            emc_workloads::mix_by_name("H1").unwrap(),
            SystemConfig::quad_core(),
            30_000,
        )
    }

    #[test]
    fn key_is_stable_and_label_independent() {
        let a = spec();
        let b = spec().with_label("renamed");
        assert_eq!(a.key(), b.key(), "label is presentation, not identity");
        assert_eq!(a.key().to_string().len(), 32);
    }

    #[test]
    fn key_separates_budget_seed_config_and_workload() {
        let base = spec();
        let mut budget = spec();
        budget.budget += 1;
        let mut seed = spec();
        seed.cfg.seed ^= 1;
        let mut cfgd = spec();
        cfgd.cfg.emc.enabled = false;
        let mut wl = spec();
        wl.benches[0] = Benchmark::Lbm;
        for (what, s) in [
            ("budget", &budget),
            ("seed", &seed),
            ("config", &cfgd),
            ("workload", &wl),
        ] {
            assert_ne!(base.key(), s.key(), "{what} must change the key");
        }
    }

    #[test]
    fn homog_and_mix8_constructors() {
        let h = JobSpec::homog(Benchmark::Mcf, SystemConfig::quad_core(), 100);
        assert_eq!(h.label, "mcfx4");
        assert_eq!(h.benches.len(), 4);
        let m8 = JobSpec::mix8(
            "H1",
            emc_workloads::mix_by_name("H1").unwrap(),
            SystemConfig::eight_core_1mc(),
            100,
        );
        assert_eq!(m8.benches.len(), 8);
        assert_eq!(m8.benches[0], m8.benches[4]);
        assert_ne!(h.key(), m8.key());
    }

    #[test]
    fn canonical_json_parses_and_names_fingerprint() {
        let doc = spec().canonical_json();
        let text = doc.to_json();
        let back = JsonValue::parse(&text).expect("canonical encoding is valid JSON");
        assert_eq!(
            back.get("fingerprint").and_then(|v| v.as_str()),
            Some(code_fingerprint().as_str())
        );
        assert!(back.get("config").and_then(|c| c.get("emc")).is_some());
    }

    #[test]
    fn u64_above_double_grid_encodes_as_string() {
        assert_eq!(u(42), JsonValue::Num(42.0));
        assert_eq!(u(u64::MAX), JsonValue::Str(u64::MAX.to_string()));
    }

    #[test]
    fn benchmark_round_trips_by_name() {
        for bench in Benchmark::all() {
            assert_eq!(benchmark_by_name(bench.name()), Some(bench));
        }
        assert_eq!(benchmark_by_name("notabench"), None);
    }
}
