//! Content-addressed on-disk result cache.
//!
//! Completed [`RunResult`]s are stored once under
//! `<root>/<first two hex chars>/<key>.json` (sharding keeps any single
//! directory small even for thousand-job campaigns). Writes go through a
//! temp file in the same directory followed by a rename, so a crash or
//! interrupt can never leave a truncated entry behind — at worst the
//! entry is absent and the job re-runs. Corrupt or schema-mismatched
//! entries are treated as misses and overwritten on the next store
//! (self-healing), never as hard errors.

use std::fs;
use std::path::{Path, PathBuf};

use emc_types::JsonValue;

use crate::codec::{run_result_from_json, run_result_to_json};
use crate::spec::{code_fingerprint, JobKey, JobSpec, RunResult};

/// Schema tag stamped into every cache entry.
pub const CACHE_SCHEMA: &str = "emc-campaign-cache-v1";

/// Default cache root, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

/// A content-addressed store of completed run results.
#[derive(Debug, Clone)]
pub struct ResultCache {
    root: PathBuf,
}

impl ResultCache {
    /// Open (lazily — no I/O happens until the first store) a cache
    /// rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ResultCache { root: root.into() }
    }

    /// The cache rooted at [`DEFAULT_CACHE_DIR`].
    pub fn default_dir() -> Self {
        ResultCache::new(DEFAULT_CACHE_DIR)
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where `key`'s entry lives (whether or not it exists yet).
    pub fn path_of(&self, key: &JobKey) -> PathBuf {
        let shard = &key.0[..2];
        self.root.join(shard).join(format!("{key}.json"))
    }

    /// Look up a completed result. `Ok(None)` covers both a genuine miss
    /// and an unreadable/corrupt/mismatched entry (logged to stderr);
    /// the caller re-runs the job and the next store repairs the file.
    /// On a hit the result's workload label is rewritten to the
    /// requesting spec's label — labels are presentation, not identity.
    pub fn load(&self, spec: &JobSpec) -> Option<RunResult> {
        let key = spec.key();
        let path = self.path_of(&key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                eprintln!(
                    "# cache: unreadable {} ({e}); treating as miss",
                    path.display()
                );
                return None;
            }
        };
        match decode_entry(&text, &key) {
            Ok(mut result) => {
                result.workload = spec.label.clone();
                Some(result)
            }
            Err(e) => {
                eprintln!(
                    "# cache: corrupt {} ({e}); treating as miss",
                    path.display()
                );
                None
            }
        }
    }

    /// Store a completed result under `spec`'s key. Atomic: the entry is
    /// fully written to a temp file and renamed into place. Returns the
    /// final path.
    pub fn store(&self, spec: &JobSpec, result: &RunResult) -> Result<PathBuf, String> {
        let key = spec.key();
        let path = self.path_of(&key);
        let dir = path.parent().expect("sharded path has a parent");
        fs::create_dir_all(dir)
            .map_err(|e| format!("cache: cannot create {}: {e}", dir.display()))?;

        let doc = JsonValue::obj(vec![
            ("schema", CACHE_SCHEMA.into()),
            ("key", key.0.as_str().into()),
            ("fingerprint", code_fingerprint().into()),
            // The spec echo makes entries self-describing for `campaign
            // status` and humans; identity still lives in the key.
            ("spec", spec.canonical_json()),
            ("result", run_result_to_json(result)),
        ]);
        let mut text = doc.to_json();
        text.push('\n');

        let tmp = dir.join(format!(".{key}.tmp"));
        fs::write(&tmp, &text).map_err(|e| format!("cache: write {}: {e}", tmp.display()))?;
        fs::rename(&tmp, &path)
            .map_err(|e| format!("cache: rename {} -> {}: {e}", tmp.display(), path.display()))?;
        Ok(path)
    }

    /// Count entries on disk (for `campaign stats`). Missing root counts
    /// as zero.
    pub fn entry_count(&self) -> usize {
        let Ok(shards) = fs::read_dir(&self.root) else {
            return 0;
        };
        shards
            .flatten()
            .filter(|d| d.path().is_dir() && d.file_name() != "manifests")
            .filter_map(|d| fs::read_dir(d.path()).ok())
            .flat_map(|rd| rd.flatten())
            .filter(|f| f.path().extension().is_some_and(|x| x == "json"))
            .count()
    }
}

/// Parse and validate one cache entry against the key we expect.
fn decode_entry(text: &str, key: &JobKey) -> Result<RunResult, String> {
    let doc = JsonValue::parse(text)?;
    let schema = doc.get("schema").and_then(|v| v.as_str()).unwrap_or("");
    if schema != CACHE_SCHEMA {
        return Err(format!("schema {schema:?}, expected {CACHE_SCHEMA:?}"));
    }
    let stored_key = doc.get("key").and_then(|v| v.as_str()).unwrap_or("");
    if stored_key != key.0 {
        return Err(format!("key mismatch: entry says {stored_key:?}"));
    }
    let fp = doc
        .get("fingerprint")
        .and_then(|v| v.as_str())
        .unwrap_or("");
    if fp != code_fingerprint() {
        // Unreachable through `load` (the fingerprint is inside the
        // hashed spec, so a different fingerprint yields a different
        // path), but a copied-in entry from another build must not pass.
        return Err(format!("fingerprint {fp:?} from a different build"));
    }
    run_result_from_json(doc.get("result").ok_or("missing result")?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emc_types::{Stats, SystemConfig};
    use emc_workloads::Benchmark;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("emc-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn spec() -> JobSpec {
        JobSpec::homog(Benchmark::Mcf, SystemConfig::quad_core(), 500)
    }

    fn result_for(spec: &JobSpec) -> RunResult {
        let mut stats = Stats::new(spec.cfg.cores);
        stats.cycles = 4242;
        stats.mem.core_miss_latency.record(321);
        spec.to_result(stats)
    }

    #[test]
    fn store_then_load_round_trips_and_is_byte_stable() {
        let cache = ResultCache::new(tmpdir("roundtrip"));
        let spec = spec();
        let result = result_for(&spec);

        assert!(cache.load(&spec).is_none(), "cold cache misses");
        let path = cache.store(&spec, &result).unwrap();
        let first = fs::read(&path).unwrap();

        let hit = cache.load(&spec).expect("warm cache hits");
        assert_eq!(hit.stats.cycles, 4242);
        assert_eq!(hit.workload, spec.label);

        // Re-storing the same result writes byte-identical content.
        cache.store(&spec, &result).unwrap();
        assert_eq!(fs::read(&path).unwrap(), first);
        assert_eq!(cache.entry_count(), 1);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn hit_rewrites_label_from_requesting_spec() {
        let cache = ResultCache::new(tmpdir("label"));
        let spec = spec();
        cache.store(&spec, &result_for(&spec)).unwrap();
        let renamed = spec.clone().with_label("figure-7-baseline");
        let hit = cache.load(&renamed).expect("same key despite new label");
        assert_eq!(hit.workload, "figure-7-baseline");
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn corrupt_entries_degrade_to_misses() {
        let cache = ResultCache::new(tmpdir("corrupt"));
        let spec = spec();
        cache.store(&spec, &result_for(&spec)).unwrap();
        let path = cache.path_of(&spec.key());

        fs::write(&path, "{not json").unwrap();
        assert!(cache.load(&spec).is_none(), "garbage is a miss");

        fs::write(&path, "{\"schema\":\"something-else\"}").unwrap();
        assert!(cache.load(&spec).is_none(), "wrong schema is a miss");

        // A store after corruption repairs the entry.
        cache.store(&spec, &result_for(&spec)).unwrap();
        assert!(cache.load(&spec).is_some());
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn entries_are_sharded_by_key_prefix() {
        let cache = ResultCache::new(tmpdir("shard"));
        let key = spec().key();
        let path = cache.path_of(&key);
        assert_eq!(
            path.parent()
                .unwrap()
                .file_name()
                .unwrap()
                .to_str()
                .unwrap(),
            &key.0[..2]
        );
        let _ = fs::remove_dir_all(cache.root());
    }
}
